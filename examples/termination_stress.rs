//! Termination-detection stress test.
//!
//! Termination is the hardest part of asynchronous work stealing to get
//! right (§3.3.1): detecting "no work anywhere" while chunks may still be
//! moving. This example hammers all five paper algorithms (plus the two
//! extensions) with many small adversarial trees — including single-node
//! and star-shaped trees, and thread counts exceeding the available work —
//! asserting exact node conservation every time. A lost or double-counted
//! node, or a hang, fails the run.
//!
//! Run with: `cargo run --release --example termination_stress`

use pgas::MachineModel;
use uts_dlb::tree::TreeSpec;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn main() {
    let machines = [MachineModel::smp(), MachineModel::kittyhawk()];
    let trees = [
        TreeSpec::binomial(1, 0, 2, 0.9),   // root only
        TreeSpec::binomial(2, 5, 2, 0.0),   // star: root + 5 leaves
        TreeSpec::binomial(3, 8, 2, 0.40),  // small subcritical
        TreeSpec::binomial(7, 16, 2, 0.475), // deeper, imbalanced
        TreeSpec::binomial(12, 2, 2, 0.48), // narrow root
    ];
    let mut runs = 0u32;
    for machine in &machines {
        for spec in &trees {
            let gen = UtsGen::new(*spec);
            let (expect, _) = seq_run(&gen);
            for alg in Algorithm::all() {
                for threads in [1usize, 2, 3, 7, 16] {
                    for k in [1usize, 3] {
                        let mut cfg = RunConfig::new(alg, k);
                        cfg.seed = 0xBAD5EED ^ (threads as u64) << 8 ^ k as u64;
                        let report = run_sim(machine.clone(), threads, &gen, &cfg);
                        assert_eq!(
                            report.total_nodes,
                            expect,
                            "{} p={} k={} on {:?}: expected {} got {}",
                            alg.label(),
                            threads,
                            k,
                            spec,
                            expect,
                            report.total_nodes
                        );
                        runs += 1;
                    }
                }
            }
        }
    }
    println!("termination stress: {runs} adversarial runs, all conserved and terminated");
}
