//! Mini chunk-size sweep (a pocket Figure 4).
//!
//! §2: "the value of k represents a tradeoff between load imbalance and
//! communication costs" — small chunks mean many expensive steals, large
//! chunks mean idle threads. This example sweeps k on a small tree and
//! prints the resulting performance curve for two algorithms, showing the
//! "sweet spot" plateau and `upc-sharedmem`'s collapse at small k.
//!
//! Run with: `cargo run --release --example chunk_sweep`

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let preset = presets::t_s();
    let gen = UtsGen::new(preset.spec);
    let machine = MachineModel::kittyhawk();
    let threads = 32;

    println!(
        "chunk-size sweep: {} threads on {}, tree {} ({} nodes)\n",
        threads, machine.name, preset.name, preset.expected.nodes
    );
    println!("{:<6} {:>22} {:>22}", "k", "upc-distmem (Mn/s)", "upc-sharedmem (Mn/s)");

    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut rates = Vec::new();
        for alg in [Algorithm::DistMem, Algorithm::SharedMem] {
            let cfg = RunConfig::new(alg, k);
            let report = run_sim(machine.clone(), threads, &gen, &cfg);
            assert_eq!(report.total_nodes, preset.expected.nodes);
            rates.push(report.nodes_per_sec() / 1e6);
        }
        let bar = "#".repeat((rates[0] * 3.0) as usize);
        println!("{:<6} {:>22.2} {:>22.2}   {}", k, rates[0], rates[1], bar);
    }
    println!("\nnote the plateau in the middle and upc-sharedmem's degradation at small k");
}
