//! The Figure-1 state machine, observed.
//!
//! Runs `upc-distmem` on a tiny tree with 4 simulated threads and prints
//! each thread's per-state time decomposition and protocol counters — a
//! direct view of the Working / Searching / Stealing / Terminating cycle
//! and of the request/response steal protocol's costs.
//!
//! Run with: `cargo run --release --example protocol_trace`

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::state::State;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let preset = presets::t_s();
    let gen = UtsGen::new(preset.spec);
    let machine = MachineModel::kittyhawk();
    let cfg = RunConfig::new(Algorithm::DistMem, 4);
    let report = run_sim(machine.clone(), 4, &gen, &cfg);
    assert_eq!(report.total_nodes, preset.expected.nodes);

    println!(
        "upc-distmem on {} ({} nodes), 4 simulated threads, k=4\n",
        preset.name, preset.expected.nodes
    );
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "thread", "nodes", "work(ms)", "srch(ms)", "steal(ms)", "term(ms)", "steals", "fails", "srvcd", "trans"
    );
    for (t, r) in report.per_thread.iter().enumerate() {
        println!(
            "{:<8} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>7} {:>9}",
            t,
            r.nodes,
            r.state_ns[State::Working as usize] as f64 / 1e6,
            r.state_ns[State::Searching as usize] as f64 / 1e6,
            r.state_ns[State::Stealing as usize] as f64 / 1e6,
            r.state_ns[State::Terminating as usize] as f64 / 1e6,
            r.steals_ok,
            r.steals_failed,
            r.requests_serviced,
            r.transitions,
        );
    }

    let totals = report.totals();
    println!("\nglobal: {} nodes, makespan {:.3} ms virtual", report.total_nodes, report.makespan_ns as f64 / 1e6);
    println!(
        "lock operations: {} (the §3.3.3 stack is lock-less — compare `upc-sharedmem`)",
        totals.comm.lock_acquires
    );

    // Contrast with the locked shared-memory algorithm.
    let cfg = RunConfig::new(Algorithm::SharedMem, 4);
    let report = run_sim(machine, 4, &gen, &cfg);
    let totals = report.totals();
    println!(
        "upc-sharedmem on the same run: {} lock acquisitions, {} failed lock attempts",
        totals.comm.lock_acquires, totals.comm.lock_failures
    );
}
