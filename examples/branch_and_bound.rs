//! Branch-and-bound over the PGAS substrate.
//!
//! §3 of the paper: "For the implementation of more complex state evaluation
//! functions and more sophisticated strategies such as branch-and-bound, UPC
//! offers clear additional advantages" — because the incumbent bound is just
//! a shared variable every thread can read cheaply and update atomically,
//! with no message choreography.
//!
//! This example solves a 0/1 knapsack instance exactly with parallel
//! branch-and-bound written straight against `pgas::Comm`:
//!
//! - the **incumbent** (best value found so far) lives in a scalar cell with
//!   affinity to thread 0, updated with a CAS-max loop and polled by every
//!   worker between expansions;
//! - subproblems are statically seeded by enumerating the search tree to a
//!   fixed depth and dealing subtrees round-robin;
//! - final answers (optimal value, nodes explored) are combined with the
//!   tree-based [`pgas::Collectives`], the `upc_all_reduce` analog.
//!
//! The run demonstrates the point quantitatively: with bound sharing the
//! fleet explores *fewer* nodes than a single thread does alone, because
//! good incumbents found in one subtree prune the others.
//!
//! Run with: `cargo run --release --example branch_and_bound`

use pgas::sim::SimCluster;
use pgas::{Collectives, Comm, MachineModel, SpaceConfig};

/// Incumbent cell (thread 0); the collective block sits above it.
const INCUMBENT: usize = 0;
const COLL_BASE: usize = 1;

/// Problem instance: weights/values generated deterministically.
#[derive(Clone)]
struct Knapsack {
    weight: Vec<i64>,
    value: Vec<i64>,
    capacity: i64,
    /// Greedy fractional upper bound on the value obtainable from items
    /// `i..` with `cap` remaining (items pre-sorted by value density).
    suffix_value: Vec<i64>,
}

impl Knapsack {
    fn generate(n: usize, seed: u64) -> Knapsack {
        let mut x = seed | 1;
        let mut rand = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut items: Vec<(i64, i64)> = (0..n)
            .map(|_| {
                let w = (rand() % 97 + 3) as i64;
                let v = (rand() % 127 + 5) as i64;
                (w, v)
            })
            .collect();
        // Sort by density so the cheap suffix bound is reasonably tight.
        items.sort_by(|a, b| (b.1 * a.0).cmp(&(a.1 * b.0)));
        let capacity = items.iter().map(|(w, _)| w).sum::<i64>() * 2 / 5;
        let mut suffix_value = vec![0i64; n + 1];
        for i in (0..n).rev() {
            suffix_value[i] = suffix_value[i + 1] + items[i].1;
        }
        Knapsack {
            weight: items.iter().map(|&(w, _)| w).collect(),
            value: items.iter().map(|&(_, v)| v).collect(),
            capacity,
            suffix_value,
        }
    }

    fn n(&self) -> usize {
        self.weight.len()
    }
}

/// A subproblem: decided the first `level` items.
#[derive(Clone, Copy, Debug, Default)]
struct Task {
    level: u32,
    weight: i64,
    value: i64,
}

/// DFS with pruning from `task`; reads the shared incumbent every
/// `poll_every` expansions and publishes improvements immediately.
/// Returns (nodes_explored, best_value_found).
fn solve<C: Comm<u64>>(
    comm: &mut C,
    kp: &Knapsack,
    task: Task,
    init_bound: i64,
    share_bound: bool,
    poll_every: u64,
) -> (u64, i64) {
    let mut stack = vec![task];
    let mut nodes = 0u64;
    let mut best = init_bound;
    let mut cached_incumbent = 0i64;
    let mut since_poll = 0u64;
    while let Some(t) = stack.pop() {
        nodes += 1;
        comm.work(1);
        since_poll += 1;
        if share_bound && since_poll >= poll_every {
            since_poll = 0;
            cached_incumbent = comm.get(0, INCUMBENT);
        }
        let bound = cached_incumbent.max(best);
        // Optimistic completion: take every remaining item.
        if t.value + kp.suffix_value[t.level as usize] <= bound {
            continue; // pruned
        }
        if t.level as usize == kp.n() {
            if t.value > best {
                best = t.value;
                if share_bound {
                    // CAS-max: publish only if we still improve.
                    loop {
                        let cur = comm.get(0, INCUMBENT);
                        if best <= cur {
                            cached_incumbent = cur;
                            break;
                        }
                        if comm.cas(0, INCUMBENT, cur, best) == cur {
                            cached_incumbent = best;
                            break;
                        }
                    }
                }
            }
            continue;
        }
        let i = t.level as usize;
        // Skip item i.
        stack.push(Task {
            level: t.level + 1,
            ..t
        });
        // Take item i if it fits.
        if t.weight + kp.weight[i] <= kp.capacity {
            stack.push(Task {
                level: t.level + 1,
                weight: t.weight + kp.weight[i],
                value: t.value + kp.value[i],
            });
        }
    }
    (nodes, best)
}

/// Enumerate subproblems at `depth` to deal across threads.
fn seeds(kp: &Knapsack, depth: u32) -> Vec<Task> {
    let mut frontier = vec![Task::default()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for t in frontier {
            let i = t.level as usize;
            if i >= kp.n() {
                next.push(t);
                continue;
            }
            next.push(Task {
                level: t.level + 1,
                ..t
            });
            if t.weight + kp.weight[i] <= kp.capacity {
                next.push(Task {
                    level: t.level + 1,
                    weight: t.weight + kp.weight[i],
                    value: t.value + kp.value[i],
                });
            }
        }
        frontier = next;
    }
    frontier
}

fn run(kp: &Knapsack, threads: usize, share_bound: bool) -> (i64, u64, u64) {
    let cluster: SimCluster<u64> = SimCluster::new(
        MachineModel::kittyhawk(),
        threads,
        SpaceConfig {
            scalars: COLL_BASE + pgas::collectives::COLLECTIVE_CELLS,
            locks: 1,
        },
    );
    let seeds = seeds(kp, 7); // up to 128 subproblems
    let report = cluster.run(|comm| {
        let me = comm.my_id();
        let n = comm.n_threads();
        let mut nodes = 0u64;
        let mut best = 0i64;
        for (i, s) in seeds.iter().enumerate() {
            if i % n == me {
                // Each worker's own best carries across its seeds even
                // without sharing; sharing additionally imports everyone
                // else's discoveries.
                let (nn, b) = solve(comm, kp, *s, best, share_bound, 64);
                nodes += nn;
                best = best.max(b);
            }
        }
        // upc_all_reduce analog: combine value and node counts in-band.
        let mut coll = Collectives::new(COLL_BASE);
        let optimal = coll.all_reduce_max(comm, best);
        let total_nodes = coll.all_reduce_sum(comm, nodes as i64) as u64;
        (optimal, total_nodes)
    });
    let (optimal, total_nodes) = report.results[0];
    assert!(report.results.iter().all(|r| *r == (optimal, total_nodes)));
    (optimal, total_nodes, report.makespan_ns)
}

fn main() {
    let kp = Knapsack::generate(26, 0xB00C);
    println!(
        "0/1 knapsack: {} items, capacity {}",
        kp.n(),
        kp.capacity
    );

    // Sequential reference (one thread IS the exact solver).
    let (opt_seq, nodes_seq, _) = run(&kp, 1, false);
    println!("sequential B&B:            optimal {opt_seq}, {nodes_seq} nodes explored");

    // Parallel without bound sharing: same answer, more total work.
    let (opt_nosh, nodes_nosh, t_nosh) = run(&kp, 16, false);
    assert_eq!(opt_nosh, opt_seq);
    println!(
        "16 threads, private bounds: optimal {opt_nosh}, {nodes_nosh} nodes, {:.2} ms virtual",
        t_nosh as f64 / 1e6
    );

    // Parallel with the shared incumbent: same answer, far fewer nodes.
    let (opt_sh, nodes_sh, t_sh) = run(&kp, 16, true);
    assert_eq!(opt_sh, opt_seq);
    println!(
        "16 threads, shared bound:   optimal {opt_sh}, {nodes_sh} nodes, {:.2} ms virtual",
        t_sh as f64 / 1e6
    );
    println!(
        "\nbound sharing pruned {:.1}% of the no-sharing work (one shared variable, one CAS loop)",
        100.0 * (1.0 - nodes_sh as f64 / nodes_nosh as f64)
    );
}
