//! Beyond UTS: load-balance a different exhaustive search.
//!
//! §3 of the paper notes the UPC work-stealing framework "could be easily
//! augmented to use more complex search methods". The engine here is generic
//! over [`TaskGen`], so any implicit tree works. This example enumerates the
//! N-Queens search tree: each task is a partially filled board (encoded in
//! three bitmasks), children are the legal placements in the next row.
//!
//! The node count of this tree is a well-defined combinatorial quantity; we
//! verify the parallel count against a local sequential recursion, and count
//! solutions as a byproduct of the tree shape (leaves at depth N).
//!
//! Run with: `cargo run --release --example custom_search`

use pgas::MachineModel;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, TaskGen};

const N: u32 = 10;

/// A partial N-Queens placement: row index plus the three attack masks.
#[derive(Clone, Copy, Default, Debug)]
struct Board {
    row: u32,
    cols: u32,
    diag_l: u32,
    diag_r: u32,
}

/// N-Queens as an implicit task tree.
#[derive(Clone, Copy)]
struct Queens {
    n: u32,
}

impl TaskGen for Queens {
    type Task = Board;

    fn root(&self) -> Board {
        Board::default()
    }

    fn expand(&self, b: &Board, out: &mut Vec<Board>) -> u32 {
        if b.row == self.n {
            return 0; // complete placement: a solution leaf
        }
        let full = (1u32 << self.n) - 1;
        let mut free = full & !(b.cols | b.diag_l | b.diag_r);
        let mut produced = 0;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            out.push(Board {
                row: b.row + 1,
                cols: b.cols | bit,
                diag_l: (b.diag_l | bit) << 1,
                diag_r: (b.diag_r | bit) >> 1,
            });
            produced += 1;
        }
        produced
    }
}

/// Sequential reference: count tree nodes and solutions.
fn seq_count(g: &Queens) -> (u64, u64) {
    let mut stack = vec![g.root()];
    let mut nodes = 0u64;
    let mut solutions = 0u64;
    let mut scratch = Vec::new();
    while let Some(b) = stack.pop() {
        nodes += 1;
        if b.row == g.n {
            solutions += 1;
            continue;
        }
        scratch.clear();
        g.expand(&b, &mut scratch);
        stack.extend_from_slice(&scratch);
    }
    (nodes, solutions)
}

fn main() {
    let gen = Queens { n: N };
    let (nodes, solutions) = seq_count(&gen);
    println!("{N}-Queens: search tree has {nodes} nodes, {solutions} solutions");
    assert_eq!(solutions, 724, "10-Queens has 724 solutions");

    let machine = MachineModel::topsail();
    // Bounded-depth searches keep shallow stacks: use a small chunk so
    // surplus is actually released (UTS tolerates k=16; N-Queens wants 4).
    let cfg = RunConfig::new(Algorithm::DistMem, 4);
    let report = run_sim(machine.clone(), 32, &gen, &cfg);
    assert_eq!(report.total_nodes, nodes, "parallel count mismatch");
    println!(
        "parallel count on 32 simulated threads: {} nodes, speedup {:.1}, {} steals",
        report.total_nodes,
        report.speedup(machine.seq_rate()),
        report.total_steals()
    );
    println!("(the same engine balances any implicit search tree — this one has");
    println!(" bounded depth {N} and branching ≤ {N}, very unlike UTS, yet no code changed)");
}
