//! Performance portability — the paper's closing argument (§6.2): "we were
//! able to achieve excellent performance and scalability using a single UPC
//! program that is portable across multiple machines".
//!
//! The same binary (literally the same worker functions) runs here on two
//! opposite platforms: the low-latency Altix shared-memory model and the
//! high-latency Kitty Hawk Infiniband cluster model. The shared-memory
//! algorithm is fine on the former and collapses on the latter; the
//! distributed-memory algorithm is fast on both — that asymmetry is the
//! paper in one table.
//!
//! Run with: `cargo run --release --example portability`

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let preset = presets::t_s();
    let gen = UtsGen::new(preset.spec);
    let threads = 32;
    let k = 4;

    println!(
        "performance portability: {} threads, k={k}, tree {} ({} nodes)\n",
        threads, preset.name, preset.expected.nodes
    );
    println!(
        "{:<16} {:>22} {:>22}",
        "algorithm", "altix (speedup)", "kittyhawk (speedup)"
    );

    for alg in [Algorithm::SharedMem, Algorithm::DistMem, Algorithm::MpiWs] {
        let mut row = format!("{:<16}", alg.label());
        for machine in [MachineModel::altix(), MachineModel::kittyhawk()] {
            let cfg = RunConfig::new(alg, k);
            let seq = machine.seq_rate();
            let report = run_sim(machine, threads, &gen, &cfg);
            assert_eq!(report.total_nodes, preset.expected.nodes);
            row.push_str(&format!("{:>22.2}", report.speedup(seq)));
        }
        println!("{row}");
    }

    println!("\nthe distributed-memory algorithm is the only one that is fast on BOTH —");
    println!("performance portability comes from designing for the worst interconnect.");
}
