//! Visualize a run: ASCII Gantt chart of every thread's Figure-1 states.
//!
//! `W` working, `s` searching, `x` stealing, `t` terminating. Watch the
//! wavefront: thread 0 starts with the root, work diffuses outward through
//! steals, and the termination phase appears as a thin `t` band at the end.
//!
//! Run with: `cargo run --release --example timeline`

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::trace::render_timeline;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let preset = presets::t_s();
    let gen = UtsGen::new(preset.spec);
    let machine = MachineModel::kittyhawk();

    for alg in [Algorithm::DistMem, Algorithm::SharedMem] {
        let mut cfg = RunConfig::new(alg, 4);
        cfg.trace = true;
        let report = run_sim(machine.clone(), 12, &gen, &cfg);
        assert_eq!(report.total_nodes, preset.expected.nodes);
        println!(
            "\n=== {} | 12 threads | {} | makespan {:.2} ms virtual ===",
            report.label,
            preset.name,
            report.makespan_ns as f64 / 1e6
        );
        print!(
            "{}",
            render_timeline(&report.event_logs(), report.makespan_ns, 100)
        );
        let d = report.diffusion();
        if let Some(t100) = d.t100_ns {
            println!(
                "all threads had work within {:.1}% of the makespan",
                100.0 * t100 as f64 / report.makespan_ns as f64
            );
        }
    }
    println!("\nlegend: W working, s searching, x stealing, t terminating, . idle");
}
