//! Composing a non-paper policy bundle.
//!
//! The scheduler core factors every worker into four policy axes (see
//! `docs/policies.md`): victim order, steal amount, termination detection,
//! and steal transport. The seven `Algorithm` labels are just named bundles
//! of those axes — and `RunConfig` can override the victim/steal axes to run
//! combinations the paper never built.
//!
//! This example takes `upc-term` (§3.3.1: locked shared stacks, streamlined
//! termination, steal-one) and upgrades its two overridable axes to the
//! extensions: hierarchical same-node-first victims (§6.2 future work) and
//! the adaptive steal policy (grant scaled to the victim's surplus depth).
//! Neither combination exists in the paper — hierarchical victims were only
//! proposed for the distmem protocol — yet here they are two config lines.
//!
//! Run with: `cargo run --release --example policy_grid`

use pgas::MachineModel;
use uts_dlb::worksteal::{
    run_sim, Algorithm, RunConfig, StealPolicyKind, UtsGen, VictimPolicy,
};

fn main() {
    let preset = uts_tree::presets::t_m();
    let gen = UtsGen::new(preset.spec);
    let machine = MachineModel::kittyhawk();
    let threads = 128;
    let k = 8;

    println!(
        "upgrading upc-term axis by axis: {} nodes, p={}, k={}, {}\n",
        preset.expected.nodes, threads, k, machine.name
    );
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "bundle", "t_virt(ms)", "Mnodes/s", "steals"
    );

    let mut base = RunConfig::new(Algorithm::Term, k);
    let steps: [(&str, Option<VictimPolicy>, Option<StealPolicyKind>); 4] = [
        ("locked/flat/one (paper)", None, None),
        ("locked/hier/one", Some(VictimPolicy::Hier), None),
        ("locked/flat/adaptive", None, Some(StealPolicyKind::Adaptive)),
        (
            "locked/hier/adaptive",
            Some(VictimPolicy::Hier),
            Some(StealPolicyKind::Adaptive),
        ),
    ];

    let mut baseline = None;
    for (name, vp, sp) in steps {
        base.victim_policy = vp;
        base.steal_policy = sp;
        let report = run_sim(machine.clone(), threads, &gen, &base);
        assert_eq!(report.total_nodes, preset.expected.nodes, "conservation");
        let rate = report.nodes_per_sec() / 1e6;
        let baseline = *baseline.get_or_insert(rate);
        println!(
            "{:<28} {:>10.2} {:>10.3} {:>8}  ({:+.1}% vs paper bundle)",
            name,
            report.makespan_ns as f64 / 1e6,
            rate,
            report.total_steals(),
            100.0 * (rate / baseline - 1.0)
        );
    }

    println!(
        "\nThe full transport × victims × steal grid at p=256: \
         `cargo run --release -p uts-bench --bin policy_grid`."
    );
}
