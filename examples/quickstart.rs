//! Quickstart: count an unbalanced tree in parallel with work stealing.
//!
//! Builds a small UTS tree, counts it sequentially, then counts it again on
//! a simulated 16-thread Infiniband cluster with the paper's `upc-distmem`
//! algorithm and checks that the two totals agree.
//!
//! Run with: `cargo run --release --example quickstart`

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn main() {
    // A frozen ~46k-node binomial UTS tree (b0 = 64, m = 2, q ≈ 0.498).
    let preset = presets::t_s();
    let gen = UtsGen::new(preset.spec);

    // 1. Sequential reference count.
    let (seq_nodes, seq_ns) = seq_run(&gen);
    println!(
        "sequential: {} nodes in {:.1} ms ({:.2} Mnodes/s real)",
        seq_nodes,
        seq_ns as f64 / 1e6,
        seq_nodes as f64 / seq_ns as f64 * 1e3
    );

    // 2. Parallel count on a simulated 16-thread cluster.
    let machine = MachineModel::kittyhawk();
    let cfg = RunConfig::new(Algorithm::DistMem, 8);
    let report = run_sim(machine.clone(), 16, &gen, &cfg);

    assert_eq!(report.total_nodes, seq_nodes, "work was lost or duplicated!");
    println!(
        "parallel:   {} nodes across {} threads in {:.2} ms virtual time",
        report.total_nodes,
        report.threads,
        report.makespan_ns as f64 / 1e6
    );
    println!(
        "speedup {:.2} (efficiency {:.0}%), {} steals ({:.0} steals/s)",
        report.speedup(machine.seq_rate()),
        100.0 * report.efficiency(machine.seq_rate()),
        report.total_steals(),
        report.steals_per_sec()
    );

    // 3. Who did the work? (The root starts on thread 0; everything the
    //    other threads explored arrived by stealing.)
    for (t, r) in report.per_thread.iter().enumerate() {
        println!(
            "  thread {t:>2}: {:>6} nodes, {:>3} steals, {:>3} chunks stolen",
            r.nodes, r.steals_ok, r.chunks_stolen
        );
    }
}
