//! Parallel deterministic conductor: ticketed sequencer/worker/committer.
//!
//! The serial conductors in [`crate::sim`] interleave all simulated threads
//! on one OS core. This module shards the same fibers over a pool of worker
//! OS threads and reconstructs the *exact* serial schedule from **tickets**:
//! each [`ParOp`] a fiber issues is stamped with its virtual-time key
//! `(clock, tid)` and queued; a single conductor thread plays two pipeline
//! roles over those queues —
//!
//! - the **sequencer** decides which ticket is next: the globally least key
//!   among queued tickets, but only once it is provably final (no live fiber
//!   can still submit a smaller key — see [`Gating`](#gating) below);
//! - the **committer** applies that ticket's memory effect via
//!   [`ParOp::apply`] — the *same* function the serial conductors use — and
//!   answers/wakes the issuing fiber if the operation returns a value.
//!
//! Fibers meanwhile run ahead speculatively on their workers:
//!
//! - **blind operations** (put, send, poll, area write/truncate, unlock)
//!   return no value, so the fiber tickets them and keeps running; its own
//!   later operations are ordered after them by the per-fiber FIFO.
//! - **scalar gets** may be answered *speculatively* from the committed
//!   image when a validation protocol proves the answer is bit-identical to
//!   the serial one (see [`try_spec_get`]); a failed validation counts as a
//!   `spec_conflict` and falls back to the serial-replay path below.
//! - every other value-returning operation **parks**: the fiber tickets the
//!   operation and suspends; the committer replays it serially in ticket
//!   order against fully committed state and wakes the fiber with the
//!   answer. This is the "conflict → serial replay of the window" fallback:
//!   replaying in least-key-first ticket order *is* the serial schedule, so
//!   it trivially preserves the least-clock-first invariant.
//!
//! Because commit order equals the serial baton order, every modelled
//! quantity — clocks, steal pattern, fingerprints, histograms, `CommStats` —
//! is bit-for-bit identical to the fiber and reference conductors. Only the
//! harness-side [`crate::ConductorStats`] fast/park split is racy (it
//! depends on real-time interleaving); its *total* stays deterministic.
//!
//! # Gating
//!
//! Keys are packed as `clock << 16 | tid` (64-bit lex order). Every fiber
//! `f` maintains a monotone *advertised lower bound* `lb[f]` on its virtual
//! clock, updated on `work()`/`advance_idle()` and after each ticket. The
//! invariant (operation costs are ≥ 1 ns under every machine model) is:
//!
//! > every ticket fiber `f` submits in the future has key
//! > `≥ packed(lb[f] + 1, f)` — unless a ticket of `f` is already queued,
//! > in which case future keys are strictly above its last queued key.
//!
//! So the committer may commit the least queued key `K` as soon as
//! `K < min over live fibers with empty queues of packed(lb[f] + 1, f)`.
//! Stale `lb` reads only make the bound smaller, i.e. the gate conservative;
//! retirement sets `lb = u64::MAX` and removes the fiber from the gate.
//!
//! # Speculative gets
//!
//! A fiber may answer its own `get` at key `K` straight from the committed
//! scalar image iff all of the following hold, checked under a seqlock-style
//! protocol ([`try_spec_get`]):
//!
//! 1. all of the fiber's own tickets have committed (its writes are in the
//!    image, and its queue is empty so the gate argument below applies);
//! 2. the *commit floor* — the least possible key of any uncommitted or
//!    future ticket of any **other** fiber — is `> K`, so the committed
//!    prefix below `K` is complete. (The floor pair `floor_a`/`floor_b`
//!    stores the minimum and the minimum-excluding-the-owner-of-the-minimum,
//!    published atomically under `floor_seq`, so a reader can always exclude
//!    its own contribution. Floors are monotone, so a stale floor is only
//!    conservative.)
//! 3. the commit epoch is even (no apply in flight) and unchanged across the
//!    whole validation + read, so the image could not change under us. The
//!    gate also guarantees no commit *above* `K` can land while the reader's
//!    own `lb ≤ clock(K) − cost < clock(K)` caps the gate, so a validated
//!    read cannot observe a serially-later write; `last_committed ≥ K` is
//!    checked anyway as defense in depth.
//!
//! If any check fails the get is ticketed and parked like any sync op —
//! bit-identical, just slower.
//!
//! # Panics and poisoning
//!
//! Worker-closure panics are caught at the fiber base and re-thrown from
//! `run`, exactly like the serial conductors. Panics raised *while applying
//! an effect* (unlock-of-free, out-of-range bulk read, …) happen on the
//! conductor thread; it poisons the hub, stops committing, and wakes
//! everyone — parked fibers re-panic on resume, running fibers panic at
//! their next ticket, and `run` re-throws the original payload.

use std::any::Any;
use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::comm::{Item, OpClass};
use crate::fault::FaultPlan;
use crate::machine::MachineModel;
use crate::sim::{fiber, Answer, Mem, ParOp, SimCluster, SimComm, SimReport, SIM_STACK_SIZE};
use crate::stats::{CommStats, ConductorStats};

/// Bits reserved for the thread id in a packed `(clock, tid)` key.
const TID_BITS: u32 = 16;
const TID_MASK: u64 = (1 << TID_BITS) - 1;

/// Fast-path operations a fiber may run before voluntarily yielding its
/// worker so shard-mates can advance their clocks (fairness only; no
/// virtual-time effect).
const YIELD_EVERY: u32 = 1024;

/// Pack a `(clock, tid)` key so `u64` comparison is lexicographic order.
fn packed(t: u64, tid: usize) -> u64 {
    (t << TID_BITS) | tid as u64
}

/// Fiber execution states, for the owning worker's bookkeeping.
const RUNNING: u8 = 0;
const YIELDED: u8 = 1;
const PARKED: u8 = 2;
const RETIRED: u8 = 3;

/// Per-fiber shared slot.
struct FiberSlot {
    /// Monotone lower bound on the fiber's virtual clock (raw ns, not
    /// packed); `u64::MAX` once retired.
    lb: AtomicU64,
    /// Tickets of this fiber committed so far (compared against the fiber's
    /// local `par_issued`).
    committed: AtomicU64,
    /// Saved stack pointer while suspended. Only the owning worker reads it,
    /// and only after the fiber has switched out (program order on the
    /// worker thread).
    rsp: UnsafeCell<usize>,
    /// Why the fiber last switched out (`RUNNING` while on CPU).
    state: AtomicU8,
    /// Final virtual clock, deposited at retirement.
    final_clock: UnsafeCell<u64>,
}

/// Per-fiber answer mailbox plus retirement deposits. Split from
/// [`FiberSlot`] only because it is generic over `T`.
struct AnswerSlot<T: Item> {
    /// Committer's answer to the fiber's parked ticket. Written before the
    /// wake is pushed; the worker's wake-queue mutex publishes it.
    answer: UnsafeCell<Option<Answer<T>>>,
    final_stats: UnsafeCell<Option<CommStats>>,
    final_conductor: UnsafeCell<Option<ConductorStats>>,
}

/// One worker thread's control block.
struct WorkerCtl {
    /// Fibers whose parked tickets have been answered, ready to resume.
    wakes: Mutex<VecDeque<usize>>,
    cv: Condvar,
    /// The worker's own saved context while a fiber runs on it.
    host_rsp: UnsafeCell<usize>,
}

/// Ticket queues, guarded by the inbox mutex.
struct Inbox<T: Item> {
    /// Per-fiber FIFO of `(clock, op)` tickets — FIFO *is* key order within
    /// a fiber because clocks advance strictly.
    queues: Vec<VecDeque<(u64, ParOp<T>)>>,
    /// Min-heap of queue-head keys, one entry per nonempty queue.
    heads: BinaryHeap<Reverse<(u64, usize)>>,
}

/// Shared state of the parallel conductor.
pub(crate) struct ParHub<T: Item> {
    pub(crate) machine: MachineModel,
    pub(crate) nthreads: usize,
    pub(crate) faults: FaultPlan,
    workers: usize,
    inbox: Mutex<Inbox<T>>,
    inbox_cv: Condvar,
    mem: Mem<T>,
    slots: Vec<FiberSlot>,
    answers: Vec<AnswerSlot<T>>,
    workerq: Vec<WorkerCtl>,
    /// Commit epoch: odd while an apply is in flight, bumped twice per
    /// commit. Seqlock guard for speculative reads.
    epoch: AtomicU64,
    /// Seqlock sequence for the floor pair below.
    floor_seq: AtomicU64,
    /// Least possible key of any uncommitted/future ticket, and the least
    /// excluding the owner of the first (both packed, owner in the low
    /// bits). Published together under `floor_seq`.
    floor_a: AtomicU64,
    floor_b: AtomicU64,
    /// Packed key of the most recent commit (monotone).
    last_committed: AtomicU64,
    /// First committer-side panic payload; later ones are dropped.
    poison: Mutex<Option<Box<dyn Any + Send>>>,
    poisoned: AtomicBool,
    retired: AtomicUsize,
}

// SAFETY: the `UnsafeCell`s are governed by the ownership protocol described
// on each field — `rsp`/`host_rsp` are only touched by the owning worker (or
// by the host before any worker starts), `answer` is written by the
// conductor strictly before the wake that lets the fiber read it (the wake
// queue's mutex publishes the write), and the `final_*` deposits are written
// at retirement and read by the host only after every worker has been
// joined. Everything else is atomics, mutexes, or immutable configuration.
unsafe impl<T: Item> Sync for ParHub<T> {}

/// Launch record for one fiber; lives in a host-owned Vec with a stable
/// address for the whole run.
struct ParLaunch<T: Item, R, F> {
    hub: *const ParHub<T>,
    tid: usize,
    f: *const F,
    result: *mut Option<R>,
    panic: *mut Option<Box<dyn Any + Send>>,
}

/// Raise fiber `tid`'s advertised clock lower bound (see module docs:
/// monotone, stale values are only conservative).
pub(crate) fn advertise<T: Item>(hub: &ParHub<T>, tid: usize, now: u64) {
    hub.slots[tid].lb.fetch_max(now, Ordering::Relaxed);
}

/// Enqueue a ticket and return whether the conductor should be poked.
fn enqueue<T: Item>(hub: &ParHub<T>, tid: usize, t: u64, op: ParOp<T>) {
    let mut g = hub.inbox.lock().unwrap();
    let was_empty = g.queues[tid].is_empty();
    g.queues[tid].push_back((t, op));
    if was_empty {
        g.heads.push(Reverse((t, tid)));
    }
    drop(g);
    hub.inbox_cv.notify_one();
}

/// Park the current fiber until the committer answers its ticket.
fn park<T: Item>(hub: &ParHub<T>, tid: usize) -> Answer<T> {
    let slot = &hub.slots[tid];
    let wid = tid % hub.workers;
    slot.state.store(PARKED, Ordering::Release);
    // SAFETY: `host_rsp` was saved by our worker when it switched into us;
    // we are the only fiber live on that worker, and our own `rsp` save slot
    // is resumed exactly once, by the worker after our wake arrives.
    unsafe {
        fiber::switch(hub.slots[tid].rsp.get(), *hub.workerq[wid].host_rsp.get());
    }
    // SAFETY: the committer wrote the answer before pushing our wake; the
    // wake queue's mutex (acquired by our worker) published it.
    let ans = unsafe { (*hub.answers[tid].answer.get()).take() };
    match ans {
        Some(a) => a,
        None => {
            assert!(
                hub.poisoned.load(Ordering::Acquire),
                "fiber woken without an answer"
            );
            panic!("simulation poisoned by a committer-side panic");
        }
    }
}

/// Voluntarily yield the fiber's worker (fairness tick, no virtual-time
/// effect): shard-mates get to run and advance their advertised clocks.
fn yield_worker<T: Item>(hub: &ParHub<T>, tid: usize) {
    let slot = &hub.slots[tid];
    let wid = tid % hub.workers;
    slot.state.store(YIELDED, Ordering::Release);
    // SAFETY: as in `park`; the worker requeues YIELDED fibers itself.
    unsafe {
        fiber::switch(hub.slots[tid].rsp.get(), *hub.workerq[wid].host_rsp.get());
    }
}

/// Try to answer `get(thread, var)` at key `(t, me)` from the committed
/// image. `None` = validation failed; caller falls back to the parked path.
fn try_spec_get<T: Item>(hub: &ParHub<T>, me: usize, t: u64, thread: usize, var: usize) -> Option<i64> {
    let k = packed(t, me);
    let e1 = hub.epoch.load(Ordering::SeqCst);
    if e1 & 1 == 1 {
        return None;
    }
    // Floor pair under its seqlock (bounded retries; this is an
    // optimization, not a liveness requirement).
    let (fa, fb) = {
        let mut tries = 0;
        loop {
            let s1 = hub.floor_seq.load(Ordering::SeqCst);
            if s1 & 1 == 0 {
                let a = hub.floor_a.load(Ordering::SeqCst);
                let b = hub.floor_b.load(Ordering::SeqCst);
                if hub.floor_seq.load(Ordering::SeqCst) == s1 {
                    break (a, b);
                }
            }
            tries += 1;
            if tries > 64 {
                return None;
            }
            std::hint::spin_loop();
        }
    };
    let floor_excl = if (fa & TID_MASK) as usize == me { fb } else { fa };
    if floor_excl <= k {
        return None;
    }
    // Defense in depth: the gate (our own lb < t) already forbids commits
    // above our key, but verify nothing serially later has landed.
    if hub.last_committed.load(Ordering::SeqCst) >= k {
        return None;
    }
    let v = hub.mem.scalars[thread][var].load(Ordering::SeqCst);
    if hub.epoch.load(Ordering::SeqCst) != e1 {
        return None;
    }
    Some(v)
}

/// Fiber-side entry for every priced operation under the parallel conductor
/// (called from `SimComm::op`). `t` is the operation's virtual-time key.
pub(crate) fn submit<T: Item>(
    hub: &ParHub<T>,
    comm: &mut SimComm<T>,
    class: OpClass,
    t: u64,
    op: ParOp<T>,
) -> Answer<T> {
    assert!(
        t >> (63 - TID_BITS) == 0,
        "virtual clock too large for packed ticket keys"
    );
    let me = comm.tid;
    if hub.poisoned.load(Ordering::Acquire) {
        panic!("simulation poisoned by a committer-side panic");
    }
    if op.is_blind() {
        comm.conductor.fast_ops += 1;
        comm.conductor.fast_by_class[class.index()] += 1;
        enqueue(hub, me, t, op);
        comm.par_issued += 1;
        // Only after the ticket is queued may we claim future keys are > t.
        advertise(hub, me, t);
        comm.par_ticks += 1;
        if comm.par_ticks >= YIELD_EVERY {
            comm.par_ticks = 0;
            yield_worker(hub, me);
            if hub.poisoned.load(Ordering::Acquire) {
                panic!("simulation poisoned by a committer-side panic");
            }
        }
        return Answer::Unit;
    }
    // Speculative scalar read: sound only once our own writes are all in
    // the committed image (and our queue is therefore empty).
    if let ParOp::Get { thread, var } = op {
        if hub.slots[me].committed.load(Ordering::Acquire) == comm.par_issued {
            if let Some(v) = try_spec_get(hub, me, t, thread, var) {
                comm.conductor.fast_ops += 1;
                comm.conductor.fast_by_class[class.index()] += 1;
                // No ticket was (or ever will be) issued at this key, so
                // future keys are > t: safe to advertise.
                advertise(hub, me, t);
                comm.par_ticks += 1;
                if comm.par_ticks >= YIELD_EVERY {
                    comm.par_ticks = 0;
                    yield_worker(hub, me);
                    if hub.poisoned.load(Ordering::Acquire) {
                        panic!("simulation poisoned by a committer-side panic");
                    }
                }
                return Answer::Int(v);
            }
        }
        comm.conductor.spec_conflicts += 1;
        comm.conductor.handoffs += 1;
        comm.par_issued += 1;
        comm.par_ticks = 0;
        enqueue(hub, me, t, ParOp::Get { thread, var });
        advertise(hub, me, t);
        return park(hub, me);
    }
    comm.conductor.handoffs += 1;
    comm.par_issued += 1;
    comm.par_ticks = 0;
    enqueue(hub, me, t, op);
    advertise(hub, me, t);
    park(hub, me)
}

/// Apply one ticket on the conductor thread. Returns `false` if the apply
/// panicked (hub is poisoned; stop committing).
fn commit_one<T: Item>(hub: &ParHub<T>, f: usize, t: u64, op: ParOp<T>) -> bool {
    let is_sync = !op.is_blind();
    hub.epoch.fetch_add(1, Ordering::SeqCst); // odd: apply in flight
    let res = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: the conductor thread is the unique commit-right holder.
        unsafe { op.apply(&hub.mem, f, t) }
    }));
    hub.last_committed.store(packed(t, f), Ordering::SeqCst);
    hub.epoch.fetch_add(1, Ordering::SeqCst); // even: image quiescent
    hub.slots[f].committed.fetch_add(1, Ordering::Release);
    match res {
        Ok(ans) => {
            if is_sync {
                // SAFETY: the fiber is parked on this very ticket; the wake
                // below (under the worker mutex) publishes the write.
                unsafe { *hub.answers[f].answer.get() = Some(ans) };
                wake(hub, f);
            }
            true
        }
        Err(payload) => {
            poison(hub, payload);
            false
        }
    }
}

/// Hand fiber `f` back to its worker's run queue.
fn wake<T: Item>(hub: &ParHub<T>, f: usize) {
    let wq = &hub.workerq[f % hub.workers];
    wq.wakes.lock().unwrap().push_back(f);
    wq.cv.notify_one();
}

/// Record the first committer-side panic and flip the poison flag.
fn poison<T: Item>(hub: &ParHub<T>, payload: Box<dyn Any + Send>) {
    let mut slot = hub.poison.lock().unwrap();
    if slot.is_none() {
        *slot = Some(payload);
    }
    drop(slot);
    hub.poisoned.store(true, Ordering::Release);
}

/// The gate: least possible key of a *future* ticket from any live fiber
/// whose queue is empty (fibers with queued tickets are bounded by their
/// queue head, which is in the heap already).
fn empty_min<T: Item>(hub: &ParHub<T>, g: &Inbox<T>) -> u64 {
    let mut em = u64::MAX;
    for (f, q) in g.queues.iter().enumerate() {
        if !q.is_empty() {
            continue;
        }
        let lb = hub.slots[f].lb.load(Ordering::Relaxed);
        if lb == u64::MAX {
            continue; // retired
        }
        em = em.min(packed(lb + 1, f));
    }
    em
}

/// Publish the speculative-read floor pair (see module docs) from the
/// current queue heads and advertised bounds.
fn publish_floors<T: Item>(hub: &ParHub<T>, g: &Inbox<T>) {
    let mut a = u64::MAX;
    let mut b = u64::MAX;
    for (f, q) in g.queues.iter().enumerate() {
        let contrib = if let Some(&(t, _)) = q.front() {
            packed(t, f)
        } else {
            let lb = hub.slots[f].lb.load(Ordering::Relaxed);
            if lb == u64::MAX {
                continue; // retired
            }
            packed(lb + 1, f)
        };
        if contrib < a {
            b = a;
            a = contrib;
        } else if contrib < b {
            b = contrib;
        }
    }
    hub.floor_seq.fetch_add(1, Ordering::SeqCst); // odd
    hub.floor_a.store(a, Ordering::SeqCst);
    hub.floor_b.store(b, Ordering::SeqCst);
    hub.floor_seq.fetch_add(1, Ordering::SeqCst); // even
}

/// Sequencer + committer loop, run on the dedicated conductor thread.
fn conduct<T: Item>(hub: &ParHub<T>) {
    let n = hub.nthreads;
    let mut idle = 0u32;
    let mut g = hub.inbox.lock().unwrap();
    loop {
        if hub.poisoned.load(Ordering::Acquire) {
            break;
        }
        // Commit everything currently final, clamping the gate incrementally
        // as queues drain (lbs only grow, so the stale scan stays sound).
        let mut em = empty_min(hub, &g);
        let mut progressed = false;
        while let Some(&Reverse((t, f))) = g.heads.peek() {
            if packed(t, f) >= em {
                break;
            }
            g.heads.pop();
            let (qt, op) = g.queues[f].pop_front().expect("head tracks queue");
            debug_assert_eq!(qt, t);
            if let Some(&(ht, _)) = g.queues[f].front() {
                g.heads.push(Reverse((ht, f)));
            } else {
                // `f` joins the gate; its next ticket is > t even if its
                // advertised bound lags.
                let lb = hub.slots[f].lb.load(Ordering::Relaxed).max(t);
                if lb != u64::MAX {
                    em = em.min(packed(lb + 1, f));
                }
            }
            progressed = true;
            if !commit_one(hub, f, t, op) {
                break; // poisoned
            }
        }
        publish_floors(hub, &g);
        if hub.retired.load(Ordering::Acquire) == n && g.heads.is_empty() {
            return;
        }
        if progressed {
            idle = 0;
            continue;
        }
        // Nothing committable: wait for a new ticket (notified) or an
        // advertised-bound advance (not notified — hence the timeout).
        idle = idle.saturating_add(1);
        let wait = Duration::from_micros(50 * u64::from(idle.min(20)));
        g = hub.inbox_cv.wait_timeout(g, wait).unwrap().0;
    }
    drop(g);
    // Poisoned: stop committing, keep waking parked fibers (they re-panic on
    // resume) until everyone has retired, so the workers can exit.
    while hub.retired.load(Ordering::Acquire) < n {
        for f in 0..n {
            let slot = &hub.slots[f];
            if slot
                .state
                .compare_exchange(PARKED, RUNNING, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                wake(hub, f);
            }
        }
        for wq in &hub.workerq {
            wq.cv.notify_one();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One worker thread: run the fibers `tid ≡ wid (mod workers)` round-robin,
/// resuming parked fibers as their wakes arrive, until all have retired.
fn worker_main<T: Item>(hub: &ParHub<T>, wid: usize) {
    let mine: Vec<usize> = (0..hub.nthreads)
        .filter(|t| t % hub.workers == wid)
        .collect();
    let mut live = mine.len();
    let mut runnable: VecDeque<usize> = mine.iter().copied().collect();
    let wq = &hub.workerq[wid];
    while live > 0 {
        if runnable.is_empty() {
            let mut q = wq.wakes.lock().unwrap();
            loop {
                if !q.is_empty() {
                    runnable.extend(q.drain(..));
                    break;
                }
                // Timeout so a poison sweep (or a missed edge) cannot leave
                // the worker asleep forever.
                q = wq.cv.wait_timeout(q, Duration::from_millis(10)).unwrap().0;
                if hub.poisoned.load(Ordering::Acquire) && q.is_empty() {
                    break;
                }
            }
            continue;
        }
        // Opportunistically interleave freshly woken fibers with yielders.
        {
            let mut q = wq.wakes.lock().unwrap();
            runnable.extend(q.drain(..));
        }
        let f = runnable.pop_front().expect("nonempty");
        let slot = &hub.slots[f];
        if slot.state.load(Ordering::Acquire) == RETIRED {
            continue; // duplicate wake from a poison sweep
        }
        slot.state.store(RUNNING, Ordering::Release);
        // SAFETY: `rsp` holds either the fiber's initial context (host-built)
        // or the context it saved when it last switched out — it has switched
        // out, because our previous switch into it returned. Our own context
        // is saved into `host_rsp` and resumed exactly once, by the fiber.
        unsafe {
            fiber::switch(wq.host_rsp.get(), *slot.rsp.get());
        }
        match slot.state.load(Ordering::Acquire) {
            YIELDED => runnable.push_back(f),
            PARKED => {}
            RETIRED => live -= 1,
            s => unreachable!("fiber returned to worker in state {s}"),
        }
    }
}

/// Fiber body: build the comm handle, run the worker closure, deposit
/// results, retire.
extern "C" fn par_fiber_entry<T, R, F>(arg: usize) -> !
where
    T: Item,
    R: Send,
    F: Fn(&mut SimComm<T>) -> R + Sync,
{
    let ctx = unsafe { &*(arg as *const ParLaunch<T, R, F>) };
    let hub = unsafe { &*ctx.hub };
    let tid = ctx.tid;
    // SAFETY: the hub outlives every fiber; this fiber stays pinned to its
    // worker.
    let mut comm = unsafe { SimComm::new_par(ctx.hub, tid) };
    let res = catch_unwind(AssertUnwindSafe(|| {
        let f = unsafe { &*ctx.f };
        f(&mut comm)
    }));
    comm.local_clock += comm.pending_work;
    comm.pending_work = 0;
    // Deposit results. SAFETY: each fiber writes only its own slots; the
    // host reads them after joining every worker.
    unsafe {
        *hub.slots[tid].final_clock.get() = comm.local_clock;
        *hub.answers[tid].final_stats.get() = Some(comm.stats.clone());
        *hub.answers[tid].final_conductor.get() = Some(comm.conductor.clone());
        match res {
            Ok(r) => *ctx.result = Some(r),
            Err(p) => *ctx.panic = Some(p),
        }
    }
    // Leave the gate, then poke the conductor: commits blocked on our clock
    // bound can now flow.
    hub.slots[tid].lb.store(u64::MAX, Ordering::SeqCst);
    hub.retired.fetch_add(1, Ordering::SeqCst);
    drop(hub.inbox.lock().unwrap());
    hub.inbox_cv.notify_one();
    let wid = tid % hub.workers;
    hub.slots[tid].state.store(RETIRED, Ordering::Release);
    // SAFETY: final switch back to the worker; this context is never resumed.
    unsafe {
        fiber::switch(hub.slots[tid].rsp.get(), *hub.workerq[wid].host_rsp.get());
    }
    unreachable!("retired simulated thread resumed");
}

/// Run `cluster`'s workload under the parallel conductor with `workers`
/// worker OS threads (plus one conductor thread).
pub(crate) fn run<T, R, F>(cluster: SimCluster<T>, workers: usize, f: &F) -> SimReport<R>
where
    T: Item,
    R: Send,
    F: Fn(&mut SimComm<T>) -> R + Sync,
{
    let n = cluster.nthreads;
    assert!(
        n <= 1 << TID_BITS,
        "parallel conductor supports at most {} simulated threads",
        1u64 << TID_BITS
    );
    let w = workers.min(n);
    if let Ok(avail) = std::thread::available_parallelism() {
        // +1: the conductor thread wants a core of its own too.
        if w + 1 > avail.get() {
            eprintln!(
                "[sim] warning: {w} sim workers (+1 conductor) requested but the host \
                 has {avail} hardware threads; workers will timeshare"
            );
        }
    }
    let hub = ParHub {
        machine: cluster.machine,
        nthreads: n,
        faults: cluster.faults,
        workers: w,
        inbox: Mutex::new(Inbox {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            heads: BinaryHeap::with_capacity(n),
        }),
        inbox_cv: Condvar::new(),
        mem: Mem::new(n, &cluster.cfg),
        slots: (0..n)
            .map(|_| FiberSlot {
                lb: AtomicU64::new(0),
                committed: AtomicU64::new(0),
                rsp: UnsafeCell::new(0),
                state: AtomicU8::new(RUNNING),
                final_clock: UnsafeCell::new(0),
            })
            .collect(),
        answers: (0..n)
            .map(|_| AnswerSlot {
                answer: UnsafeCell::new(None),
                final_stats: UnsafeCell::new(None),
                final_conductor: UnsafeCell::new(None),
            })
            .collect(),
        workerq: (0..w)
            .map(|_| WorkerCtl {
                wakes: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                host_rsp: UnsafeCell::new(0),
            })
            .collect(),
        epoch: AtomicU64::new(0),
        floor_seq: AtomicU64::new(0),
        floor_a: AtomicU64::new(0),
        floor_b: AtomicU64::new(0),
        last_committed: AtomicU64::new(0),
        poison: Mutex::new(None),
        poisoned: AtomicBool::new(false),
        retired: AtomicUsize::new(0),
    };

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut panics: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    // Zeroed so fresh pages come from the kernel lazily.
    let mut stacks: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; SIM_STACK_SIZE]).collect();
    let ctxs: Vec<ParLaunch<T, R, F>> = results
        .iter_mut()
        .zip(panics.iter_mut())
        .enumerate()
        .map(|(tid, (result, panic))| ParLaunch {
            hub: &hub,
            tid,
            f,
            result,
            panic,
        })
        .collect();
    for (tid, stack) in stacks.iter_mut().enumerate() {
        // SAFETY: fresh stack; the entry never returns (it switches away for
        // good at retirement); `ctxs` outlives every fiber (scope below).
        unsafe {
            *hub.slots[tid].rsp.get() = fiber::init_stack(
                stack,
                par_fiber_entry::<T, R, F>,
                &ctxs[tid] as *const _ as usize,
            );
        }
    }

    let hub_ref = &hub;
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("sim-conductor".into())
            .spawn_scoped(scope, move || {
                // A conductor-loop bug must poison, not hang, the cluster.
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| conduct(hub_ref))) {
                    poison(hub_ref, p);
                    while hub_ref.retired.load(Ordering::Acquire) < hub_ref.nthreads {
                        for f in 0..hub_ref.nthreads {
                            if hub_ref.slots[f]
                                .state
                                .compare_exchange(
                                    PARKED,
                                    RUNNING,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                wake(hub_ref, f);
                            }
                        }
                        for wq in &hub_ref.workerq {
                            wq.cv.notify_one();
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
            .expect("spawn conductor");
        for wid in 0..w {
            std::thread::Builder::new()
                .name(format!("sim-worker-{wid}"))
                .spawn_scoped(scope, move || worker_main(hub_ref, wid))
                .expect("spawn sim worker");
        }
    });

    // Committer-side panics (the serial conductors raise these on the
    // issuing thread) take precedence, then fiber panics in tid order.
    if let Some(p) = hub.poison.lock().unwrap().take() {
        std::panic::resume_unwind(p);
    }
    if let Some(p) = panics.into_iter().flatten().next() {
        std::panic::resume_unwind(p);
    }

    // SAFETY: all workers joined; these are the only live accesses.
    let clocks: Vec<u64> = hub
        .slots
        .iter()
        .map(|s| unsafe { *s.final_clock.get() })
        .collect();
    let makespan_ns = clocks.iter().copied().max().unwrap_or(0);
    SimReport {
        results: results
            .into_iter()
            .map(|r| r.expect("thread result"))
            .collect(),
        makespan_ns,
        clocks,
        stats: hub
            .answers
            .iter()
            .map(|a| unsafe { (*a.final_stats.get()).take().expect("retired stats") })
            .collect(),
        conductor: hub
            .answers
            .iter()
            .map(|a| unsafe {
                (*a.final_conductor.get())
                    .take()
                    .expect("retired conductor stats")
            })
            .collect(),
        scalars: hub.mem.scalars_snapshot(),
    }
}
