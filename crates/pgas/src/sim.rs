//! Deterministic virtual-time backend.
//!
//! Each simulated UPC thread runs real worker code, but a **conductor**
//! admits exactly one at a time: whenever a thread issues a [`Comm`]
//! operation it (a) advances its own virtual clock by the operation's cost
//! under the active [`MachineModel`], (b) enqueues itself, and (c) hands the
//! baton to the thread with the globally smallest virtual clock. Memory
//! effects are applied at baton-holding time, so the simulated execution is
//! sequentially consistent *in virtual time* and bit-for-bit reproducible —
//! ties are broken by thread id.
//!
//! Pure computation (`work()`) accumulates locally without a baton exchange;
//! it is folded into the clock at the next operation. This keeps the
//! conductor off the hot path of tree exploration: only *communication*
//! pays for scheduling, mirroring how only communication pays latency on a
//! real cluster.
//!
//! # Three conductors, one schedule
//!
//! The scheduling decision — "pop the least `(clock, tid)` key" — is shared
//! by three interchangeable execution substrates (see `docs/conductor.md`):
//!
//! - **Slow / reference mode** ([`SimCluster::with_lookahead`]`(false)`):
//!   every simulated thread is an OS thread parked on its own [`Condvar`];
//!   each operation publishes the thread's clock under a global [`Mutex`] and
//!   hands the baton with a condvar signal. One kernel wake per operation —
//!   simple, obviously correct, and the baseline the equivalence tests and
//!   `conductor_bench` diff against.
//! - **Fast mode** (the default, on x86-64): every simulated thread is a
//!   *fiber* — a user-level stack on a single OS thread. Since the conductor
//!   admits exactly one thread at a time anyway, nothing is lost by giving
//!   up kernel parallelism, and a baton handoff shrinks from a mutex +
//!   condvar + scheduler round-trip (microseconds) to a ~15-instruction
//!   stack switch (nanoseconds). On other architectures fast mode falls back
//!   to the OS-thread conductor with the lookahead window below.
//! - **Parallel mode** ([`SimCluster::with_workers`]`(n)` with `n > 0`, or
//!   `UTS_SIM_WORKERS=n` in the environment): the fibers are sharded over a
//!   pool of `n` worker OS threads and a conductor thread runs a
//!   sequencer/committer pipeline over *tickets* — serialized operation
//!   records keyed `(clock, tid)`. Fibers run ahead speculatively: blind
//!   operations (writes, sends, polls) are ticketed without waiting,
//!   value-returning operations either validate a speculative read against
//!   the committed image or park until the committer replays them serially
//!   in ticket order. The commit order is forced to equal the serial
//!   conductors' baton order, so every modelled quantity is bit-identical;
//!   see `crate::sim_par` and `docs/conductor.md` §6.
//!
//! # Lookahead fast path
//!
//! Even a fiber switch plus a heap push/pop is wasted motion when the
//! conductor would hand the baton straight back: the running thread is so
//! far *behind* every queued thread that after paying its next operation's
//! cost it is still the earliest. Each time a thread acquires the baton it
//! caches the smallest `(clock, tid)` key left in the queue (`next_min`);
//! the queue cannot change while the thread runs, because every other
//! thread is parked in the conductor. If the thread's advanced clock still
//! precedes `next_min` (lexicographically, so ties keep breaking by thread
//! id), it keeps the baton and applies the memory effect directly — no
//! scheduler entry at all. A spinning probe loop that is behind in virtual
//! time therefore burns its whole probe cycle without a single handoff.
//! The schedule, and therefore every virtual time, steal count, and memory
//! state, is bit-for-bit identical either way; only the real-time cost of
//! *computing* the schedule changes. See `docs/conductor.md` for the
//! invariant argument; the equivalence tests diff the two modes.
//!
//! This is how the paper's 256-1024-thread cluster experiments (§4.2) run on
//! a single host: the virtual makespan plays the role of measured wall-clock
//! time.

use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::comm::{Comm, Item, OpClass, SpaceConfig};
use crate::fault::{FaultPlan, MsgFate};
use crate::machine::MachineModel;
use crate::msg::Msg;
use crate::stats::{CommStats, ConductorStats};

#[cfg(target_arch = "x86_64")]
use crate::sim_par;

/// Stack size for each simulated thread (OS thread or fiber). Workers use
/// explicit DFS stacks, so half a megabyte is plenty even for panic
/// formatting. Fiber stacks have no guard page; overflowing one is UB, which
/// is why this matches the generous size the OS-thread mode always used.
pub(crate) const SIM_STACK_SIZE: usize = 512 * 1024;

/// Everything a run produces.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Per-thread values returned by the worker closure, indexed by thread.
    pub results: Vec<R>,
    /// Virtual time at which the last thread retired — the simulated
    /// wall-clock duration of the parallel run.
    pub makespan_ns: u64,
    /// Final virtual clock of each thread.
    pub clocks: Vec<u64>,
    /// Per-thread communication statistics.
    pub stats: Vec<CommStats>,
    /// Per-thread conductor (harness) statistics: fast-path vs handoff
    /// scheduling counts. Describes the simulator, not the modelled machine.
    pub conductor: Vec<ConductorStats>,
    /// Final contents of every thread's scalar cells (for assertions).
    pub scalars: Vec<Vec<i64>>,
}

impl<R> SimReport<R> {
    /// Final value of scalar `var` with affinity to `thread`.
    pub fn final_scalar(&self, thread: usize, var: usize) -> i64 {
        self.scalars[thread][var]
    }

    /// Aggregate statistics over all threads.
    pub fn total_stats(&self) -> CommStats {
        let mut acc = CommStats::default();
        for s in &self.stats {
            acc.merge(s);
        }
        acc
    }

    /// Aggregate conductor statistics over all threads.
    pub fn total_conductor(&self) -> ConductorStats {
        let mut acc = ConductorStats::default();
        for s in &self.conductor {
            acc.merge(s);
        }
        acc
    }
}

/// The global memory image.
///
/// Mutated only by whoever currently holds the commit right: the baton
/// holder in the serial conductors, the unique committer thread in the
/// parallel conductor. Scalar cells are atomics so the parallel conductor's
/// *speculative read* path may load them concurrently (a data race on plain
/// `i64` would be UB; relaxed atomic loads cost nothing on the serial
/// paths). Everything else — locks, areas, mailboxes — sits behind an
/// [`UnsafeCell`] and is only ever touched by the unique committer, which is
/// why the manual `Sync` below is sound.
pub(crate) struct Mem<T> {
    pub(crate) scalars: Vec<Vec<AtomicI64>>,
    inner: UnsafeCell<MemInner<T>>,
}

pub(crate) struct MemInner<T> {
    locks: Vec<Vec<bool>>,
    areas: Vec<Vec<T>>,
    /// Per-destination mailbox ordered by (arrival time, send sequence).
    mailboxes: Vec<BTreeMap<(u64, u64), Msg<T>>>,
    send_seq: u64,
}

// SAFETY: `scalars` is atomics; `inner` is only ever accessed through
// `inner_mut`, whose callers guarantee they hold the unique commit right
// (baton holder / committer thread), with happens-before between successive
// holders established by the conductor's own synchronization.
unsafe impl<T: Item + Send> Sync for Mem<T> {}

impl<T: Item> Mem<T> {
    pub(crate) fn new(nthreads: usize, cfg: &SpaceConfig) -> Self {
        Mem {
            scalars: (0..nthreads)
                .map(|_| (0..cfg.scalars).map(|_| AtomicI64::new(0)).collect())
                .collect(),
            inner: UnsafeCell::new(MemInner {
                locks: vec![vec![false; cfg.locks]; nthreads],
                areas: (0..nthreads).map(|_| Vec::new()).collect(),
                mailboxes: (0..nthreads).map(|_| BTreeMap::new()).collect(),
                send_seq: 0,
            }),
        }
    }

    /// The non-scalar image, for the unique commit-right holder.
    ///
    /// # Safety
    /// The caller must be the sole thread applying effects right now (baton
    /// holder or committer), with the conductor's synchronization providing
    /// happens-before to the next holder.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn inner_mut(&self) -> &mut MemInner<T> {
        &mut *self.inner.get()
    }

    /// Snapshot the scalar cells into plain integers (end-of-run report).
    pub(crate) fn scalars_snapshot(&self) -> Vec<Vec<i64>> {
        self.scalars
            .iter()
            .map(|row| row.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .collect()
    }
}

/// One ticketed operation: the serialized record of a [`Comm`] call's memory
/// effect. All three conductors funnel through [`ParOp::apply`], so the
/// *semantics* of every operation exist in exactly one place — the parallel
/// conductor cannot drift from the serial ones without the equivalence
/// matrix catching a shared bug, and a divergence would require two
/// implementations to exist at all.
///
/// `Send` carries its fault fate and flight time precomputed on the issuing
/// fiber: both are pure functions of `(src, dst, issue clock)` under the
/// [`FaultPlan`], so they are identical whichever conductor runs them, and
/// computing them at issue keeps `apply` free of fault-plan state.
pub(crate) enum ParOp<T> {
    Poll,
    Get { thread: usize, var: usize },
    Put { thread: usize, var: usize, val: i64 },
    Cas { thread: usize, var: usize, expected: i64, new: i64 },
    Add { thread: usize, var: usize, delta: i64 },
    TryLock { thread: usize, lock: usize },
    Unlock { thread: usize, lock: usize },
    AreaLen { thread: usize },
    AreaRead { thread: usize, offset: usize, len: usize },
    AreaWrite { thread: usize, offset: usize, src: Vec<T> },
    AreaTruncate { thread: usize, len: usize },
    Send { dst: usize, fate: MsgFate, flight: u64, msg: Msg<T> },
    HasMsg { tag: Option<i64> },
    TryRecv { tag: Option<i64> },
}

/// Result of applying a [`ParOp`]; the issuing `Comm` method unwraps the
/// variant it knows it produced.
pub(crate) enum Answer<T> {
    Unit,
    Int(i64),
    Bool(bool),
    Len(usize),
    Items(Vec<T>),
    Received(Option<Msg<T>>),
}

impl<T> Answer<T> {
    fn int(self) -> i64 {
        match self {
            Answer::Int(v) => v,
            _ => unreachable!("op answered with the wrong variant"),
        }
    }

    fn bool(self) -> bool {
        match self {
            Answer::Bool(v) => v,
            _ => unreachable!("op answered with the wrong variant"),
        }
    }

    fn len(self) -> usize {
        match self {
            Answer::Len(v) => v,
            _ => unreachable!("op answered with the wrong variant"),
        }
    }

    fn items(self) -> Vec<T> {
        match self {
            Answer::Items(v) => v,
            _ => unreachable!("op answered with the wrong variant"),
        }
    }

    fn received(self) -> Option<Msg<T>> {
        match self {
            Answer::Received(v) => v,
            _ => unreachable!("op answered with the wrong variant"),
        }
    }
}

impl<T: Item> ParOp<T> {
    /// Blind operations return no value: the issuing fiber may ticket them
    /// and run ahead without waiting for the committer (its own later reads
    /// are ordered after them by the per-fiber FIFO).
    pub(crate) fn is_blind(&self) -> bool {
        matches!(
            self,
            ParOp::Poll
                | ParOp::Put { .. }
                | ParOp::Unlock { .. }
                | ParOp::AreaWrite { .. }
                | ParOp::AreaTruncate { .. }
                | ParOp::Send { .. }
        )
    }

    /// Apply the effect at virtual time `now` on behalf of thread `me`.
    ///
    /// # Safety
    /// Caller must hold the unique commit right (see [`Mem::inner_mut`]).
    pub(crate) unsafe fn apply(self, mem: &Mem<T>, me: usize, now: u64) -> Answer<T> {
        match self {
            ParOp::Poll => Answer::Unit,
            ParOp::Get { thread, var } => {
                Answer::Int(mem.scalars[thread][var].load(Ordering::Relaxed))
            }
            ParOp::Put { thread, var, val } => {
                mem.scalars[thread][var].store(val, Ordering::Relaxed);
                Answer::Unit
            }
            ParOp::Cas { thread, var, expected, new } => {
                let cell = &mem.scalars[thread][var];
                let observed = cell.load(Ordering::Relaxed);
                if observed == expected {
                    cell.store(new, Ordering::Relaxed);
                }
                Answer::Int(observed)
            }
            ParOp::Add { thread, var, delta } => {
                let cell = &mem.scalars[thread][var];
                let old = cell.load(Ordering::Relaxed);
                cell.store(old + delta, Ordering::Relaxed);
                Answer::Int(old)
            }
            ParOp::TryLock { thread, lock } => {
                let held = &mut mem.inner_mut().locks[thread][lock];
                Answer::Bool(if *held {
                    false
                } else {
                    *held = true;
                    true
                })
            }
            ParOp::Unlock { thread, lock } => {
                let held = &mut mem.inner_mut().locks[thread][lock];
                assert!(*held, "unlock of a free lock");
                *held = false;
                Answer::Unit
            }
            ParOp::AreaLen { thread } => Answer::Len(mem.inner_mut().areas[thread].len()),
            ParOp::AreaRead { thread, offset, len } => {
                let area = &mem.inner_mut().areas[thread];
                assert!(
                    offset + len <= area.len(),
                    "area_read out of range: {}..{} of {}",
                    offset,
                    offset + len,
                    area.len()
                );
                Answer::Items(area[offset..offset + len].to_vec())
            }
            ParOp::AreaWrite { thread, offset, src } => {
                let area = &mut mem.inner_mut().areas[thread];
                if area.len() < offset + src.len() {
                    area.resize(offset + src.len(), T::default());
                }
                area[offset..offset + src.len()].copy_from_slice(&src);
                Answer::Unit
            }
            ParOp::AreaTruncate { thread, len } => {
                let area = &mut mem.inner_mut().areas[thread];
                assert!(len <= area.len(), "truncate beyond area length");
                area.truncate(len);
                Answer::Unit
            }
            ParOp::Send { dst, fate, flight, msg } => {
                let inner = mem.inner_mut();
                if fate != MsgFate::Lost {
                    let seq = inner.send_seq;
                    inner.send_seq += 1;
                    inner.mailboxes[dst].insert((now + flight, seq), msg.clone());
                    if fate == MsgFate::Duplicated {
                        let seq2 = inner.send_seq;
                        inner.send_seq += 1;
                        inner.mailboxes[dst].insert((now + 2 * flight, seq2), msg);
                    }
                }
                Answer::Unit
            }
            ParOp::HasMsg { tag } => {
                let inner = mem.inner_mut();
                Answer::Bool(
                    inner.mailboxes[me]
                        .iter()
                        .take_while(|((arrival, _), _)| *arrival <= now)
                        .any(|(_, msg)| tag.is_none_or(|t| msg.tag == t)),
                )
            }
            ParOp::TryRecv { tag } => {
                let inner = mem.inner_mut();
                let key = inner.mailboxes[me]
                    .iter()
                    .take_while(|((arrival, _), _)| *arrival <= now)
                    .find(|(_, msg)| tag.is_none_or(|t| msg.tag == t))
                    .map(|(k, _)| *k);
                Answer::Received(key.and_then(|k| inner.mailboxes[me].remove(&k)))
            }
        }
    }
}

/// Scheduling state of the OS-thread conductor (guarded by the mutex).
struct Inner {
    /// Last clock each thread *published* (at registration, slow-path ops,
    /// and retirement). May lag the thread's private clock while it runs on
    /// the fast path; authoritative again once the thread parks or retires.
    clocks: Vec<u64>,
    /// Threads waiting for the baton, keyed by (virtual clock, tid).
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Thread currently holding the baton (executing), if any.
    chosen: Option<usize>,
    /// Threads registered so far (scheduling starts when all have).
    started: usize,
    /// Threads that have retired.
    retired: usize,
    /// Stats deposited by retired threads.
    final_stats: Vec<Option<CommStats>>,
    /// Conductor stats deposited by retired threads.
    final_conductor: Vec<Option<ConductorStats>>,
}

/// Shared state of the OS-thread conductor.
///
/// `mem` carries its own interior mutability (see [`Mem`]); here it is only
/// ever touched by the baton holder — the conductor admits exactly one at a
/// time (every other thread is parked on its condvar inside
/// `op()`/`register()`), and baton transfer happens through `mx`, whose
/// lock/unlock establishes happens-before between consecutive holders.
struct Shared<T> {
    mx: Mutex<Inner>,
    cvs: Vec<Condvar>,
    mem: Mem<T>,
    nthreads: usize,
    machine: MachineModel,
    lookahead: bool,
    faults: FaultPlan,
}

/// User-level context switching for the fiber conductor: x86-64 System V.
///
/// `__pgas_fiber_switch(save, load)` stores the callee-saved register state
/// on the current stack, records the resulting stack pointer at `*save`,
/// installs `load` as the stack pointer, and restores the state found there —
/// either a frame a previous `__pgas_fiber_switch` call saved, or the
/// synthetic initial frame built by [`fiber::init_stack`], whose "return
/// address" is `__pgas_fiber_start`. The start shim moves the planted
/// argument (r12) into place and calls the planted entry function (r13).
///
/// Only the SysV callee-saved GPRs are switched. The x87/SSE control words
/// are callee-saved too but never modified by this crate or its workers, so
/// they are deliberately not saved on this hot path.
#[cfg(target_arch = "x86_64")]
pub(crate) mod fiber {
    use std::arch::global_asm;

    global_asm!(
        ".global __pgas_fiber_switch",
        "__pgas_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".global __pgas_fiber_start",
        "__pgas_fiber_start:",
        "mov rdi, r12",
        "call r13",
        "ud2",
    );

    extern "C" {
        fn __pgas_fiber_switch(save: *mut usize, load: usize);
        fn __pgas_fiber_start();
    }

    /// Suspend the current context into `*save` and resume the context whose
    /// stack pointer is `load`.
    ///
    /// # Safety
    /// `load` must be a stack pointer previously produced by [`init_stack`]
    /// or stored through the `save` argument of an earlier `switch`, on a
    /// stack that is still allocated, and each saved context may be resumed
    /// at most once.
    pub unsafe fn switch(save: *mut usize, load: usize) {
        __pgas_fiber_switch(save, load);
    }

    /// Build the initial context frame for a fiber on `stack`, so that the
    /// first [`switch`] into it calls `entry(arg)`. `entry` must never
    /// return (it must `switch` away for the last time instead).
    pub unsafe fn init_stack(stack: &mut [u8], entry: extern "C" fn(usize) -> !, arg: usize) -> usize {
        // 16-align the top, then plant (low → high): r15 r14 r13 r12 rbx rbp
        // retaddr pad pad. After six pops and the `ret`, execution is at
        // `__pgas_fiber_start` with rsp ≡ 0 (mod 16), so its `call` leaves
        // the entry function with the ABI-required rsp ≡ 8 (mod 16).
        let top = (stack.as_mut_ptr() as usize + stack.len()) & !15;
        let rsp = top - 72;
        let p = rsp as *mut usize;
        p.add(0).write(0); // r15
        p.add(1).write(0); // r14
        p.add(2).write(entry as usize); // r13: entry function
        p.add(3).write(arg); // r12: entry argument
        p.add(4).write(0); // rbx
        p.add(5).write(0); // rbp
        p.add(6).write(__pgas_fiber_start as *const () as usize); // return address
        p.add(7).write(0); // fake caller frame
        p.add(8).write(0);
        rsp
    }
}

/// Shared state of the fiber conductor. Everything runs on one OS thread, so
/// no synchronization exists at all: fibers reach it through a raw pointer
/// and exactly one fiber (or the host) is live at any instant.
#[cfg(target_arch = "x86_64")]
struct FiberHub<T: Item> {
    machine: MachineModel,
    nthreads: usize,
    faults: FaultPlan,
    clocks: Vec<u64>,
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Saved stack pointer of each suspended fiber.
    rsps: Vec<usize>,
    /// Saved stack pointer of the host (resumed when the last fiber retires).
    host_rsp: usize,
    mem: Mem<T>,
    final_stats: Vec<Option<CommStats>>,
    final_conductor: Vec<Option<ConductorStats>>,
}

/// Per-fiber launch record; lives in a host-owned Vec with a stable address.
#[cfg(target_arch = "x86_64")]
struct LaunchCtx<T: Item, R, F> {
    hub: *mut FiberHub<T>,
    tid: usize,
    f: *const F,
    result: *mut Option<R>,
    panic: *mut Option<Box<dyn std::any::Any + Send>>,
}

/// Fiber body: run the worker, deposit results, hand the baton on, vanish.
#[cfg(target_arch = "x86_64")]
extern "C" fn fiber_entry<T, R, F>(arg: usize) -> !
where
    T: Item,
    F: Fn(&mut SimComm<T>) -> R,
{
    let ctx = unsafe { &*(arg as *const LaunchCtx<T, R, F>) };
    let hub = ctx.hub;
    // Being switched to for the first time *is* the first baton grant (the
    // host queued every fiber at (0, tid) before starting the earliest), so
    // cache the queue minimum exactly as the OS-thread register() does.
    let mut comm = SimComm {
        backend: Backend::Fiber(hub),
        tid: ctx.tid,
        nthreads: unsafe { (*hub).nthreads },
        faults: unsafe { (*hub).faults },
        lookahead: true,
        local_clock: 0,
        pending_work: 0,
        next_min: unsafe { (*hub).queue.peek().map(|r| r.0) },
        stats: CommStats::default(),
        conductor: ConductorStats::default(),
        par_issued: 0,
        par_ticks: 0,
    };
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let f = unsafe { &*ctx.f };
        f(&mut comm)
    }));
    // Retire: fold trailing work, publish, and hand the baton on even if the
    // worker panicked, so the other simulated threads are not left suspended.
    comm.local_clock += comm.pending_work;
    let save;
    let load;
    unsafe {
        let h = &mut *hub;
        h.clocks[ctx.tid] = comm.local_clock;
        h.final_stats[ctx.tid] = Some(comm.stats.clone());
        h.final_conductor[ctx.tid] = Some(comm.conductor.clone());
        match res {
            Ok(r) => *ctx.result = Some(r),
            Err(p) => *ctx.panic = Some(p),
        }
        save = &mut h.rsps[ctx.tid] as *mut usize;
        load = match h.queue.pop() {
            Some(Reverse((_, next))) => h.rsps[next],
            None => h.host_rsp, // last one out resumes the host
        };
    }
    unsafe { fiber::switch(save, load) };
    unreachable!("retired simulated thread resumed");
}

/// A virtual cluster: construct, then [`SimCluster::run`] a worker closure on
/// every simulated thread.
pub struct SimCluster<T: Item> {
    pub(crate) machine: MachineModel,
    pub(crate) nthreads: usize,
    pub(crate) cfg: SpaceConfig,
    pub(crate) lookahead: bool,
    pub(crate) faults: FaultPlan,
    /// `None` = inherit `UTS_SIM_WORKERS` from the environment; `Some(0)` =
    /// parallel conductor explicitly off; `Some(n)` = n worker threads.
    workers: Option<usize>,
    _marker: std::marker::PhantomData<T>,
}

/// Parse `UTS_SIM_WORKERS` (the parallel-conductor worker count; `0` or
/// unset = serial conductors). Malformed values panic rather than silently
/// running a different simulation than the user asked for — the same strict
/// policy `RunConfig::with_env_chaos` applies to the chaos knobs.
pub fn env_workers() -> usize {
    match std::env::var("UTS_SIM_WORKERS") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            panic!("UTS_SIM_WORKERS must be a non-negative integer, got {s:?}")
        }),
        Err(_) => 0,
    }
}

impl<T: Item> SimCluster<T> {
    /// Create a cluster of `nthreads` simulated UPC threads over `machine`.
    ///
    /// The fast conductor (fibers + lookahead) is enabled by default; see
    /// [`SimCluster::with_lookahead`].
    pub fn new(machine: MachineModel, nthreads: usize, cfg: SpaceConfig) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        SimCluster {
            machine,
            nthreads,
            cfg,
            lookahead: true,
            faults: FaultPlan::none(),
            workers: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Enable or disable the fast conductor (on by default).
    ///
    /// Both modes produce bit-identical virtual results; disabling selects
    /// the reference conductor — one OS thread per simulated thread, every
    /// clock advance published under the mutex, one condvar handoff per
    /// operation — which the equivalence tests and `conductor_bench` use as
    /// the baseline schedule.
    pub fn with_lookahead(mut self, enabled: bool) -> Self {
        self.lookahead = enabled;
        self
    }

    /// Install a deterministic fault schedule (see [`FaultPlan`]).
    ///
    /// Faults are priced into the virtual clocks exactly like modelled
    /// communication costs, so a faulted run is just as deterministic and
    /// conductor-independent as a fault-free one. The default is
    /// [`FaultPlan::none()`], which leaves every result bit-identical to a
    /// cluster without this call.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Select the parallel conductor with `n` worker OS threads (`n = 0`
    /// turns it off explicitly). Without this call the count is inherited
    /// from `UTS_SIM_WORKERS` (unset = serial). The parallel conductor
    /// produces bit-identical modelled results — only the harness-side
    /// [`ConductorStats`] split may differ — and requires the fast conductor
    /// (x86-64 with lookahead on); [`SimCluster::with_lookahead`]`(false)`
    /// keeps forcing the reference conductor regardless.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Run `f` on every simulated thread and collect the report.
    ///
    /// `f` receives a mutable [`SimComm`] handle; its return values are
    /// gathered in thread order.
    pub fn run<R, F>(self, f: F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut SimComm<T>) -> R + Sync,
    {
        #[cfg(target_arch = "x86_64")]
        if self.lookahead {
            let w = self.workers.unwrap_or_else(env_workers);
            if w > 0 {
                return sim_par::run(self, w, &f);
            }
            return self.run_fibers(&f);
        }
        self.run_threads(&f)
    }

    /// Fast mode: all simulated threads as fibers on this OS thread. A
    /// handoff is a user-level stack switch; the lookahead window skips even
    /// that when the runner stays globally earliest.
    #[cfg(target_arch = "x86_64")]
    fn run_fibers<R, F>(self, f: &F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut SimComm<T>) -> R + Sync,
    {
        let n = self.nthreads;
        let mut hub = FiberHub {
            machine: self.machine,
            nthreads: n,
            faults: self.faults,
            clocks: vec![0; n],
            queue: (0..n).map(|tid| Reverse((0u64, tid))).collect(),
            rsps: vec![0; n],
            host_rsp: 0,
            mem: Mem::new(n, &self.cfg),
            final_stats: vec![None; n],
            final_conductor: vec![None; n],
        };
        let hub_ptr: *mut FiberHub<T> = &mut hub;

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panics: Vec<Option<Box<dyn std::any::Any + Send>>> = (0..n).map(|_| None).collect();
        // Zeroed so fresh pages come from the kernel lazily; fibers only
        // touch what they use.
        let mut stacks: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; SIM_STACK_SIZE]).collect();

        let ctxs: Vec<LaunchCtx<T, R, F>> = (0..n)
            .map(|tid| LaunchCtx {
                hub: hub_ptr,
                tid,
                f,
                result: &mut results[tid],
                panic: &mut panics[tid],
            })
            .collect();
        for (tid, stack) in stacks.iter_mut().enumerate() {
            // SAFETY: fresh stack, entry never returns (it switches away for
            // good at retirement), ctxs outlives every fiber.
            hub.rsps[tid] = unsafe {
                fiber::init_stack(
                    stack,
                    fiber_entry::<T, R, F>,
                    &ctxs[tid] as *const _ as usize,
                )
            };
        }

        // Start the earliest fiber; we are resumed when the last one retires.
        let Reverse((_, first)) = hub.queue.pop().expect("nonempty cluster");
        let save: *mut usize = &mut hub.host_rsp;
        let load = hub.rsps[first];
        // SAFETY: `load` is fiber `first`'s freshly initialized context, and
        // the retirement chain resumes `save` exactly once.
        unsafe { fiber::switch(save, load) };

        if let Some(p) = panics.into_iter().flatten().next() {
            std::panic::resume_unwind(p);
        }
        let makespan_ns = hub.clocks.iter().copied().max().unwrap_or(0);
        SimReport {
            results: results.into_iter().map(|r| r.expect("thread result")).collect(),
            makespan_ns,
            clocks: hub.clocks,
            stats: hub
                .final_stats
                .into_iter()
                .map(|s| s.expect("retired stats"))
                .collect(),
            conductor: hub
                .final_conductor
                .into_iter()
                .map(|s| s.expect("retired conductor stats"))
                .collect(),
            scalars: hub.mem.scalars_snapshot(),
        }
    }

    /// Reference mode: one OS thread per simulated thread, condvar handoffs.
    fn run_threads<R, F>(self, f: &F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut SimComm<T>) -> R + Sync,
    {
        let n = self.nthreads;
        let shared = Arc::new(Shared {
            mx: Mutex::new(Inner {
                clocks: vec![0; n],
                queue: BinaryHeap::with_capacity(n),
                chosen: None,
                started: 0,
                retired: 0,
                final_stats: vec![None; n],
                final_conductor: vec![None; n],
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            mem: Mem::new(n, &self.cfg),
            nthreads: n,
            machine: self.machine,
            lookahead: self.lookahead,
            faults: self.faults,
        });

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (tid, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let builder = std::thread::Builder::new()
                    .stack_size(SIM_STACK_SIZE)
                    .name(format!("sim-{tid}"));
                handles.push(
                    builder
                        .spawn_scoped(scope, move || {
                            let mut comm = SimComm::new_threaded(shared, tid);
                            comm.register();
                            // Hand the baton onward even if the worker
                            // panics, so the other simulated threads are not
                            // left parked forever.
                            let res = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| f(&mut comm)),
                            );
                            comm.retire();
                            match res {
                                Ok(r) => *slot = Some(r),
                                Err(p) => std::panic::resume_unwind(p),
                            }
                        })
                        .expect("spawn simulated thread"),
                );
            }
            for h in handles {
                h.join().expect("simulated thread panicked");
            }
        });

        let inner = shared.mx.lock().unwrap();
        let makespan_ns = inner.clocks.iter().copied().max().unwrap_or(0);
        SimReport {
            results: results.into_iter().map(|r| r.expect("thread result")).collect(),
            makespan_ns,
            clocks: inner.clocks.clone(),
            stats: inner
                .final_stats
                .iter()
                .map(|s| s.clone().expect("retired stats"))
                .collect(),
            conductor: inner
                .final_conductor
                .iter()
                .map(|s| s.clone().expect("retired conductor stats"))
                .collect(),
            scalars: shared.mem.scalars_snapshot(),
        }
    }
}

/// Which conductor this handle talks to.
enum Backend<T: Item> {
    /// OS-thread conductor (reference mode, and non-x86-64 fast mode).
    Threads(Arc<Shared<T>>),
    /// Fiber conductor: raw pointer to the hub on the host's stack frame,
    /// which outlives every fiber.
    #[cfg(target_arch = "x86_64")]
    Fiber(*mut FiberHub<T>),
    /// Parallel conductor: shared pointer to the ticket hub (see
    /// [`crate::sim_par`]), which outlives every fiber and worker.
    #[cfg(target_arch = "x86_64")]
    Par(*const sim_par::ParHub<T>),
}

// SAFETY: required by the `Comm: Send` supertrait. In threaded mode the
// handle is ordinary `Send` data. In fiber and parallel mode it holds a raw
// hub pointer, but the handle is created, used, and abandoned on the OS
// thread hosting its fiber (fibers never migrate between workers): workers
// only ever receive `&mut SimComm` and cannot move the handle out (fields
// are crate-private and there is no public constructor), so it never
// actually crosses threads mid-use.
unsafe impl<T: Item> Send for SimComm<T> {}

/// Per-thread handle for the simulated cluster. Implements [`Comm`].
pub struct SimComm<T: Item> {
    backend: Backend<T>,
    pub(crate) tid: usize,
    nthreads: usize,
    lookahead: bool,
    /// This thread's virtual clock as of its last operation. Authoritative;
    /// the conductor's `clocks[tid]` is only a published (possibly lagging)
    /// copy.
    pub(crate) local_clock: u64,
    /// Accumulated `work()` nanoseconds not yet folded into the clock.
    pub(crate) pending_work: u64,
    /// Smallest `(clock, tid)` key waiting in the conductor queue, cached at
    /// the moment we last acquired the baton. Exact while we hold the baton:
    /// only baton-holders push, and we are the unique holder. `None` means
    /// the queue was empty (every other thread retired or not yet started).
    next_min: Option<(u64, usize)>,
    /// The active fault schedule (inert by default; see [`FaultPlan`]).
    faults: FaultPlan,
    pub(crate) stats: CommStats,
    pub(crate) conductor: ConductorStats,
    /// Parallel conductor only: tickets submitted so far (blind + parked).
    /// Compared against the hub's per-fiber committed counter to decide
    /// whether this fiber's own writes are all visible in the committed
    /// image (precondition for a speculative read). Unused by the serial
    /// conductors.
    pub(crate) par_issued: u64,
    /// Parallel conductor only: fast-path operations since the fiber last
    /// yielded its worker voluntarily (fairness tick, no virtual-time
    /// effect).
    pub(crate) par_ticks: u32,
}

impl<T: Item> SimComm<T> {
    fn new_threaded(shared: Arc<Shared<T>>, tid: usize) -> Self {
        let nthreads = shared.nthreads;
        let lookahead = shared.lookahead;
        let faults = shared.faults;
        SimComm {
            backend: Backend::Threads(shared),
            tid,
            nthreads,
            lookahead,
            faults,
            local_clock: 0,
            pending_work: 0,
            next_min: None,
            stats: CommStats::default(),
            conductor: ConductorStats::default(),
            par_issued: 0,
            par_ticks: 0,
        }
    }

    /// Build a handle for one parallel-conductor fiber (see
    /// [`crate::sim_par`]).
    ///
    /// # Safety
    /// `hub` must outlive the handle and the fiber must stay pinned to one
    /// worker OS thread for the handle's whole life.
    #[cfg(target_arch = "x86_64")]
    pub(crate) unsafe fn new_par(hub: *const sim_par::ParHub<T>, tid: usize) -> Self {
        let h = &*hub;
        SimComm {
            backend: Backend::Par(hub),
            tid,
            nthreads: h.nthreads,
            lookahead: true,
            faults: h.faults,
            local_clock: 0,
            pending_work: 0,
            next_min: None,
            stats: CommStats::default(),
            conductor: ConductorStats::default(),
            par_issued: 0,
            par_ticks: 0,
        }
    }

    /// Hand the baton to the thread with the smallest virtual clock
    /// (OS-thread conductor).
    fn dispatch(inner: &mut Inner, cvs: &[Condvar]) {
        if let Some(Reverse((_, tid))) = inner.queue.pop() {
            inner.chosen = Some(tid);
            cvs[tid].notify_one();
        } else {
            inner.chosen = None;
        }
    }

    /// Enter the scheduled pool and wait for the first baton (OS-thread
    /// conductor; fibers are pre-queued by the host instead).
    fn register(&mut self) {
        let Backend::Threads(ref shared) = self.backend else {
            unreachable!("register() is only used by the OS-thread conductor");
        };
        let mut g = shared.mx.lock().unwrap();
        g.queue.push(Reverse((0, self.tid)));
        g.started += 1;
        if g.started == self.nthreads {
            Self::dispatch(&mut g, &shared.cvs);
        }
        while g.chosen != Some(self.tid) {
            g = shared.cvs[self.tid].wait(g).unwrap();
        }
        self.next_min = g.queue.peek().map(|r| r.0);
    }

    /// Advance our clock by `cost` (plus pending work) and apply `eff` to the
    /// global memory once we are the globally earliest thread. `peer` is the
    /// thread whose partition the operation touches (`tid` itself for local
    /// operations) — the active [`FaultPlan`], if any, prices link faults
    /// against it.
    ///
    /// Fast path: if even after the advance we still precede the cached
    /// queue minimum, the conductor would hand the baton straight back to
    /// us — skip the scheduler entirely and apply `eff` in place. Ops of
    /// every class have positive cost under all machine models (and the
    /// fault plan never shrinks a cost), so a thread cannot fast-path
    /// forever: its clock strictly grows and eventually crosses `next_min`,
    /// forcing a real handoff (no starvation).
    fn op(&mut self, class: OpClass, peer: usize, mut cost: u64, par: ParOp<T>) -> Answer<T> {
        if self.faults.is_active() {
            // Fault decisions key on the *issue* time (before this op's own
            // cost is added) — a pure function of state both conductors
            // share bit-for-bit.
            let issue = self.local_clock + self.pending_work;
            let mut adj = self.faults.op_cost(self.tid, peer, class, cost, issue);
            // Correlated freezes (partition membership, gray stall): the op
            // is held until the thaw and only then runs at its normal cost,
            // so its memory effect lands after the heal. Monotone: thaw >
            // issue whenever Some, so adj never shrinks below base cost.
            if let Some(thaw) = self.faults.freeze_until(self.tid, issue, self.nthreads) {
                adj = adj.max(thaw.saturating_sub(issue) + cost);
            }
            self.stats.fault_ns += adj - cost;
            cost = adj;
        }
        self.stats.comm_ns += cost;
        let t = self.local_clock + self.pending_work + cost;
        self.pending_work = 0;
        self.local_clock = t;
        // The parallel conductor has its own fast/park decision (blind
        // tickets and speculative reads); `next_min` gating is meaningless
        // there because other fibers run concurrently.
        #[cfg(target_arch = "x86_64")]
        if let Backend::Par(hub) = self.backend {
            // SAFETY: hub outlives the fiber (see `new_par`).
            return unsafe { sim_par::submit(&*hub, self, class, t, par) };
        }
        if self.lookahead && self.next_min.is_none_or(|min| (t, self.tid) < min) {
            self.conductor.fast_ops += 1;
            self.conductor.fast_by_class[class.index()] += 1;
            let mem = match &self.backend {
                Backend::Threads(s) => &s.mem,
                // SAFETY: single OS thread; we are the only live fiber and
                // the hub outlives us.
                #[cfg(target_arch = "x86_64")]
                Backend::Fiber(h) => unsafe { &(**h).mem },
                #[cfg(target_arch = "x86_64")]
                Backend::Par(_) => unreachable!("handled above"),
            };
            // SAFETY: we hold the baton and stay its holder (we are still
            // strictly earliest), so we are the unique commit-right holder;
            // the preceding holder's writes are visible via the handoff that
            // granted us the baton.
            return unsafe { par.apply(mem, self.tid, t) };
        }
        self.conductor.handoffs += 1;
        match self.backend {
            Backend::Threads(ref shared) => {
                let mut g = shared.mx.lock().unwrap();
                g.clocks[self.tid] = t;
                g.queue.push(Reverse((t, self.tid)));
                Self::dispatch(&mut g, &shared.cvs);
                while g.chosen != Some(self.tid) {
                    g = shared.cvs[self.tid].wait(g).unwrap();
                }
                self.next_min = g.queue.peek().map(|r| r.0);
                drop(g);
                // SAFETY: `chosen == tid` again — unique commit right,
                // published by the mutex release of whichever thread
                // dispatched to us.
                unsafe { par.apply(&shared.mem, self.tid, t) }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Fiber(hub) => unsafe {
                // Requeue ourselves, pick the globally earliest thread, and
                // switch to it unless that is us again. Exactly one fiber is
                // live at a time, so each `&mut *hub` below is unique.
                let next = {
                    let h = &mut *hub;
                    h.clocks[self.tid] = t;
                    h.queue.push(Reverse((t, self.tid)));
                    let Reverse((_, next)) = h.queue.pop().expect("queue contains us");
                    next
                };
                if next != self.tid {
                    let (save, load) = {
                        let h = &mut *hub;
                        (&mut h.rsps[self.tid] as *mut usize, h.rsps[next])
                    };
                    // SAFETY: `load` was saved by the suspended fiber `next`
                    // (or is its initial context); `save` is resumed exactly
                    // once, by whichever fiber later pops our queue entry.
                    fiber::switch(save, load);
                }
                let h = &mut *hub;
                self.next_min = h.queue.peek().map(|r| r.0);
                // SAFETY: we are the sole live fiber on this OS thread.
                par.apply(&h.mem, self.tid, t)
            },
            #[cfg(target_arch = "x86_64")]
            Backend::Par(_) => unreachable!("handled above"),
        }
    }

    /// Leave the pool for good, folding in trailing work and publishing the
    /// final clock (OS-thread conductor; fibers retire in `fiber_entry`).
    fn retire(&mut self) {
        let Backend::Threads(ref shared) = self.backend else {
            unreachable!("retire() is only used by the OS-thread conductor");
        };
        self.local_clock += self.pending_work;
        self.pending_work = 0;
        let mut g = shared.mx.lock().unwrap();
        g.clocks[self.tid] = self.local_clock;
        g.retired += 1;
        g.final_stats[self.tid] = Some(self.stats.clone());
        g.final_conductor[self.tid] = Some(self.conductor.clone());
        Self::dispatch(&mut g, &shared.cvs);
    }

    fn size_of_items(n: usize) -> usize {
        n * std::mem::size_of::<T>()
    }
}

impl<T: Item> Comm<T> for SimComm<T> {
    fn my_id(&self) -> usize {
        self.tid
    }

    fn n_threads(&self) -> usize {
        self.nthreads
    }

    fn machine(&self) -> &MachineModel {
        match &self.backend {
            Backend::Threads(s) => &s.machine,
            // SAFETY: the hub outlives every fiber, and `machine` is written
            // only before the first fiber starts.
            #[cfg(target_arch = "x86_64")]
            Backend::Fiber(h) => unsafe { &(**h).machine },
            #[cfg(target_arch = "x86_64")]
            Backend::Par(h) => unsafe { &(**h).machine },
        }
    }

    fn now(&self) -> u64 {
        self.local_clock + self.pending_work
    }

    fn work(&mut self, units: u64) {
        let ns = units * self.machine().node_ns;
        // Stragglers take longer per node; the surplus is accounted as fault
        // time, not useful work, so work_ns keeps its fault-free meaning.
        let adj = if self.faults.is_active() {
            let a = self.faults.work_ns(self.tid, ns);
            self.stats.fault_ns += a - ns;
            a
        } else {
            ns
        };
        self.pending_work += adj;
        self.stats.work_ns += ns;
        // Advertise the raised clock lower bound so the parallel committer
        // can commit other fibers' tickets past our old position without
        // waiting for our next operation.
        #[cfg(target_arch = "x86_64")]
        if let Backend::Par(hub) = self.backend {
            // SAFETY: hub outlives the fiber.
            unsafe { sim_par::advertise(&*hub, self.tid, self.local_clock + self.pending_work) };
        }
    }

    fn advance_idle(&mut self, ns: u64) {
        self.pending_work += ns;
        self.stats.comm_ns += ns;
        #[cfg(target_arch = "x86_64")]
        if let Backend::Par(hub) = self.backend {
            // SAFETY: hub outlives the fiber.
            unsafe { sim_par::advertise(&*hub, self.tid, self.local_clock + self.pending_work) };
        }
    }

    fn poll(&mut self) {
        self.stats.polls += 1;
        let c = self.machine().poll_ns;
        let me = self.tid;
        self.op(OpClass::Poll, me, c, ParOp::Poll);
    }

    fn get(&mut self, thread: usize, var: usize) -> i64 {
        self.stats.gets += 1;
        let c = self.machine().ref_cost(self.tid, thread);
        self.op(OpClass::Scalar, thread, c, ParOp::Get { thread, var }).int()
    }

    fn put(&mut self, thread: usize, var: usize, val: i64) {
        self.stats.puts += 1;
        let c = self.machine().ref_cost(self.tid, thread);
        self.op(OpClass::Scalar, thread, c, ParOp::Put { thread, var, val });
    }

    fn cas(&mut self, thread: usize, var: usize, expected: i64, new: i64) -> i64 {
        self.stats.atomics += 1;
        let c = self.machine().atomic_cost(self.tid, thread);
        self.op(OpClass::Atomic, thread, c, ParOp::Cas { thread, var, expected, new })
            .int()
    }

    fn add(&mut self, thread: usize, var: usize, delta: i64) -> i64 {
        self.stats.atomics += 1;
        let c = self.machine().atomic_cost(self.tid, thread);
        self.op(OpClass::Atomic, thread, c, ParOp::Add { thread, var, delta })
            .int()
    }

    fn try_lock(&mut self, thread: usize, lock: usize) -> bool {
        let c = self.machine().lock_cost(self.tid, thread);
        let ok = self
            .op(OpClass::Lock, thread, c, ParOp::TryLock { thread, lock })
            .bool();
        if ok {
            self.stats.lock_acquires += 1;
        } else {
            self.stats.lock_failures += 1;
        }
        ok
    }

    fn unlock(&mut self, thread: usize, lock: usize) {
        self.stats.unlocks += 1;
        let c = self.machine().unlock_cost(self.tid, thread);
        self.op(OpClass::Lock, thread, c, ParOp::Unlock { thread, lock });
    }

    fn area_len(&mut self, thread: usize) -> usize {
        self.stats.gets += 1;
        let c = self.machine().ref_cost(self.tid, thread);
        self.op(OpClass::Scalar, thread, c, ParOp::AreaLen { thread }).len()
    }

    fn area_read(&mut self, thread: usize, offset: usize, len: usize, dst: &mut Vec<T>) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += len as u64;
        let c = self
            .machine()
            .bulk_cost(self.tid, thread, Self::size_of_items(len));
        let items = self
            .op(OpClass::Bulk, thread, c, ParOp::AreaRead { thread, offset, len })
            .items();
        dst.extend_from_slice(&items);
    }

    fn area_write(&mut self, thread: usize, offset: usize, src: &[T]) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += src.len() as u64;
        let c = self
            .machine()
            .bulk_cost(self.tid, thread, Self::size_of_items(src.len()));
        self.op(
            OpClass::Bulk,
            thread,
            c,
            ParOp::AreaWrite { thread, offset, src: src.to_vec() },
        );
    }

    fn area_truncate(&mut self, thread: usize, len: usize) {
        self.stats.puts += 1;
        let c = self.machine().ref_cost(self.tid, thread);
        self.op(OpClass::Scalar, thread, c, ParOp::AreaTruncate { thread, len });
    }

    fn send(&mut self, dst: usize, tag: i64, meta: [i64; 4], payload: &[T]) {
        self.stats.msgs_sent += 1;
        self.stats.msg_items_sent += payload.len() as u64;
        let msg = Msg {
            src: self.tid,
            tag,
            meta,
            payload: payload.to_vec(),
        };
        let mut flight = self
            .machine()
            .msg_flight_ns(self.tid, dst, msg.wire_bytes());
        let mut fate = MsgFate::Delivered;
        if self.faults.is_active() {
            // A spiked link also congests in-flight traffic, keyed on the
            // send's issue time.
            let adj = self.faults.flight_ns(self.tid, dst, flight, self.now());
            self.stats.fault_ns += adj - flight;
            flight = adj;
            // A partition cut is a *correlated* fate: every message across
            // the cut is lost for the whole window, overriding the
            // independent per-message fate draw below.
            if self.faults.link_cut(self.tid, dst, self.now(), self.nthreads) {
                fate = MsgFate::Lost;
                self.stats.msgs_cut += 1;
            } else {
                // Crash faults: the send is priced either way, but its effect
                // may be dropped or land twice (second copy at double flight).
                fate = self.faults.msg_fate(self.tid, dst, self.now());
                match fate {
                    MsgFate::Lost => self.stats.msgs_lost += 1,
                    MsgFate::Duplicated => self.stats.msgs_duplicated += 1,
                    MsgFate::Delivered => {}
                }
            }
        }
        let overhead = self.machine().msg_overhead_ns;
        self.op(
            OpClass::Message,
            dst,
            overhead,
            ParOp::Send { dst, fate, flight, msg },
        );
    }

    fn has_msg(&mut self, tag: Option<i64>) -> bool {
        self.stats.gets += 1;
        let c = self.machine().local_ref_ns;
        let me = self.tid;
        self.op(OpClass::Message, me, c, ParOp::HasMsg { tag }).bool()
    }

    fn try_recv(&mut self, tag: Option<i64>) -> Option<Msg<T>> {
        let c = self.machine().local_ref_ns;
        let me = self.tid;
        let got = self
            .op(OpClass::Message, me, c, ParOp::TryRecv { tag })
            .received();
        if got.is_some() {
            self.stats.msgs_received += 1;
        }
        got
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smp_cluster(n: usize) -> SimCluster<u64> {
        SimCluster::new(MachineModel::smp(), n, SpaceConfig::default())
    }

    #[test]
    fn single_thread_runs() {
        // `with_workers(0)`: the fast-path assertions below are about the
        // serial lookahead conductor; the parallel conductor's fast/park
        // split is racy (see `ConductorStats`).
        let report = smp_cluster(1).with_workers(0).run(|c| {
            c.put(0, 0, 42);
            c.get(0, 0)
        });
        assert_eq!(report.results, vec![42]);
        assert_eq!(report.final_scalar(0, 0), 42);
        assert!(report.makespan_ns > 0);
        // A lone thread never has competition: every op takes the fast path.
        assert_eq!(report.conductor[0].handoffs, 0);
        assert_eq!(report.conductor[0].fast_ops, 2);
    }

    #[test]
    fn fetch_add_from_all_threads_is_atomic() {
        let n = 16;
        let report = smp_cluster(n).run(|c| {
            for _ in 0..10 {
                c.add(0, 3, 1);
            }
        });
        assert_eq!(report.final_scalar(0, 3), (n * 10) as i64);
    }

    #[test]
    fn cas_exactly_one_winner() {
        let report = smp_cluster(8).run(|c| {
            let me = c.my_id() as i64;
            c.cas(0, 0, 0, me + 1) == 0
        });
        let winners = report.results.iter().filter(|&&w| w).count();
        assert_eq!(winners, 1);
        // The winner must be thread 0: at equal virtual cost, ties break by
        // thread id, deterministically.
        assert!(report.results[0]);
    }

    #[test]
    fn clock_advances_with_costs() {
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m.clone(), 2, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.work(1000); // 1000 nodes
                c.put(1, 0, 7); // remote put
            }
            c.now()
        });
        // Thread 0's clock ≥ 1000 * node_ns + the put's cost (thread 1 is on
        // the same 4-core node under the kittyhawk model).
        assert!(report.clocks[0] >= 1000 * m.node_ns + m.ref_cost(0, 1));
        assert!(report.makespan_ns >= report.clocks[0]);
        assert_eq!(report.final_scalar(1, 0), 7);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            SimCluster::<u64>::new(MachineModel::topsail(), 8, SpaceConfig::default()).run(|c| {
                let me = c.my_id();
                for i in 0..20 {
                    c.add((me + i) % 8, 1, 1);
                    if i % 3 == 0 {
                        c.work(17);
                    }
                }
                c.now()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.scalars, b.scalars);
        assert_eq!(a.stats, b.stats);
        // Harness counters are only repeatable on the serial conductors; the
        // parallel conductor's fast/park split depends on real-time races.
        if env_workers() == 0 {
            assert_eq!(a.conductor, b.conductor);
        }
    }

    /// The fast conductor must be invisible in every modelled quantity:
    /// running the same contended workload with lookahead on and off yields
    /// the same results, clocks, makespan, memory, and comm stats — only the
    /// conductor (harness) counters may differ.
    #[test]
    fn lookahead_off_is_bit_identical() {
        let run = |lookahead: bool| {
            SimCluster::<u64>::new(MachineModel::kittyhawk(), 8, SpaceConfig::default())
                .with_lookahead(lookahead)
                .run(|c| {
                    let me = c.my_id();
                    let n = c.n_threads();
                    for i in 0..40u64 {
                        match (me as u64 + i) % 6 {
                            0 => {
                                c.add((me + 1) % n, 2, 1);
                            }
                            1 => c.work(7 + (i % 5)),
                            2 => c.put(me, 0, i as i64),
                            3 => {
                                let _ = c.get((me + i as usize) % n, 0);
                            }
                            4 => {
                                if c.try_lock(0, 1) {
                                    c.unlock(0, 1);
                                }
                            }
                            _ => c.poll(),
                        }
                    }
                    c.now()
                })
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.results, slow.results);
        assert_eq!(fast.makespan_ns, slow.makespan_ns);
        assert_eq!(fast.clocks, slow.clocks);
        assert_eq!(fast.scalars, slow.scalars);
        assert_eq!(fast.stats, slow.stats);
        // And the knob really switches modes.
        assert_eq!(slow.total_conductor().fast_ops, 0);
        assert!(fast.total_conductor().fast_ops > 0, "fast path never engaged");
        assert_eq!(
            fast.total_conductor().total_ops(),
            slow.total_conductor().total_ops(),
            "both modes must conduct the same operation stream"
        );
    }

    /// The fast-path histogram attributes operations to the right class.
    #[test]
    fn conductor_histogram_tracks_classes() {
        // Serial lookahead conductor only: exact fast-path counts.
        let report = smp_cluster(1).with_workers(0).run(|c| {
            c.put(0, 0, 1); // scalar
            c.add(0, 0, 1); // atomic
            c.poll(); // poll
            c.send(0, 1, [0; 4], &[1u64]); // message
        });
        let total = report.total_conductor();
        assert_eq!(total.fast_ops, 4);
        assert_eq!(total.fast_by_class[OpClass::Scalar.index()], 1);
        assert_eq!(total.fast_by_class[OpClass::Atomic.index()], 1);
        assert_eq!(total.fast_by_class[OpClass::Poll.index()], 1);
        assert_eq!(total.fast_by_class[OpClass::Message.index()], 1);
    }

    #[test]
    fn locks_mutually_exclude() {
        // Each thread increments a non-atomic pair of cells under a lock;
        // the pair must never be observed torn.
        let report = smp_cluster(8).run(|c| {
            for _ in 0..25 {
                c.lock(0, 0);
                let a = c.get(0, 0);
                let b = c.get(0, 1);
                assert_eq!(a, b, "torn read under lock");
                c.put(0, 0, a + 1);
                c.put(0, 1, b + 1);
                c.unlock(0, 0);
            }
        });
        assert_eq!(report.final_scalar(0, 0), 200);
        assert_eq!(report.final_scalar(0, 1), 200);
        let total = report.total_stats();
        assert_eq!(total.lock_acquires, 200);
        assert_eq!(total.unlocks, 200);
    }

    #[test]
    fn area_write_then_remote_read() {
        let report = smp_cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.area_write(0, 0, &[11u64, 22, 33, 44]);
                c.put(1, 0, 1); // signal
                0
            } else {
                while c.get(1, 0) == 0 {
                    c.poll();
                }
                let mut buf = Vec::new();
                c.area_read(0, 1, 2, &mut buf);
                (buf[0] + buf[1]) as i64
            }
        });
        assert_eq!(report.results[1], 55);
    }

    #[test]
    fn area_grows_and_truncates() {
        let report = smp_cluster(1).run(|c| {
            c.area_write(0, 10, &[5u64; 4]);
            let len = c.area_len(0);
            c.area_truncate(0, 3);
            (len, c.area_len(0))
        });
        assert_eq!(report.results[0], (14, 3));
    }

    #[test]
    fn messages_arrive_after_latency_in_order() {
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m, 2, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.send(1, 7, [100, 0, 0, 0], &[1, 2, 3]);
                c.send(1, 7, [200, 0, 0, 0], &[4]);
                vec![]
            } else {
                let mut seen = Vec::new();
                while seen.len() < 2 {
                    if let Some(msg) = c.try_recv(Some(7)) {
                        seen.push(msg.meta[0]);
                    } else {
                        c.poll();
                    }
                }
                seen
            }
        });
        assert_eq!(report.results[1], vec![100, 200], "FIFO per sender");
    }

    #[test]
    fn message_not_visible_before_arrival() {
        // With remote latency, a recv issued immediately after the (virtual)
        // send time must not see the message; the receiving thread has to
        // burn virtual time polling first.
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m.clone(), 5, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.send(4, 1, [9, 0, 0, 0], &[]);
                0
            } else if c.my_id() == 4 {
                let mut polls = 0i64;
                while c.try_recv(Some(1)).is_none() {
                    polls += 1;
                }
                polls
            } else {
                0
            }
        });
        assert!(
            report.results[4] > 1,
            "receiver saw the message instantly despite flight latency"
        );
    }

    #[test]
    fn has_msg_respects_tag_filter() {
        let report = smp_cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.send(1, 3, [0; 4], &[9u64]);
                (false, false)
            } else {
                // Wait for delivery.
                while !c.has_msg(None) {
                    c.poll();
                }
                (c.has_msg(Some(4)), c.has_msg(Some(3)))
            }
        });
        assert_eq!(report.results[1], (false, true));
    }

    #[test]
    fn unlock_without_hold_panics() {
        let result = std::panic::catch_unwind(|| {
            smp_cluster(1).run(|c| c.unlock(0, 0));
        });
        assert!(result.is_err());
    }

    /// A million pure-work charges must not deadlock or involve the
    /// conductor heap (regression guard for the pending-work fast path).
    #[test]
    fn work_fast_path() {
        let report = smp_cluster(2).run(|c| {
            for _ in 0..1000 {
                c.work(1000);
            }
            c.now()
        });
        let m = MachineModel::smp();
        for &t in &report.clocks {
            assert!(t >= 1_000_000 * m.node_ns);
        }
    }

    /// A spinning receiver that is far behind in virtual time must burn its
    /// probe iterations on the lookahead fast path rather than handing off
    /// per probe — the batching the fast path exists for.
    #[test]
    fn spin_probes_batch_on_fast_path() {
        let m = MachineModel::kittyhawk();
        // Serial lookahead conductor only: the parallel conductor parks a
        // spinner that is *ahead* in virtual time (another fiber could still
        // write at an earlier instant), so its probes are handoffs there.
        let cluster: SimCluster<u64> =
            SimCluster::new(m, 2, SpaceConfig::default()).with_workers(0);
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.work(50_000); // push thread 0 far ahead before sending
                c.send(1, 1, [0; 4], &[]);
            } else {
                while c.try_recv(Some(1)).is_none() {}
            }
        });
        let probe_thread = &report.conductor[1];
        assert!(
            probe_thread.fast_ops > probe_thread.handoffs,
            "probes should mostly stay on the fast path: {probe_thread:?}"
        );
    }

    /// The parallel conductor must agree with the serial conductors on every
    /// modelled quantity (and conduct the same number of operations), for a
    /// contended workload exercising every operation class.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn parallel_conductor_bit_identical() {
        let run = |workers: usize| {
            SimCluster::<u64>::new(MachineModel::kittyhawk(), 8, SpaceConfig::default())
                .with_workers(workers)
                .run(chaos_workload)
        };
        let serial = run(0);
        for workers in [1, 3] {
            let par = run(workers);
            assert_eq!(par.results, serial.results);
            assert_eq!(par.makespan_ns, serial.makespan_ns);
            assert_eq!(par.clocks, serial.clocks);
            assert_eq!(par.scalars, serial.scalars);
            assert_eq!(par.stats, serial.stats);
            assert_eq!(
                par.total_conductor().total_ops(),
                serial.total_conductor().total_ops(),
                "all conductors must conduct the same operation stream"
            );
        }
    }

    /// Worker-closure panics surface from `run` under the parallel conductor
    /// just as they do on the serial ones.
    #[cfg(target_arch = "x86_64")]
    #[test]
    #[should_panic(expected = "simulated thread 3 exploded")]
    fn parallel_conductor_propagates_fiber_panics() {
        SimCluster::<u64>::new(MachineModel::smp(), 8, SpaceConfig::default())
            .with_workers(2)
            .run(|c| {
                let me = c.my_id();
                c.add(0, 0, 1);
                if me == 3 {
                    panic!("simulated thread {me} exploded");
                }
                // Everyone else keeps issuing ops so the cluster only drains
                // once the poison/retirement machinery works end to end.
                for i in 0..50 {
                    c.add((me + i) % 8, 1, 1);
                }
            });
    }

    /// Effect-apply panics (raised on the committer thread) poison the hub
    /// and re-surface from `run` with the original message.
    #[cfg(target_arch = "x86_64")]
    #[test]
    #[should_panic(expected = "unlock of a free lock")]
    fn parallel_conductor_propagates_commit_panics() {
        SimCluster::<u64>::new(MachineModel::smp(), 4, SpaceConfig::default())
            .with_workers(2)
            .run(|c| {
                let me = c.my_id();
                for i in 0..20 {
                    c.add((me + i) % 4, 0, 1);
                }
                if me == 1 {
                    c.unlock(0, 0); // never locked: apply panics at commit
                }
                for i in 0..20 {
                    c.add((me + i) % 4, 1, 1);
                }
            });
    }

    /// A contended workload exercising every fault class, for the
    /// fault-injection equivalence tests below.
    fn chaos_workload(c: &mut SimComm<u64>) -> u64 {
        let me = c.my_id();
        let n = c.n_threads();
        for i in 0..60u64 {
            match (me as u64 + i) % 7 {
                0 => {
                    c.add((me + 1) % n, 2, 1);
                }
                1 => c.work(9 + (i % 4)),
                2 => c.put((me + i as usize) % n, 0, i as i64),
                3 => {
                    let _ = c.get((me + 2 * i as usize) % n, 0);
                }
                4 => {
                    if c.try_lock(i as usize % n, 1) {
                        c.unlock(i as usize % n, 1);
                    }
                }
                5 => c.send((me + 3) % n, 1, [i as i64; 4], &[i]),
                _ => {
                    let _ = c.try_recv(Some(1));
                }
            }
        }
        c.now()
    }

    /// An installed `FaultPlan::none()` must be indistinguishable — in every
    /// modelled quantity, down to the stats — from never calling
    /// `with_faults` at all.
    #[test]
    fn none_plan_is_bit_identical_to_default() {
        let run = |faults: Option<FaultPlan>| {
            let mut cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::kittyhawk(), 8, SpaceConfig::default());
            if let Some(f) = faults {
                cluster = cluster.with_faults(f);
            }
            cluster.run(chaos_workload)
        };
        let plain = run(None);
        let none = run(Some(FaultPlan::none()));
        assert_eq!(plain.results, none.results);
        assert_eq!(plain.makespan_ns, none.makespan_ns);
        assert_eq!(plain.clocks, none.clocks);
        assert_eq!(plain.scalars, none.scalars);
        assert_eq!(plain.stats, none.stats);
        // Racy under the parallel conductor (see `ConductorStats`).
        if env_workers() == 0 {
            assert_eq!(plain.conductor, none.conductor);
        }
        assert_eq!(none.total_stats().fault_ns, 0);
    }

    /// A *faulted* schedule is exactly as conductor-independent as a
    /// fault-free one: fast/fiber and reference OS-thread modes agree on
    /// every modelled quantity, and the plan demonstrably fired.
    #[test]
    fn faulted_run_identical_across_conductors() {
        let run = |lookahead: bool| {
            SimCluster::<u64>::new(MachineModel::kittyhawk(), 8, SpaceConfig::default())
                .with_lookahead(lookahead)
                .with_faults(FaultPlan::seeded(0xFA_17))
                .run(chaos_workload)
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.results, slow.results);
        assert_eq!(fast.makespan_ns, slow.makespan_ns);
        assert_eq!(fast.clocks, slow.clocks);
        assert_eq!(fast.scalars, slow.scalars);
        assert_eq!(fast.stats, slow.stats);
        assert!(
            fast.total_stats().fault_ns > 0,
            "fault plan never injected anything"
        );
    }

    /// Crash-fault omission classes: under a `crashy` plan some sends are
    /// dropped and some land twice, the counters record exactly that, and
    /// the schedule stays bit-identical across both conductors.
    #[test]
    fn crash_plan_loses_and_duplicates_messages_deterministically() {
        let workload = |c: &mut SimComm<u64>| {
            let me = c.my_id();
            let n = c.n_threads();
            // A send-heavy phase, then drain: every thread fires 200
            // messages and then counts what actually arrived.
            for i in 0..200u64 {
                c.send((me + 1 + i as usize % (n - 1)) % n, 1, [i as i64; 4], &[i]);
                c.work(3 + i % 5);
            }
            let mut got = 0u64;
            for _ in 0..4000 {
                if c.try_recv(Some(1)).is_some() {
                    got += 1;
                }
                c.advance_idle(500);
            }
            got
        };
        let run = |lookahead: bool| {
            SimCluster::<u64>::new(MachineModel::kittyhawk(), 6, SpaceConfig::default())
                .with_lookahead(lookahead)
                .with_faults(FaultPlan::crashy(0xC4A5))
                .run(workload)
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.results, slow.results);
        assert_eq!(fast.clocks, slow.clocks);
        assert_eq!(fast.stats, slow.stats);
        let total = fast.total_stats();
        assert!(total.msgs_lost > 0, "no sends were lost");
        assert!(total.msgs_duplicated > 0, "no sends were duplicated");
        // Conservation of effects: arrivals = sent - lost + duplicated.
        let arrived: u64 = fast.results.iter().sum();
        assert_eq!(
            arrived,
            total.msgs_sent - total.msgs_lost + total.msgs_duplicated,
            "mailbox arrivals must match the send/loss/dup ledger"
        );
    }

    /// Straggler semantics: a plan that makes every thread a 4x straggler
    /// quadruples the duration of pure work, with the surplus accounted as
    /// fault time and `work_ns` keeping its fault-free meaning.
    #[test]
    fn straggler_plan_inflates_pure_work() {
        let all_stragglers = FaultPlan {
            straggler_per_mille: 1000,
            straggler_mult_x16: 64, // 4x
            ..FaultPlan::seeded(1)
        };
        let plan = FaultPlan {
            spike_per_mille: 0,
            stall_per_mille: 0,
            lock_mult_x16: 16,
            ..all_stragglers
        };
        let m = MachineModel::kittyhawk();
        let base = 1000 * m.node_ns;
        let report = SimCluster::<u64>::new(m, 1, SpaceConfig::default())
            .with_faults(plan)
            .run(|c| {
                c.work(1000);
                c.poll(); // fold pending work into the clock
                c.now()
            });
        let stats = &report.stats[0];
        assert_eq!(stats.work_ns, base, "work_ns must stay the modelled time");
        assert_eq!(stats.fault_ns, 3 * base, "4x straggler adds 3x as fault time");
        assert!(report.clocks[0] >= 4 * base);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    /// A worker panic must not deadlock the cluster: the baton is handed on
    /// before unwinding, the other threads run to completion, and the panic
    /// resurfaces from `run` — in both conductor modes.
    #[test]
    fn worker_panic_does_not_hang_cluster() {
        for lookahead in [true, false] {
            let result = std::panic::catch_unwind(|| {
                let cluster: SimCluster<u64> =
                    SimCluster::new(MachineModel::smp(), 4, SpaceConfig::default())
                        .with_lookahead(lookahead);
                cluster.run(|c| {
                    if c.my_id() == 2 {
                        panic!("injected failure");
                    }
                    // The survivors do real communication and finish.
                    for _ in 0..50 {
                        c.add(0, 0, 1);
                    }
                    c.my_id()
                })
            });
            assert!(result.is_err(), "panic must propagate (lookahead={lookahead})");
        }
    }

    /// Out-of-range bulk reads are detected, not silently truncated.
    #[test]
    fn area_read_out_of_range_panics() {
        let result = std::panic::catch_unwind(|| {
            let cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::smp(), 1, SpaceConfig::default());
            cluster.run(|c| {
                c.area_write(0, 0, &[1, 2, 3]);
                let mut buf = Vec::new();
                c.area_read(0, 2, 5, &mut buf); // 2..7 of 3
            })
        });
        assert!(result.is_err());
    }

    /// Clocks never go backwards across an arbitrary op mix.
    #[test]
    fn clock_monotonicity() {
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::kittyhawk(), 3, SpaceConfig::default());
        let report = cluster.run(|c| {
            let mut last = c.now();
            let mut oks = 0u32;
            for i in 0..200u64 {
                match i % 5 {
                    0 => {
                        c.put((i as usize) % 3, 1, i as i64);
                    }
                    1 => {
                        c.work(3);
                    }
                    2 => {
                        let _ = c.get((i as usize + 1) % 3, 1);
                    }
                    3 => c.poll(),
                    _ => {
                        let _ = c.cas(0, 2, 0, 1);
                    }
                }
                let now = c.now();
                assert!(now >= last, "clock regressed: {now} < {last}");
                last = now;
                oks += 1;
            }
            oks
        });
        assert!(report.results.iter().all(|&o| o == 200));
    }
}
