//! Deterministic virtual-time backend.
//!
//! Each simulated UPC thread is an OS thread, but a **conductor** admits
//! exactly one at a time: whenever a thread issues a [`Comm`] operation it
//! (a) advances its own virtual clock by the operation's cost under the
//! active [`MachineModel`], (b) enqueues itself, and (c) hands the baton to
//! the thread with the globally smallest virtual clock. Memory effects are
//! applied at baton-holding time, so the simulated execution is sequentially
//! consistent *in virtual time* and bit-for-bit reproducible — ties are
//! broken by thread id.
//!
//! Pure computation (`work()`) accumulates locally without a baton exchange;
//! it is folded into the clock at the next operation. This keeps the
//! conductor off the hot path of tree exploration: only *communication*
//! pays for scheduling, mirroring how only communication pays latency on a
//! real cluster.
//!
//! This is how the paper's 256-1024-thread cluster experiments (§4.2) run on
//! a single host: the virtual makespan plays the role of measured wall-clock
//! time.

use std::collections::{BTreeMap, BinaryHeap};
use std::cmp::Reverse;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::comm::{Comm, Item, SpaceConfig};
use crate::machine::MachineModel;
use crate::msg::Msg;
use crate::stats::CommStats;

/// Everything a run produces.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Per-thread values returned by the worker closure, indexed by thread.
    pub results: Vec<R>,
    /// Virtual time at which the last thread retired — the simulated
    /// wall-clock duration of the parallel run.
    pub makespan_ns: u64,
    /// Final virtual clock of each thread.
    pub clocks: Vec<u64>,
    /// Per-thread communication statistics.
    pub stats: Vec<CommStats>,
    /// Final contents of every thread's scalar cells (for assertions).
    pub scalars: Vec<Vec<i64>>,
}

impl<R> SimReport<R> {
    /// Final value of scalar `var` with affinity to `thread`.
    pub fn final_scalar(&self, thread: usize, var: usize) -> i64 {
        self.scalars[thread][var]
    }

    /// Aggregate statistics over all threads.
    pub fn total_stats(&self) -> CommStats {
        let mut acc = CommStats::default();
        for s in &self.stats {
            acc.merge(s);
        }
        acc
    }
}

/// The global memory image (guarded by the conductor mutex).
struct Mem<T> {
    scalars: Vec<Vec<i64>>,
    locks: Vec<Vec<bool>>,
    areas: Vec<Vec<T>>,
    /// Per-destination mailbox ordered by (arrival time, send sequence).
    mailboxes: Vec<BTreeMap<(u64, u64), Msg<T>>>,
    send_seq: u64,
}

struct Inner<T> {
    clocks: Vec<u64>,
    /// Threads waiting for the baton, keyed by (virtual clock, tid).
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Thread currently holding the baton (executing), if any.
    chosen: Option<usize>,
    /// Threads registered so far (scheduling starts when all have).
    started: usize,
    /// Threads that have retired.
    retired: usize,
    mem: Mem<T>,
    /// Stats deposited by retired threads.
    final_stats: Vec<Option<CommStats>>,
}

struct Shared<T> {
    mx: Mutex<Inner<T>>,
    cvs: Vec<Condvar>,
    nthreads: usize,
    machine: MachineModel,
}

/// A virtual cluster: construct, then [`SimCluster::run`] a worker closure on
/// every simulated thread.
pub struct SimCluster<T: Item> {
    shared: Arc<Shared<T>>,
}

impl<T: Item> SimCluster<T> {
    /// Create a cluster of `nthreads` simulated UPC threads over `machine`.
    pub fn new(machine: MachineModel, nthreads: usize, cfg: SpaceConfig) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        let mem = Mem {
            scalars: vec![vec![0i64; cfg.scalars]; nthreads],
            locks: vec![vec![false; cfg.locks]; nthreads],
            areas: (0..nthreads).map(|_| Vec::new()).collect(),
            mailboxes: (0..nthreads).map(|_| BTreeMap::new()).collect(),
            send_seq: 0,
        };
        let inner = Inner {
            clocks: vec![0; nthreads],
            queue: BinaryHeap::with_capacity(nthreads),
            chosen: None,
            started: 0,
            retired: 0,
            mem,
            final_stats: vec![None; nthreads],
        };
        SimCluster {
            shared: Arc::new(Shared {
                mx: Mutex::new(inner),
                cvs: (0..nthreads).map(|_| Condvar::new()).collect(),
                nthreads,
                machine,
            }),
        }
    }

    /// Run `f` on every simulated thread and collect the report.
    ///
    /// `f` receives a mutable [`SimComm`] handle; its return values are
    /// gathered in thread order.
    pub fn run<R, F>(self, f: F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut SimComm<T>) -> R + Sync,
    {
        let shared = &self.shared;
        let n = shared.nthreads;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (tid, slot) in results.iter_mut().enumerate() {
                let f = &f;
                let shared = Arc::clone(shared);
                let builder = scope.builder().stack_size(512 * 1024).name(format!("sim-{tid}"));
                handles.push(
                    builder
                        .spawn(move |_| {
                            let mut comm = SimComm::new(shared, tid);
                            comm.register();
                            // Hand the baton onward even if the worker
                            // panics, so the other simulated threads are not
                            // left parked forever.
                            let res = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| f(&mut comm)),
                            );
                            comm.retire();
                            match res {
                                Ok(r) => *slot = Some(r),
                                Err(p) => std::panic::resume_unwind(p),
                            }
                        })
                        .expect("spawn simulated thread"),
                );
            }
            for h in handles {
                h.join().expect("simulated thread panicked");
            }
        })
        .expect("simulation scope");

        let inner = self.shared.mx.lock();
        let makespan_ns = inner.clocks.iter().copied().max().unwrap_or(0);
        SimReport {
            results: results.into_iter().map(|r| r.expect("thread result")).collect(),
            makespan_ns,
            clocks: inner.clocks.clone(),
            stats: inner
                .final_stats
                .iter()
                .map(|s| s.clone().expect("retired stats"))
                .collect(),
            scalars: inner.mem.scalars.clone(),
        }
    }
}

/// Per-thread handle for the simulated cluster. Implements [`Comm`].
pub struct SimComm<T: Item> {
    shared: Arc<Shared<T>>,
    tid: usize,
    /// Mirror of `clocks[tid]` as of the last conductor interaction.
    local_clock: u64,
    /// Accumulated `work()` nanoseconds not yet folded into the clock.
    pending_work: u64,
    stats: CommStats,
}

impl<T: Item> SimComm<T> {
    fn new(shared: Arc<Shared<T>>, tid: usize) -> Self {
        SimComm {
            shared,
            tid,
            local_clock: 0,
            pending_work: 0,
            stats: CommStats::default(),
        }
    }

    /// Hand the baton to the thread with the smallest virtual clock.
    fn dispatch(inner: &mut Inner<T>, cvs: &[Condvar]) {
        if let Some(Reverse((_, tid))) = inner.queue.pop() {
            inner.chosen = Some(tid);
            cvs[tid].notify_one();
        } else {
            inner.chosen = None;
        }
    }

    /// Enter the scheduled pool and wait for the first baton.
    fn register(&mut self) {
        let mut g = self.shared.mx.lock();
        g.queue.push(Reverse((0, self.tid)));
        g.started += 1;
        if g.started == self.shared.nthreads {
            Self::dispatch(&mut g, &self.shared.cvs);
        }
        while g.chosen != Some(self.tid) {
            self.shared.cvs[self.tid].wait(&mut g);
        }
    }

    /// Advance our clock by `cost` (plus pending work), reschedule, and once
    /// we are the globally earliest thread apply `eff` to the global memory.
    fn op<R>(&mut self, cost: u64, eff: impl FnOnce(&mut Mem<T>, u64) -> R) -> R {
        self.stats.comm_ns += cost;
        let mut g = self.shared.mx.lock();
        let t = g.clocks[self.tid] + self.pending_work + cost;
        self.pending_work = 0;
        g.clocks[self.tid] = t;
        self.local_clock = t;
        g.queue.push(Reverse((t, self.tid)));
        Self::dispatch(&mut g, &self.shared.cvs);
        while g.chosen != Some(self.tid) {
            self.shared.cvs[self.tid].wait(&mut g);
        }
        eff(&mut g.mem, t)
    }

    /// Leave the pool for good, folding in trailing work.
    fn retire(&mut self) {
        let mut g = self.shared.mx.lock();
        g.clocks[self.tid] += self.pending_work;
        self.pending_work = 0;
        g.retired += 1;
        g.final_stats[self.tid] = Some(self.stats.clone());
        Self::dispatch(&mut g, &self.shared.cvs);
    }

    fn size_of_items(n: usize) -> usize {
        n * std::mem::size_of::<T>()
    }
}

impl<T: Item> Comm<T> for SimComm<T> {
    fn my_id(&self) -> usize {
        self.tid
    }

    fn n_threads(&self) -> usize {
        self.shared.nthreads
    }

    fn machine(&self) -> &MachineModel {
        &self.shared.machine
    }

    fn now(&self) -> u64 {
        self.local_clock + self.pending_work
    }

    fn work(&mut self, units: u64) {
        let ns = units * self.shared.machine.node_ns;
        self.pending_work += ns;
        self.stats.work_ns += ns;
    }

    fn advance_idle(&mut self, ns: u64) {
        self.pending_work += ns;
        self.stats.comm_ns += ns;
    }

    fn poll(&mut self) {
        self.stats.polls += 1;
        let c = self.shared.machine.poll_ns;
        self.op(c, |_, _| ());
    }

    fn get(&mut self, thread: usize, var: usize) -> i64 {
        self.stats.gets += 1;
        let c = self.shared.machine.ref_cost(self.tid, thread);
        self.op(c, |m, _| m.scalars[thread][var])
    }

    fn put(&mut self, thread: usize, var: usize, val: i64) {
        self.stats.puts += 1;
        let c = self.shared.machine.ref_cost(self.tid, thread);
        self.op(c, |m, _| m.scalars[thread][var] = val)
    }

    fn cas(&mut self, thread: usize, var: usize, expected: i64, new: i64) -> i64 {
        self.stats.atomics += 1;
        let c = self.shared.machine.atomic_cost(self.tid, thread);
        self.op(c, |m, _| {
            let cell = &mut m.scalars[thread][var];
            let observed = *cell;
            if observed == expected {
                *cell = new;
            }
            observed
        })
    }

    fn add(&mut self, thread: usize, var: usize, delta: i64) -> i64 {
        self.stats.atomics += 1;
        let c = self.shared.machine.atomic_cost(self.tid, thread);
        self.op(c, |m, _| {
            let cell = &mut m.scalars[thread][var];
            let old = *cell;
            *cell = old + delta;
            old
        })
    }

    fn try_lock(&mut self, thread: usize, lock: usize) -> bool {
        let c = self.shared.machine.lock_cost(self.tid, thread);
        let ok = self.op(c, |m, _| {
            let held = &mut m.locks[thread][lock];
            if *held {
                false
            } else {
                *held = true;
                true
            }
        });
        if ok {
            self.stats.lock_acquires += 1;
        } else {
            self.stats.lock_failures += 1;
        }
        ok
    }

    fn unlock(&mut self, thread: usize, lock: usize) {
        self.stats.unlocks += 1;
        let c = self.shared.machine.unlock_cost(self.tid, thread);
        self.op(c, |m, _| {
            assert!(m.locks[thread][lock], "unlock of a free lock");
            m.locks[thread][lock] = false;
        })
    }

    fn area_len(&mut self, thread: usize) -> usize {
        self.stats.gets += 1;
        let c = self.shared.machine.ref_cost(self.tid, thread);
        self.op(c, |m, _| m.areas[thread].len())
    }

    fn area_read(&mut self, thread: usize, offset: usize, len: usize, dst: &mut Vec<T>) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += len as u64;
        let c = self
            .shared
            .machine
            .bulk_cost(self.tid, thread, Self::size_of_items(len));
        self.op(c, |m, _| {
            let area = &m.areas[thread];
            assert!(
                offset + len <= area.len(),
                "area_read out of range: {}..{} of {}",
                offset,
                offset + len,
                area.len()
            );
            dst.extend_from_slice(&area[offset..offset + len]);
        })
    }

    fn area_write(&mut self, thread: usize, offset: usize, src: &[T]) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += src.len() as u64;
        let c = self
            .shared
            .machine
            .bulk_cost(self.tid, thread, Self::size_of_items(src.len()));
        self.op(c, |m, _| {
            let area = &mut m.areas[thread];
            if area.len() < offset + src.len() {
                area.resize(offset + src.len(), T::default());
            }
            area[offset..offset + src.len()].copy_from_slice(src);
        })
    }

    fn area_truncate(&mut self, thread: usize, len: usize) {
        self.stats.puts += 1;
        let c = self.shared.machine.ref_cost(self.tid, thread);
        self.op(c, |m, _| {
            assert!(len <= m.areas[thread].len(), "truncate beyond area length");
            m.areas[thread].truncate(len);
        })
    }

    fn send(&mut self, dst: usize, tag: i64, meta: [i64; 4], payload: &[T]) {
        self.stats.msgs_sent += 1;
        self.stats.msg_items_sent += payload.len() as u64;
        let msg = Msg {
            src: self.tid,
            tag,
            meta,
            payload: payload.to_vec(),
        };
        let flight = self
            .shared
            .machine
            .msg_flight_ns(self.tid, dst, msg.wire_bytes());
        let overhead = self.shared.machine.msg_overhead_ns;
        self.op(overhead, move |m, now| {
            let seq = m.send_seq;
            m.send_seq += 1;
            m.mailboxes[dst].insert((now + flight, seq), msg);
        })
    }

    fn has_msg(&mut self, tag: Option<i64>) -> bool {
        self.stats.gets += 1;
        let c = self.shared.machine.local_ref_ns;
        let me = self.tid;
        self.op(c, |m, now| {
            m.mailboxes[me]
                .iter()
                .take_while(|((arrival, _), _)| *arrival <= now)
                .any(|(_, msg)| tag.is_none_or(|t| msg.tag == t))
        })
    }

    fn try_recv(&mut self, tag: Option<i64>) -> Option<Msg<T>> {
        let c = self.shared.machine.local_ref_ns;
        let me = self.tid;
        let got = self.op(c, |m, now| {
            let key = m.mailboxes[me]
                .iter()
                .take_while(|((arrival, _), _)| *arrival <= now)
                .find(|(_, msg)| tag.is_none_or(|t| msg.tag == t))
                .map(|(k, _)| *k)?;
            m.mailboxes[me].remove(&key)
        });
        if got.is_some() {
            self.stats.msgs_received += 1;
        }
        got
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smp_cluster(n: usize) -> SimCluster<u64> {
        SimCluster::new(MachineModel::smp(), n, SpaceConfig::default())
    }

    #[test]
    fn single_thread_runs() {
        let report = smp_cluster(1).run(|c| {
            c.put(0, 0, 42);
            c.get(0, 0)
        });
        assert_eq!(report.results, vec![42]);
        assert_eq!(report.final_scalar(0, 0), 42);
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn fetch_add_from_all_threads_is_atomic() {
        let n = 16;
        let report = smp_cluster(n).run(|c| {
            for _ in 0..10 {
                c.add(0, 3, 1);
            }
        });
        assert_eq!(report.final_scalar(0, 3), (n * 10) as i64);
    }

    #[test]
    fn cas_exactly_one_winner() {
        let report = smp_cluster(8).run(|c| {
            let me = c.my_id() as i64;
            c.cas(0, 0, 0, me + 1) == 0
        });
        let winners = report.results.iter().filter(|&&w| w).count();
        assert_eq!(winners, 1);
        // The winner must be thread 0: at equal virtual cost, ties break by
        // thread id, deterministically.
        assert!(report.results[0]);
    }

    #[test]
    fn clock_advances_with_costs() {
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m.clone(), 2, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.work(1000); // 1000 nodes
                c.put(1, 0, 7); // remote put
            }
            c.now()
        });
        // Thread 0's clock ≥ 1000 * node_ns + the put's cost (thread 1 is on
        // the same 4-core node under the kittyhawk model).
        assert!(report.clocks[0] >= 1000 * m.node_ns + m.ref_cost(0, 1));
        assert!(report.makespan_ns >= report.clocks[0]);
        assert_eq!(report.final_scalar(1, 0), 7);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            SimCluster::<u64>::new(MachineModel::topsail(), 8, SpaceConfig::default()).run(|c| {
                let me = c.my_id();
                for i in 0..20 {
                    c.add((me + i) % 8, 1, 1);
                    if i % 3 == 0 {
                        c.work(17);
                    }
                }
                c.now()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.scalars, b.scalars);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn locks_mutually_exclude() {
        // Each thread increments a non-atomic pair of cells under a lock;
        // the pair must never be observed torn.
        let report = smp_cluster(8).run(|c| {
            for _ in 0..25 {
                c.lock(0, 0);
                let a = c.get(0, 0);
                let b = c.get(0, 1);
                assert_eq!(a, b, "torn read under lock");
                c.put(0, 0, a + 1);
                c.put(0, 1, b + 1);
                c.unlock(0, 0);
            }
        });
        assert_eq!(report.final_scalar(0, 0), 200);
        assert_eq!(report.final_scalar(0, 1), 200);
        let total = report.total_stats();
        assert_eq!(total.lock_acquires, 200);
        assert_eq!(total.unlocks, 200);
    }

    #[test]
    fn area_write_then_remote_read() {
        let report = smp_cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.area_write(0, 0, &[11u64, 22, 33, 44]);
                c.put(1, 0, 1); // signal
                0
            } else {
                while c.get(1, 0) == 0 {
                    c.poll();
                }
                let mut buf = Vec::new();
                c.area_read(0, 1, 2, &mut buf);
                (buf[0] + buf[1]) as i64
            }
        });
        assert_eq!(report.results[1], 55);
    }

    #[test]
    fn area_grows_and_truncates() {
        let report = smp_cluster(1).run(|c| {
            c.area_write(0, 10, &[5u64; 4]);
            let len = c.area_len(0);
            c.area_truncate(0, 3);
            (len, c.area_len(0))
        });
        assert_eq!(report.results[0], (14, 3));
    }

    #[test]
    fn messages_arrive_after_latency_in_order() {
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m, 2, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.send(1, 7, [100, 0, 0, 0], &[1, 2, 3]);
                c.send(1, 7, [200, 0, 0, 0], &[4]);
                vec![]
            } else {
                let mut seen = Vec::new();
                while seen.len() < 2 {
                    if let Some(msg) = c.try_recv(Some(7)) {
                        seen.push(msg.meta[0]);
                    } else {
                        c.poll();
                    }
                }
                seen
            }
        });
        assert_eq!(report.results[1], vec![100, 200], "FIFO per sender");
    }

    #[test]
    fn message_not_visible_before_arrival() {
        // With remote latency, a recv issued immediately after the (virtual)
        // send time must not see the message; the receiving thread has to
        // burn virtual time polling first.
        let m = MachineModel::kittyhawk();
        let cluster: SimCluster<u64> = SimCluster::new(m.clone(), 5, SpaceConfig::default());
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                c.send(4, 1, [9, 0, 0, 0], &[]);
                0
            } else if c.my_id() == 4 {
                let mut polls = 0i64;
                while c.try_recv(Some(1)).is_none() {
                    polls += 1;
                }
                polls
            } else {
                0
            }
        });
        assert!(
            report.results[4] > 1,
            "receiver saw the message instantly despite flight latency"
        );
    }

    #[test]
    fn has_msg_respects_tag_filter() {
        let report = smp_cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.send(1, 3, [0; 4], &[9u64]);
                (false, false)
            } else {
                // Wait for delivery.
                while !c.has_msg(None) {
                    c.poll();
                }
                (c.has_msg(Some(4)), c.has_msg(Some(3)))
            }
        });
        assert_eq!(report.results[1], (false, true));
    }

    #[test]
    fn unlock_without_hold_panics() {
        let result = std::panic::catch_unwind(|| {
            smp_cluster(1).run(|c| c.unlock(0, 0));
        });
        assert!(result.is_err());
    }

    /// A million pure-work charges must not deadlock or involve the
    /// conductor heap (regression guard for the pending-work fast path).
    #[test]
    fn work_fast_path() {
        let report = smp_cluster(2).run(|c| {
            for _ in 0..1000 {
                c.work(1000);
            }
            c.now()
        });
        let m = MachineModel::smp();
        for &t in &report.clocks {
            assert!(t >= 1_000_000 * m.node_ns);
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    /// A worker panic must not deadlock the cluster: the baton is handed on
    /// before unwinding, the other threads run to completion, and the panic
    /// resurfaces from `run`.
    #[test]
    fn worker_panic_does_not_hang_cluster() {
        let result = std::panic::catch_unwind(|| {
            let cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::smp(), 4, SpaceConfig::default());
            cluster.run(|c| {
                if c.my_id() == 2 {
                    panic!("injected failure");
                }
                // The survivors do real communication and finish.
                for _ in 0..50 {
                    c.add(0, 0, 1);
                }
                c.my_id()
            })
        });
        assert!(result.is_err(), "panic must propagate");
    }

    /// Out-of-range bulk reads are detected, not silently truncated.
    #[test]
    fn area_read_out_of_range_panics() {
        let result = std::panic::catch_unwind(|| {
            let cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::smp(), 1, SpaceConfig::default());
            cluster.run(|c| {
                c.area_write(0, 0, &[1, 2, 3]);
                let mut buf = Vec::new();
                c.area_read(0, 2, 5, &mut buf); // 2..7 of 3
            })
        });
        assert!(result.is_err());
    }

    /// Clocks never go backwards across an arbitrary op mix.
    #[test]
    fn clock_monotonicity() {
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::kittyhawk(), 3, SpaceConfig::default());
        let report = cluster.run(|c| {
            let mut last = c.now();
            let mut oks = 0u32;
            for i in 0..200u64 {
                match i % 5 {
                    0 => {
                        c.put((i as usize) % 3, 1, i as i64);
                    }
                    1 => {
                        c.work(3);
                    }
                    2 => {
                        let _ = c.get((i as usize + 1) % 3, 1);
                    }
                    3 => c.poll(),
                    _ => {
                        let _ = c.cas(0, 2, 0, 1);
                    }
                }
                let now = c.now();
                assert!(now >= last, "clock regressed: {now} < {last}");
                last = now;
                oks += 1;
            }
            oks
        });
        assert!(report.results.iter().all(|&o| o == 200));
    }
}
