//! Typed point-to-point messages.
//!
//! The paper's MPI baseline (§3.2) exchanges steal requests and work chunks
//! as messages. The [`crate::Comm`] trait carries these over the same cost
//! model as the one-sided operations so the comparison between `mpi-ws` and
//! the UPC implementations is apples-to-apples.

/// A message: a small integer tag and metadata word plus a payload of items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg<T> {
    /// Sending thread.
    pub src: usize,
    /// Application-level tag (e.g. steal request vs. work reply).
    pub tag: i64,
    /// Four metadata words (chunk counts, token-ring counters, ...).
    pub meta: [i64; 4],
    /// Work items carried by the message.
    pub payload: Vec<T>,
}

impl<T> Msg<T> {
    /// Wire size estimate used for cost modelling: a small envelope plus the
    /// payload bytes.
    pub fn wire_bytes(&self) -> usize {
        32 + self.payload.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_payload() {
        let empty: Msg<[u8; 24]> = Msg {
            src: 0,
            tag: 1,
            meta: [0; 4],
            payload: vec![],
        };
        assert_eq!(empty.wire_bytes(), 32);
        let loaded = Msg {
            src: 0,
            tag: 1,
            meta: [0; 4],
            payload: vec![[0u8; 24]; 10],
        };
        assert_eq!(loaded.wire_bytes(), 32 + 240);
    }
}
