//! Deterministic open-loop arrival processes for service mode.
//!
//! Service mode (see `docs/service.md`) replaces the batch "one tree, run to
//! termination" shape with a stream of root-task *requests* injected at
//! virtual times drawn from a seeded arrival process. The schedule is
//! **precomputed** on the host from `(process, seed)` before any simulated
//! thread runs: the generator never touches a [`crate::Comm`] handle, so the
//! same [`ArrivalSpec`] yields the same `Vec<u64>` of arrival instants on
//! both the fiber and the reference conductor, and injection stays
//! bit-identical by construction.
//!
//! Two processes are provided:
//!
//! - [`ArrivalProcess::Poisson`]: memoryless arrivals at a fixed mean rate —
//!   the open-loop baseline (squared coefficient of variation of the
//!   inter-arrival times ≈ 1).
//! - [`ArrivalProcess::Mmpp`]: a two-state Markov-modulated Poisson process
//!   alternating between a quiet and a bursty rate with exponentially
//!   distributed dwell times — the classic bursty-traffic model (CV² > 1),
//!   which is what exposes tail-latency cliffs that a smooth Poisson stream
//!   hides.
//!
//! Floating point is used only inside this host-side precomputation (the
//! same precedent as the geometric sampling in the UTS tree spec); the
//! output instants are integer nanoseconds, which is all the simulator ever
//! sees.

/// The stochastic law generating inter-arrival times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_sec` requests per (virtual) second.
    Poisson {
        /// Mean arrival rate, requests per virtual second.
        rate_per_sec: f64,
    },
    /// Two-state Markov-modulated Poisson process: the instantaneous rate
    /// alternates between `rate_lo_per_sec` and `rate_hi_per_sec`, dwelling
    /// in each state for an exponentially distributed virtual time with mean
    /// `mean_dwell_ns`. Starts in the low state.
    Mmpp {
        /// Arrival rate in the quiet state, requests per virtual second.
        rate_lo_per_sec: f64,
        /// Arrival rate in the burst state, requests per virtual second.
        rate_hi_per_sec: f64,
        /// Mean dwell time in each state, virtual nanoseconds.
        mean_dwell_ns: u64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate in requests per virtual second (for MMPP
    /// the dwell times are symmetric, so the two states weigh equally).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                rate_lo_per_sec,
                rate_hi_per_sec,
                ..
            } => 0.5 * (rate_lo_per_sec + rate_hi_per_sec),
        }
    }
}

/// A fully determined arrival schedule: process, seed, request count, and
/// the virtual instant of the first possible arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalSpec {
    /// The inter-arrival law.
    pub process: ArrivalProcess,
    /// Seed for the private hash-stream RNG (independent of every other
    /// seed in the system).
    pub seed: u64,
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Virtual time of the schedule's origin; the first arrival falls one
    /// inter-arrival sample after this.
    pub start_ns: u64,
}

impl ArrivalSpec {
    /// A Poisson schedule with `n_requests` arrivals at `rate_per_sec`,
    /// starting at virtual time zero.
    pub fn poisson(seed: u64, n_requests: usize, rate_per_sec: f64) -> ArrivalSpec {
        ArrivalSpec {
            process: ArrivalProcess::Poisson { rate_per_sec },
            seed,
            n_requests,
            start_ns: 0,
        }
    }

    /// A two-state MMPP schedule starting at virtual time zero.
    pub fn mmpp(
        seed: u64,
        n_requests: usize,
        rate_lo_per_sec: f64,
        rate_hi_per_sec: f64,
        mean_dwell_ns: u64,
    ) -> ArrivalSpec {
        ArrivalSpec {
            process: ArrivalProcess::Mmpp {
                rate_lo_per_sec,
                rate_hi_per_sec,
                mean_dwell_ns,
            },
            seed,
            n_requests,
            start_ns: 0,
        }
    }

    /// Materialize the schedule: `n_requests` non-decreasing virtual arrival
    /// instants in nanoseconds. Pure function of the spec — see the module
    /// docs for why this guarantees conductor bit-identity.
    ///
    /// # Panics
    ///
    /// If any configured rate is not strictly positive and finite.
    pub fn schedule(&self) -> Vec<u64> {
        let check = |r: f64| {
            assert!(
                r.is_finite() && r > 0.0,
                "arrival rate must be positive and finite, got {r}"
            );
        };
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => check(rate_per_sec),
            ArrivalProcess::Mmpp {
                rate_lo_per_sec,
                rate_hi_per_sec,
                ..
            } => {
                check(rate_lo_per_sec);
                check(rate_hi_per_sec);
            }
        }

        let mut rng = HashStream::new(self.seed);
        let mut out = Vec::with_capacity(self.n_requests);
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                let mut t = self.start_ns as f64;
                for _ in 0..self.n_requests {
                    t += rng.exp_ns(rate_per_sec);
                    out.push(t.round() as u64);
                }
            }
            ArrivalProcess::Mmpp {
                rate_lo_per_sec,
                rate_hi_per_sec,
                mean_dwell_ns,
            } => {
                let dwell_rate = 1e9 / (mean_dwell_ns.max(1) as f64);
                let mut t = self.start_ns as f64;
                let mut high = false;
                let mut phase_end = t + rng.exp_ns(dwell_rate);
                for _ in 0..self.n_requests {
                    loop {
                        let rate = if high { rate_hi_per_sec } else { rate_lo_per_sec };
                        let dt = rng.exp_ns(rate);
                        if t + dt <= phase_end {
                            t += dt;
                            out.push(t.round() as u64);
                            break;
                        }
                        // No arrival before the phase boundary: jump to it,
                        // flip state, and resample (memorylessness makes the
                        // discarded residual exact, not an approximation).
                        t = phase_end;
                        high = !high;
                        phase_end = t + rng.exp_ns(dwell_rate);
                    }
                }
            }
        }
        out
    }
}

/// SplitMix64 counter-hash stream: `i`-th output is a pure function of
/// `(seed, i)`, so the schedule needs no mutable RNG state to reproduce.
struct HashStream {
    state: u64,
}

impl HashStream {
    fn new(seed: u64) -> HashStream {
        HashStream { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in the half-open interval (0, 1]: never zero, so the
    /// logarithm below is always finite.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Exponential inter-event time in nanoseconds for an event rate given
    /// in events per second. Clamped to at least 1 ns so arrivals are
    /// strictly ordered in integer virtual time at any sane rate.
    fn exp_ns(&mut self, rate_per_sec: f64) -> f64 {
        let dt = -self.unit().ln() * 1e9 / rate_per_sec;
        dt.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv2(times: &[u64]) -> f64 {
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        var / (mean * mean)
    }

    #[test]
    fn schedules_are_deterministic() {
        let spec = ArrivalSpec::poisson(7, 100, 50_000.0);
        assert_eq!(spec.schedule(), spec.schedule());
        let spec = ArrivalSpec::mmpp(7, 100, 10_000.0, 200_000.0, 500_000);
        assert_eq!(spec.schedule(), spec.schedule());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalSpec::poisson(1, 50, 50_000.0).schedule();
        let b = ArrivalSpec::poisson(2, 50, 50_000.0).schedule();
        assert_ne!(a, b);
    }

    #[test]
    fn schedules_are_monotone_and_offset_by_start() {
        for spec in [
            ArrivalSpec::poisson(3, 200, 100_000.0),
            ArrivalSpec::mmpp(3, 200, 20_000.0, 400_000.0, 200_000),
        ] {
            let s = spec.schedule();
            assert_eq!(s.len(), 200);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "monotone");
            assert!(s[0] >= spec.start_ns);
            let shifted = ArrivalSpec {
                start_ns: 1_000_000,
                ..spec
            }
            .schedule();
            assert!(shifted[0] >= 1_000_000);
        }
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        // 20k arrivals at 100k req/s: mean gap should be 10_000 ns ± a few %.
        let s = ArrivalSpec::poisson(11, 20_000, 100_000.0).schedule();
        let span = (s[s.len() - 1] - s[0]) as f64;
        let mean_gap = span / (s.len() - 1) as f64;
        assert!(
            (mean_gap - 10_000.0).abs() < 500.0,
            "mean gap {mean_gap} far from 10_000"
        );
        let c = cv2(&s);
        assert!(
            (c - 1.0).abs() < 0.15,
            "Poisson CV^2 should be ~1, got {c}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Strongly asymmetric rates with dwell long enough to see both
        // phases: inter-arrival CV^2 must exceed the memoryless value 1.
        let s = ArrivalSpec::mmpp(13, 20_000, 10_000.0, 500_000.0, 2_000_000).schedule();
        let c = cv2(&s);
        assert!(c > 1.5, "MMPP CV^2 should exceed 1, got {c}");
    }

    #[test]
    fn mean_rate_reports_the_long_run_average() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 5.0 };
        assert_eq!(p.mean_rate_per_sec(), 5.0);
        let m = ArrivalProcess::Mmpp {
            rate_lo_per_sec: 10.0,
            rate_hi_per_sec: 30.0,
            mean_dwell_ns: 100,
        };
        assert_eq!(m.mean_rate_per_sec(), 20.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        ArrivalSpec::poisson(1, 10, 0.0).schedule();
    }
}
