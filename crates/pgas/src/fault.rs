//! Deterministic fault injection for the virtual-time simulator.
//!
//! Real PGAS clusters have congested links, stalled ranks, and permanently
//! slow ("straggler") nodes. A [`FaultPlan`] reproduces those pathologies
//! *inside the cost accounting* of [`crate::sim::SimComm`]: every fault is a
//! pure function of the plan's seed and the issuing thread's **virtual**
//! time, so a faulted schedule is exactly as deterministic as a fault-free
//! one — bit-identical across runs and across both conductors (fast/fiber
//! and reference OS-thread). No wall-clock time, no shared mutable state,
//! no RNG stream whose consumption order could differ between conductors.
//!
//! Four fault classes, mirroring what distributed work-stealing runtimes
//! harden against (see `docs/faults.md`):
//!
//! - **Link latency spikes**: in hashed windows of virtual time, priced
//!   operations between a given (source, destination) thread pair cost a
//!   multiple of their modelled cost — a congested or flaky link.
//! - **Thread stalls**: in hashed windows, a thread makes no progress; an
//!   operation issued inside a stalled window completes only after the
//!   window ends (an OS descheduling event, a GC pause, a NIC hiccup).
//! - **Stragglers**: a hashed subset of threads pays a permanent multiplier
//!   on `work()` time — a slow or oversubscribed node.
//! - **Lock stretching**: lock-class operations cost a multiple of their
//!   modelled cost, lengthening every critical section and widening the
//!   races the locked algorithms are exposed to.
//!
//! [`FaultPlan::none()`] is inert: the simulator checks a single boolean and
//! touches nothing else, so fault-free runs are bit-identical to a build
//! without this module.
//!
//! Multipliers use x16 fixed point (`mult_x16 = 24` means 1.5x) to keep all
//! arithmetic in integers — floats would invite platform-dependent rounding.

use crate::comm::OpClass;

/// Domain-separation salts for the decision hashes.
const SPIKE_SALT: u64 = 0x9E6C_63D0_876A_3F6B;
const STALL_SALT: u64 = 0xD1B5_4A32_D192_ED03;
const STRAGGLER_SALT: u64 = 0x8CB9_2BA7_2F3D_8DD7;
const MSG_FATE_SALT: u64 = 0xA3F1_97C4_5E0B_D621;
const KILL_SALT: u64 = 0x6D0F_B8E2_41C7_93A5;
const PARTITION_SALT: u64 = 0x7C1A_2D9E_F0B3_5A47;
const GRAY_SALT: u64 = 0x4E8D_1B06_C7F2_93D5;

/// Heal time substituted for a partition whose `partition_dur_ns` is 0
/// ("never heals"). Finite so every run still terminates: the cut-off
/// minority freezes until this virtual instant (~8.6 virtual seconds),
/// while the surviving majority evicts it and finishes long before.
pub const UNHEALED_NS: u64 = 1 << 33;

/// Mix (seed, salt, a, b) into a uniform u64 (splitmix64 finalizer). A pure
/// function: both conductors evaluate it to the same value at the same
/// virtual instant.
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut x = seed ^ salt;
    x = x.wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = x.wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A seeded, deterministic fault schedule for one simulated run.
///
/// Plain `Copy` data: the plan is cloned into every [`crate::sim::SimComm`]
/// handle at construction, so fault decisions never touch shared state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Master switch. `false` short-circuits every query; all other fields
    /// are ignored.
    pub enabled: bool,
    /// Seed from which every fault decision is hashed.
    pub seed: u64,
    /// Virtual-time window (ns) for spike and stall decisions. Each window
    /// of each link (or thread) is independently spiked (or stalled).
    pub window_ns: u64,
    /// Per-mille probability that a directed link's window is spiked.
    pub spike_per_mille: u32,
    /// Cost multiplier (x16 fixed point) for operations crossing a spiked
    /// link window. `16` = no-op, `128` = 8x latency.
    pub spike_mult_x16: u32,
    /// Per-mille probability that a thread's window is a stall: operations
    /// issued inside it complete only after the window (run of windows) ends.
    pub stall_per_mille: u32,
    /// Per-mille probability that a thread is a permanent straggler.
    pub straggler_per_mille: u32,
    /// `work()` multiplier (x16 fixed point) for straggler threads.
    pub straggler_mult_x16: u32,
    /// Cost multiplier (x16 fixed point) on lock-class operations.
    pub lock_mult_x16: u32,
    /// Per-mille probability that a message send's effect is silently
    /// dropped (the sender is still charged; nothing arrives).
    pub loss_per_mille: u32,
    /// Per-mille probability that a message send's effect lands twice
    /// (a second copy arrives at double the flight time).
    pub dup_per_mille: u32,
    /// Per-mille probability that this plan kills one rank (never rank 0;
    /// no death on single-thread runs). Which rank, and at which virtual
    /// time in `[kill_min_ns, kill_min_ns + kill_span_ns)`, is hashed from
    /// the seed.
    pub kill_per_mille: u32,
    /// Earliest virtual time at which the hashed rank death can land.
    pub kill_min_ns: u64,
    /// Width of the virtual-time window over which the death time is
    /// hashed. `0` pins the death exactly at `kill_min_ns`.
    pub kill_span_ns: u64,
    /// Per-mille probability that this plan arms one **network partition**:
    /// a hashed minority arc of ranks (never rank 0, at most `(n-1)/2`
    /// ranks so a live quorum always remains) is cut off for a virtual-time
    /// interval. Every message crossing the cut shares one fate — dropped —
    /// unlike the independent per-message [`FaultPlan::msg_fate`], and the
    /// cut-off ranks freeze (their priced operations complete only after
    /// the heal, so their writes land post-heal and their leases go stale).
    /// Requires `n >= 3`.
    pub partition_per_mille: u32,
    /// Earliest virtual time at which the partition window can start.
    pub partition_min_ns: u64,
    /// Width of the virtual-time window over which the partition start is
    /// hashed. `0` pins the start exactly at `partition_min_ns`.
    pub partition_span_ns: u64,
    /// How long the partition lasts before healing. `0` means "never
    /// heals" — substituted with [`UNHEALED_NS`] so the run still
    /// terminates (via quorum eviction of the cut-off ranks).
    pub partition_dur_ns: u64,
    /// Per-mille probability that this plan arms one **gray failure**: a
    /// hashed rank (never rank 0) stalls past its lease — long enough to be
    /// suspected and evicted — but is *not* dead, and resumes afterwards.
    pub gray_per_mille: u32,
    /// Earliest virtual time at which the gray stall can start.
    pub gray_min_ns: u64,
    /// Width of the virtual-time window over which the gray stall start is
    /// hashed. `0` pins the start exactly at `gray_min_ns`.
    pub gray_span_ns: u64,
    /// Duration of the gray stall. To actually trigger a quorum eviction it
    /// must exceed the lease staleness threshold plus the eviction timeout
    /// (see `crates/core/src/recovery.rs`).
    pub gray_stall_ns: u64,
    /// If nonzero, a rank killed by this plan **restarts** this many
    /// virtual nanoseconds after its death: it re-enters as a fresh
    /// incarnation, self-adopting its own spill if no survivor beat it to
    /// the adoption CAS. `0` = killed ranks stay dead (the PR-6 behavior).
    pub restart_after_ns: u64,
}

/// The hashed fate of one message send under a [`FaultPlan`] with crash
/// faults enabled (see [`FaultPlan::msg_fate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered exactly once (the only fate under `none()`/`seeded()`).
    Delivered,
    /// The send is charged but no message arrives.
    Lost,
    /// Two copies arrive; the second at double the flight time.
    Duplicated,
}

impl FaultPlan {
    /// The inert plan: no faults, zero overhead, bit-identical results.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            enabled: false,
            seed: 0,
            window_ns: 0,
            spike_per_mille: 0,
            spike_mult_x16: 16,
            stall_per_mille: 0,
            straggler_per_mille: 0,
            straggler_mult_x16: 16,
            lock_mult_x16: 16,
            loss_per_mille: 0,
            dup_per_mille: 0,
            kill_per_mille: 0,
            kill_min_ns: 0,
            kill_span_ns: 0,
            partition_per_mille: 0,
            partition_min_ns: 0,
            partition_span_ns: 0,
            partition_dur_ns: 0,
            gray_per_mille: 0,
            gray_min_ns: 0,
            gray_span_ns: 0,
            gray_stall_ns: 0,
            restart_after_ns: 0,
        }
    }

    /// A moderate all-of-the-above chaos profile: ~10% of link windows at 8x
    /// latency, ~4% of thread windows stalled, ~1 in 8 threads a 4x
    /// straggler, and 2x lock costs. The schedule (which windows, which
    /// links, which threads) is entirely determined by `seed`. Crash faults
    /// stay off — see [`FaultPlan::crashy`] for those.
    pub const fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            enabled: true,
            seed,
            window_ns: 200_000,
            spike_per_mille: 100,
            spike_mult_x16: 128,
            stall_per_mille: 40,
            straggler_per_mille: 125,
            straggler_mult_x16: 64,
            lock_mult_x16: 32,
            loss_per_mille: 0,
            dup_per_mille: 0,
            kill_per_mille: 0,
            kill_min_ns: 0,
            kill_span_ns: 0,
            partition_per_mille: 0,
            partition_min_ns: 0,
            partition_span_ns: 0,
            partition_dur_ns: 0,
            gray_per_mille: 0,
            gray_min_ns: 0,
            gray_span_ns: 0,
            gray_stall_ns: 0,
            restart_after_ns: 0,
        }
    }

    /// [`FaultPlan::seeded`] plus the crash classes: ~3% of message sends
    /// lost, ~3% duplicated, and a ~35% chance that one hashed rank dies at
    /// a hashed virtual time early in the run. Everything is still a pure
    /// function of `seed`.
    pub const fn crashy(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::seeded(seed);
        p.loss_per_mille = 30;
        p.dup_per_mille = 30;
        p.kill_per_mille = 350;
        p.kill_min_ns = 100_000;
        p.kill_span_ns = 2_000_000;
        p
    }

    /// [`FaultPlan::crashy`] plus the membership classes: a ~60% chance of
    /// one healing network partition, a ~40% chance of one gray failure
    /// long enough to trigger a quorum eviction (lease 150 µs + eviction
    /// timeout 300 µs, see `crates/core/src/recovery.rs`), and killed ranks
    /// restarting 300 µs after death. Everything is still a pure function
    /// of `seed`.
    pub const fn partitioned(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::crashy(seed);
        p.partition_per_mille = 600;
        p.partition_min_ns = 60_000;
        p.partition_span_ns = 300_000;
        p.partition_dur_ns = 900_000;
        p.gray_per_mille = 400;
        p.gray_min_ns = 60_000;
        p.gray_span_ns = 300_000;
        p.gray_stall_ns = 800_000;
        p.restart_after_ns = 300_000;
        p
    }

    /// Is any fault injection active? The simulator's only unconditional
    /// query — everything else is behind this check.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.enabled
    }

    /// Is any *crash* class (loss, duplication, rank death) active? Every
    /// recovery-protocol operation in `crates/core` (heartbeats, lineage
    /// records, adoption probes) is gated on this, so plans without crash
    /// faults — including every pre-existing `seeded()` plan — keep their
    /// exact operation sequence and virtual timestamps.
    #[inline]
    pub fn crash_active(&self) -> bool {
        self.enabled
            && (self.loss_per_mille > 0
                || self.dup_per_mille > 0
                || self.kill_per_mille > 0
                || self.partition_per_mille > 0
                || self.gray_per_mille > 0)
    }

    /// The hashed fate of a message sent over `src -> dst` at virtual time
    /// `now`. One hash decides both omission classes so their probabilities
    /// are exact and mutually exclusive.
    pub fn msg_fate(&self, src: usize, dst: usize, now: u64) -> MsgFate {
        if !self.enabled || (self.loss_per_mille == 0 && self.dup_per_mille == 0) {
            return MsgFate::Delivered;
        }
        let h = mix(
            self.seed,
            MSG_FATE_SALT,
            now,
            ((src as u64) << 32) | dst as u64,
        ) % 1000;
        if h < self.loss_per_mille as u64 {
            MsgFate::Lost
        } else if h < (self.loss_per_mille + self.dup_per_mille) as u64 {
            MsgFate::Duplicated
        } else {
            MsgFate::Delivered
        }
    }

    /// The rank this plan kills, if any. At most one rank per plan dies —
    /// never rank 0 (it anchors termination fallback and report assembly),
    /// and never on single-thread runs.
    pub fn killed_rank(&self, nthreads: usize) -> Option<usize> {
        if !self.enabled || self.kill_per_mille == 0 || nthreads < 2 {
            return None;
        }
        if mix(self.seed, KILL_SALT, 0, nthreads as u64) % 1000 >= self.kill_per_mille as u64 {
            return None;
        }
        Some(1 + (mix(self.seed, KILL_SALT, 1, nthreads as u64) % (nthreads as u64 - 1)) as usize)
    }

    /// The virtual time at which `tid` dies under this plan, or `None` if
    /// `tid` survives. A pure function of the plan, so the rank itself, the
    /// conductor, and every survivor all agree on it.
    pub fn kill_time(&self, tid: usize, nthreads: usize) -> Option<u64> {
        if self.killed_rank(nthreads)? != tid {
            return None;
        }
        let jitter = if self.kill_span_ns == 0 {
            0
        } else {
            mix(self.seed, KILL_SALT, 2, tid as u64) % self.kill_span_ns
        };
        Some(self.kill_min_ns + jitter)
    }

    /// The virtual-time interval `[start, end)` during which this plan's
    /// partition is in force, or `None` if no partition is armed. Partitions
    /// need `n >= 3` so the un-partitioned side keeps a strict majority
    /// (quorum `n/2 + 1`) and can evict the cut-off ranks.
    pub fn partition_window(&self, nthreads: usize) -> Option<(u64, u64)> {
        if !self.enabled || self.partition_per_mille == 0 || nthreads < 3 {
            return None;
        }
        if mix(self.seed, PARTITION_SALT, 0, nthreads as u64) % 1000
            >= self.partition_per_mille as u64
        {
            return None;
        }
        let jitter = if self.partition_span_ns == 0 {
            0
        } else {
            mix(self.seed, PARTITION_SALT, 1, nthreads as u64) % self.partition_span_ns
        };
        let start = self.partition_min_ns + jitter;
        let dur = if self.partition_dur_ns == 0 {
            UNHEALED_NS
        } else {
            self.partition_dur_ns
        };
        Some((start, start + dur))
    }

    /// Is `rank` in the cut-off minority of this plan's partition (if one is
    /// armed)? The minority is a hashed contiguous arc of the non-zero
    /// ranks, of hashed size `1 ..= (n-1)/2` — never rank 0, and always a
    /// strict minority, so the surviving side retains an eviction quorum.
    pub fn in_partition(&self, rank: usize, nthreads: usize) -> bool {
        if rank == 0 || self.partition_window(nthreads).is_none() {
            return false;
        }
        let m = nthreads as u64 - 1; // candidate ranks 1..n
        let max_size = (m / 2).max(1).min(m);
        let size = 1 + mix(self.seed, PARTITION_SALT, 2, nthreads as u64) % max_size;
        let offset = mix(self.seed, PARTITION_SALT, 3, nthreads as u64) % m;
        ((rank as u64 - 1) + m - offset) % m < size
    }

    /// Is the link `a <-> b` severed at virtual time `now`? True iff the
    /// partition window contains `now` and exactly one endpoint is in the
    /// cut-off set: every message crossing the cut shares this one fate
    /// (dropped), unlike the independent per-message [`FaultPlan::msg_fate`].
    pub fn link_cut(&self, a: usize, b: usize, now: u64, nthreads: usize) -> bool {
        match self.partition_window(nthreads) {
            Some((start, end)) if now >= start && now < end => {
                self.in_partition(a, nthreads) != self.in_partition(b, nthreads)
            }
            _ => false,
        }
    }

    /// The rank this plan gray-fails, if any: it stalls past its lease but
    /// is *not* dead, and resumes after [`FaultPlan::gray_window`] ends.
    /// Never rank 0.
    pub fn gray_rank(&self, nthreads: usize) -> Option<usize> {
        if !self.enabled || self.gray_per_mille == 0 || nthreads < 2 {
            return None;
        }
        if mix(self.seed, GRAY_SALT, 0, nthreads as u64) % 1000 >= self.gray_per_mille as u64 {
            return None;
        }
        Some(1 + (mix(self.seed, GRAY_SALT, 1, nthreads as u64) % (nthreads as u64 - 1)) as usize)
    }

    /// The virtual-time interval `[start, end)` of this plan's gray stall,
    /// or `None` if none is armed.
    pub fn gray_window(&self, nthreads: usize) -> Option<(u64, u64)> {
        self.gray_rank(nthreads)?;
        let jitter = if self.gray_span_ns == 0 {
            0
        } else {
            mix(self.seed, GRAY_SALT, 2, nthreads as u64) % self.gray_span_ns
        };
        let start = self.gray_min_ns + jitter;
        Some((start, start + self.gray_stall_ns))
    }

    /// If `tid` is frozen at virtual time `now` by a correlated fault (it
    /// is in a cut-off partition minority, or it is the gray-failed rank,
    /// during the respective window), the virtual time at which it thaws;
    /// `None` otherwise. A frozen rank's priced operations complete — and
    /// their memory effects land — only after the thaw, so its writes
    /// cannot corrupt the surviving side mid-freeze and its lease goes
    /// stale exactly as a real partitioned/stalled process's would.
    pub fn freeze_until(&self, tid: usize, now: u64, nthreads: usize) -> Option<u64> {
        let mut thaw = None;
        if let Some((start, end)) = self.partition_window(nthreads) {
            if now >= start && now < end && self.in_partition(tid, nthreads) {
                thaw = Some(end);
            }
        }
        if let Some((start, end)) = self.gray_window(nthreads) {
            if now >= start && now < end && self.gray_rank(nthreads) == Some(tid) {
                thaw = Some(thaw.map_or(end, |t: u64| t.max(end)));
            }
        }
        thaw
    }

    /// The virtual time at which `tid` restarts after its scheduled death,
    /// or `None` if it is never killed or the plan has no restart delay.
    pub fn restart_time(&self, tid: usize, nthreads: usize) -> Option<u64> {
        if self.restart_after_ns == 0 {
            return None;
        }
        Some(self.kill_time(tid, nthreads)? + self.restart_after_ns)
    }

    /// Is `tid` a permanent straggler under this plan?
    pub fn is_straggler(&self, tid: usize) -> bool {
        self.enabled
            && self.straggler_per_mille > 0
            && mix(self.seed, STRAGGLER_SALT, tid as u64, 0) % 1000 < self.straggler_per_mille as u64
    }

    /// Is the directed link `src -> dst` spiked in the window containing
    /// virtual time `now`?
    fn link_spiked(&self, src: usize, dst: usize, now: u64) -> bool {
        self.window_ns > 0
            && self.spike_per_mille > 0
            && src != dst
            && mix(
                self.seed,
                SPIKE_SALT,
                now / self.window_ns,
                ((src as u64) << 32) | dst as u64,
            ) % 1000
                < self.spike_per_mille as u64
    }

    /// If `tid` is stalled at virtual time `now`, the time at which it may
    /// resume (the end of the current run of stalled windows); `None` when
    /// not stalled. Bounded scan so a pathological plan still terminates.
    fn stall_resume(&self, tid: usize, now: u64) -> Option<u64> {
        if self.window_ns == 0 || self.stall_per_mille == 0 {
            return None;
        }
        let stalled = |w: u64| {
            mix(self.seed, STALL_SALT, w, tid as u64) % 1000 < self.stall_per_mille as u64
        };
        let mut w = now / self.window_ns;
        if !stalled(w) {
            return None;
        }
        for _ in 0..64 {
            if !stalled(w + 1) {
                break;
            }
            w += 1;
        }
        Some((w + 1) * self.window_ns)
    }

    /// Faulted cost of a priced operation issued by `tid` against `peer`'s
    /// partition at virtual time `now`, given its modelled cost `base`.
    /// Monotone: never below `base`, so virtual clocks still strictly grow
    /// and the conductor's lookahead invariant is untouched.
    pub fn op_cost(&self, tid: usize, peer: usize, class: OpClass, base: u64, now: u64) -> u64 {
        if !self.enabled {
            return base;
        }
        let mut cost = base;
        if class == OpClass::Lock && self.lock_mult_x16 > 16 {
            cost = cost * self.lock_mult_x16 as u64 / 16;
        }
        if self.link_spiked(tid, peer, now) {
            cost = cost * self.spike_mult_x16 as u64 / 16;
        }
        if let Some(resume) = self.stall_resume(tid, now) {
            // The thread is frozen until `resume`; only then does the
            // operation itself begin.
            cost += resume - now;
        }
        cost.max(base)
    }

    /// Faulted message flight time over the `src -> dst` link at send time
    /// `now` (the spike also congests in-flight traffic).
    pub fn flight_ns(&self, src: usize, dst: usize, base: u64, now: u64) -> u64 {
        if self.enabled && self.link_spiked(src, dst, now) {
            base * self.spike_mult_x16 as u64 / 16
        } else {
            base
        }
    }

    /// Faulted duration of `base` nanoseconds of pure computation on `tid`
    /// (the straggler multiplier).
    pub fn work_ns(&self, tid: usize, base: u64) -> u64 {
        if self.is_straggler(tid) {
            base * self.straggler_mult_x16 as u64 / 16
        } else {
            base
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.crash_active());
        assert_eq!(p.op_cost(0, 1, OpClass::Lock, 1234, 999_999), 1234);
        assert_eq!(p.work_ns(0, 500), 500);
        assert_eq!(p.flight_ns(0, 1, 700, 42), 700);
        assert!(!p.is_straggler(0));
        assert_eq!(p.msg_fate(0, 1, 12345), MsgFate::Delivered);
        assert_eq!(p.killed_rank(8), None);
        assert_eq!(p.kill_time(3, 8), None);
        assert_eq!(p.partition_window(8), None);
        assert!(!p.link_cut(1, 2, 100_000, 8));
        assert_eq!(p.gray_rank(8), None);
        assert_eq!(p.freeze_until(1, 100_000, 8), None);
        assert_eq!(p.restart_time(1, 8), None);
    }

    #[test]
    fn seeded_has_no_crash_faults() {
        // Every pre-existing faulted test and result pins `seeded()` plans;
        // the crash classes must stay off there.
        let p = FaultPlan::seeded(0xFA_17);
        assert!(p.is_active());
        assert!(!p.crash_active());
        for now in (0..1_000_000).step_by(999) {
            assert_eq!(p.msg_fate(0, 1, now), MsgFate::Delivered);
        }
        assert_eq!(p.killed_rank(16), None);
        assert_eq!(p.partition_window(16), None);
        assert_eq!(p.gray_rank(16), None);
        assert_eq!(p.freeze_until(3, 250_000, 16), None);
        assert_eq!(p.restart_time(3, 16), None);
    }

    #[test]
    fn msg_fate_is_deterministic_and_covers_all_classes() {
        let p = FaultPlan::crashy(5);
        assert!(p.crash_active());
        let mut lost = 0;
        let mut dup = 0;
        let mut ok = 0;
        for now in 0..20_000u64 {
            let f = p.msg_fate(1, 2, now * 37);
            assert_eq!(f, p.msg_fate(1, 2, now * 37));
            match f {
                MsgFate::Lost => lost += 1,
                MsgFate::Duplicated => dup += 1,
                MsgFate::Delivered => ok += 1,
            }
        }
        // 30 per mille each, 20k samples: both classes must appear, and
        // delivery must dominate.
        assert!(lost > 0 && dup > 0, "lost={lost} dup={dup}");
        assert!(ok > lost + dup);
        let frac = (lost + dup) as f64 / 20_000.0;
        assert!(frac > 0.02 && frac < 0.12, "crash fraction {frac}");
    }

    #[test]
    fn kill_picks_at_most_one_victim_never_rank_zero() {
        let mut deaths = 0;
        for seed in 0..200u64 {
            let p = FaultPlan::crashy(seed);
            if let Some(victim) = p.killed_rank(8) {
                deaths += 1;
                assert!(victim >= 1 && victim < 8);
                let t = p.kill_time(victim, 8).expect("victim has a kill time");
                assert!(t >= p.kill_min_ns && t < p.kill_min_ns + p.kill_span_ns);
                // Everyone else survives.
                for other in 0..8 {
                    if other != victim {
                        assert_eq!(p.kill_time(other, 8), None);
                    }
                }
            }
        }
        // 350 per mille nominal over 200 plans.
        assert!(deaths > 30 && deaths < 140, "deaths={deaths}");
        // No deaths on single-thread runs.
        assert_eq!(FaultPlan::crashy(1).killed_rank(1), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(7);
        let b = FaultPlan::seeded(7);
        for t in 0..32 {
            assert_eq!(a.is_straggler(t), b.is_straggler(t));
            for now in (0..2_000_000).step_by(61_111) {
                assert_eq!(
                    a.op_cost(t, (t + 1) % 32, OpClass::Scalar, 6_000, now),
                    b.op_cost(t, (t + 1) % 32, OpClass::Scalar, 6_000, now)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(2);
        let fingerprint = |p: &FaultPlan| -> Vec<u64> {
            (0..64)
                .map(|i| p.op_cost(i % 8, (i + 1) % 8, OpClass::Scalar, 6_000, i as u64 * 100_000))
                .collect()
        };
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn cost_is_never_below_base() {
        let p = FaultPlan::seeded(3);
        for now in (0..10_000_000).step_by(37_777) {
            for class in OpClass::all() {
                assert!(p.op_cost(1, 2, class, 418, now) >= 418);
            }
        }
    }

    #[test]
    fn lock_stretch_applies_to_lock_class_only() {
        // A plan with only lock stretching: every lock op is exactly 2x.
        let p = FaultPlan {
            enabled: true,
            seed: 9,
            lock_mult_x16: 32,
            ..FaultPlan::none()
        };
        assert_eq!(p.op_cost(0, 1, OpClass::Lock, 1000, 0), 2000);
        assert_eq!(p.op_cost(0, 1, OpClass::Scalar, 1000, 0), 1000);
    }

    #[test]
    fn stall_delays_until_window_end() {
        // A plan that stalls every window: an op issued mid-window resumes
        // at the end of the bounded run of stalled windows.
        let p = FaultPlan {
            enabled: true,
            seed: 4,
            window_ns: 1_000,
            stall_per_mille: 1000,
            ..FaultPlan::none()
        };
        let cost = p.op_cost(0, 0, OpClass::Poll, 10, 500);
        // 64-window scan bound: resume at (1 + 64) * 1000.
        assert_eq!(cost, (65_000 - 500) + 10);
    }

    #[test]
    fn straggler_set_matches_per_mille_roughly() {
        let p = FaultPlan::seeded(11);
        let frac = (0..4096).filter(|&t| p.is_straggler(t)).count() as f64 / 4096.0;
        // 125 per mille nominal; allow generous sampling slack.
        assert!(frac > 0.06 && frac < 0.20, "straggler fraction {frac}");
    }

    #[test]
    fn spike_is_per_directed_link_and_window() {
        let p = FaultPlan {
            enabled: true,
            seed: 21,
            window_ns: 10_000,
            spike_per_mille: 500,
            spike_mult_x16: 160,
            ..FaultPlan::none()
        };
        // With 50% of windows spiked at 10x, some window/link combination
        // must be spiked and some must not be.
        let mut spiked = 0;
        let mut clean = 0;
        for w in 0..64u64 {
            let c = p.op_cost(0, 1, OpClass::Scalar, 100, w * 10_000);
            if c == 1000 {
                spiked += 1;
            } else if c == 100 {
                clean += 1;
            } else {
                panic!("unexpected cost {c}");
            }
        }
        assert!(spiked > 0 && clean > 0, "spiked={spiked} clean={clean}");
    }

    #[test]
    fn partition_cuts_a_proper_minority_and_heals() {
        // With partitions certain, some seed must draw a window; rank 0
        // never joins the minority, the minority is at most (n-1)/2, and
        // link_cut is symmetric, false inside either side, and false
        // outside the window.
        let mut armed = 0;
        for seed in 0..64u64 {
            let mut p = FaultPlan::partitioned(seed);
            p.partition_per_mille = 1000;
            p.gray_per_mille = 0; // isolate the partition freeze
            let n = 8;
            let Some((start, end)) = p.partition_window(n) else {
                panic!("per_mille=1000 must always arm a partition");
            };
            armed += 1;
            assert!(end > start && end - start == p.partition_dur_ns);
            assert!(!p.in_partition(0, n), "rank 0 must never be cut off");
            let minority: Vec<usize> = (0..n).filter(|&r| p.in_partition(r, n)).collect();
            assert!(!minority.is_empty() && minority.len() <= (n - 1) / 2);
            let inside = minority[0];
            let outside = (1..n).find(|&r| !p.in_partition(r, n)).unwrap();
            let mid = start + (end - start) / 2;
            assert!(p.link_cut(inside, outside, mid, n));
            assert!(p.link_cut(outside, inside, mid, n), "cut is symmetric");
            assert!(!p.link_cut(outside, 0, mid, n), "majority side intact");
            assert!(!p.link_cut(inside, outside, start.saturating_sub(1), n));
            assert!(!p.link_cut(inside, outside, end, n), "healed at end");
            // Members freeze for the window; outsiders never do.
            assert_eq!(p.freeze_until(inside, mid, n), Some(end));
            assert_eq!(p.freeze_until(outside, mid, n), None);
            assert_eq!(p.freeze_until(inside, end, n), None);
        }
        assert_eq!(armed, 64);
    }

    #[test]
    fn unhealed_partition_uses_sentinel_duration() {
        let mut p = FaultPlan::partitioned(3);
        p.partition_per_mille = 1000;
        p.partition_dur_ns = 0;
        let (start, end) = p.partition_window(8).unwrap();
        assert_eq!(end - start, UNHEALED_NS);
    }

    #[test]
    fn gray_rank_stalls_past_window_then_resumes() {
        let mut p = FaultPlan::partitioned(17);
        p.partition_per_mille = 0;
        p.gray_per_mille = 1000;
        let n = 8;
        let g = p.gray_rank(n).expect("per_mille=1000 must arm a gray rank");
        assert!(g >= 1 && g < n, "never rank 0");
        let (start, end) = p.gray_window(n).unwrap();
        assert_eq!(end - start, p.gray_stall_ns);
        let mid = start + 1;
        assert_eq!(p.freeze_until(g, mid, n), Some(end));
        let healthy = (1..n).find(|&r| r != g).unwrap();
        assert_eq!(p.freeze_until(healthy, mid, n), None);
        assert_eq!(p.freeze_until(g, end, n), None, "resumes after window");
        // Gray failure is a stall, not a cut: links stay up.
        assert!(!p.link_cut(g, healthy, mid, n));
    }

    #[test]
    fn restart_follows_kill_by_fixed_delay() {
        let p = FaultPlan::partitioned(29);
        let n = 8;
        assert!(p.crash_active());
        if let Some(victim) = p.killed_rank(n) {
            let kill = p.kill_time(victim, n).unwrap();
            assert_eq!(p.restart_time(victim, n), Some(kill + p.restart_after_ns));
        }
        // A rank that is never killed never restarts.
        assert_eq!(p.restart_time(0, n), None);
        // And with restarts disarmed, kills stay permanent.
        let mut q = p;
        q.restart_after_ns = 0;
        if let Some(victim) = q.killed_rank(n) {
            assert_eq!(q.restart_time(victim, n), None);
        }
    }

    #[test]
    fn overlapping_partition_and_gray_freeze_to_the_later_thaw() {
        let mut p = FaultPlan::partitioned(1);
        p.partition_per_mille = 1000;
        p.gray_per_mille = 1000;
        let n = 9;
        let (ps, pe) = p.partition_window(n).unwrap();
        let (gs, ge) = p.gray_window(n).unwrap();
        let g = p.gray_rank(n).unwrap();
        if p.in_partition(g, n) {
            let lo = ps.max(gs);
            let hi = pe.min(ge);
            if lo < hi {
                assert_eq!(p.freeze_until(g, lo, n), Some(pe.max(ge)));
            }
        }
    }
}
