//! Native backend: real OS threads on real shared memory.
//!
//! This is the paper's shared-memory setting — communication is whatever the
//! host's cache-coherence fabric provides. Scalar cells are atomics, locks
//! are spinlocks (UPC locks are user-level objects with similar behaviour at
//! low contention), and item areas / mailboxes are short-critical-section
//! mutex-protected buffers standing in for coherent memory copies.
//!
//! `work()` performs no delay (the caller already did the real computation);
//! it only maintains the same accounting as the simulator so reports are
//! uniform across backends. `now()` is wall-clock nanoseconds since cluster
//! construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::comm::{Comm, Item, SpaceConfig};
use crate::machine::MachineModel;
use crate::msg::Msg;
use crate::stats::CommStats;

/// Report produced by [`NativeCluster::run`].
#[derive(Debug)]
pub struct NativeReport<R> {
    /// Per-thread closure results, in thread order.
    pub results: Vec<R>,
    /// Wall-clock nanoseconds from the start barrier to the last retirement.
    pub makespan_ns: u64,
    /// Per-thread wall-clock nanoseconds to completion.
    pub clocks: Vec<u64>,
    /// Per-thread communication statistics.
    pub stats: Vec<CommStats>,
    /// Final scalar contents (for assertions).
    pub scalars: Vec<Vec<i64>>,
}

impl<R> NativeReport<R> {
    /// Final value of scalar `var` with affinity to `thread`.
    pub fn final_scalar(&self, thread: usize, var: usize) -> i64 {
        self.scalars[thread][var]
    }

    /// Aggregate statistics over all threads.
    pub fn total_stats(&self) -> CommStats {
        let mut acc = CommStats::default();
        for s in &self.stats {
            acc.merge(s);
        }
        acc
    }
}

/// Pads each scalar/lock cell to its own cache line so cross-thread atomics
/// on neighbouring cells do not false-share (what `crossbeam::utils::CachePadded`
/// provides; inlined here to keep the workspace dependency-free).
#[repr(align(128))]
struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    fn new(v: T) -> CachePadded<T> {
        CachePadded(v)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

struct Partition<T> {
    scalars: Vec<CachePadded<AtomicI64>>,
    locks: Vec<CachePadded<AtomicBool>>,
    area: Mutex<Vec<T>>,
    mailbox: Mutex<VecDeque<Msg<T>>>,
}

struct Space<T> {
    partitions: Vec<Partition<T>>,
    machine: MachineModel,
    epoch: Instant,
}

/// A native cluster: construct, then [`NativeCluster::run`] a worker closure
/// on every OS thread.
pub struct NativeCluster<T: Item> {
    space: Arc<Space<T>>,
    nthreads: usize,
}

impl<T: Item> NativeCluster<T> {
    /// Create a cluster of `nthreads` OS threads sharing one address space.
    /// The `machine` model is used only for accounting (`work()` charges)
    /// and for `machine()` introspection — no artificial delays are added.
    pub fn new(machine: MachineModel, nthreads: usize, cfg: SpaceConfig) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        let partitions = (0..nthreads)
            .map(|_| Partition {
                scalars: (0..cfg.scalars)
                    .map(|_| CachePadded::new(AtomicI64::new(0)))
                    .collect(),
                locks: (0..cfg.locks)
                    .map(|_| CachePadded::new(AtomicBool::new(false)))
                    .collect(),
                area: Mutex::new(Vec::new()),
                mailbox: Mutex::new(VecDeque::new()),
            })
            .collect();
        NativeCluster {
            space: Arc::new(Space {
                partitions,
                machine,
                epoch: Instant::now(),
            }),
            nthreads,
        }
    }

    /// Run `f` on every thread and collect the report.
    pub fn run<R, F>(self, f: F) -> NativeReport<R>
    where
        R: Send,
        F: Fn(&mut NativeComm<T>) -> R + Sync,
    {
        let n = self.nthreads;
        let start = Instant::now();
        let mut results: Vec<Option<(R, CommStats, u64)>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (tid, slot) in results.iter_mut().enumerate() {
                let f = &f;
                let space = Arc::clone(&self.space);
                std::thread::Builder::new()
                    .name(format!("upc-{tid}"))
                    .spawn_scoped(scope, move || {
                        let mut comm = NativeComm {
                            space,
                            tid,
                            stats: CommStats::default(),
                        };
                        let r = f(&mut comm);
                        let elapsed = start.elapsed().as_nanos() as u64;
                        *slot = Some((r, comm.stats, elapsed));
                    })
                    .expect("spawn native thread");
            }
        });

        let makespan_ns = start.elapsed().as_nanos() as u64;
        let mut out_results = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut clocks = Vec::with_capacity(n);
        for slot in results {
            let (r, s, c) = slot.expect("thread result");
            out_results.push(r);
            stats.push(s);
            clocks.push(c);
        }
        let scalars = self
            .space
            .partitions
            .iter()
            .map(|p| p.scalars.iter().map(|a| a.load(Ordering::SeqCst)).collect())
            .collect();
        NativeReport {
            results: out_results,
            makespan_ns,
            clocks,
            stats,
            scalars,
        }
    }
}

/// Per-thread handle for the native cluster. Implements [`Comm`].
pub struct NativeComm<T: Item> {
    space: Arc<Space<T>>,
    tid: usize,
    stats: CommStats,
}

impl<T: Item> Comm<T> for NativeComm<T> {
    fn my_id(&self) -> usize {
        self.tid
    }

    fn n_threads(&self) -> usize {
        self.space.partitions.len()
    }

    fn machine(&self) -> &MachineModel {
        &self.space.machine
    }

    fn now(&self) -> u64 {
        self.space.epoch.elapsed().as_nanos() as u64
    }

    fn work(&mut self, units: u64) {
        // The real work already happened on this CPU; account it only.
        self.stats.work_ns += units * self.space.machine.node_ns;
    }

    fn poll(&mut self) {
        self.stats.polls += 1;
        std::thread::yield_now();
    }

    fn advance_idle(&mut self, ns: u64) {
        self.stats.comm_ns += ns;
        // Idle backoff: on oversubscribed hosts the waiting thread must let
        // the working threads run or spin-waits can starve them.
        std::thread::yield_now();
    }

    fn get(&mut self, thread: usize, var: usize) -> i64 {
        self.stats.gets += 1;
        self.space.partitions[thread].scalars[var].load(Ordering::SeqCst)
    }

    fn put(&mut self, thread: usize, var: usize, val: i64) {
        self.stats.puts += 1;
        self.space.partitions[thread].scalars[var].store(val, Ordering::SeqCst);
    }

    fn cas(&mut self, thread: usize, var: usize, expected: i64, new: i64) -> i64 {
        self.stats.atomics += 1;
        match self.space.partitions[thread].scalars[var].compare_exchange(
            expected,
            new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(v) => v,
            Err(v) => v,
        }
    }

    fn add(&mut self, thread: usize, var: usize, delta: i64) -> i64 {
        self.stats.atomics += 1;
        self.space.partitions[thread].scalars[var].fetch_add(delta, Ordering::SeqCst)
    }

    fn try_lock(&mut self, thread: usize, lock: usize) -> bool {
        let ok = self.space.partitions[thread].locks[lock]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            self.stats.lock_acquires += 1;
        } else {
            self.stats.lock_failures += 1;
        }
        ok
    }

    fn lock(&mut self, thread: usize, lock: usize) {
        let cell = &self.space.partitions[thread].locks[lock];
        loop {
            if cell
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.lock_acquires += 1;
                return;
            }
            while cell.load(Ordering::Relaxed) {
                std::hint::spin_loop();
                std::thread::yield_now(); // single-core friendliness
            }
        }
    }

    fn unlock(&mut self, thread: usize, lock: usize) {
        self.stats.unlocks += 1;
        let was = self.space.partitions[thread].locks[lock].swap(false, Ordering::Release);
        assert!(was, "unlock of a free lock");
    }

    fn area_len(&mut self, thread: usize) -> usize {
        self.stats.gets += 1;
        self.space.partitions[thread].area.lock().unwrap().len()
    }

    fn area_read(&mut self, thread: usize, offset: usize, len: usize, dst: &mut Vec<T>) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += len as u64;
        let area = self.space.partitions[thread].area.lock().unwrap();
        assert!(
            offset + len <= area.len(),
            "area_read out of range: {}..{} of {}",
            offset,
            offset + len,
            area.len()
        );
        dst.extend_from_slice(&area[offset..offset + len]);
    }

    fn area_write(&mut self, thread: usize, offset: usize, src: &[T]) {
        self.stats.bulk_ops += 1;
        self.stats.bulk_items += src.len() as u64;
        let mut area = self.space.partitions[thread].area.lock().unwrap();
        if area.len() < offset + src.len() {
            area.resize(offset + src.len(), T::default());
        }
        area[offset..offset + src.len()].copy_from_slice(src);
    }

    fn area_truncate(&mut self, thread: usize, len: usize) {
        self.stats.puts += 1;
        let mut area = self.space.partitions[thread].area.lock().unwrap();
        assert!(len <= area.len(), "truncate beyond area length");
        area.truncate(len);
    }

    fn send(&mut self, dst: usize, tag: i64, meta: [i64; 4], payload: &[T]) {
        self.stats.msgs_sent += 1;
        self.stats.msg_items_sent += payload.len() as u64;
        let msg = Msg {
            src: self.tid,
            tag,
            meta,
            payload: payload.to_vec(),
        };
        self.space.partitions[dst].mailbox.lock().unwrap().push_back(msg);
    }

    fn has_msg(&mut self, tag: Option<i64>) -> bool {
        self.stats.gets += 1;
        let mb = self.space.partitions[self.tid].mailbox.lock().unwrap();
        mb.iter().any(|m| tag.is_none_or(|t| m.tag == t))
    }

    fn try_recv(&mut self, tag: Option<i64>) -> Option<Msg<T>> {
        let mut mb = self.space.partitions[self.tid].mailbox.lock().unwrap();
        let idx = mb.iter().position(|m| tag.is_none_or(|t| m.tag == t))?;
        let msg = mb.remove(idx);
        if msg.is_some() {
            self.stats.msgs_received += 1;
        }
        msg
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> NativeCluster<u64> {
        NativeCluster::new(MachineModel::smp(), n, SpaceConfig::default())
    }

    #[test]
    fn counter_is_atomic_across_threads() {
        let n = 4;
        let report = cluster(n).run(|c| {
            for _ in 0..1000 {
                c.add(0, 0, 1);
            }
        });
        assert_eq!(report.final_scalar(0, 0), (n * 1000) as i64);
    }

    #[test]
    fn cas_exactly_one_winner() {
        let report = cluster(4).run(|c| c.cas(0, 0, 0, c.my_id() as i64 + 1) == 0);
        assert_eq!(report.results.iter().filter(|&&w| w).count(), 1);
    }

    #[test]
    fn lock_protects_torn_pair() {
        let report = cluster(4).run(|c| {
            for _ in 0..200 {
                c.lock(2, 1);
                let a = c.get(2, 4);
                let b = c.get(2, 5);
                assert_eq!(a, b, "torn read under lock");
                c.put(2, 4, a + 1);
                c.put(2, 5, b + 1);
                c.unlock(2, 1);
            }
        });
        assert_eq!(report.final_scalar(2, 4), 800);
        assert_eq!(report.final_scalar(2, 5), 800);
    }

    #[test]
    fn message_roundtrip() {
        let report = cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.send(1, 9, [123, 0, 0, 0], &[7u64, 8]);
                0
            } else {
                loop {
                    if let Some(m) = c.try_recv(Some(9)) {
                        assert_eq!(m.src, 0);
                        assert_eq!(m.meta[0], 123);
                        return (m.payload[0] + m.payload[1]) as i64;
                    }
                    c.poll();
                }
            }
        });
        assert_eq!(report.results[1], 15);
    }

    #[test]
    fn area_transfer_between_threads() {
        let report = cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.area_write(0, 0, &[1u64, 2, 3]);
                c.put(1, 0, 1);
                0
            } else {
                while c.get(1, 0) == 0 {
                    c.poll();
                }
                let mut buf = Vec::new();
                c.area_read(0, 0, 3, &mut buf);
                buf.iter().sum::<u64>() as i64
            }
        });
        assert_eq!(report.results[1], 6);
    }

    #[test]
    fn work_accumulates_accounting_only() {
        let report = cluster(1).run(|c| {
            c.work(100);
            c.stats().work_ns
        });
        assert_eq!(report.results[0], 100 * MachineModel::smp().node_ns);
        // Wall time should be far less than 100 "node times" of real delay —
        // work() must not sleep. (Loose bound: just require it finished.)
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn single_thread_cluster() {
        let report = cluster(1).run(|c| {
            c.put(0, 7, -5);
            c.get(0, 7)
        });
        assert_eq!(report.results, vec![-5]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn cluster(n: usize) -> NativeCluster<u64> {
        NativeCluster::new(MachineModel::smp(), n, SpaceConfig::default())
    }

    #[test]
    fn area_truncate_and_len() {
        let report = cluster(1).run(|c| {
            c.area_write(0, 4, &[9u64; 6]);
            let grown = c.area_len(0);
            c.area_truncate(0, 2);
            (grown, c.area_len(0))
        });
        assert_eq!(report.results[0], (10, 2));
    }

    #[test]
    fn has_msg_tag_filter() {
        let report = cluster(2).run(|c| {
            if c.my_id() == 0 {
                c.send(1, 5, [0; 4], &[1u64]);
                (false, false)
            } else {
                while !c.has_msg(None) {
                    c.poll();
                }
                (c.has_msg(Some(6)), c.has_msg(Some(5)))
            }
        });
        assert_eq!(report.results[1], (false, true));
    }

    #[test]
    fn stats_count_operations() {
        let report = cluster(1).run(|c| {
            c.put(0, 0, 1);
            let _ = c.get(0, 0);
            let _ = c.add(0, 0, 1);
            let _ = c.cas(0, 0, 2, 3);
            assert!(c.try_lock(0, 0));
            c.unlock(0, 0);
            c.advance_idle(100);
            c.stats().clone()
        });
        let s = &report.results[0];
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.atomics, 2);
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.unlocks, 1);
        assert_eq!(s.comm_ns, 100);
    }

    #[test]
    fn try_lock_failure_is_counted() {
        let report = cluster(2).run(|c| {
            if c.my_id() == 0 {
                assert!(c.try_lock(0, 1));
                c.put(0, 3, 1); // signal: lock held
                while c.get(0, 4) == 0 {
                    c.poll();
                }
                c.unlock(0, 1);
                0
            } else {
                while c.get(0, 3) == 0 {
                    c.poll();
                }
                let failed = !c.try_lock(0, 1);
                c.put(0, 4, 1); // release the holder
                assert!(failed, "lock appeared free while held");
                c.stats().lock_failures as i64
            }
        });
        assert_eq!(report.results[1], 1);
    }

    #[test]
    fn machine_and_ids_exposed() {
        let report = cluster(3).run(|c| {
            assert_eq!(c.n_threads(), 3);
            assert_eq!(c.machine().name, "smp");
            c.my_id()
        });
        assert_eq!(report.results, vec![0, 1, 2]);
    }

    #[test]
    fn now_is_monotonic() {
        let report = cluster(1).run(|c| {
            let a = c.now();
            for _ in 0..100 {
                c.poll();
            }
            let b = c.now();
            a <= b
        });
        assert!(report.results[0]);
    }
}
