//! The [`Comm`] trait: the UPC-flavoured operation set shared by both
//! backends.
//!
//! Every UPC thread owns a *partition* of the global space holding:
//!
//! - `i64` **scalar cells** (UPC shared scalars with affinity to the thread),
//! - **locks** (`upc_lock_t` allocated with affinity to the thread),
//! - an **item area**: a growable array of `T` supporting bulk one-sided
//!   transfers (`upc_memget`/`upc_memput`) — this is where the shared region
//!   of each DFS stack lives,
//! - a **mailbox** of typed messages (for the MPI-style baseline).
//!
//! Handles are *per-thread* and methods take `&mut self`: a thread issues its
//! own operations sequentially, exactly like a UPC program. Remote progress
//! happens through the backend (real parallelism in `native`, virtual-time
//! scheduling in `sim`).

use crate::machine::MachineModel;
use crate::msg::Msg;
use crate::stats::CommStats;

/// Items that can live in the global space and in message payloads.
///
/// Blanket-implemented: 24-byte UTS nodes, integers, and any other small
/// `Copy` task descriptor qualify automatically.
pub trait Item: Copy + Send + Sync + Default + 'static {}
impl<X: Copy + Send + Sync + Default + 'static> Item for X {}

/// Cost/scheduling classification of a [`Comm`] operation.
///
/// Every operation the simulator conducts falls into one of these families;
/// the family determines which [`MachineModel`] constant prices it and lets
/// the conductor report *what kind* of traffic dominated a run (the
/// [`crate::stats::ConductorStats`] fast-path histogram). The dominant class
/// in the paper's workloads is `Poll`/`Scalar`: spin loops probing local
/// request/response cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `poll()` progress hooks (`bupc_poll()`).
    Poll,
    /// Small one-sided scalar reads/writes, including area-length and
    /// area-truncate bookkeeping references.
    Scalar,
    /// Atomic read-modify-write (compare-and-swap, fetch-add).
    Atomic,
    /// Lock acquire/release traffic.
    Lock,
    /// Bulk one-sided area transfers (`upc_memget`/`upc_memput`).
    Bulk,
    /// Message sends, mailbox probes, and receives.
    Message,
}

impl OpClass {
    /// Number of distinct classes (array-index bound for histograms).
    pub const COUNT: usize = 6;

    /// All classes, in histogram index order.
    pub fn all() -> [OpClass; OpClass::COUNT] {
        [
            OpClass::Poll,
            OpClass::Scalar,
            OpClass::Atomic,
            OpClass::Lock,
            OpClass::Bulk,
            OpClass::Message,
        ]
    }

    /// Stable histogram index of this class.
    pub fn index(self) -> usize {
        match self {
            OpClass::Poll => 0,
            OpClass::Scalar => 1,
            OpClass::Atomic => 2,
            OpClass::Lock => 3,
            OpClass::Bulk => 4,
            OpClass::Message => 5,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Poll => "poll",
            OpClass::Scalar => "scalar",
            OpClass::Atomic => "atomic",
            OpClass::Lock => "lock",
            OpClass::Bulk => "bulk",
            OpClass::Message => "message",
        }
    }
}

/// Shape of each thread's partition of the global space.
#[derive(Clone, Copy, Debug)]
pub struct SpaceConfig {
    /// Scalar cells per thread.
    pub scalars: usize,
    /// Locks per thread.
    pub locks: usize,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            scalars: 24,
            locks: 4,
        }
    }
}

/// One thread's handle on the partitioned global address space.
pub trait Comm<T: Item>: Send {
    /// This thread's id (UPC `MYTHREAD`).
    fn my_id(&self) -> usize;
    /// Total number of threads (UPC `THREADS`).
    fn n_threads(&self) -> usize;
    /// The platform cost model.
    fn machine(&self) -> &MachineModel;
    /// Current time in nanoseconds: virtual on the simulator, wall-clock on
    /// the native backend.
    fn now(&self) -> u64;

    /// Charge `units` node-explorations of useful work. On the simulator
    /// this advances this thread's virtual clock by `units * node_ns`;
    /// on the native backend the real work was already done by the caller
    /// and only the accounting is updated.
    fn work(&mut self, units: u64);

    /// Progress hook (`bupc_poll()`): cheap; lets the simulator interleave
    /// other threads and the native backend issue a spin-loop hint.
    fn poll(&mut self);

    /// Charge `ns` of idle/backoff time (spin-wait throttling). On the
    /// simulator this advances the virtual clock without a memory effect; on
    /// the native backend it is a spin hint. Unlike [`Comm::work`] the time
    /// is accounted as overhead, not useful work.
    fn advance_idle(&mut self, ns: u64);

    /// One-sided read of a scalar cell.
    fn get(&mut self, thread: usize, var: usize) -> i64;
    /// One-sided write of a scalar cell.
    fn put(&mut self, thread: usize, var: usize, val: i64);
    /// Atomic compare-and-swap on a scalar cell; returns the value observed
    /// (equal to `expected` iff the swap happened).
    fn cas(&mut self, thread: usize, var: usize, expected: i64, new: i64) -> i64;
    /// Atomic fetch-add on a scalar cell; returns the previous value.
    fn add(&mut self, thread: usize, var: usize, delta: i64) -> i64;

    /// Attempt to acquire a lock; `false` if already held.
    fn try_lock(&mut self, thread: usize, lock: usize) -> bool;
    /// Acquire a lock, waiting (and paying retry costs) until available.
    fn lock(&mut self, thread: usize, lock: usize) {
        while !self.try_lock(thread, lock) {
            self.poll();
        }
    }
    /// Release a lock. Panics if the lock is not held (algorithm bug).
    fn unlock(&mut self, thread: usize, lock: usize);

    /// Current length of `thread`'s item area.
    fn area_len(&mut self, thread: usize) -> usize;
    /// Bulk one-sided read: append `len` items starting at `offset` of
    /// `thread`'s area onto `dst`. Panics if out of range.
    fn area_read(&mut self, thread: usize, offset: usize, len: usize, dst: &mut Vec<T>);
    /// Bulk one-sided write of `src` into `thread`'s area at `offset`,
    /// growing the area (default-filled) as needed.
    fn area_write(&mut self, thread: usize, offset: usize, src: &[T]);
    /// Shrink own/remote area to `len` items (used to reclaim dead space
    /// below a steal frontier). Panics if `len` exceeds the current length.
    fn area_truncate(&mut self, thread: usize, len: usize);

    /// Send a message to `dst`'s mailbox (non-blocking, buffered).
    ///
    /// Delivery is **at-most-twice, possibly never** under a
    /// [`crate::FaultPlan`] with crash faults active: the simulator hashes
    /// a [`crate::fault::MsgFate`] per send, silently dropping or
    /// double-delivering it (the sender is charged either way). Protocols
    /// that must survive such plans carry their own acknowledgement and
    /// re-send layer — see the lineage tracking in `crates/core`. With no
    /// crash classes active, delivery is exactly-once and in order.
    fn send(&mut self, dst: usize, tag: i64, meta: [i64; 4], payload: &[T]);
    /// Does a delivered message (optionally restricted to `tag`) await us?
    /// (MPI `Iprobe`.)
    fn has_msg(&mut self, tag: Option<i64>) -> bool;
    /// Receive the earliest delivered message (optionally restricted to
    /// `tag`), if any.
    fn try_recv(&mut self, tag: Option<i64>) -> Option<Msg<T>>;

    /// Counters accumulated by this handle.
    fn stats(&self) -> &CommStats;
}
