//! # pgas — a UPC-like partitioned global address space substrate
//!
//! The paper's implementations are written in UPC: a global address space
//! partitioned across threads, with *affinity* (each shared object lives with
//! one thread), one-sided reads/writes (`upc_memget`/`upc_memput`), global
//! locks (`upc_lock_t`), and a progress hook (`bupc_poll()`).
//!
//! This crate reproduces those semantics behind the [`Comm`] trait, with two
//! interchangeable backends:
//!
//! - [`native`]: real OS threads on real shared memory (atomics + mutexes).
//!   This is the paper's *shared memory* setting (§4.3): communication is as
//!   fast as the machine's cache coherence.
//! - [`sim`]: a deterministic **virtual-time** executor. Every simulated UPC
//!   thread is an OS thread, but exactly one runs at a time and threads are
//!   scheduled in global virtual-clock order, so execution is sequentially
//!   consistent in virtual time and fully deterministic. Each operation
//!   advances the issuing thread's clock by a cost taken from a
//!   [`MachineModel`]; this reproduces the paper's *distributed memory*
//!   setting (§4.2) — 2008-era Infiniband latencies, hundreds-to-thousands
//!   of threads — on a single host. A lookahead fast path keeps the
//!   scheduling overhead off the simulation's hot loops without changing a
//!   single virtual result (see `docs/conductor.md`).
//!
//! The global space itself is deliberately simple, shaped by what the
//! paper's five load balancers need:
//!
//! - per-thread **scalar cells** (`i64`) with one-sided get/put/cas/add —
//!   UPC shared scalar variables (`work_avail`, steal-request cells, ...),
//! - per-thread **locks** — `upc_lock_t`,
//! - a per-thread **item area** (a growable array of `T`) with bulk
//!   one-sided reads/writes — the shared region of each DFS stack,
//! - per-thread **mailboxes** carrying typed messages — enough to host an
//!   MPI-style runtime (see the `mpisim` crate) over the same cost model.
//!
//! ```
//! use pgas::{sim::SimCluster, MachineModel, SpaceConfig, Comm};
//!
//! let cluster = SimCluster::<u64>::new(MachineModel::smp(), 4, SpaceConfig::default());
//! let report = cluster.run(|mut c| {
//!     // every thread increments a counter with affinity to thread 0
//!     c.add(0, 0, 1);
//!     c.my_id()
//! });
//! assert_eq!(report.results, vec![0, 1, 2, 3]);
//! assert_eq!(report.final_scalar(0, 0), 4);
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod collectives;
pub mod comm;
pub mod fault;
pub mod machine;
pub mod msg;
pub mod native;
pub mod sim;
#[cfg(target_arch = "x86_64")]
pub(crate) mod sim_par;
pub mod stats;

pub use arrival::{ArrivalProcess, ArrivalSpec};
pub use collectives::Collectives;
pub use comm::{Comm, OpClass, SpaceConfig};
pub use fault::FaultPlan;
pub use machine::{Distance, MachineModel};
pub use msg::Msg;
pub use stats::{CommStats, ConductorStats};
