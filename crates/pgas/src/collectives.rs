//! Tree-based collective operations over [`Comm`].
//!
//! The UPC UTS implementation combines per-thread node counts with
//! `upc_all_reduce` once the search terminates; UPC programs also lean on
//! `upc_barrier`. These collectives provide the same facilities over the
//! substrate's one-sided operations, with the usual O(log n) critical path:
//! values combine up a binary tree rooted at thread 0 and the result
//! broadcasts back down the same tree.
//!
//! All operations are *generation-stamped*: a [`Collectives`] handle carries
//! a per-thread call counter, so the same cells can be reused across any
//! number of collective calls as long as every thread performs the same
//! sequence of calls (the standard SPMD contract).

use crate::comm::{Comm, Item};

/// Per-thread handle for collective operations.
///
/// Uses six consecutive scalar cells starting at `base` in every thread's
/// partition; the caller guarantees those cells are not used for anything
/// else. All threads must construct with the same `base` and issue the same
/// sequence of collective calls.
#[derive(Debug)]
pub struct Collectives {
    base: usize,
    generation: i64,
}

/// Cell offsets within the reserved block.
const PARTIAL: usize = 0; // value being reduced (this thread's subtree sum)
const READY: usize = 1; // generation stamp: PARTIAL is valid
const RESULT: usize = 2; // broadcast result
const RESULT_READY: usize = 3; // generation stamp: RESULT is valid
const BARRIER_ARRIVE: usize = 4; // generation stamp: subtree has arrived
const BARRIER_RELEASE: usize = 5; // generation stamp: barrier released

/// Number of scalar cells [`Collectives`] reserves per thread.
pub const COLLECTIVE_CELLS: usize = 6;

/// Backoff between spin iterations while waiting on a flag cell.
const SPIN_BACKOFF_NS: u64 = 1_000;

fn children(me: usize, n: usize) -> (Option<usize>, Option<usize>) {
    let l = 2 * me + 1;
    let r = 2 * me + 2;
    ((l < n).then_some(l), (r < n).then_some(r))
}

fn parent(me: usize) -> usize {
    (me - 1) / 2
}

impl Collectives {
    /// Create a handle over cells `base .. base + COLLECTIVE_CELLS`.
    pub fn new(base: usize) -> Collectives {
        Collectives {
            base,
            generation: 0,
        }
    }

    fn wait_flag<T: Item, C: Comm<T>>(&self, comm: &mut C, thread: usize, cell: usize, gen: i64) {
        while comm.get(thread, self.base + cell) < gen {
            comm.advance_idle(SPIN_BACKOFF_NS);
        }
    }

    /// Global sum of `value` across all threads; every thread receives the
    /// total. O(log n) depth: combine up the tree, broadcast down.
    pub fn all_reduce_sum<T: Item, C: Comm<T>>(&mut self, comm: &mut C, value: i64) -> i64 {
        self.generation += 1;
        let gen = self.generation;
        let me = comm.my_id();
        let n = comm.n_threads();
        let (l, r) = children(me, n);

        // Combine: wait for each child's partial, add, publish own.
        let mut acc = value;
        for c in [l, r].into_iter().flatten() {
            self.wait_flag(comm, c, READY, gen);
            acc += comm.get(c, self.base + PARTIAL);
        }
        comm.put(me, self.base + PARTIAL, acc);
        comm.put(me, self.base + READY, gen);

        // Broadcast: root publishes, everyone else waits on the parent.
        if me == 0 {
            comm.put(0, self.base + RESULT, acc);
            comm.put(0, self.base + RESULT_READY, gen);
        } else {
            let p = parent(me);
            self.wait_flag(comm, p, RESULT_READY, gen);
            let total = comm.get(p, self.base + RESULT);
            comm.put(me, self.base + RESULT, total);
            comm.put(me, self.base + RESULT_READY, gen);
            return total;
        }
        acc
    }

    /// Global maximum, same structure as [`Collectives::all_reduce_sum`].
    pub fn all_reduce_max<T: Item, C: Comm<T>>(&mut self, comm: &mut C, value: i64) -> i64 {
        self.generation += 1;
        let gen = self.generation;
        let me = comm.my_id();
        let n = comm.n_threads();
        let (l, r) = children(me, n);

        let mut acc = value;
        for c in [l, r].into_iter().flatten() {
            self.wait_flag(comm, c, READY, gen);
            acc = acc.max(comm.get(c, self.base + PARTIAL));
        }
        comm.put(me, self.base + PARTIAL, acc);
        comm.put(me, self.base + READY, gen);

        if me == 0 {
            comm.put(0, self.base + RESULT, acc);
            comm.put(0, self.base + RESULT_READY, gen);
            acc
        } else {
            let p = parent(me);
            self.wait_flag(comm, p, RESULT_READY, gen);
            let total = comm.get(p, self.base + RESULT);
            comm.put(me, self.base + RESULT, total);
            comm.put(me, self.base + RESULT_READY, gen);
            total
        }
    }

    /// Broadcast `value` from thread 0 to everyone.
    pub fn broadcast<T: Item, C: Comm<T>>(&mut self, comm: &mut C, value: i64) -> i64 {
        self.generation += 1;
        let gen = self.generation;
        let me = comm.my_id();
        if me == 0 {
            comm.put(0, self.base + RESULT, value);
            comm.put(0, self.base + RESULT_READY, gen);
            value
        } else {
            let p = parent(me);
            self.wait_flag(comm, p, RESULT_READY, gen);
            let v = comm.get(p, self.base + RESULT);
            comm.put(me, self.base + RESULT, v);
            comm.put(me, self.base + RESULT_READY, gen);
            v
        }
    }

    /// Full barrier (`upc_barrier`): arrive up the tree, release down it.
    pub fn barrier<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        self.generation += 1;
        let gen = self.generation;
        let me = comm.my_id();
        let n = comm.n_threads();
        let (l, r) = children(me, n);

        for c in [l, r].into_iter().flatten() {
            self.wait_flag(comm, c, BARRIER_ARRIVE, gen);
        }
        comm.put(me, self.base + BARRIER_ARRIVE, gen);

        if me == 0 {
            comm.put(0, self.base + BARRIER_RELEASE, gen);
        } else {
            let p = parent(me);
            self.wait_flag(comm, p, BARRIER_RELEASE, gen);
            comm.put(me, self.base + BARRIER_RELEASE, gen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use crate::sim::SimCluster;
    use crate::SpaceConfig;

    fn cfg() -> SpaceConfig {
        SpaceConfig {
            scalars: COLLECTIVE_CELLS + 2,
            locks: 1,
        }
    }

    #[test]
    fn all_reduce_sum_of_ids() {
        for n in [1usize, 2, 3, 7, 16] {
            let cluster: SimCluster<u64> = SimCluster::new(MachineModel::smp(), n, cfg());
            let report = cluster.run(|c| {
                let mut coll = Collectives::new(0);
                coll.all_reduce_sum(c, c.my_id() as i64)
            });
            let want = (n * (n - 1) / 2) as i64;
            assert!(
                report.results.iter().all(|&r| r == want),
                "n={n}: {:?}",
                report.results
            );
        }
    }

    #[test]
    fn all_reduce_max() {
        let n = 9;
        let cluster: SimCluster<u64> = SimCluster::new(MachineModel::kittyhawk(), n, cfg());
        let report = cluster.run(|c| {
            let mut coll = Collectives::new(0);
            // A value that is not monotone in thread id.
            let v = ((c.my_id() * 37) % 11) as i64;
            coll.all_reduce_max(c, v)
        });
        let want = (0..n).map(|i| ((i * 37) % 11) as i64).max().unwrap();
        assert!(report.results.iter().all(|&r| r == want));
    }

    #[test]
    fn repeated_collectives_reuse_cells() {
        let n = 5;
        let cluster: SimCluster<u64> = SimCluster::new(MachineModel::smp(), n, cfg());
        let report = cluster.run(|c| {
            let mut coll = Collectives::new(0);
            let mut sums = Vec::new();
            for round in 0..4i64 {
                sums.push(coll.all_reduce_sum(c, round + c.my_id() as i64));
            }
            sums
        });
        for round in 0..4usize {
            let want = (0..n).map(|i| round as i64 + i as i64).sum::<i64>();
            for r in &report.results {
                assert_eq!(r[round], want, "round {round}");
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let n = 12;
        let cluster: SimCluster<u64> = SimCluster::new(MachineModel::topsail(), n, cfg());
        let report = cluster.run(|c| {
            let mut coll = Collectives::new(0);
            coll.broadcast(c, if c.my_id() == 0 { 777 } else { -1 })
        });
        assert!(report.results.iter().all(|&r| r == 777));
    }

    #[test]
    fn barrier_separates_phases() {
        // Every thread bumps a counter before the barrier; after the
        // barrier, everyone must observe the full count.
        let n = 8;
        let cluster: SimCluster<u64> = SimCluster::new(MachineModel::smp(), n, cfg());
        let report = cluster.run(|c| {
            let mut coll = Collectives::new(0);
            c.add(0, COLLECTIVE_CELLS, 1); // scratch cell beyond the block
            coll.barrier(c);
            c.get(0, COLLECTIVE_CELLS)
        });
        assert!(
            report.results.iter().all(|&r| r == n as i64),
            "{:?}",
            report.results
        );
    }

    #[test]
    fn mixed_sequence_stays_consistent() {
        let n = 6;
        let cluster: SimCluster<u64> = SimCluster::new(MachineModel::kittyhawk(), n, cfg());
        let report = cluster.run(|c| {
            let mut coll = Collectives::new(0);
            let a = coll.all_reduce_sum(c, 1);
            coll.barrier(c);
            let b = coll.broadcast(c, a * 10);
            let m = coll.all_reduce_max(c, c.my_id() as i64);
            (a, b, m)
        });
        for &(a, b, m) in &report.results {
            assert_eq!(a, n as i64);
            assert_eq!(b, n as i64 * 10);
            assert_eq!(m, n as i64 - 1);
        }
    }
}
