//! Per-thread communication statistics.
//!
//! The paper quantifies load-balancing activity ("more than 85,000 work
//! stealing operations per second", §1) and overhead decomposition (93%
//! working-state efficiency, §6.2); these counters are the raw material for
//! those reports.
//!
//! [`ConductorStats`] is simulator-side only: it measures the *harness*
//! (how many operations the virtual-time conductor applied on its lock-free
//! lookahead fast path vs. via a baton handoff), never the modelled machine.
//! It is deliberately kept out of [`CommStats`] so the fast path cannot
//! perturb any equality check on modelled results (see `docs/conductor.md`).

use crate::comm::OpClass;

/// Operation counters and accumulated costs for one thread's [`crate::Comm`]
/// handle. All communication time is in (virtual or real) nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// One-sided scalar reads issued.
    pub gets: u64,
    /// One-sided scalar writes issued.
    pub puts: u64,
    /// Atomic RMW operations (CAS / fetch-add) issued.
    pub atomics: u64,
    /// Lock acquisitions that succeeded.
    pub lock_acquires: u64,
    /// Failed `try_lock` attempts (contention indicator).
    pub lock_failures: u64,
    /// Lock releases.
    pub unlocks: u64,
    /// Bulk area transfers issued.
    pub bulk_ops: u64,
    /// Items moved by bulk transfers.
    pub bulk_items: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Payload items sent in messages.
    pub msg_items_sent: u64,
    /// Sends whose effect the active [`crate::FaultPlan`] silently dropped
    /// (always zero without crash faults).
    pub msgs_lost: u64,
    /// Sends the active [`crate::FaultPlan`] delivered twice (always zero
    /// without crash faults).
    pub msgs_duplicated: u64,
    /// Sends dropped because a network partition in the active
    /// [`crate::FaultPlan`] cut the sender/receiver link (always zero
    /// without partition faults).
    pub msgs_cut: u64,
    /// `poll()` invocations.
    pub polls: u64,
    /// Nanoseconds charged to communication (everything except `work`).
    pub comm_ns: u64,
    /// Nanoseconds charged to useful work (`work()` calls).
    pub work_ns: u64,
    /// Extra nanoseconds injected by the active [`crate::FaultPlan`] on top
    /// of modelled costs (latency spikes, stalls, straggler and lock
    /// stretching). Part of the modelled result — but always zero when no
    /// plan is active, so fault-free equality checks are unaffected.
    pub fault_ns: u64,
}

impl CommStats {
    /// Total remote-ish operations (a rough analogue of the paper's "load
    /// balancing operations" denominator).
    pub fn total_ops(&self) -> u64 {
        self.gets
            + self.puts
            + self.atomics
            + self.lock_acquires
            + self.lock_failures
            + self.unlocks
            + self.bulk_ops
            + self.msgs_sent
            + self.msgs_received
    }

    /// Merge another thread's counters into this one (for aggregate reports).
    pub fn merge(&mut self, other: &CommStats) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.atomics += other.atomics;
        self.lock_acquires += other.lock_acquires;
        self.lock_failures += other.lock_failures;
        self.unlocks += other.unlocks;
        self.bulk_ops += other.bulk_ops;
        self.bulk_items += other.bulk_items;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.msg_items_sent += other.msg_items_sent;
        self.msgs_lost += other.msgs_lost;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_cut += other.msgs_cut;
        self.polls += other.polls;
        self.comm_ns += other.comm_ns;
        self.work_ns += other.work_ns;
        self.fault_ns += other.fault_ns;
    }
}

/// Harness-side counters for the virtual-time conductor's scheduling of one
/// simulated thread (see `docs/conductor.md`).
///
/// `fast_ops + handoffs` equals the number of priced operations the thread
/// issued; the split tells you how much real-machine synchronization the
/// simulation needed. These counters describe the simulator itself — they are
/// identical in *meaning* but not in *value* across lookahead on/off runs,
/// which is why they live outside [`CommStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConductorStats {
    /// Operations applied on the lock-free lookahead fast path (the issuing
    /// thread kept the baton: no mutex, no condvar, no handoff). Under the
    /// parallel conductor this also counts blind tickets the fiber issued
    /// without waiting and speculative reads validated against the committed
    /// image.
    pub fast_ops: u64,
    /// Operations that went through a full baton handoff (mutex + schedule +
    /// condvar wait), or — under the parallel conductor — parked until the
    /// committer replayed them serially in ticket order.
    pub handoffs: u64,
    /// Fast-path operations by [`OpClass`] histogram index
    /// ([`OpClass::index`]).
    pub fast_by_class: [u64; OpClass::COUNT],
    /// Parallel conductor only: speculative reads whose validation against
    /// the committed image failed (own window uncommitted, commit floor too
    /// low, or a concurrent commit batch) and which therefore fell back to
    /// the serial replay path. Always zero on the serial conductors. Like
    /// the other fields this is a harness counter: its value depends on
    /// real-time races and is *not* deterministic run-to-run in parallel
    /// mode, which is exactly why it lives outside [`CommStats`].
    pub spec_conflicts: u64,
}

impl ConductorStats {
    /// Total priced operations conducted for this thread.
    pub fn total_ops(&self) -> u64 {
        self.fast_ops + self.handoffs
    }

    /// Fraction of operations that avoided a baton handoff (0.0 when no
    /// operations were issued).
    pub fn fast_fraction(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.fast_ops as f64 / total as f64
        }
    }

    /// Merge another thread's counters into this one (for aggregate reports).
    pub fn merge(&mut self, other: &ConductorStats) {
        self.fast_ops += other.fast_ops;
        self.handoffs += other.handoffs;
        for (a, b) in self.fast_by_class.iter_mut().zip(other.fast_by_class) {
            *a += b;
        }
        self.spec_conflicts += other.spec_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductor_merge_and_fraction() {
        let mut a = ConductorStats {
            fast_ops: 3,
            handoffs: 1,
            fast_by_class: [3, 0, 0, 0, 0, 0],
            spec_conflicts: 0,
        };
        let b = ConductorStats {
            fast_ops: 1,
            handoffs: 1,
            fast_by_class: [0, 1, 0, 0, 0, 0],
            spec_conflicts: 2,
        };
        a.merge(&b);
        assert_eq!(a.total_ops(), 6);
        assert_eq!(a.fast_by_class, [3, 1, 0, 0, 0, 0]);
        assert_eq!(a.spec_conflicts, 2);
        assert!((a.fast_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(ConductorStats::default().fast_fraction(), 0.0);
        for (i, c) in OpClass::all().into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            gets: 1,
            puts: 2,
            comm_ns: 10,
            ..Default::default()
        };
        let b = CommStats {
            gets: 3,
            msgs_sent: 4,
            comm_ns: 5,
            work_ns: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gets, 4);
        assert_eq!(a.puts, 2);
        assert_eq!(a.msgs_sent, 4);
        assert_eq!(a.comm_ns, 15);
        assert_eq!(a.work_ns, 7);
    }

    #[test]
    fn total_ops_counts_comm_not_polls() {
        let s = CommStats {
            gets: 1,
            puts: 1,
            atomics: 1,
            lock_acquires: 1,
            lock_failures: 1,
            unlocks: 1,
            bulk_ops: 1,
            msgs_sent: 1,
            msgs_received: 1,
            polls: 100,
            ..Default::default()
        };
        assert_eq!(s.total_ops(), 9);
    }
}
