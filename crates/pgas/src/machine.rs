//! Machine models: the communication cost parameters that separate the
//! paper's shared-memory and distributed-memory settings.
//!
//! The paper's central finding is that the *same* UPC program can behave
//! completely differently depending on the cost of remote operations: on the
//! SGI Altix a remote reference costs on the order of a microsecond, while on
//! the Infiniband clusters a one-sided get costs several microseconds and a
//! remote lock an order of magnitude more than a shared-variable reference
//! (§3.3.3). These models encode exactly those ratios.
//!
//! Sequential exploration rates come straight from §4.1: 2.10 Mnodes/s
//! (Topsail E5345), 2.39 Mnodes/s (Kitty Hawk E5150), 1.12 Mnodes/s (Altix
//! Itanium2). Interconnect constants are representative 2008-era numbers for
//! GASNet-over-Infiniband and Altix NUMAlink; EXPERIMENTS.md records them per
//! run. Absolute rates are calibration inputs, not results — what we
//! reproduce is the *shape* of the paper's figures.

/// Locality of a remote reference relative to the issuing thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distance {
    /// Same UPC thread (local pointer access after the affinity cast).
    Local,
    /// Different thread on the same compute node (shared cache / local DRAM).
    SameNode,
    /// Different compute node (goes over the interconnect).
    Remote,
}

/// Communication and computation cost parameters for one platform.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable platform name, used in reports.
    pub name: &'static str,
    /// Virtual nanoseconds to explore one UTS tree node (SHA-1 + bookkeeping);
    /// the reciprocal of the §4.1 sequential rate.
    pub node_ns: u64,
    /// UPC threads per compute node (affects [`Distance`] classification).
    pub threads_per_node: usize,
    /// Cost of a shared-variable reference with local affinity.
    pub local_ref_ns: u64,
    /// Cost of a shared-variable reference to another thread on the same node.
    pub same_node_ref_ns: u64,
    /// One-way cost of a small one-sided get/put to a remote node.
    pub remote_ref_ns: u64,
    /// Cost of a remote atomic (compare-and-swap / fetch-add): a full round
    /// trip through the NIC or coherence fabric.
    pub remote_atomic_ns: u64,
    /// Cost of acquiring an *uncontended* remote lock (UPC locks are
    /// implemented with remote atomics plus protocol overhead; the paper
    /// calls this "typically an order of magnitude greater than the cost of
    /// a shared variable reference").
    pub remote_lock_ns: u64,
    /// Cost of releasing a remote lock.
    pub remote_unlock_ns: u64,
    /// Startup cost of a bulk one-sided transfer (`upc_memget`).
    pub bulk_startup_ns: u64,
    /// Per-byte cost of bulk transfers (inverse bandwidth).
    pub ns_per_byte: f64,
    /// Cost charged by `poll()` (the `bupc_poll()` progress hook).
    pub poll_ns: u64,
    /// Software overhead on the sender of a point-to-point message (MPI).
    pub msg_overhead_ns: u64,
    /// One-way small-message latency (MPI).
    pub msg_latency_ns: u64,
    /// Per-byte message cost (MPI).
    pub msg_ns_per_byte: f64,
}

impl MachineModel {
    /// Kitty Hawk: 66-node Dell blade cluster, two dual-core Xeon E5150 per
    /// node (4 cores/node), Infiniband + Berkeley UPC over VAPI. The §4.2
    /// Figure 4 platform. Sequential rate 2.39 Mnodes/s → 418 ns/node.
    pub fn kittyhawk() -> MachineModel {
        MachineModel {
            name: "kittyhawk",
            node_ns: 418,
            threads_per_node: 4,
            local_ref_ns: 60,
            same_node_ref_ns: 250,
            remote_ref_ns: 6_000,
            remote_atomic_ns: 12_000,
            remote_lock_ns: 24_000,
            remote_unlock_ns: 8_000,
            bulk_startup_ns: 7_000,
            ns_per_byte: 0.85, // ~1.2 GB/s effective one-sided bandwidth
            poll_ns: 120,
            msg_overhead_ns: 1_500,
            msg_latency_ns: 5_500,
            msg_ns_per_byte: 0.75, // MVAPICH slightly better tuned (paper §4.2)
        }
    }

    /// Topsail: 520-node cluster, two quad-core Xeon E5345 per node
    /// (8 cores/node), Infiniband OFED. The Figure 5 platform.
    /// Sequential rate 2.10 Mnodes/s → 476 ns/node.
    pub fn topsail() -> MachineModel {
        MachineModel {
            name: "topsail",
            node_ns: 476,
            threads_per_node: 8,
            local_ref_ns: 60,
            same_node_ref_ns: 220,
            remote_ref_ns: 5_500,
            remote_atomic_ns: 11_000,
            remote_lock_ns: 22_000,
            remote_unlock_ns: 7_500,
            bulk_startup_ns: 6_500,
            ns_per_byte: 0.7,
            poll_ns: 120,
            msg_overhead_ns: 1_400,
            msg_latency_ns: 5_000,
            msg_ns_per_byte: 0.65,
        }
    }

    /// SGI Altix 3700: 1.6 GHz Itanium2, single shared address space over the
    /// NUMAlink hypercube ("the machine's low latency interconnect
    /// efficiently supports UPC shared variable accesses", §4.3). The
    /// Figure 6 platform. Sequential rate 1.12 Mnodes/s → 893 ns/node.
    pub fn altix() -> MachineModel {
        MachineModel {
            name: "altix",
            node_ns: 893,
            threads_per_node: 2,
            local_ref_ns: 80,
            same_node_ref_ns: 300,
            remote_ref_ns: 1_000,
            remote_atomic_ns: 1_800,
            remote_lock_ns: 3_500,
            remote_unlock_ns: 1_200,
            bulk_startup_ns: 1_200,
            ns_per_byte: 0.35,
            poll_ns: 80,
            // MPI on the Altix pays library overhead and poor cache behaviour
            // relative to plain loads/stores (§4.3).
            msg_overhead_ns: 2_200,
            msg_latency_ns: 2_800,
            msg_ns_per_byte: 0.5,
        }
    }

    /// An idealised SMP with negligible communication costs. Useful for
    /// native-vs-sim parity tests and algorithm debugging: any difference in
    /// outcome between `smp` and a cluster model is due to communication.
    pub fn smp() -> MachineModel {
        MachineModel {
            name: "smp",
            node_ns: 100,
            threads_per_node: usize::MAX,
            local_ref_ns: 10,
            same_node_ref_ns: 20,
            remote_ref_ns: 20,
            remote_atomic_ns: 40,
            remote_lock_ns: 60,
            remote_unlock_ns: 30,
            bulk_startup_ns: 50,
            ns_per_byte: 0.1,
            poll_ns: 5,
            msg_overhead_ns: 100,
            msg_latency_ns: 200,
            msg_ns_per_byte: 0.1,
        }
    }

    /// Classify the locality of an access from `from` to `to`.
    pub fn distance(&self, from: usize, to: usize) -> Distance {
        if from == to {
            Distance::Local
        } else if self.threads_per_node == usize::MAX
            || from / self.threads_per_node == to / self.threads_per_node
        {
            Distance::SameNode
        } else {
            Distance::Remote
        }
    }

    /// Cost of a small one-sided reference from `from` to `to`.
    pub fn ref_cost(&self, from: usize, to: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns,
            Distance::SameNode => self.same_node_ref_ns,
            Distance::Remote => self.remote_ref_ns,
        }
    }

    /// Cost of an atomic RMW from `from` on a cell of `to`.
    pub fn atomic_cost(&self, from: usize, to: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns * 2,
            Distance::SameNode => self.same_node_ref_ns * 2,
            Distance::Remote => self.remote_atomic_ns,
        }
    }

    /// Cost of an uncontended lock acquire on a lock of `to`.
    pub fn lock_cost(&self, from: usize, to: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns * 3,
            Distance::SameNode => self.same_node_ref_ns * 3,
            Distance::Remote => self.remote_lock_ns,
        }
    }

    /// Cost of a lock release.
    pub fn unlock_cost(&self, from: usize, to: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns,
            Distance::SameNode => self.same_node_ref_ns,
            Distance::Remote => self.remote_unlock_ns,
        }
    }

    /// Cost of a bulk one-sided transfer of `bytes` between `from` and `to`.
    pub fn bulk_cost(&self, from: usize, to: usize, bytes: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns + (bytes as f64 * 0.05) as u64,
            Distance::SameNode => {
                self.same_node_ref_ns + (bytes as f64 * self.ns_per_byte * 0.25) as u64
            }
            Distance::Remote => self.bulk_startup_ns + (bytes as f64 * self.ns_per_byte) as u64,
        }
    }

    /// One-way latency of a message of `bytes` from `from` to `to` (time from
    /// send to availability at the receiver), excluding sender overhead.
    pub fn msg_flight_ns(&self, from: usize, to: usize, bytes: usize) -> u64 {
        match self.distance(from, to) {
            Distance::Local => self.local_ref_ns,
            Distance::SameNode => {
                self.same_node_ref_ns + (bytes as f64 * self.msg_ns_per_byte * 0.25) as u64
            }
            Distance::Remote => {
                self.msg_latency_ns + (bytes as f64 * self.msg_ns_per_byte) as u64
            }
        }
    }

    /// Sequential exploration rate implied by `node_ns`, in nodes/second.
    pub fn seq_rate(&self) -> f64 {
        1e9 / self.node_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_classification() {
        let m = MachineModel::kittyhawk(); // 4 threads per node
        assert_eq!(m.distance(0, 0), Distance::Local);
        assert_eq!(m.distance(0, 3), Distance::SameNode);
        assert_eq!(m.distance(0, 4), Distance::Remote);
        assert_eq!(m.distance(5, 7), Distance::SameNode);
        assert_eq!(m.distance(7, 8), Distance::Remote);
    }

    #[test]
    fn smp_is_all_one_node() {
        let m = MachineModel::smp();
        assert_eq!(m.distance(0, 1023), Distance::SameNode);
    }

    #[test]
    fn paper_sequential_rates() {
        assert!((MachineModel::topsail().seq_rate() / 1e6 - 2.10).abs() < 0.01);
        assert!((MachineModel::kittyhawk().seq_rate() / 1e6 - 2.39).abs() < 0.01);
        assert!((MachineModel::altix().seq_rate() / 1e6 - 1.12).abs() < 0.01);
    }

    /// The latency hierarchy the paper's distributed algorithm exploits:
    /// local refs ≪ remote refs < atomics < locks.
    #[test]
    fn cluster_cost_hierarchy() {
        for m in [MachineModel::kittyhawk(), MachineModel::topsail()] {
            assert!(m.local_ref_ns * 10 < m.remote_ref_ns, "{}", m.name);
            assert!(m.remote_ref_ns < m.remote_atomic_ns);
            assert!(m.remote_atomic_ns < m.remote_lock_ns);
            // Paper: remote locking is "an order of magnitude greater than
            // the cost of a shared variable reference".
            assert!(m.remote_lock_ns >= 4 * m.remote_ref_ns);
        }
    }

    #[test]
    fn altix_is_low_latency() {
        let altix = MachineModel::altix();
        let kh = MachineModel::kittyhawk();
        assert!(altix.remote_ref_ns * 5 <= kh.remote_ref_ns);
        assert!(altix.remote_lock_ns * 5 <= kh.remote_lock_ns);
    }

    #[test]
    fn bulk_cost_scales_with_size() {
        let m = MachineModel::topsail();
        let small = m.bulk_cost(0, 9, 24 * 8);
        let large = m.bulk_cost(0, 9, 24 * 800);
        assert!(large > small);
        assert!(large < small * 100, "startup must amortise");
    }
}
