//! Property-based tests of the virtual-time simulator: cost accounting is
//! exact, scheduling is deterministic, and mailbox delivery is FIFO per
//! sender — for arbitrary randomly generated thread programs.

use pgas::sim::SimCluster;
use pgas::{Comm, MachineModel, SpaceConfig};
use proptest::prelude::*;

/// A tiny straight-line program each thread executes.
#[derive(Clone, Debug)]
enum Step {
    Work(u16),
    Put(usize, i64),
    Get(usize),
    Add(usize, i64),
    Poll,
}

fn step_strategy(n_threads: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u16..500).prop_map(Step::Work),
        ((0..n_threads), any::<i64>()).prop_map(|(t, v)| Step::Put(t, v)),
        (0..n_threads).prop_map(Step::Get),
        ((0..n_threads), -5i64..5).prop_map(|(t, d)| Step::Add(t, d)),
        Just(Step::Poll),
    ]
}

/// The cost a step charges its issuer under `m` (mirrors the backend).
fn step_cost(m: &MachineModel, me: usize, s: &Step) -> u64 {
    match s {
        Step::Work(units) => u64::from(*units) * m.node_ns,
        Step::Put(t, _) | Step::Get(t) => m.ref_cost(me, *t),
        Step::Add(t, _) => m.atomic_cost(me, *t),
        Step::Poll => m.poll_ns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Final virtual clocks equal the analytic sum of per-op costs, and the
    /// makespan is their maximum — for arbitrary interleavings.
    #[test]
    fn clocks_equal_cost_sums(
        n in 1usize..7,
        programs in prop::collection::vec(
            prop::collection::vec(step_strategy(6), 0..25),
            7,
        ),
    ) {
        let machine = MachineModel::kittyhawk();
        let expected: Vec<u64> = (0..n)
            .map(|me| {
                programs[me]
                    .iter()
                    .map(|s| {
                        // Steps may reference thread ids ≥ n; clamp like the
                        // runner below does.
                        let mut s = s.clone();
                        clamp(&mut s, n);
                        step_cost(&machine, me, &s)
                    })
                    .sum()
            })
            .collect();

        let cluster: SimCluster<u64> =
            SimCluster::new(machine, n, SpaceConfig::default());
        let programs_ref = &programs;
        let report = cluster.run(|c| {
            let me = c.my_id();
            for s in &programs_ref[me] {
                let mut s = s.clone();
                clamp(&mut s, c.n_threads());
                match s {
                    Step::Work(u) => c.work(u64::from(u)),
                    Step::Put(t, v) => c.put(t, 0, v),
                    Step::Get(t) => {
                        let _ = c.get(t, 0);
                    }
                    Step::Add(t, d) => {
                        let _ = c.add(t, 1, d);
                    }
                    Step::Poll => c.poll(),
                }
            }
            c.now()
        });
        for (me, want) in expected.iter().enumerate() {
            prop_assert_eq!(report.clocks[me], *want, "thread {}", me);
            prop_assert_eq!(report.results[me], *want);
        }
        prop_assert_eq!(
            report.makespan_ns,
            expected.iter().copied().max().unwrap_or(0)
        );
    }

    /// Atomic adds from all threads always sum exactly.
    #[test]
    fn adds_always_sum(
        n in 1usize..7,
        per_thread in prop::collection::vec(prop::collection::vec(-7i64..7, 0..30), 7),
    ) {
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::smp(), n, SpaceConfig::default());
        let per_thread_ref = &per_thread;
        let report = cluster.run(|c| {
            for &d in &per_thread_ref[c.my_id()] {
                c.add(0, 2, d);
            }
        });
        let want: i64 = per_thread.iter().take(n).flatten().sum();
        prop_assert_eq!(report.final_scalar(0, 2), want);
    }

    /// Messages between a fixed pair are delivered FIFO regardless of
    /// payload sizes (which perturb flight times — ties broken by seq).
    #[test]
    fn mailbox_fifo_per_sender(sizes in prop::collection::vec(0usize..40, 1..20)) {
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::kittyhawk(), 2, SpaceConfig::default());
        let sizes_ref = &sizes;
        let report = cluster.run(|c| {
            if c.my_id() == 0 {
                for (i, &len) in sizes_ref.iter().enumerate() {
                    c.send(1, 1, [i as i64, 0, 0, 0], &vec![0u64; len]);
                }
                vec![]
            } else {
                let mut got = Vec::new();
                while got.len() < sizes_ref.len() {
                    if let Some(m) = c.try_recv(Some(1)) {
                        got.push(m.meta[0]);
                    } else {
                        c.poll();
                    }
                }
                got
            }
        });
        let want: Vec<i64> = (0..sizes.len() as i64).collect();
        prop_assert_eq!(&report.results[1], &want);
    }
}

fn clamp(s: &mut Step, n: usize) {
    match s {
        Step::Put(t, _) | Step::Get(t) | Step::Add(t, _) => *t %= n,
        _ => {}
    }
}
