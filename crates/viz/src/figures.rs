//! Builders mapping harness CSVs to the paper's figures.

use std::collections::BTreeMap;

use crate::chart::{Chart, Series};
use crate::csv::Record;

/// Group records into per-algorithm series of (x_col, y_col).
fn series_by_algorithm(rows: &[Record], x_col: &str, y_col: &str) -> Vec<Series> {
    let mut by_alg: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in rows {
        let (Some(alg), Some(x), Some(y)) = (r.get("algorithm"), r.num(x_col), r.num(y_col))
        else {
            continue;
        };
        by_alg.entry(alg.to_string()).or_default().push((x, y));
    }
    by_alg
        .into_iter()
        .map(|(name, points)| Series { name, points })
        .collect()
}

/// Figure 4: absolute performance vs chunk size (one line per label).
pub fn fig4_performance(rows: &[Record]) -> Chart {
    Chart {
        title: "Figure 4: performance vs chunk size (256 threads, Kitty Hawk model)".into(),
        x_label: "chunk size k".into(),
        y_label: "Mnodes/s".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "chunk", "mnodes_per_sec"),
    }
}

/// Figure 4 companion: speedup vs chunk size.
pub fn fig4_speedup(rows: &[Record]) -> Chart {
    Chart {
        title: "Figure 4: speedup vs chunk size (256 threads, Kitty Hawk model)".into(),
        x_label: "chunk size k".into(),
        y_label: "speedup".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "chunk", "speedup"),
    }
}

/// Figure 5: speedup vs processors.
pub fn fig5_speedup(rows: &[Record]) -> Chart {
    Chart {
        title: "Figure 5: speedup vs processors (Topsail model)".into(),
        x_label: "processors".into(),
        y_label: "speedup".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "threads", "speedup"),
    }
}

/// Figure 5 companion: absolute performance vs processors.
pub fn fig5_performance(rows: &[Record]) -> Chart {
    Chart {
        title: "Figure 5: performance vs processors (Topsail model)".into(),
        x_label: "processors".into(),
        y_label: "Mnodes/s".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "threads", "mnodes_per_sec"),
    }
}

/// Figure 6: speedup vs processors on the Altix.
pub fn fig6_speedup(rows: &[Record]) -> Chart {
    Chart {
        title: "Figure 6: speedup on the SGI Altix 3700 model".into(),
        x_label: "processors".into(),
        y_label: "speedup".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "threads", "speedup"),
    }
}

/// One series per `(workload, algorithm)` pair from the `dag_sweep` CSV,
/// restricted to chunk `k` (the sweep runs several), mapping (x_col, y_col).
fn dag_series(rows: &[Record], x_col: &str, y_col: &str, k: f64) -> Vec<Series> {
    let mut by_key: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in rows {
        let (Some(w), Some(alg), Some(chunk), Some(x), Some(y)) = (
            r.get("workload"),
            r.get("algorithm"),
            r.num("chunk"),
            r.num(x_col),
            r.num(y_col),
        ) else {
            continue;
        };
        if chunk != k {
            continue;
        }
        by_key.entry(format!("{w}/{alg}")).or_default().push((x, y));
    }
    by_key
        .into_iter()
        .map(|(name, points)| Series { name, points })
        .collect()
}

/// E18: DAG-vs-tree throughput across thread counts, at k=1 — the chunk
/// size at which narrow-frontier DAGs (wavefront) can spread at all.
pub fn dag_sweep_throughput(rows: &[Record]) -> Chart {
    Chart {
        title: "E18: DAG vs tree throughput (k=1, Kitty Hawk model)".into(),
        x_label: "processors".into(),
        y_label: "Mnodes/s".into(),
        log2_x: true,
        series: dag_series(rows, "threads", "mnodes_per_sec", 1.0),
    }
}

/// E18 companion: how much of the O(p·D) steal bound each workload actually
/// uses (successful steals / bound, at k=1). Values far below 1 are the
/// slack the `DEFAULT_STEAL_FACTOR` calibration rests on.
pub fn dag_sweep_steal_utilisation(rows: &[Record]) -> Chart {
    let mut by_key: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in rows {
        let (Some(w), Some(alg), Some(chunk), Some(x), Some(s), Some(b)) = (
            r.get("workload"),
            r.get("algorithm"),
            r.num("chunk"),
            r.num("threads"),
            r.num("successful_steals"),
            r.num("steal_bound"),
        ) else {
            continue;
        };
        if chunk != 1.0 || b <= 0.0 {
            continue;
        }
        by_key
            .entry(format!("{w}/{alg}"))
            .or_default()
            .push((x, s / b));
    }
    Chart {
        title: "E18: steal-bound utilisation (successful steals / p·D bound, k=1)".into(),
        x_label: "processors".into(),
        y_label: "fraction of bound".into(),
        log2_x: true,
        series: by_key
            .into_iter()
            .map(|(name, points)| Series { name, points })
            .collect(),
    }
}

/// Supplemental: efficiency vs problem size.
pub fn scale_eff(rows: &[Record]) -> Chart {
    Chart {
        title: "Efficiency vs problem size (upc-distmem, 64 threads)".into(),
        x_label: "tree nodes".into(),
        y_label: "efficiency".into(),
        log2_x: true,
        series: series_by_algorithm(rows, "nodes", "efficiency"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse;

    const SAMPLE: &str = "\
algorithm,threads,chunk,nodes,mnodes_per_sec,speedup,efficiency
upc-distmem,256,1,100,62.3,26.0,0.10
upc-distmem,256,2,100,69.4,29.0,0.11
mpi-ws,256,1,100,34.0,14.2,0.05
mpi-ws,256,2,100,51.0,21.3,0.08
";

    #[test]
    fn fig4_builds_one_series_per_algorithm() {
        let rows = parse(SAMPLE).unwrap();
        let c = fig4_performance(&rows);
        assert_eq!(c.series.len(), 2);
        let dm = c.series.iter().find(|s| s.name == "upc-distmem").unwrap();
        assert_eq!(dm.points, vec![(1.0, 62.3), (2.0, 69.4)]);
        assert!(c.log2_x);
    }

    #[test]
    fn fig5_uses_threads_axis() {
        let rows = parse(SAMPLE).unwrap();
        let c = fig5_speedup(&rows);
        let dm = c.series.iter().find(|s| s.name == "upc-distmem").unwrap();
        assert_eq!(dm.points[0], (256.0, 26.0));
    }

    #[test]
    fn renders_end_to_end() {
        let rows = parse(SAMPLE).unwrap();
        for chart in [
            fig4_performance(&rows),
            fig4_speedup(&rows),
            fig5_speedup(&rows),
            fig5_performance(&rows),
            fig6_speedup(&rows),
            scale_eff(&rows),
        ] {
            let svg = chart.to_svg(720, 440);
            assert!(svg.contains("polyline"), "{}", chart.title);
        }
    }

    #[test]
    fn missing_columns_produce_empty_series() {
        let rows = parse("algorithm,foo\na,1\n").unwrap();
        let c = fig4_performance(&rows);
        assert!(c.series.is_empty());
    }

    const SAMPLE_DAG: &str = "\
workload,algorithm,threads,chunk,tasks,critical_path,t_virtual_s,mnodes_per_sec,steal_attempts,successful_steals,steal_bound,working_frac,t_real_s
T-S,upc-term,64,1,45925,428,0.005,9.0,1000,400,219136,0.11,0.1
wavefront,upc-term,64,1,6400,422,0.012,0.54,1306,250,216064,0.20,0.1
wavefront,upc-term,256,1,6400,422,0.014,0.45,782,96,864256,0.04,0.1
wavefront,upc-term,64,4,6400,422,0.149,0.04,0,0,216064,0.02,0.1
";

    #[test]
    fn dag_sweep_keys_series_on_workload_and_algorithm() {
        let rows = parse(SAMPLE_DAG).unwrap();
        let c = dag_sweep_throughput(&rows);
        assert_eq!(c.series.len(), 2, "one series per workload/algorithm");
        let wf = c
            .series
            .iter()
            .find(|s| s.name == "wavefront/upc-term")
            .unwrap();
        // Only the k=1 rows contribute: the k=4 point is filtered out.
        assert_eq!(wf.points, vec![(64.0, 0.54), (256.0, 0.45)]);
        assert!(c.to_svg(720, 440).contains("polyline"));
    }

    #[test]
    fn dag_steal_utilisation_divides_by_the_bound() {
        let rows = parse(SAMPLE_DAG).unwrap();
        let c = dag_sweep_steal_utilisation(&rows);
        let wf = c
            .series
            .iter()
            .find(|s| s.name == "wavefront/upc-term")
            .unwrap();
        assert_eq!(wf.points.len(), 2);
        assert!((wf.points[0].1 - 250.0 / 216064.0).abs() < 1e-12);
        assert!(wf.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
    }
}
