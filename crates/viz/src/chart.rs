//! A small, dependency-free SVG line-chart renderer.
//!
//! Only what the paper's figures need: multiple named series, linear or
//! log₂ x-axis (chunk sizes and processor counts are powers of two),
//! linear y-axis from zero, tick labels, a legend, and distinguishable
//! stroke styles that survive grayscale printing.

/// One named line series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) samples; rendered in x order.
    pub points: Vec<(f64, f64)>,
}

/// A renderable chart.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title across the top.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Place x ticks at powers of two and scale x logarithmically.
    pub log2_x: bool,
    /// The data.
    pub series: Vec<Series>,
}

/// Color cycle (Okabe-Ito, colour-blind safe).
const COLORS: [&str; 7] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
];
/// Dash cycle for grayscale robustness.
const DASHES: [&str; 4] = ["", "6,3", "2,2", "8,3,2,3"];

/// Margins inside the SVG canvas.
const ML: f64 = 64.0;
const MR: f64 = 150.0;
const MT: f64 = 36.0;
const MB: f64 = 48.0;

impl Chart {
    fn x_transform(&self, x: f64) -> f64 {
        if self.log2_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    fn x_range(&self) -> (f64, f64) {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| self.x_transform(x)))
            .collect();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi.is_finite() && hi > lo {
            (lo, hi)
        } else if lo.is_finite() {
            (lo - 0.5, lo + 0.5)
        } else {
            (0.0, 1.0)
        }
    }

    fn y_max(&self) -> f64 {
        let hi = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .fold(f64::NEG_INFINITY, f64::max);
        if hi.is_finite() && hi > 0.0 {
            hi * 1.06
        } else {
            1.0
        }
    }

    /// "Nice" tick step for a linear axis: 1/2/5 × 10^k covering the range
    /// in 4-8 steps.
    fn nice_step(max: f64) -> f64 {
        let raw = max / 5.0;
        let mag = 10f64.powf(raw.log10().floor());
        let norm = raw / mag;
        let step = if norm < 1.5 {
            1.0
        } else if norm < 3.5 {
            2.0
        } else if norm < 7.5 {
            5.0
        } else {
            10.0
        };
        step * mag
    }

    /// Render to an SVG document of the given pixel size.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let w = f64::from(width);
        let h = f64::from(height);
        let plot_w = w - ML - MR;
        let plot_h = h - MT - MB;
        let (x_lo, x_hi) = self.x_range();
        let y_hi = self.y_max();

        let px = |x: f64| ML + (self.x_transform(x) - x_lo) / (x_hi - x_lo) * plot_w;
        let py = |y: f64| MT + (1.0 - y / y_hi) * plot_h;

        let mut out = String::with_capacity(8192);
        out.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="12">"#
        ));
        out.push_str(&format!(
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        ));
        // Title and axis labels.
        out.push_str(&format!(
            r#"<text x="{:.0}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
            ML + plot_w / 2.0,
            escape(&self.title)
        ));
        out.push_str(&format!(
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle">{}</text>"#,
            ML + plot_w / 2.0,
            h - 10.0,
            escape(&self.x_label)
        ));
        out.push_str(&format!(
            r#"<text x="16" y="{:.0}" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"#,
            MT + plot_h / 2.0,
            MT + plot_h / 2.0,
            escape(&self.y_label)
        ));

        // Axes.
        out.push_str(&format!(
            r#"<line x1="{ML}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
            MT + plot_h,
            ML + plot_w,
            MT + plot_h
        ));
        out.push_str(&format!(
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{:.1}" stroke="black"/>"#,
            MT + plot_h
        ));

        // X ticks.
        if self.log2_x {
            let lo_pow = x_lo.ceil() as i64;
            let hi_pow = x_hi.floor() as i64;
            for p in lo_pow..=hi_pow {
                let xv = 2f64.powi(p as i32);
                let x = px(xv);
                out.push_str(&format!(
                    r#"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="black"/>"#,
                    MT + plot_h,
                    MT + plot_h + 4.0
                ));
                out.push_str(&format!(
                    r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                    MT + plot_h
                ));
                out.push_str(&format!(
                    r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                    MT + plot_h + 18.0,
                    format_num(xv)
                ));
            }
        } else {
            let step = Self::nice_step(x_hi - x_lo);
            let mut t = (x_lo / step).ceil() * step;
            while t <= x_hi + 1e-9 {
                let x = ML + (t - x_lo) / (x_hi - x_lo) * plot_w;
                out.push_str(&format!(
                    r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                    MT + plot_h + 18.0,
                    format_num(t)
                ));
                t += step;
            }
        }

        // Y ticks.
        let step = Self::nice_step(y_hi);
        let mut t = 0.0;
        while t <= y_hi + 1e-9 {
            let y = py(t);
            out.push_str(&format!(
                r#"<line x1="{:.1}" y1="{y:.1}" x2="{ML}" y2="{y:.1}" stroke="black"/>"#,
                ML - 4.0
            ));
            out.push_str(&format!(
                r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
                ML + plot_w
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                ML - 8.0,
                y + 4.0,
                format_num(t)
            ));
            t += step;
        }

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let dash = DASHES[i % DASHES.len()];
            let mut pts = s.points.clone();
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            let dash_attr = if dash.is_empty() {
                String::new()
            } else {
                format!(r#" stroke-dasharray="{dash}""#)
            };
            out.push_str(&format!(
                r#"<polyline fill="none" stroke="{color}" stroke-width="2"{dash_attr} points="{}"/>"#,
                path.join(" ")
            ));
            for &(x, y) in &pts {
                out.push_str(&format!(
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                ));
            }
            // Legend entry.
            let ly = MT + 10.0 + i as f64 * 18.0;
            let lx = ML + plot_w + 10.0;
            out.push_str(&format!(
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"{dash_attr}/>"#,
                lx + 22.0
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                escape(&s.name)
            ));
        }

        out.push_str("</svg>");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn format_num(v: f64) -> String {
    if v.fract().abs() < 1e-9 {
        format!("{}", v as i64)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Chart {
        Chart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log2_x: true,
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![(1.0, 1.0), (2.0, 3.0), (4.0, 2.0)],
                },
                Series {
                    name: "b".into(),
                    points: vec![(1.0, 2.0), (4.0, 4.0)],
                },
            ],
        }
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = demo().to_svg(640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        // One circle per point.
        assert_eq!(svg.matches("<circle").count(), 5);
    }

    #[test]
    fn log2_ticks_are_powers_of_two() {
        let svg = demo().to_svg(640, 400);
        assert!(svg.contains(">1</text>"));
        assert!(svg.contains(">2</text>"));
        assert!(svg.contains(">4</text>"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = demo();
        c.title = "a<b&c".into();
        let svg = c.to_svg(320, 200);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }

    #[test]
    fn nice_step_values() {
        assert_eq!(Chart::nice_step(10.0), 2.0);
        assert_eq!(Chart::nice_step(100.0), 20.0);
        assert_eq!(Chart::nice_step(7.0), 1.0);
        assert_eq!(Chart::nice_step(30.0), 5.0);
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let c = Chart {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log2_x: false,
            series: vec![Series {
                name: "p".into(),
                points: vec![(3.0, 3.0)],
            }],
        };
        let svg = c.to_svg(200, 100);
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = Chart {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log2_x: false,
            series: vec![],
        };
        let svg = c.to_svg(200, 100);
        assert!(svg.starts_with("<svg"));
    }
}
