//! # uts-viz — figure rendering
//!
//! The paper's evaluation artifacts are *figures* (speedup and absolute
//! performance curves). This crate turns the benchmark harness's
//! `results/*.csv` files back into figures: a small dependency-free SVG
//! chart renderer plus builders for each reproduced figure.
//!
//! ```
//! use uts_viz::chart::{Chart, Series};
//!
//! let chart = Chart {
//!     title: "demo".into(),
//!     x_label: "chunk size".into(),
//!     y_label: "Mnodes/s".into(),
//!     log2_x: true,
//!     series: vec![Series {
//!         name: "upc-distmem".into(),
//!         points: vec![(1.0, 60.0), (2.0, 70.0), (4.0, 69.0)],
//!     }],
//! };
//! let svg = chart.to_svg(640, 400);
//! assert!(svg.starts_with("<svg"));
//! ```
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod figures;
