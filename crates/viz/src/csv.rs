//! Minimal reader for the harness's `results/*.csv` files.
//!
//! The format is fixed (comma-separated, one header row, no quoting —
//! produced by `uts-bench::harness::write_csv`), so a full CSV parser is
//! unnecessary.

use std::collections::HashMap;
use std::path::Path;

/// One parsed data row: column name → raw string value.
#[derive(Clone, Debug)]
pub struct Record {
    fields: HashMap<String, String>,
}

impl Record {
    /// String value of a column.
    pub fn get(&self, col: &str) -> Option<&str> {
        self.fields.get(col).map(String::as_str)
    }

    /// Numeric value of a column.
    pub fn num(&self, col: &str) -> Option<f64> {
        self.get(col)?.parse().ok()
    }
}

/// Parse CSV text into records.
pub fn parse(text: &str) -> Result<Vec<Record>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = lines
        .next()
        .ok_or("empty csv")?
        .split(',')
        .map(|c| c.trim().to_string())
        .collect();
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != header.len() {
            return Err(format!(
                "row {} has {} cells, header has {}",
                i + 2,
                cells.len(),
                header.len()
            ));
        }
        let fields = header
            .iter()
            .cloned()
            .zip(cells.iter().map(|c| c.trim().to_string()))
            .collect();
        out.push(Record { fields });
    }
    Ok(out)
}

/// Read and parse a CSV file.
pub fn read(path: &Path) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "algorithm,threads,mnodes_per_sec\nupc-distmem,64,116.2\nmpi-ws,64,113.4\n";

    #[test]
    fn parses_rows_and_columns() {
        let rows = parse(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("algorithm"), Some("upc-distmem"));
        assert_eq!(rows[1].num("mnodes_per_sec"), Some(113.4));
        assert_eq!(rows[0].num("threads"), Some(64.0));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert!(err.contains("row 2"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
    }

    #[test]
    fn missing_column_is_none() {
        let rows = parse(SAMPLE).unwrap();
        assert_eq!(rows[0].get("nope"), None);
        assert_eq!(rows[0].num("algorithm"), None, "non-numeric");
    }

    #[test]
    fn skips_blank_lines() {
        let rows = parse("a,b\n\n1,2\n\n").unwrap();
        assert_eq!(rows.len(), 1);
    }
}
