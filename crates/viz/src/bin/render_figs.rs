//! Render every available `results/*.csv` into `results/figures/*.svg`.
//!
//! Run the harness binaries first (see EXPERIMENTS.md), then:
//! `cargo run --release -p uts-viz --bin render_figs`

use std::fs;
use std::path::Path;

use uts_viz::chart::Chart;
use uts_viz::{csv, figures};

/// A named figure builder over parsed CSV rows.
type FigJob = (&'static str, fn(&[csv::Record]) -> Chart);

fn render(csv_path: &str, out_dir: &Path, jobs: &[FigJob]) {
    let path = Path::new(csv_path);
    if !path.exists() {
        eprintln!("skip {csv_path} (not found — run the harness first)");
        return;
    }
    match csv::read(path) {
        Ok(rows) => {
            for (name, build) in jobs {
                let chart = build(&rows);
                let svg = chart.to_svg(760, 460);
                let out = out_dir.join(format!("{name}.svg"));
                match fs::write(&out, svg) {
                    Ok(()) => println!("wrote {}", out.display()),
                    Err(e) => eprintln!("cannot write {}: {e}", out.display()),
                }
            }
        }
        Err(e) => eprintln!("cannot parse {csv_path}: {e}"),
    }
}

fn main() {
    let out_dir = Path::new("results/figures");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    render(
        "results/fig4.csv",
        out_dir,
        &[
            ("fig4_performance", figures::fig4_performance as fn(&[csv::Record]) -> Chart),
            ("fig4_speedup", figures::fig4_speedup),
        ],
    );
    render(
        "results/fig5_xl.csv",
        out_dir,
        &[
            ("fig5_speedup", figures::fig5_speedup as fn(&[csv::Record]) -> Chart),
            ("fig5_performance", figures::fig5_performance),
        ],
    );
    render(
        "results/fig5_xxl.csv",
        out_dir,
        &[("fig5_xxl_speedup", figures::fig5_speedup as fn(&[csv::Record]) -> Chart)],
    );
    render(
        "results/fig6.csv",
        out_dir,
        &[("fig6_speedup", figures::fig6_speedup as fn(&[csv::Record]) -> Chart)],
    );
    render(
        "results/scale_eff.csv",
        out_dir,
        &[("scale_eff", figures::scale_eff as fn(&[csv::Record]) -> Chart)],
    );
    render(
        "results/dag_sweep.csv",
        out_dir,
        &[
            (
                "dag_sweep_throughput",
                figures::dag_sweep_throughput as fn(&[csv::Record]) -> Chart,
            ),
            ("dag_sweep_steal_utilisation", figures::dag_sweep_steal_utilisation),
        ],
    );
}
