//! Property-based tests of the steal-stack bookkeeping and probe orders:
//! random operation sequences against simple reference models.

use proptest::prelude::*;
use worksteal::probe::{ProbeOrder, Xorshift};
use worksteal::stack::DfsStack;

/// Operations applicable to a DfsStack, mirrored on a reference model.
#[derive(Clone, Debug)]
enum Op {
    Push(u32),
    Pop,
    Release,
    Reacquire,
    Grant(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..1000).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Release),
        Just(Op::Reacquire),
        (1usize..4).prop_map(Op::Grant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The multiset of nodes is conserved across any sequence of stack
    /// operations: local ∪ shared-region ∪ granted == pushed - popped.
    #[test]
    fn stack_conserves_nodes(k in 1usize..6, ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut s: DfsStack<u32> = DfsStack::new(k);
        // Reference model: the shared region as a Vec of chunks plus counts.
        let mut region: Vec<Vec<u32>> = Vec::new(); // region[i] = chunk (oldest first)
        let mut granted_nodes = 0usize;
        let mut pushed = 0usize;
        let mut popped = 0usize;

        for op in ops {
            match op {
                Op::Push(v) => {
                    s.push(v);
                    pushed += 1;
                }
                Op::Pop => {
                    if s.pop().is_some() {
                        popped += 1;
                    }
                }
                Op::Release => {
                    if s.local_len() >= k {
                        let chunk = s.take_bottom_chunk();
                        prop_assert_eq!(chunk.len(), k);
                        region.push(chunk);
                        s.avail += 1;
                    }
                }
                Op::Reacquire => {
                    if s.avail > 0 {
                        // Owner takes the newest chunk back.
                        let chunk = region.pop().expect("model out of sync");
                        let _ = s.top_chunk_offset();
                        s.avail -= 1;
                        s.push_all(&chunk);
                    }
                }
                Op::Grant(n) => {
                    let n = n.min(s.avail);
                    if n > 0 {
                        let off = s.grant(n);
                        prop_assert_eq!(off % k, 0);
                        // Steals serve the OLDEST chunks.
                        for _ in 0..n {
                            let chunk = region.remove(0);
                            granted_nodes += chunk.len();
                        }
                    }
                }
            }
            // Invariants after every step.
            prop_assert_eq!(s.avail, region.len(), "avail mirror out of sync");
            let in_region: usize = region.iter().map(|c| c.len()).sum();
            prop_assert_eq!(
                s.local_len() + in_region + granted_nodes + popped,
                pushed,
                "nodes lost or duplicated"
            );
        }
    }

    /// grant() offsets advance strictly by whole chunks from the base.
    #[test]
    fn grant_offsets_are_contiguous(k in 1usize..8, grants in prop::collection::vec(1usize..5, 1..20)) {
        let mut s: DfsStack<u32> = DfsStack::new(k);
        s.avail = grants.iter().sum();
        let mut expected_base = 0usize;
        for g in grants {
            let off = s.grant(g);
            prop_assert_eq!(off, expected_base * k);
            expected_base += g;
        }
        prop_assert_eq!(s.avail, 0);
        prop_assert_eq!(s.granted as usize, expected_base);
    }

    /// Probe cycles are always permutations of all other threads, whatever
    /// the seed and thread count.
    #[test]
    fn probe_cycles_are_permutations(me in 0usize..32, extra in 1usize..32, seed in any::<u64>()) {
        let n = me + extra + 1;
        let mut p = ProbeOrder::flat(me, n, seed);
        for _ in 0..3 {
            let mut c = p.cycle();
            c.sort_unstable();
            let want: Vec<usize> = (0..n).filter(|&t| t != me).collect();
            prop_assert_eq!(c, want);
        }
    }

    /// Xorshift::below stays in range and covers values (coarse check).
    #[test]
    fn xorshift_below_in_range(seed in any::<u64>(), bound in 1usize..100) {
        let mut r = Xorshift::new(seed);
        let mut seen_nonzero = false;
        for _ in 0..200 {
            let v = r.below(bound);
            prop_assert!(v < bound);
            if v > 0 {
                seen_nonzero = true;
            }
        }
        if bound > 3 {
            prop_assert!(seen_nonzero, "suspiciously constant generator");
        }
    }

    /// steal_half_amount is within [0, avail] and halves when avail > 1.
    #[test]
    fn steal_half_bounds(avail in 0usize..10_000) {
        let g = DfsStack::<u32>::steal_half_amount(avail);
        prop_assert!(g <= avail);
        if avail > 1 {
            prop_assert_eq!(g, avail / 2);
        } else {
            prop_assert_eq!(g, avail);
        }
    }
}
