//! Protocol-level tests of the individual algorithm families, driven
//! through small crafted clusters. These pin down behaviours that the
//! whole-run conservation tests would only catch indirectly.

use pgas::sim::SimCluster;
use pgas::{Comm, MachineModel};
use worksteal::engine::worker;
use worksteal::taskgen::SyntheticGen;
use worksteal::vars;
use worksteal::{Algorithm, RunConfig};

fn cluster(n: usize) -> SimCluster<u32> {
    SimCluster::new(MachineModel::kittyhawk(), n, vars::space_config())
}

/// A balanced tree big enough that every thread must steal at least once.
fn gen() -> SyntheticGen {
    SyntheticGen {
        branch: 4,
        depth: 6,
    }
}

#[test]
fn distmem_victims_answer_every_request() {
    // Per §3.3.3, every CASed request must be answered (granted or denied):
    // globally, successful CASes == grants + denials. We can't observe CAS
    // wins directly, but steals_ok + steals_failed-by-denial must equal
    // requests seen by victims plus failed CAS races; at minimum, every
    // *serviced* request produced a response the thief consumed, so
    // steals_ok across threads == requests granted across threads.
    let report_cluster = cluster(6);
    let cfg = RunConfig::new(Algorithm::DistMem, 2);
    let g = gen();
    let results = report_cluster.run(|c| worker(c, &g, &cfg));
    let total_ok: u64 = results.results.iter().map(|r| r.steals_ok).sum();
    let total_granted: u64 = results.results.iter().map(|r| r.requests_serviced).sum();
    assert_eq!(
        total_ok, total_granted,
        "every grant must be consumed exactly once"
    );
}

/// The request cells must all be reset to NO_REQUEST at exit: no thief is
/// left hanging.
#[test]
fn distmem_request_cells_reset_at_exit() {
    let c = cluster(5);
    let cfg = RunConfig::new(Algorithm::DistMem, 2);
    let g = gen();
    let report = c.run(|c| worker(c, &g, &cfg));
    for t in 0..5 {
        assert_eq!(
            report.final_scalar(t, vars::REQUEST),
            vars::NO_REQUEST,
            "thread {t} exited with a dangling request"
        );
    }
}

/// work_avail must be OUT_OF_WORK on every thread after termination.
#[test]
fn work_avail_is_out_of_work_at_exit() {
    for alg in [Algorithm::DistMem, Algorithm::Term, Algorithm::SharedMem] {
        let c = cluster(4);
        let cfg = RunConfig::new(alg, 2);
        let g = gen();
        let report = c.run(|c| worker(c, &g, &cfg));
        for t in 0..4 {
            assert!(
                report.final_scalar(t, vars::WORK_AVAIL) <= 0,
                "{}: thread {t} advertises work after termination",
                alg.label()
            );
        }
    }
}

/// Streamlined termination: the barrier count equals the thread count at
/// exit and every TERM flag is raised.
#[test]
fn streamlined_exit_state() {
    for alg in [Algorithm::Term, Algorithm::TermRapdif, Algorithm::DistMem] {
        let n = 7;
        let c = cluster(n);
        let cfg = RunConfig::new(alg, 2);
        let g = gen();
        let report = c.run(|c| worker(c, &g, &cfg));
        assert_eq!(
            report.final_scalar(0, vars::BARRIER_COUNT),
            n as i64,
            "{}",
            alg.label()
        );
        for t in 0..n {
            assert_eq!(report.final_scalar(t, vars::TERM), 1, "{}", alg.label());
        }
    }
}

/// Grant acknowledgements: cumulative ACK equals cumulative RESERVED for
/// the locked variants at exit (no transfer left un-acked).
#[test]
fn locked_acks_balance_reservations() {
    for alg in [Algorithm::SharedMem, Algorithm::Term, Algorithm::TermRapdif] {
        let c = cluster(5);
        let cfg = RunConfig::new(alg, 2);
        let g = gen();
        let report = c.run(|c| worker(c, &g, &cfg));
        for t in 0..5 {
            let reserved = report.final_scalar(t, vars::RESERVED);
            let acked = report.final_scalar(t, vars::ACK);
            assert_eq!(reserved, acked, "{}: thread {t}", alg.label());
        }
    }
}

/// mpi-ws leaves no unread WORK messages behind (drained mailboxes may hold
/// only stale REQ/NOWORK/token traffic, never actual work).
#[test]
fn mpi_ws_loses_no_work_messages() {
    // Conservation already implies this, but check the stronger property
    // across several seeds to exercise different termination races.
    for seed in 0..8u64 {
        let c = cluster(5);
        let mut cfg = RunConfig::new(Algorithm::MpiWs, 2);
        cfg.seed = seed;
        let g = gen();
        let report = c.run(|c| worker(c, &g, &cfg));
        let nodes: u64 = report.results.iter().map(|r| r.nodes).sum();
        assert_eq!(nodes, g.size(), "seed {seed}");
    }
}

/// The engine's in-band reduction works for every algorithm: all threads
/// exit with the same reduced total equal to the tree size.
#[test]
fn in_band_totals_agree() {
    for alg in Algorithm::all() {
        let c = cluster(4);
        let cfg = RunConfig::new(alg, 2);
        let g = gen();
        let report = c.run(|c| worker(c, &g, &cfg));
        for r in &report.results {
            assert_eq!(r.reduced_total, g.size(), "{}", alg.label());
        }
    }
}

/// A custom harness can embed `worker` in its own cluster and mix in extra
/// communication afterwards — the documented use of `engine::worker`.
#[test]
fn worker_embeds_in_custom_cluster() {
    let c = cluster(3);
    let cfg = RunConfig::new(Algorithm::DistMem, 2);
    let g = gen();
    let report = c.run(|c| {
        let res = worker(c, &g, &cfg);
        // Post-run custom phase: vote on cell 11 of thread 0... use the
        // first free collective-block-external pattern: reuse REQUEST cell
        // (protocol is over).
        c.add(0, vars::REQUEST, 1);
        res.nodes
    });
    let total: u64 = report.results.iter().sum();
    assert_eq!(total, g.size());
    // NO_REQUEST (-1) + 3 votes.
    assert_eq!(report.final_scalar(0, vars::REQUEST), vars::NO_REQUEST + 3);
}
