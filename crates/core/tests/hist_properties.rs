//! Property tests for the log-bucketed latency histogram (`hist.rs`):
//! merge is an order-independent exact fold with the empty histogram as
//! identity, the top octave saturates instead of overflowing at `u64::MAX`,
//! and quantiles stay monotone through merges.

use proptest::prelude::*;
use worksteal::LatencyHistogram;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Merging with the empty histogram changes nothing, on either side:
    /// the empty histogram is the identity of the merge monoid.
    #[test]
    fn empty_merge_is_identity(samples in prop::collection::vec(any::<u64>(), 0..200)) {
        let h = hist_of(&samples);
        let mut left = h.clone();
        left.merge(&LatencyHistogram::new());
        prop_assert!(left == h, "h ⊔ ∅ != h");
        let mut right = LatencyHistogram::new();
        right.merge(&h);
        prop_assert!(right == h, "∅ ⊔ h != h");
    }

    /// Merge is commutative and agrees with recording every sample into a
    /// single histogram (the property service-mode report assembly relies
    /// on when folding per-thread histograms in rank order).
    #[test]
    fn merge_is_commutative_and_exact(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert!(ab == ba, "merge is not commutative");
        let mut whole = hist_of(&a);
        for &s in &b {
            whole.record(s);
        }
        prop_assert!(ab == whole, "merge disagrees with one-pass recording");
    }

    /// The top octave saturates rather than overflowing: samples at and
    /// near `u64::MAX` share the final bucket, record and merge without
    /// panicking, and keep the exact extremes.
    #[test]
    fn top_bucket_saturates_at_u64_max(
        near_max in prop::collection::vec((u64::MAX - 1000)..u64::MAX, 1..50),
    ) {
        let mut h = hist_of(&near_max);
        h.record(u64::MAX);
        prop_assert_eq!(h.max(), u64::MAX);
        // Everything landed in one (the last) bucket.
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        prop_assert_eq!(buckets.len(), 1, "top-of-range samples split buckets");
        prop_assert_eq!(buckets[0].1, near_max.len() as u64 + 1);
        // Quantiles stay inside the recorded extremes (the min/max clamp).
        prop_assert!(h.quantile(1.0) >= h.min() && h.quantile(1.0) <= h.max());
        // Self-merge doubles the count and keeps the saturated max.
        let other = h.clone();
        h.merge(&other);
        prop_assert_eq!(h.max(), u64::MAX);
        prop_assert_eq!(h.count(), 2 * (near_max.len() as u64 + 1));
    }

    /// Quantiles are monotone in `q` after an arbitrary merge, and pinned
    /// inside `[min, max]`.
    #[test]
    fn quantiles_monotone_after_merge(
        a in prop::collection::vec(any::<u64>(), 1..200),
        b in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut m = hist_of(&a);
        m.merge(&hist_of(&b));
        let mut last = 0u64;
        for q in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = m.quantile(q);
            prop_assert!(v >= last, "quantile({}) = {} < {}", q, v, last);
            prop_assert!(v >= m.min() && v <= m.max());
            last = v;
        }
    }
}
