//! Property tests for the scheduler's policy axes: victim selectors produce
//! valid orders, steal policies honor their contract, and policy bundles
//! reproduce the named algorithms they are supposed to equal — on the
//! virtual-time simulator, *bit*-equal.

use pgas::{Distance, MachineModel};
use proptest::prelude::*;
use worksteal::probe::ProbeOrder;
use worksteal::{
    run_sim, Algorithm, RunConfig, StealPolicy, StealPolicyKind, UtsGen, VictimPolicy,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every victim cycle — flat or hierarchical, any seed, any shape — is a
    /// permutation of all threads excluding self.
    #[test]
    fn victim_cycles_are_permutations_excluding_self(
        me in 0usize..48,
        extra in 1usize..48,
        seed in any::<u64>(),
        hier in any::<bool>(),
    ) {
        let n = me + extra + 1;
        let machine = MachineModel::kittyhawk();
        let mut p = if hier {
            ProbeOrder::hierarchical(me, n, seed, &machine)
        } else {
            ProbeOrder::flat(me, n, seed)
        };
        for _ in 0..3 {
            let mut c = p.cycle();
            prop_assert!(!c.contains(&me), "selector probed itself");
            c.sort_unstable();
            let want: Vec<usize> = (0..n).filter(|&t| t != me).collect();
            prop_assert_eq!(c, want);
        }
    }

    /// Hierarchical cycles visit every same-node victim (per
    /// `MachineModel::distance`) before any remote one; flat cycles are
    /// oblivious to the machine. On an SMP model (one big node) the two
    /// selectors agree exactly.
    #[test]
    fn hierarchical_orders_same_node_first(
        me in 0usize..48,
        extra in 1usize..48,
        seed in any::<u64>(),
    ) {
        let n = me + extra + 1;
        let machine = MachineModel::kittyhawk();
        let mut p = ProbeOrder::hierarchical(me, n, seed, &machine);
        let cycle = p.cycle();
        let first_remote = cycle
            .iter()
            .position(|&v| machine.distance(me, v) == Distance::Remote)
            .unwrap_or(cycle.len());
        for (i, &v) in cycle.iter().enumerate() {
            let remote = machine.distance(me, v) == Distance::Remote;
            prop_assert_eq!(
                remote,
                i >= first_remote,
                "same-node victim {} probed after a remote one: {:?}",
                v,
                cycle
            );
        }

        // One big node: hierarchy degenerates to the flat order.
        let smp = MachineModel::smp();
        let mut h = ProbeOrder::hierarchical(me, n, seed, &smp);
        let mut f = ProbeOrder::flat(me, n, seed);
        prop_assert_eq!(h.cycle(), f.cycle());
    }

    /// The steal-amount contract every transport relies on: 0 at 0, and
    /// 1 ≤ amount ≤ avail for any positive surplus, for every policy kind.
    #[test]
    fn steal_policies_honor_contract(avail in 0usize..100_000) {
        for sp in [StealPolicyKind::One, StealPolicyKind::Half, StealPolicyKind::Adaptive] {
            let amt = sp.amount(avail);
            if avail == 0 {
                prop_assert_eq!(amt, 0, "{}", sp.label());
            } else {
                prop_assert!(amt >= 1 && amt <= avail, "{}: {} of {}", sp.label(), amt, avail);
            }
        }
    }
}

/// Two runs with the same effective bundle must be *bit*-identical on the
/// simulator: same makespan, same per-thread node counts, steal counters,
/// and state times.
fn assert_runs_identical(a: &RunConfig, b: &RunConfig, what: &str) {
    let p = uts_tree::presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for threads in [2, 5, 8] {
        let ra = run_sim(MachineModel::kittyhawk(), threads, &gen, a);
        let rb = run_sim(MachineModel::kittyhawk(), threads, &gen, b);
        assert_eq!(ra.makespan_ns, rb.makespan_ns, "{what}: makespan, p={threads}");
        for (x, y) in ra.per_thread.iter().zip(&rb.per_thread) {
            assert_eq!(x.nodes, y.nodes, "{what}: nodes, p={threads}");
            assert_eq!(x.steals_ok, y.steals_ok, "{what}: steals, p={threads}");
            assert_eq!(x.probes, y.probes, "{what}: probes, p={threads}");
            assert_eq!(x.state_ns, y.state_ns, "{what}: state times, p={threads}");
        }
    }
}

/// Overriding one algorithm's bundle axes into another's quadruple
/// reproduces the latter bit-exactly: the named algorithms really are
/// nothing but policy bundles.
#[test]
fn bundle_overrides_reproduce_named_algorithms() {
    // upc-term + steal-half == upc-term-rapdif.
    let mut a = RunConfig::new(Algorithm::Term, 2);
    a.steal_policy = Some(StealPolicyKind::Half);
    let b = RunConfig::new(Algorithm::TermRapdif, 2);
    assert_runs_identical(&a, &b, "Term+half vs TermRapdif");

    // upc-distmem + hierarchical victims == upc-hier.
    let mut a = RunConfig::new(Algorithm::DistMem, 2);
    a.victim_policy = Some(VictimPolicy::Hier);
    let b = RunConfig::new(Algorithm::Hier, 2);
    assert_runs_identical(&a, &b, "DistMem+hier vs Hier");

    // upc-hier + flat victims == upc-distmem (the inverse override).
    let mut a = RunConfig::new(Algorithm::Hier, 2);
    a.victim_policy = Some(VictimPolicy::Flat);
    let b = RunConfig::new(Algorithm::DistMem, 2);
    assert_runs_identical(&a, &b, "Hier+flat vs DistMem");

    // Explicitly restating an algorithm's own axes is a no-op.
    let mut a = RunConfig::new(Algorithm::TermRapdif, 2);
    a.victim_policy = Some(VictimPolicy::Flat);
    a.steal_policy = Some(StealPolicyKind::Half);
    let b = RunConfig::new(Algorithm::TermRapdif, 2);
    assert_runs_identical(&a, &b, "TermRapdif restated");
}

/// Non-paper bundles (hierarchical victims on the locked transport, adaptive
/// steal amounts anywhere) run and conserve the tree.
#[test]
fn non_paper_bundles_conserve_nodes() {
    let p = uts_tree::presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in [Algorithm::SharedMem, Algorithm::Term, Algorithm::DistMem, Algorithm::MpiWs] {
        for vp in [VictimPolicy::Flat, VictimPolicy::Hier] {
            for sp in [StealPolicyKind::One, StealPolicyKind::Half, StealPolicyKind::Adaptive] {
                let mut cfg = RunConfig::new(alg, 2);
                cfg.victim_policy = Some(vp);
                cfg.steal_policy = Some(sp);
                let report = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
                assert_eq!(
                    report.total_nodes,
                    p.expected.nodes,
                    "{}+{}+{} lost/duplicated nodes",
                    alg.label(),
                    vp.label(),
                    sp.label()
                );
            }
        }
    }
}
