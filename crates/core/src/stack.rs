//! The split DFS stack (paper Figure 2).
//!
//! Each thread's depth-first stack has a **local region** — private, no
//! locking, accessed at full speed — and a **shared region** living in the
//! thread's partition of the global space, from which chunks of `k` nodes
//! can be stolen. This module owns the local region and the owner-side
//! bookkeeping; *how* the shared region's counters are synchronised (locked
//! vs. request/response) is the algorithmic difference between §3.1 and
//! §3.3.3 and lives with the algorithms.
//!
//! Layout of the shared region inside the thread's `pgas` area:
//! chunk `i` (0-based from `base`) occupies items
//! `[(base + i) * k, (base + i + 1) * k)`. Steals are served oldest-first
//! (lowest index — the nodes nearest the tree root, statistically the
//! largest subtrees); the owner reacquires newest-first.
//!
//! **Ready-queue layering** (`crate::workload`): DAG workloads reuse this
//! stack unchanged as their distributed ready queue — a task is pushed
//! exactly when its last dependency resolves (the expansion hook emits only
//! newly-ready successors, highest priority nearest the top), so everything
//! in the local or shared region is ready by construction and the steal,
//! release, and termination protocols apply verbatim. Nothing here knows
//! about dependencies; that is the point.

use std::collections::VecDeque;

use pgas::comm::Item;

/// A worker's local DFS region plus owner-side mirrors of its shared region.
#[derive(Debug)]
pub struct DfsStack<T> {
    /// Private region: back = stack top.
    local: VecDeque<T>,
    /// Chunk size `k`.
    pub k: usize,
    /// First live chunk index of the shared region (owner's mirror).
    pub base: usize,
    /// Number of stealable chunks (owner's mirror of `work_avail`).
    pub avail: usize,
    /// Cumulative chunks granted to thieves (owner's mirror of `RESERVED`).
    pub granted: u64,
}

impl<T: Item> DfsStack<T> {
    /// Empty stack with chunk size `k`.
    pub fn new(k: usize) -> DfsStack<T> {
        assert!(k > 0, "chunk size must be positive");
        DfsStack {
            local: VecDeque::new(),
            k,
            base: 0,
            avail: 0,
            granted: 0,
        }
    }

    /// Nodes in the local region.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Is the local region empty?
    pub fn is_local_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Push one node (DFS push).
    pub fn push(&mut self, t: T) {
        self.local.push_back(t);
    }

    /// Extend with several nodes (children of an expansion, a reacquired
    /// chunk, or stolen work).
    pub fn push_all(&mut self, ts: &[T]) {
        self.local.extend(ts.iter().copied());
    }

    /// Pop the top node (DFS pop).
    pub fn pop(&mut self) -> Option<T> {
        self.local.pop_back()
    }

    /// The node the next [`DfsStack::pop`] would return, without removing
    /// it (ready-queue tests assert priority ordering through this).
    pub fn peek(&self) -> Option<&T> {
        self.local.back()
    }

    /// Remove and return the `k` *oldest* local nodes for a release.
    /// Panics if fewer than `k` are present.
    pub fn take_bottom_chunk(&mut self) -> Vec<T> {
        assert!(self.local.len() >= self.k, "release without enough nodes");
        self.local.drain(..self.k).collect()
    }

    /// Item offset where the next released chunk goes in the area.
    pub fn release_offset(&self) -> usize {
        (self.base + self.avail) * self.k
    }

    /// Item offset of the newest shared chunk (for owner reacquire).
    /// Panics if no chunk is available.
    pub fn top_chunk_offset(&self) -> usize {
        assert!(self.avail > 0, "reacquire from empty shared region");
        (self.base + self.avail - 1) * self.k
    }

    /// Item offset of the oldest shared chunk (where steals are served).
    pub fn steal_offset(&self) -> usize {
        (self.base) * self.k
    }

    /// Grant `chunks` to a thief from the bottom of the shared region,
    /// returning the item offset of the granted block. Updates mirrors only;
    /// the caller publishes the new counters as its variant requires.
    pub fn grant(&mut self, chunks: usize) -> usize {
        assert!(chunks > 0 && chunks <= self.avail, "invalid grant");
        let offset = self.steal_offset();
        self.base += chunks;
        self.avail -= chunks;
        self.granted += chunks as u64;
        offset
    }

    /// How many chunks a steal-half policy grants: half (rounded down) when
    /// more than one chunk is available, otherwise whatever is there (§3.3.2).
    pub fn steal_half_amount(avail: usize) -> usize {
        if avail > 1 {
            avail / 2
        } else {
            avail
        }
    }

    /// Should the owner release? (§3.1: local depth at least `release_depth`.)
    pub fn should_release(&self, release_depth: usize) -> bool {
        self.local.len() >= release_depth && self.local.len() >= 2 * self.k
    }

    /// Can the whole area below `base` be reclaimed? True when nothing is
    /// stealable and every granted chunk has been acknowledged as copied.
    pub fn can_compact(&self, acked: u64) -> bool {
        self.avail == 0 && acked == self.granted
    }

    /// Reset region mirrors after compaction.
    pub fn reset_region(&mut self) {
        self.base = 0;
        self.avail = 0;
    }

    /// Drain the entire local region, oldest first (crash-recovery spill and
    /// lineage re-injection bookkeeping).
    pub fn drain_local(&mut self) -> Vec<T> {
        self.local.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let mut s: DfsStack<u32> = DfsStack::new(2);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn release_takes_oldest() {
        let mut s: DfsStack<u32> = DfsStack::new(3);
        s.push_all(&[10, 11, 12, 13, 14]);
        let chunk = s.take_bottom_chunk();
        assert_eq!(chunk, vec![10, 11, 12]);
        assert_eq!(s.local_len(), 2);
        assert_eq!(s.pop(), Some(14));
    }

    #[test]
    fn offsets_track_region_layout() {
        let mut s: DfsStack<u32> = DfsStack::new(4);
        assert_eq!(s.release_offset(), 0);
        s.avail = 3;
        s.base = 2;
        assert_eq!(s.release_offset(), (2 + 3) * 4);
        assert_eq!(s.steal_offset(), 2 * 4);
        assert_eq!(s.top_chunk_offset(), (2 + 3 - 1) * 4);
    }

    #[test]
    fn grant_moves_base_and_counts() {
        let mut s: DfsStack<u32> = DfsStack::new(2);
        s.avail = 5;
        let off = s.grant(2);
        assert_eq!(off, 0);
        assert_eq!(s.base, 2);
        assert_eq!(s.avail, 3);
        assert_eq!(s.granted, 2);
        let off2 = s.grant(3);
        assert_eq!(off2, 2 * 2);
        assert_eq!(s.avail, 0);
    }

    #[test]
    #[should_panic(expected = "invalid grant")]
    fn grant_more_than_avail_panics() {
        let mut s: DfsStack<u32> = DfsStack::new(2);
        s.avail = 1;
        s.grant(2);
    }

    #[test]
    fn steal_half_policy() {
        assert_eq!(DfsStack::<u32>::steal_half_amount(0), 0);
        assert_eq!(DfsStack::<u32>::steal_half_amount(1), 1);
        assert_eq!(DfsStack::<u32>::steal_half_amount(2), 1);
        assert_eq!(DfsStack::<u32>::steal_half_amount(7), 3);
        assert_eq!(DfsStack::<u32>::steal_half_amount(8), 4);
    }

    #[test]
    fn should_release_respects_both_bounds() {
        let mut s: DfsStack<u32> = DfsStack::new(4);
        s.push_all(&[0; 7]);
        // 7 < 2k = 8: never release even with a lower configured depth.
        assert!(!s.should_release(6));
        s.push(1);
        assert!(s.should_release(8));
        assert!(!s.should_release(9));
    }

    #[test]
    fn compaction_requires_acks() {
        let mut s: DfsStack<u32> = DfsStack::new(2);
        s.avail = 1;
        s.grant(1);
        assert!(!s.can_compact(0), "granted but un-acked");
        assert!(s.can_compact(1));
        s.reset_region();
        assert_eq!((s.base, s.avail), (0, 0));
    }
}
