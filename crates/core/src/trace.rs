//! Event tracing and post-run analysis.
//!
//! When [`crate::RunConfig::trace`] is set, every worker records its state
//! transitions and steal protocol events with virtual timestamps. The
//! analyses here turn those logs into the quantities the paper reasons
//! about qualitatively:
//!
//! - **Work diffusion** (§3.3.2): how quickly work reaches idle threads
//!   after the start of the run — the whole point of steal-half. Measured
//!   as the time by which 50% / 90% / 100% of threads first held work.
//! - **Steal topology**: who stole from whom (and, with a machine model,
//!   how much of the traffic stayed on-node — the §6.2 `upc-hier` motive).
//! - **Timelines**: an ASCII Gantt chart of the Figure-1 states per thread.

use crate::state::State;

/// One traced event (timestamps are `Comm::now()` nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Entered a Figure-1 state.
    Enter {
        /// Time of the transition.
        t_ns: u64,
        /// New state.
        state: State,
    },
    /// A successful steal: we obtained `chunks` chunks from `victim`.
    StealOk {
        /// Completion time.
        t_ns: u64,
        /// The thread robbed.
        victim: usize,
        /// Chunks transferred.
        chunks: u64,
    },
    /// A failed steal attempt against `victim`.
    StealFail {
        /// Failure time.
        t_ns: u64,
        /// The targeted thread.
        victim: usize,
    },
    /// Released one chunk from local to shared region (or pushed it away).
    Release {
        /// Release time.
        t_ns: u64,
    },
    /// A steal request timed out awaiting `victim`'s response (fault
    /// hardening; see `docs/faults.md`).
    StealTimeout {
        /// Expiry time.
        t_ns: u64,
        /// The unresponsive victim.
        victim: usize,
    },
    /// Outcome of the timeout retract against `victim`.
    Retract {
        /// Retract time.
        t_ns: u64,
        /// The abandoned victim.
        victim: usize,
        /// `true`: the request was withdrawn before the victim saw it.
        /// `false`: the victim's response had already landed and was
        /// consumed instead.
        won: bool,
    },
    /// This rank's scheduled crash fired: it spilled `items` nodes and died
    /// (crash-fault runs only; see `docs/faults.md`).
    Death {
        /// Time of death.
        t_ns: u64,
        /// Nodes published in the spill.
        items: u64,
    },
    /// This rank adopted a dead rank's orphaned spill.
    Adopt {
        /// Adoption time.
        t_ns: u64,
        /// The dead rank whose spill was recovered.
        dead: usize,
        /// Nodes recovered.
        items: u64,
    },
    /// A donor re-injected an unacknowledged lineage grant (lost message or
    /// dead thief).
    Reinject {
        /// Re-injection time.
        t_ns: u64,
        /// Nodes pushed back onto the donor's own stack.
        items: u64,
    },
    /// This rank executed a quorum eviction (its vote completed the quorum)
    /// and ran the scavenge pass over the victim's shared region
    /// (docs/faults.md §8).
    Evict {
        /// Time the scavenge pass completed.
        t_ns: u64,
        /// The evicted rank.
        victim: usize,
        /// Nodes scavenged from the victim's shared region.
        items: u64,
    },
    /// This rank re-entered the membership as a new incarnation (after
    /// observing its own eviction fence, or restarting after a kill).
    Rejoin {
        /// Rejoin time.
        t_ns: u64,
        /// The new incarnation number.
        incarnation: i64,
        /// Spill items self-adopted on a post-kill restart (0 on a fence
        /// rejoin — the folded work was never spilled).
        items: u64,
    },
}

/// Per-thread event recorder. When disabled (the default) every call is a
/// no-op and no memory is touched, keeping the hot path clean.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<Event>,
}

impl TraceLog {
    /// A recorder; pass `enabled = false` for a no-op log.
    pub fn new(enabled: bool) -> TraceLog {
        TraceLog {
            enabled,
            events: Vec::new(),
        }
    }

    /// Record a state entry.
    #[inline]
    pub fn enter(&mut self, state: State, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Enter { t_ns, state });
        }
    }

    /// Record a successful steal.
    #[inline]
    pub fn steal_ok(&mut self, victim: usize, chunks: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::StealOk {
                t_ns,
                victim,
                chunks,
            });
        }
    }

    /// Record a failed steal.
    #[inline]
    pub fn steal_fail(&mut self, victim: usize, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::StealFail { t_ns, victim });
        }
    }

    /// Record a release.
    #[inline]
    pub fn release(&mut self, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Release { t_ns });
        }
    }

    /// Record a steal-request timeout.
    #[inline]
    pub fn steal_timeout(&mut self, victim: usize, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::StealTimeout { t_ns, victim });
        }
    }

    /// Record a timeout retract and its outcome.
    #[inline]
    pub fn retract(&mut self, victim: usize, won: bool, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Retract { t_ns, victim, won });
        }
    }

    /// Record this rank's death and spill size.
    #[inline]
    pub fn death(&mut self, items: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Death { t_ns, items });
        }
    }

    /// Record an adoption of `dead`'s spill.
    #[inline]
    pub fn adopt(&mut self, dead: usize, items: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Adopt { t_ns, dead, items });
        }
    }

    /// Record a lineage re-injection.
    #[inline]
    pub fn reinject(&mut self, items: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Reinject { t_ns, items });
        }
    }

    /// Record a quorum eviction this rank executed.
    #[inline]
    pub fn evict(&mut self, victim: usize, items: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Evict { t_ns, victim, items });
        }
    }

    /// Record this rank's re-entry as incarnation `incarnation`.
    #[inline]
    pub fn rejoin(&mut self, incarnation: i64, items: u64, t_ns: u64) {
        if self.enabled {
            self.events.push(Event::Rejoin {
                t_ns,
                incarnation,
                items,
            });
        }
    }

    /// Consume the log.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

/// Work-diffusion summary over all threads.
#[derive(Clone, Debug, PartialEq)]
pub struct Diffusion {
    /// For each thread, the first time it held work (`None` if it never
    /// worked: possible when threads outnumber chunks).
    pub first_work_ns: Vec<Option<u64>>,
    /// Time by which half the threads had worked.
    pub t50_ns: Option<u64>,
    /// Time by which 90% of the threads had worked.
    pub t90_ns: Option<u64>,
    /// Time by which every thread had worked.
    pub t100_ns: Option<u64>,
}

/// Compute diffusion times from per-thread event logs.
///
/// A thread "has work" at its first `Enter { state: Working }` *with actual
/// exploration following* — thread 0 starts Working by construction, other
/// threads enter Working only after a successful steal (or received push),
/// so the first Working entry after a `StealOk` is the arrival of work. For
/// thread 0 the run start (its first Working entry) counts.
pub fn diffusion(per_thread: &[Vec<Event>]) -> Diffusion {
    let n = per_thread.len();
    let mut first_work_ns: Vec<Option<u64>> = vec![None; n];
    for (t, events) in per_thread.iter().enumerate() {
        let mut stole = t == 0; // thread 0 is born with the root
        for e in events {
            match e {
                Event::StealOk { t_ns, .. } => {
                    stole = true;
                    if first_work_ns[t].is_none() {
                        // Work is in hand the moment the transfer completes.
                        first_work_ns[t] = Some(*t_ns);
                    }
                }
                Event::Enter {
                    t_ns,
                    state: State::Working,
                } if stole && first_work_ns[t].is_none() => {
                    first_work_ns[t] = Some(*t_ns);
                }
                _ => {}
            }
        }
    }
    let mut times: Vec<u64> = first_work_ns.iter().flatten().copied().collect();
    times.sort_unstable();
    let q = |frac: f64| -> Option<u64> {
        let need = (n as f64 * frac).ceil() as usize;
        (times.len() >= need && need > 0).then(|| times[need - 1])
    };
    Diffusion {
        t50_ns: q(0.5),
        t90_ns: q(0.9),
        t100_ns: q(1.0),
        first_work_ns,
    }
}

/// Steal topology: counts of successful steals between thread pairs.
#[derive(Clone, Debug)]
pub struct StealMatrix {
    n: usize,
    /// `counts[thief * n + victim]`.
    counts: Vec<u64>,
}

impl StealMatrix {
    /// Number of threads.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Build from per-thread logs.
    pub fn new(per_thread: &[Vec<Event>]) -> StealMatrix {
        let n = per_thread.len();
        let mut counts = vec![0u64; n * n];
        for (thief, events) in per_thread.iter().enumerate() {
            for e in events {
                if let Event::StealOk { victim, .. } = e {
                    counts[thief * n + victim] += 1;
                }
            }
        }
        StealMatrix { n, counts }
    }

    /// Steals from `victim` by `thief`.
    pub fn get(&self, thief: usize, victim: usize) -> u64 {
        self.counts[thief * self.n + victim]
    }

    /// Total successful steals.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of steals whose thief and victim share a compute node of
    /// `threads_per_node` threads (the §6.2 locality metric).
    pub fn same_node_fraction(&self, threads_per_node: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut same = 0u64;
        for thief in 0..self.n {
            for victim in 0..self.n {
                if threads_per_node == usize::MAX
                    || thief / threads_per_node == victim / threads_per_node
                {
                    same += self.get(thief, victim);
                }
            }
        }
        same as f64 / total as f64
    }

    /// Number of distinct threads that were ever robbed — the "work
    /// sources" count the §3.3.2 diffusion argument is about.
    pub fn distinct_victims(&self) -> usize {
        (0..self.n)
            .filter(|&v| (0..self.n).any(|t| self.get(t, v) > 0))
            .count()
    }
}

/// Render per-thread timelines as an ASCII Gantt chart: one row per thread,
/// `width` buckets across `[0, makespan_ns]`, the dominant state per bucket
/// drawn as `W`/`s`/`x`/`t` (working / searching / stealing / terminating),
/// `.` for pre-first-event time.
pub fn render_timeline(per_thread: &[Vec<Event>], makespan_ns: u64, width: usize) -> String {
    let mut out = String::new();
    for (t, events) in per_thread.iter().enumerate() {
        let mut row = vec!['.'; width];
        // Build (start, state) segments from Enter events.
        let mut segs: Vec<(u64, State)> = events
            .iter()
            .filter_map(|e| match e {
                Event::Enter { t_ns, state } => Some((*t_ns, *state)),
                _ => None,
            })
            .collect();
        segs.sort_by_key(|(t, _)| *t);
        for (i, (start, state)) in segs.iter().enumerate() {
            let end = segs.get(i + 1).map(|(t, _)| *t).unwrap_or(makespan_ns);
            if makespan_ns == 0 {
                continue;
            }
            let b0 = (*start as u128 * width as u128 / makespan_ns as u128) as usize;
            let b1 = (end as u128 * width as u128 / makespan_ns as u128) as usize;
            let ch = match state {
                State::Working => 'W',
                State::Searching => 's',
                State::Stealing => 'x',
                State::Terminating => 't',
            };
            for cell in row.iter_mut().take(b1.min(width).max(b0 + 1)).skip(b0) {
                *cell = ch;
            }
        }
        out.push_str(&format!("{t:>4} |"));
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Render the steal matrix as an ASCII heat map (rows = thieves, columns =
/// victims, intensity by steal count). For wide matrices, threads are
/// aggregated into `buckets × buckets` cells.
pub fn render_steal_matrix(m: &StealMatrix, buckets: usize) -> String {
    let n = m.n();
    let b = buckets.min(n).max(1);
    let mut agg = vec![0u64; b * b];
    for thief in 0..n {
        for victim in 0..n {
            let c = m.get(thief, victim);
            if c > 0 {
                agg[(thief * b / n) * b + (victim * b / n)] += c;
            }
        }
    }
    let max = agg.iter().copied().max().unwrap_or(0);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    out.push_str("thief\\victim ->\n");
    for row in 0..b {
        for col in 0..b {
            let v = agg[row * b + col];
            let idx = if max == 0 {
                0
            } else {
                ((v as f64 / max as f64) * (shades.len() - 1) as f64).round() as usize
            };
            out.push(shades[idx]);
        }
        out.push('\n');
    }
    out
}

/// Render the diffusion curve: fraction of threads that have held work, in
/// `width` time buckets across `[0, makespan_ns]`, one character row
/// (0-9 deciles, '#' for all).
pub fn render_diffusion_curve(d: &Diffusion, makespan_ns: u64, width: usize) -> String {
    let n = d.first_work_ns.len().max(1);
    let mut curve = String::with_capacity(width);
    for b in 0..width {
        let t = makespan_ns as u128 * (b as u128 + 1) / width as u128;
        let have = d
            .first_work_ns
            .iter()
            .flatten()
            .filter(|&&f| (f as u128) <= t)
            .count();
        let frac = have as f64 / n as f64;
        curve.push(if frac >= 1.0 {
            '#'
        } else {
            char::from_digit((frac * 10.0) as u32, 10).unwrap_or('?')
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(t_ns: u64, state: State) -> Event {
        Event::Enter { t_ns, state }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(false);
        log.enter(State::Working, 0);
        log.steal_ok(1, 2, 5);
        log.release(9);
        assert!(log.into_events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new(true);
        log.enter(State::Working, 0);
        log.steal_fail(3, 4);
        log.steal_ok(2, 1, 7);
        let events = log.into_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], Event::StealOk { t_ns: 7, victim: 2, chunks: 1 });
    }

    #[test]
    fn diffusion_thread0_at_start() {
        let logs = vec![
            vec![enter(0, State::Working)],
            vec![
                enter(0, State::Searching),
                Event::StealOk { t_ns: 100, victim: 0, chunks: 1 },
                enter(110, State::Working),
            ],
        ];
        let d = diffusion(&logs);
        assert_eq!(d.first_work_ns[0], Some(0));
        assert_eq!(d.first_work_ns[1], Some(100));
        assert_eq!(d.t100_ns, Some(100));
        assert_eq!(d.t50_ns, Some(0));
    }

    #[test]
    fn diffusion_with_starved_thread() {
        let logs = vec![
            vec![enter(0, State::Working)],
            vec![enter(0, State::Searching)], // never worked
        ];
        let d = diffusion(&logs);
        assert_eq!(d.first_work_ns[1], None);
        assert_eq!(d.t100_ns, None, "t100 undefined when a thread starves");
        assert_eq!(d.t50_ns, Some(0));
    }

    #[test]
    fn steal_matrix_counts_and_locality() {
        let logs = vec![
            vec![],
            vec![
                Event::StealOk { t_ns: 1, victim: 0, chunks: 1 },
                Event::StealOk { t_ns: 2, victim: 0, chunks: 2 },
            ],
            vec![Event::StealOk { t_ns: 3, victim: 1, chunks: 1 }],
            vec![Event::StealOk { t_ns: 4, victim: 0, chunks: 1 }],
        ];
        let m = StealMatrix::new(&logs);
        assert_eq!(m.get(1, 0), 2);
        assert_eq!(m.get(2, 1), 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.distinct_victims(), 2);
        // Nodes of 2 threads: {0,1} and {2,3}. Same-node steals: 1→0, 2→1? no
        // (2 is on node 1, 1 on node 0) → only the two 1→0 steals count.
        assert!((m.same_node_fraction(2) - 0.5).abs() < 1e-12);
        // One big node: everything is local.
        assert!((m.same_node_fraction(usize::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_renders_rows() {
        let logs = vec![
            vec![enter(0, State::Working), enter(50, State::Searching)],
            vec![enter(0, State::Searching), enter(50, State::Working)],
        ];
        let s = render_timeline(&logs, 100, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('W'));
        assert!(lines[0].contains('s'));
        assert!(lines[1].ends_with('W') || lines[1].contains('W'));
    }

    #[test]
    fn timeline_zero_makespan_is_safe() {
        let logs = vec![vec![enter(0, State::Working)]];
        let s = render_timeline(&logs, 0, 8);
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn steal_matrix_heatmap_shape() {
        let logs = vec![
            vec![],
            vec![Event::StealOk { t_ns: 1, victim: 0, chunks: 1 }],
            vec![Event::StealOk { t_ns: 2, victim: 1, chunks: 1 }],
            vec![],
        ];
        let m = StealMatrix::new(&logs);
        let s = render_steal_matrix(&m, 4);
        // Header + 4 rows.
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains('@'), "max cell should be darkest: {s}");
        // Aggregated rendering never panics on empty matrices.
        let empty = StealMatrix::new(&[vec![], vec![]]);
        let s = render_steal_matrix(&empty, 8);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn diffusion_curve_monotone_and_saturates() {
        let d = Diffusion {
            first_work_ns: vec![Some(0), Some(50), Some(90), None],
            t50_ns: Some(50),
            t90_ns: Some(90),
            t100_ns: None,
        };
        let c = render_diffusion_curve(&d, 100, 10);
        assert_eq!(c.len(), 10);
        // Monotone nondecreasing deciles; never reaches '#' (one starved).
        let vals: Vec<u32> = c.chars().map(|ch| ch.to_digit(10).unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{c}");
        assert!(!c.contains('#'));
        // Full coverage shows '#'.
        let d2 = Diffusion {
            first_work_ns: vec![Some(0), Some(10)],
            t50_ns: Some(0),
            t90_ns: Some(10),
            t100_ns: Some(10),
        };
        let c2 = render_diffusion_curve(&d2, 100, 5);
        assert!(c2.ends_with('#'), "{c2}");
    }
}
