//! Crash recovery: chunk lineage, lease-based death detection, orphan
//! adoption, and crash-mode quiescence (docs/faults.md "Crash faults and
//! recovery").
//!
//! When the active [`pgas::FaultPlan`] enables a crash class (message loss,
//! message duplication, rank death — [`pgas::FaultPlan::crash_active`]), the
//! paper's termination detectors are unsound: the token ring's sent/recv
//! counts never balance under loss, and the barriers would wait forever for
//! a dead rank. The scheduler then routes every detector through the
//! crash-mode discovery loops in [`crate::sched::termination`], which drive
//! the machinery in this module:
//!
//! - **Leases/heartbeats**: every live rank periodically writes `now` into
//!   its [`crate::vars::HEARTBEAT`] cell (piggybacked on existing poll and
//!   idle iterations). A rank whose heartbeat goes stale beyond the lease is
//!   *suspected*; suspicion is confirmed against its [`crate::vars::DEAD`]
//!   cell, which the dying rank publishes as its very last write — so a slow
//!   rank is never falsely declared dead.
//! - **Spill and adoption**: a dying rank folds its shared region and open
//!   grants back into its local deque, appends everything to its area as a
//!   *spill*, publishes `(SPILL_OFF, SPILL_LEN)`, and only then raises
//!   `DEAD`. Survivors race a CAS on the [`crate::vars::ADOPT`] ticket;
//!   exactly one wins and re-injects the orphaned subtrees.
//! - **Lineage**: message transports record every in-flight grant — donor,
//!   thief, node count, subtree fingerprint, payload copy — in a
//!   [`Lineage`] registry. The thief acknowledges receipt (after marking
//!   itself working); a grant that is never acknowledged (lost WORK message,
//!   lost ACK, or dead thief) is re-injected by the donor after a timeout,
//!   trading bounded duplication for guaranteed at-least-once exploration.
//! - **Quiescence**: rank 0 runs a Dijkstra-style double scan over the
//!   `Q_OUT`/`LIN_OUT`/`EPOCH` cells. Every acquisition of work marks the
//!   acquirer working (or holds a `LIN_OUT` guard) *before* the source's
//!   outgoing marker clears, so two consecutive all-quiet scans with
//!   identical epoch vectors prove no work exists or is in flight.
//!
//! Correctness under crash faults is **conservation with multiplicity**
//! (PAPERS.md, arxiv 2008.04424): UTS node exploration is idempotent and
//! children are a pure function of the parent, so re-executing a recovered
//! subtree is safe. Every node is explored at least once (nothing is ever
//! dropped without a surviving copy: spill, lineage payload, or the
//! original) and at most a small number of times (duplication only on the
//! rare ACK-loss / re-injection races, counted exactly by the fingerprint
//! multiset in [`crate::report::RunReport`]).

use pgas::comm::Item;
use pgas::{Comm, FaultPlan};

use crate::stack::DfsStack;
use crate::vars;

/// Receipt acknowledgement for a lineage-tracked grant (message
/// transports). `meta[0]` carries the grant id. Crash mode only.
pub const TAG_ACK: i64 = 4;

/// Interval between heartbeat writes (virtual ns).
pub const HEARTBEAT_INTERVAL_NS: u64 = 40_000;
/// A heartbeat older than this marks its rank as suspected dead.
pub const LEASE_NS: u64 = 150_000;
/// Interval between death-detection scans of other ranks' heartbeats.
pub const SCAN_INTERVAL_NS: u64 = 60_000;
/// Interval between rank 0's quiescence scans.
pub const QUIESCENCE_INTERVAL_NS: u64 = 40_000;
/// A grant unacknowledged for this long is re-injected by its donor.
pub const REINJECT_TIMEOUT_NS: u64 = 400_000;
/// Idle backoff between crash-mode discovery iterations.
pub const CRASH_IDLE_BACKOFF_NS: u64 = 3_000;
/// A suspected rank (stale lease, no deathbed) is put up for quorum
/// eviction once its suspicion has lasted this long (docs/faults.md §8).
pub const EVICT_TIMEOUT_NS: u64 = 300_000;

/// Votes needed to evict a rank without its cooperation: a strict majority
/// of the *total* membership, so two sides of a partition can never both
/// assemble a quorum.
pub const fn quorum(n: usize) -> usize {
    n / 2 + 1
}

/// Cheap mixing hash for lineage fingerprints (registry metadata only).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-rank crash-recovery state, carried in [`crate::sched::Cx`]. Inert
/// (every method an early-return, zero comm operations) unless the run's
/// fault plan has a crash class active — which is what keeps fault-free and
/// delay-only-faulted runs bit-identical to their pre-crash-layer results.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// Whether crash-mode recovery is running (plan has a crash class).
    pub active: bool,
    me: usize,
    n: usize,
    /// This rank's scheduled death, if the plan kills it.
    kill_at: Option<u64>,
    /// Confirmed-dead ranks (stale lease + DEAD flag observed).
    dead: Vec<bool>,
    /// Dead ranks whose spill this rank has already resolved (adopted,
    /// lost the adoption race, or found empty).
    adopt_done: Vec<bool>,
    /// Current published `Q_OUT` state (true = out of work).
    out_published: bool,
    /// Local mirror of our `EPOCH` cell.
    epoch: i64,
    next_heartbeat: u64,
    next_scan: u64,
    next_quiesce: u64,
    /// Rank 0 only: epoch vector of the previous all-quiet scan.
    prev_epochs: Option<Vec<i64>>,
    // ---- Fenced membership (docs/faults.md §8).
    /// Our current incarnation (0 at startup, bumped on every rejoin).
    inc: i64,
    /// We observed our own eviction fence; the driver must fold our held
    /// work and either rejoin as a new incarnation or retire.
    fenced: bool,
    /// Ranks fenced out by quorum eviction (no deathbed observed).
    evicted: Vec<bool>,
    /// Minimum admissible incarnation per rank: messages stamped below this
    /// are zombie traffic and must be dropped.
    inc_floor: Vec<i64>,
    /// Last `INCARNATION` value observed per rank (ballot identity).
    known_inc: Vec<i64>,
    /// Virtual time each rank's current suspicion started (0 = unsuspected).
    suspect_since: Vec<u64>,
    /// Incarnation we last voted to evict, per rank (-1 = no open vote).
    voted_inc: Vec<i64>,
    /// Evictions this rank executed whose shared cells still await the
    /// transport's scavenge pass (drained by the discovery loops).
    pending_scavenge: Vec<usize>,
    /// This rank's scheduled post-kill restart, if the plan revives it.
    restart_at: Option<u64>,
    /// Evictions this rank executed (copied into the run report).
    pub evictions: u64,
    /// Times this rank re-entered as a new incarnation (report counter).
    pub rejoins: u64,
}

impl Recovery {
    /// Recovery state for rank `me` of `n` under `faults`. Inactive (all
    /// methods no-ops) unless the plan has a crash class enabled.
    pub fn new(me: usize, n: usize, faults: &FaultPlan) -> Recovery {
        let active = faults.crash_active();
        Recovery {
            active,
            me,
            n,
            kill_at: if active { faults.kill_time(me, n) } else { None },
            dead: vec![false; if active { n } else { 0 }],
            adopt_done: vec![false; if active { n } else { 0 }],
            out_published: false,
            epoch: 0,
            next_heartbeat: 0,
            next_scan: 0,
            next_quiesce: 0,
            prev_epochs: None,
            inc: 0,
            fenced: false,
            evicted: vec![false; if active { n } else { 0 }],
            inc_floor: vec![0; if active { n } else { 0 }],
            known_inc: vec![0; if active { n } else { 0 }],
            suspect_since: vec![0; if active { n } else { 0 }],
            voted_inc: vec![-1; if active { n } else { 0 }],
            pending_scavenge: Vec::new(),
            restart_at: if active { faults.restart_time(me, n) } else { None },
            evictions: 0,
            rejoins: 0,
        }
    }

    /// Inactive recovery (for contexts built outside a run).
    pub fn inactive() -> Recovery {
        Recovery::new(0, 1, &FaultPlan::none())
    }

    /// Is `rank` confirmed dead?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.active && self.dead[rank]
    }

    /// Is `rank` out of the membership — confirmed dead *or* evicted by
    /// quorum? Victim selection, grant targeting, and scanner assignment
    /// must all skip gone ranks.
    pub fn is_gone(&self, rank: usize) -> bool {
        self.active && (self.dead[rank] || self.evicted[rank])
    }

    /// Was `rank` evicted by quorum (fenced out without a deathbed)?
    pub fn is_evicted(&self, rank: usize) -> bool {
        self.active && self.evicted[rank]
    }

    /// Did this rank observe its own eviction fence? The driver must fold
    /// every node the old incarnation still holds (transport deathbed hook)
    /// and then [`Recovery::rejoin`].
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// This rank's current incarnation (stamped into crash-mode messages).
    pub fn incarnation(&self) -> i64 {
        self.inc
    }

    /// Is a message from `src` stamped with incarnation `inc` admissible,
    /// or stale traffic from an evicted tenant that fencing must drop?
    pub fn admit(&self, src: usize, inc: i64) -> bool {
        !self.active || inc >= self.inc_floor[src]
    }

    /// Next eviction this rank executed whose shared region still awaits
    /// the transport scavenge pass.
    pub fn take_scavenge(&mut self) -> Option<usize> {
        self.pending_scavenge.pop()
    }

    /// This rank's scheduled post-kill restart time, if any.
    pub fn restart_at(&self) -> Option<u64> {
        self.restart_at
    }

    /// Has this rank's scheduled death arrived?
    pub fn kill_due(&self, now: u64) -> bool {
        matches!(self.kill_at, Some(t) if now >= t)
    }

    /// Mark this rank working: clear `Q_OUT` and bump the epoch. Must run
    /// *before* the work source's outgoing marker clears (ACK send, guard
    /// drop) — that ordering is what makes the double scan sound. Idempotent
    /// while already marked working.
    pub fn publish_working<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        if !self.active || !self.out_published {
            return;
        }
        comm.put(self.me, vars::Q_OUT, 0);
        self.epoch += 1;
        comm.put(self.me, vars::EPOCH, self.epoch);
        self.out_published = false;
    }

    /// Mark this rank out of work (idempotent).
    pub fn publish_out<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        if !self.active || self.out_published {
            return;
        }
        comm.put(self.me, vars::Q_OUT, 1);
        self.out_published = true;
    }

    /// Open an acquisition guard: quiescence cannot be declared while any
    /// rank's `LIN_OUT` is nonzero. Pull-transport thieves wrap each steal
    /// attempt in a guard; the guard must only drop after
    /// [`Recovery::publish_working`] on success.
    pub fn guard_begin<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        if self.active {
            comm.add(self.me, vars::LIN_OUT, 1);
        }
    }

    /// Close an acquisition guard.
    pub fn guard_end<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        if self.active {
            comm.add(self.me, vars::LIN_OUT, -1);
        }
    }

    /// Prove liveness: write `now` into our heartbeat cell (throttled).
    pub fn heartbeat<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        if !self.active {
            return;
        }
        let now = comm.now();
        if now >= self.next_heartbeat {
            comm.put(self.me, vars::HEARTBEAT, now as i64);
            // Self-fence check, piggybacked on the lease cadence: a fence
            // value above our incarnation means a quorum evicted us while
            // we were stalled (gray failure or partition).
            if !self.fenced && comm.get(self.me, vars::EVICTED) > self.inc {
                self.fenced = true;
            }
            self.next_heartbeat = now + HEARTBEAT_INTERVAL_NS;
        }
    }

    /// Membership scan (throttled). For every other rank:
    ///
    /// - **Re-admission**: a gone rank whose `INCARNATION` cell moved past
    ///   our admissibility floor rejoined — clear every verdict about its
    ///   old tenant.
    /// - **Eviction observation**: a fence written by another executor
    ///   marks the rank evicted here too (and raises the floor).
    /// - **Confirmed death** (unchanged): stale lease *and* `DEAD` raised.
    /// - **Quorum eviction**: stale lease with *no* deathbed starts a
    ///   suspicion timer; once it exceeds [`EVICT_TIMEOUT_NS`] we CAS one
    ///   vote onto the rank's ballot. The voter whose CAS lands exactly the
    ///   [`quorum`]th vote becomes the eviction executor: it writes the
    ///   fence, opens a `LIN_OUT` guard, and queues the rank for the
    ///   transport scavenge pass. A fresh heartbeat withdraws suspicion and
    ///   clears our ballot contribution.
    ///
    /// Returns a newly *confirmed-dead* rank, if any (evictions are
    /// reported through [`Recovery::take_scavenge`] and the counters).
    pub fn scan<T: Item, C: Comm<T>>(&mut self, comm: &mut C) -> Option<usize> {
        if !self.active {
            return None;
        }
        let now = comm.now();
        if now < self.next_scan {
            return None;
        }
        self.next_scan = now + SCAN_INTERVAL_NS;
        let mut newly_dead = None;
        for r in 0..self.n {
            if r == self.me {
                continue;
            }
            if self.dead[r] || self.evicted[r] {
                // Re-admission: only a gone rank can rejoin, and it always
                // announces itself by bumping its own INCARNATION cell.
                let inc = comm.get(r, vars::INCARNATION);
                if inc > self.known_inc[r] && inc >= self.inc_floor[r] {
                    self.known_inc[r] = inc;
                    self.dead[r] = false;
                    self.evicted[r] = false;
                    self.adopt_done[r] = false;
                    self.suspect_since[r] = 0;
                    self.voted_inc[r] = -1;
                }
                continue;
            }
            // Observe an eviction executed by another rank: the fence holds
            // `1 + evicted_incarnation`.
            let fence = comm.get(r, vars::EVICTED);
            if fence > self.known_inc[r] {
                self.known_inc[r] = fence - 1;
                self.inc_floor[r] = fence;
                self.evicted[r] = true;
                self.suspect_since[r] = 0;
                continue;
            }
            let hb = comm.get(r, vars::HEARTBEAT) as u64;
            if comm.now().saturating_sub(hb) <= LEASE_NS {
                // Fresh lease: withdraw suspicion and our ballot share.
                if self.suspect_since[r] != 0 {
                    self.suspect_since[r] = 0;
                    if self.voted_inc[r] == self.known_inc[r] {
                        comm.put(r, vars::EVICT_VOTES, 0);
                        self.voted_inc[r] = -1;
                    }
                }
                continue;
            }
            if comm.get(r, vars::DEAD) == 1 {
                self.dead[r] = true;
                self.suspect_since[r] = 0;
                newly_dead.get_or_insert(r);
                continue;
            }
            // Stale lease, no deathbed: suspected. Time the suspicion, then
            // vote for eviction.
            let t = comm.now().max(1);
            if self.suspect_since[r] == 0 {
                self.suspect_since[r] = t;
                continue;
            }
            if t.saturating_sub(self.suspect_since[r]) < EVICT_TIMEOUT_NS
                || self.voted_inc[r] == self.known_inc[r]
            {
                continue;
            }
            let mut ballot_inc = self.known_inc[r];
            let mut cur = comm.get(r, vars::EVICT_VOTES);
            loop {
                let (cinc, votes) = (cur >> 32, cur & 0xFFFF_FFFF);
                // A ballot for a newer incarnation than we knew means our
                // view was stale; join it rather than resetting it.
                if cinc > ballot_inc {
                    ballot_inc = cinc;
                    self.known_inc[r] = cinc;
                }
                let new = if cinc == ballot_inc {
                    (ballot_inc << 32) | (votes + 1)
                } else {
                    (ballot_inc << 32) | 1
                };
                let seen = comm.cas(r, vars::EVICT_VOTES, cur, new);
                if seen != cur {
                    cur = seen;
                    continue;
                }
                self.voted_inc[r] = ballot_inc;
                if (new & 0xFFFF_FFFF) as usize == quorum(self.n) {
                    // Our vote completed the quorum: we are the executor.
                    // Fence first, then guard the scavenge window so
                    // quiescence waits for the reclaimed work to land.
                    comm.put(r, vars::EVICTED, 1 + ballot_inc);
                    self.evicted[r] = true;
                    self.inc_floor[r] = ballot_inc + 1;
                    self.suspect_since[r] = 0;
                    self.evictions += 1;
                    self.guard_begin(comm);
                    self.pending_scavenge.push(r);
                }
                break;
            }
        }
        newly_dead
    }

    /// Try to adopt a confirmed-dead rank's spilled work. Exactly one
    /// survivor wins the `ADOPT` CAS, copies the spill onto its own stack,
    /// marks itself working, and clears the dead rank's in-flight marker.
    /// Returns `(dead_rank, items_recovered)` on a successful adoption.
    pub fn try_adopt<T: Item, C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
    ) -> Option<(usize, u64)> {
        if !self.active {
            return None;
        }
        for r in 0..self.n {
            if !self.dead[r] || self.adopt_done[r] {
                continue;
            }
            let slen = comm.get(r, vars::SPILL_LEN);
            if slen <= 0 {
                self.adopt_done[r] = true;
                continue;
            }
            self.guard_begin(comm);
            let won = comm.cas(r, vars::ADOPT, 0, 1 + self.me as i64) == 0;
            if won {
                let off = comm.get(r, vars::SPILL_OFF) as usize;
                let mut buf = Vec::with_capacity(slen as usize);
                comm.area_read(r, off, slen as usize, &mut buf);
                stack.push_all(&buf);
                // Working-before-unguard: the spill is accounted to us from
                // here on, never invisible to a quiescence scan.
                self.publish_working(comm);
                comm.put(r, vars::LIN_OUT, 0);
            }
            self.guard_end(comm);
            self.adopt_done[r] = true;
            if won {
                return Some((r, slen as u64));
            }
        }
        None
    }

    /// Rank 0's quiescence check (throttled): one scan reads every rank's
    /// `(Q_OUT, LIN_OUT, EPOCH)`; two consecutive all-quiet scans with
    /// identical epoch vectors prove global termination, which rank 0 then
    /// broadcasts through the `TERM` cells. Dead ranks read as permanently
    /// quiet (their deathbed leaves `LIN_OUT = 1` until the spill is
    /// adopted, so orphaned work blocks termination).
    pub fn quiescence_check<T: Item, C: Comm<T>>(&mut self, comm: &mut C) -> bool {
        if !self.active {
            return false;
        }
        debug_assert_eq!(self.me, 0, "only rank 0 runs the quiescence scan");
        let now = comm.now();
        if now < self.next_quiesce {
            return false;
        }
        self.next_quiesce = now + QUIESCENCE_INTERVAL_NS;
        let mut epochs = vec![0i64; self.n];
        for (r, e) in epochs.iter_mut().enumerate() {
            if self.evicted[r] {
                // An evicted tenant is outside the membership: its markers
                // are unreadable promises of a stalled zombie. Any work it
                // still holds is fenced with it and self-drained after it
                // thaws (see docs/faults.md §8). The slot carries the fence
                // value so a rejoin between the two scans changes the
                // vector and disarms the double scan.
                *e = -self.inc_floor[r] - 1;
                continue;
            }
            if comm.get(r, vars::Q_OUT) != 1 || comm.get(r, vars::LIN_OUT) != 0 {
                self.prev_epochs = None;
                return false;
            }
            *e = comm.get(r, vars::EPOCH);
        }
        if self.prev_epochs.as_deref() == Some(&epochs) {
            for r in 1..self.n {
                comm.put(r, vars::TERM, 1);
            }
            return true;
        }
        self.prev_epochs = Some(epochs);
        false
    }

    /// Non-root termination check: has rank 0 broadcast quiescence?
    pub fn term_seen<T: Item, C: Comm<T>>(&mut self, comm: &mut C) -> bool {
        self.active && comm.get(self.me, vars::TERM) == 1
    }

    /// The deathbed's final act, after the transport hook folded every
    /// shared chunk and open grant back into the local deque: append the
    /// whole deque to our area as the spill, publish its coordinates, and
    /// raise `DEAD` as the very last write. `LIN_OUT` is left at 1 while the
    /// spill holds work, so quiescence cannot be declared before adoption.
    /// Returns the number of spilled items.
    pub fn spill_and_die<T: Item, C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
    ) -> u64 {
        let me = self.me;
        let items = stack.drain_local();
        let off = comm.area_len(me);
        if !items.is_empty() {
            comm.area_write(me, off, &items);
        }
        comm.put(me, vars::SPILL_OFF, off as i64);
        comm.put(me, vars::SPILL_LEN, items.len() as i64);
        comm.put(me, vars::Q_OUT, 1);
        comm.put(me, vars::LIN_OUT, i64::from(!items.is_empty()));
        comm.put(me, vars::DEAD, 1);
        self.out_published = true;
        items.len() as u64
    }

    /// Re-enter the computation as a fresh incarnation after observing our
    /// own eviction. The caller must already have folded everything the old
    /// incarnation held — shared-region chunks, open lineage grants — into
    /// the local deque (transport deathbed hook); `has_work` says whether
    /// that left the deque nonempty. Publishes the bumped `INCARNATION`
    /// (the re-admission signal survivors watch), clears our ballot,
    /// refreshes the lease, and re-publishes our quiescence state under the
    /// new tenancy.
    pub fn rejoin<T: Item, C: Comm<T>>(&mut self, comm: &mut C, has_work: bool) {
        if !self.active {
            return;
        }
        let me = self.me;
        // The new incarnation must clear both our own history and whatever
        // fence was written against us.
        self.inc = (self.inc + 1).max(comm.get(me, vars::EVICTED));
        comm.put(me, vars::INCARNATION, self.inc);
        comm.put(me, vars::EVICT_VOTES, 0);
        // The deathbed fold emptied the lineage registry; the in-flight
        // marker restarts clean.
        comm.put(me, vars::LIN_OUT, 0);
        self.fenced = false;
        self.rejoins += 1;
        let now = comm.now();
        comm.put(me, vars::HEARTBEAT, now as i64);
        self.next_heartbeat = now + HEARTBEAT_INTERVAL_NS;
        if has_work {
            self.out_published = true; // force the republish
            self.publish_working(comm);
        } else {
            self.out_published = false;
            self.publish_out(comm);
        }
    }

    /// A killed rank coming back ([`pgas::FaultPlan::restart_after_ns`]):
    /// reclaim our own spill if no survivor adopted it yet (the `ADOPT` CAS
    /// race is fair — either way the work survives, plus bounded
    /// multiplicity on the rare stale-read race), clear the deathbed cells,
    /// and [`Recovery::rejoin`] as a fresh incarnation. Returns the number
    /// of self-adopted items.
    pub fn restart<T: Item, C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
    ) -> u64 {
        if !self.active {
            return 0;
        }
        let me = self.me;
        let mut recovered = 0u64;
        let slen = comm.get(me, vars::SPILL_LEN);
        if slen > 0 && comm.cas(me, vars::ADOPT, 0, 1 + me as i64) == 0 {
            let off = comm.get(me, vars::SPILL_OFF) as usize;
            let mut buf = Vec::with_capacity(slen as usize);
            comm.area_read(me, off, slen as usize, &mut buf);
            stack.push_all(&buf);
            recovered = slen as u64;
        }
        // Whatever the adoption race decided, the new tenant starts with a
        // clean deathbed.
        comm.put(me, vars::SPILL_LEN, 0);
        comm.put(me, vars::ADOPT, 0);
        comm.put(me, vars::DEAD, 0);
        // The plan's kill has fired; the restart consumes it.
        self.kill_at = None;
        self.restart_at = None;
        self.rejoin(comm, !stack.is_local_empty());
        recovered
    }
}

/// One in-flight grant tracked by a donor-side [`Lineage`] registry.
#[derive(Clone, Debug)]
pub struct Grant<T> {
    /// Grant id (carried in the WORK/PUSH message's `meta[0]` and echoed by
    /// the ACK).
    pub id: u64,
    /// Receiving rank.
    pub thief: usize,
    /// Items in the grant.
    pub items: u64,
    /// Fingerprint of (donor, thief, id, size) — registry metadata for
    /// traces and diagnostics.
    pub fingerprint: u64,
    /// Virtual send time (re-injection deadline base).
    pub sent_at: u64,
    payload: Vec<T>,
}

impl<T> Grant<T> {
    /// The granted items (the payload copy held for re-injection).
    pub fn payload(&self) -> &[T] {
        &self.payload
    }
}

/// Donor-side registry of in-flight grants for the message transports
/// (crash mode only). Holds a payload copy per grant so an unacknowledged
/// chunk can be re-injected; publishes its open-entry count through the
/// donor's `LIN_OUT` cell so quiescence waits for every grant to settle.
#[derive(Clone, Debug, Default)]
pub struct Lineage<T> {
    next_id: u64,
    open: Vec<Grant<T>>,
}

impl<T: Item> Lineage<T> {
    /// Empty registry.
    pub fn new() -> Lineage<T> {
        Lineage {
            next_id: 0,
            open: Vec::new(),
        }
    }

    /// Open grants.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// No grants outstanding?
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// Record a grant about to be sent to `thief` and raise the donor's
    /// in-flight marker. Must be called *before* the send so no scan can
    /// observe the message in flight with a clear marker. Returns the grant
    /// id to stamp into the message's `meta[0]`.
    pub fn open<C: Comm<T>>(&mut self, comm: &mut C, thief: usize, payload: &[T]) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        let me = comm.my_id();
        comm.add(me, vars::LIN_OUT, 1);
        self.open.push(Grant {
            id,
            thief,
            items: payload.len() as u64,
            fingerprint: mix(
                (me as u64) << 48 | (thief as u64) << 32 | id << 8 | payload.len() as u64 & 0xFF,
            ),
            sent_at: comm.now(),
            payload: payload.to_vec(),
        });
        id
    }

    /// Close the grant `id` on ACK receipt, returning the closed grant so
    /// the caller can settle per-epoch accounting against its payload
    /// (service mode — see `docs/service.md`). Unknown ids (duplicated or
    /// already re-injected grants) are ignored and return `None`.
    pub fn ack<C: Comm<T>>(&mut self, comm: &mut C, id: u64) -> Option<Grant<T>> {
        if let Some(pos) = self.open.iter().position(|g| g.id == id) {
            let g = self.open.remove(pos);
            comm.add(comm.my_id(), vars::LIN_OUT, -1);
            Some(g)
        } else {
            None
        }
    }

    /// Re-inject grants whose ACK is overdue or whose thief is gone
    /// (confirmed dead or evicted by quorum): the payload copy goes back
    /// onto the donor's own stack (marking
    /// the donor working before the marker drops). Returns the re-injected
    /// item count (0 when nothing was due).
    pub fn reinject_due<C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        rec: &mut Recovery,
    ) -> u64 {
        if self.open.is_empty() {
            return 0;
        }
        let now = comm.now();
        let mut recovered = 0u64;
        let mut i = 0;
        while i < self.open.len() {
            let due = now.saturating_sub(self.open[i].sent_at) >= REINJECT_TIMEOUT_NS
                || rec.is_gone(self.open[i].thief);
            if due {
                let g = self.open.remove(i);
                stack.push_all(&g.payload);
                rec.publish_working(comm);
                comm.add(comm.my_id(), vars::LIN_OUT, -1);
                recovered += g.items;
            } else {
                i += 1;
            }
        }
        recovered
    }

    /// Deathbed: fold every open payload back into the local deque (it will
    /// ride the spill). No marker updates — the deathbed overwrites
    /// `LIN_OUT` wholesale. Returns the folded item count.
    pub fn drain_into(&mut self, stack: &mut DfsStack<T>) -> u64 {
        let mut items = 0u64;
        for g in self.open.drain(..) {
            stack.push_all(&g.payload);
            items += g.items;
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::sim::SimCluster;
    use pgas::MachineModel;

    /// End-to-end spill/lease/adopt over a 2-rank sim cluster: rank 1 dies
    /// holding three items; rank 0 confirms the death via the stale lease +
    /// DEAD flag, wins the adoption CAS, and recovers all three items. The
    /// quiescence scan refuses to declare while the spill is orphaned and
    /// accepts after adoption.
    #[test]
    fn spill_is_confirmed_and_adopted_exactly_once() {
        let plan = FaultPlan::crashy(7);
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::smp(), 2, crate::vars::space_config());
        let results = cluster
            .run(|comm| {
                let me = comm.my_id();
                let mut rec = Recovery::new(me, 2, &plan);
                assert!(rec.active);
                let mut stack: DfsStack<u64> = DfsStack::new(2);
                if me == 1 {
                    stack.push_all(&[10, 11, 12]);
                    let spilled = rec.spill_and_die(comm, &mut stack);
                    [spilled, 0]
                } else {
                    rec.publish_out(comm);
                    // Stale the victim's lease, then confirm + adopt.
                    comm.advance_idle(2 * LEASE_NS);
                    let mut dead = None;
                    let mut dog = 0;
                    while dead.is_none() {
                        dead = rec.scan(comm);
                        comm.advance_idle(SCAN_INTERVAL_NS);
                        dog += 1;
                        assert!(dog < 100, "death never confirmed");
                    }
                    assert_eq!(dead, Some(1));
                    assert!(rec.is_dead(1));
                    // Orphaned spill blocks quiescence (LIN_OUT = 1).
                    assert!(!rec.quiescence_check(comm));
                    let (rank, items) = rec.try_adopt(comm, &mut stack).expect("adoption");
                    assert_eq!((rank, items), (1, 3));
                    // Second attempt finds nothing left to adopt.
                    assert!(rec.try_adopt(comm, &mut stack).is_none());
                    let got = stack.drain_local();
                    assert_eq!(got, vec![10, 11, 12]);
                    // All quiet now: double scan declares.
                    rec.publish_out(comm);
                    comm.advance_idle(QUIESCENCE_INTERVAL_NS);
                    assert!(!rec.quiescence_check(comm), "first quiet scan arms");
                    comm.advance_idle(QUIESCENCE_INTERVAL_NS);
                    assert!(rec.quiescence_check(comm), "second quiet scan declares");
                    [got.len() as u64, 1]
                }
            })
            .results;
        assert_eq!(results[0], [3, 1]);
        assert_eq!(results[1], [3, 0]);
    }

    /// Lineage: an unacknowledged grant re-injects after the timeout; an
    /// acknowledged one never does; duplicate ACKs are ignored.
    #[test]
    fn lineage_reinjects_unacked_grants_once() {
        let plan = FaultPlan::crashy(3);
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::smp(), 2, crate::vars::space_config());
        let results = cluster
            .run(|comm| {
                let me = comm.my_id();
                if me != 0 {
                    return [0, 0];
                }
                let mut rec = Recovery::new(0, 2, &plan);
                let mut stack: DfsStack<u64> = DfsStack::new(2);
                let mut lin: Lineage<u64> = Lineage::new();
                let acked = lin.open(comm, 1, &[1, 2]);
                let lost = lin.open(comm, 1, &[3, 4, 5]);
                assert_eq!(lin.len(), 2);
                let closed = lin.ack(comm, acked).expect("first ACK closes");
                assert_eq!(closed.payload(), &[1, 2]);
                assert!(lin.ack(comm, acked).is_none(), "duplicate ACK ignored");
                assert_eq!(lin.reinject_due(comm, &mut stack, &mut rec), 0);
                comm.advance_idle(REINJECT_TIMEOUT_NS + 1);
                assert_eq!(lin.reinject_due(comm, &mut stack, &mut rec), 3);
                assert!(lin.is_empty());
                assert!(lin.ack(comm, lost).is_none(), "re-injected grant is closed");
                [stack.local_len() as u64, comm.get(0, vars::LIN_OUT) as u64]
            })
            .results;
        assert_eq!(results[0], [3, 0], "only the lost grant re-injected; marker clear");
    }
}
