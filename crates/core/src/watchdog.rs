//! Livelock watchdog for protocol spin loops.
//!
//! The steal and termination protocols contain loops that are *supposed* to
//! be bounded — a thief spinning on its response cell, a thread parked in
//! the termination barrier — but whose bound rests on a liveness argument
//! (every victim eventually services or denies, the root eventually
//! announces). Fault injection deliberately stresses those arguments, so
//! each such loop carries a [`Watchdog`]: a **purely local** iteration
//! counter that panics in debug builds (tests, the chaos suite) once a loop
//! exceeds a bound no legitimate schedule approaches. Release builds pay a
//! single increment-and-compare and by default never panic; long chaos
//! soaks that run optimized builds opt in with `UTS_WATCHDOG_RELEASE=1`,
//! and `UTS_WATCHDOG_TICKS=<u64>` overrides the default bound in either
//! build (see `docs/faults.md`).
//!
//! The watchdog must never issue communication operations: a `Comm` call
//! would advance virtual time and perturb the very schedule being checked.
//! Counting loop iterations keeps the detector invisible to the simulation.

use std::sync::OnceLock;

/// Environment-derived watchdog policy, read once per process.
struct EnvPolicy {
    limit: u64,
    release_check: bool,
}

fn env_policy() -> &'static EnvPolicy {
    static POLICY: OnceLock<EnvPolicy> = OnceLock::new();
    POLICY.get_or_init(|| {
        let limit = match std::env::var("UTS_WATCHDOG_TICKS") {
            Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
                panic!("UTS_WATCHDOG_TICKS={raw:?} is not a valid u64")
            }),
            Err(_) => Watchdog::DEFAULT_LIMIT,
        };
        let release_check = std::env::var("UTS_WATCHDOG_RELEASE")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        EnvPolicy {
            limit,
            release_check,
        }
    })
}

/// Iteration counter that flags livelock in debug builds (and, opted in via
/// `UTS_WATCHDOG_RELEASE=1`, in release builds too).
#[derive(Debug)]
pub struct Watchdog {
    label: &'static str,
    limit: u64,
    ticks: u64,
    armed: bool,
}

impl Watchdog {
    /// Default iteration bound. Generous: legitimate spin loops run a few
    /// thousand iterations even under heavy fault schedules; tens of
    /// millions means nobody is making progress. Overridable per process
    /// with `UTS_WATCHDOG_TICKS`.
    pub const DEFAULT_LIMIT: u64 = 50_000_000;

    /// A watchdog with the process-wide bound (`UTS_WATCHDOG_TICKS` if set,
    /// else [`Watchdog::DEFAULT_LIMIT`]). `label` names the guarded loop in
    /// the panic message.
    pub fn new(label: &'static str) -> Watchdog {
        Watchdog::with_limit(label, env_policy().limit)
    }

    /// A watchdog with an explicit iteration bound (for tests).
    pub fn with_limit(label: &'static str, limit: u64) -> Watchdog {
        Watchdog {
            label,
            limit,
            ticks: 0,
            armed: cfg!(debug_assertions) || env_policy().release_check,
        }
    }

    /// Count one loop iteration. Panics once the bound is exceeded in debug
    /// builds — and in release builds when `UTS_WATCHDOG_RELEASE=1` — so a
    /// livelocked chaos soak dies loudly instead of hanging CI. Otherwise a
    /// no-op beyond the increment.
    #[inline]
    pub fn tick(&mut self) {
        self.ticks += 1;
        if self.armed && self.ticks >= self.limit {
            panic!(
                "watchdog `{}`: {} iterations without progress — livelock",
                self.label, self.ticks
            );
        }
    }

    /// Restart the count after observable progress (a response arrived, the
    /// barrier population changed).
    #[inline]
    pub fn reset(&mut self) {
        self.ticks = 0;
    }

    /// Iterations counted since the last [`Watchdog::reset`].
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_below_limit_are_silent() {
        let mut dog = Watchdog::with_limit("test", 100);
        for _ in 0..99 {
            dog.tick();
        }
        assert_eq!(dog.ticks(), 99);
        dog.reset();
        assert_eq!(dog.ticks(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn exceeding_limit_panics_in_debug() {
        let result = std::panic::catch_unwind(|| {
            let mut dog = Watchdog::with_limit("doomed-loop", 10);
            for _ in 0..10 {
                dog.tick();
            }
        });
        let err = result.expect_err("watchdog must fire");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("doomed-loop"), "panic names the loop: {msg}");
    }

    #[test]
    fn reset_defers_the_bound() {
        let mut dog = Watchdog::with_limit("resettable", 10);
        for _ in 0..3 {
            for _ in 0..9 {
                dog.tick();
            }
            dog.reset(); // progress observed — never fires
        }
        assert_eq!(dog.ticks(), 0);
    }

    /// The env policy is latched once per process, so asserting a specific
    /// `UTS_WATCHDOG_TICKS` value in-process would race with every other
    /// test that builds a watchdog; the full env path is exercised by
    /// `scripts/chaos_smoke.sh`, which exports the variable before spawning
    /// the soak. Here we only pin the documented default.
    #[test]
    fn default_limit_is_fifty_million() {
        assert_eq!(Watchdog::DEFAULT_LIMIT, 50_000_000);
    }
}
