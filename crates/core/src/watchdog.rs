//! Livelock watchdog for protocol spin loops.
//!
//! The steal and termination protocols contain loops that are *supposed* to
//! be bounded — a thief spinning on its response cell, a thread parked in
//! the termination barrier — but whose bound rests on a liveness argument
//! (every victim eventually services or denies, the root eventually
//! announces). Fault injection deliberately stresses those arguments, so
//! each such loop carries a [`Watchdog`]: a **purely local** iteration
//! counter that panics in debug builds (tests, the chaos suite) once a loop
//! exceeds a bound no legitimate schedule approaches. Release builds pay a
//! single increment-and-compare and never panic.
//!
//! The watchdog must never issue communication operations: a `Comm` call
//! would advance virtual time and perturb the very schedule being checked.
//! Counting loop iterations keeps the detector invisible to the simulation.

/// Iteration counter that flags livelock in debug builds.
#[derive(Debug)]
pub struct Watchdog {
    label: &'static str,
    limit: u64,
    ticks: u64,
}

impl Watchdog {
    /// Default iteration bound. Generous: legitimate spin loops run a few
    /// thousand iterations even under heavy fault schedules; tens of
    /// millions means nobody is making progress.
    pub const DEFAULT_LIMIT: u64 = 50_000_000;

    /// A watchdog with the default bound. `label` names the guarded loop in
    /// the panic message.
    pub fn new(label: &'static str) -> Watchdog {
        Watchdog::with_limit(label, Watchdog::DEFAULT_LIMIT)
    }

    /// A watchdog with an explicit iteration bound (for tests).
    pub fn with_limit(label: &'static str, limit: u64) -> Watchdog {
        Watchdog {
            label,
            limit,
            ticks: 0,
        }
    }

    /// Count one loop iteration. Panics in debug builds when the bound is
    /// exceeded; a no-op beyond the increment in release builds.
    #[inline]
    pub fn tick(&mut self) {
        self.ticks += 1;
        if cfg!(debug_assertions) && self.ticks >= self.limit {
            panic!(
                "watchdog `{}`: {} iterations without progress — livelock",
                self.label, self.ticks
            );
        }
    }

    /// Restart the count after observable progress (a response arrived, the
    /// barrier population changed).
    #[inline]
    pub fn reset(&mut self) {
        self.ticks = 0;
    }

    /// Iterations counted since the last [`Watchdog::reset`].
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_below_limit_are_silent() {
        let mut dog = Watchdog::with_limit("test", 100);
        for _ in 0..99 {
            dog.tick();
        }
        assert_eq!(dog.ticks(), 99);
        dog.reset();
        assert_eq!(dog.ticks(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn exceeding_limit_panics_in_debug() {
        let result = std::panic::catch_unwind(|| {
            let mut dog = Watchdog::with_limit("doomed-loop", 10);
            for _ in 0..10 {
                dog.tick();
            }
        });
        let err = result.expect_err("watchdog must fire");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("doomed-loop"), "panic names the loop: {msg}");
    }

    #[test]
    fn reset_defers_the_bound() {
        let mut dog = Watchdog::with_limit("resettable", 10);
        for _ in 0..3 {
            for _ in 0..9 {
                dog.tick();
            }
            dog.reset(); // progress observed — never fires
        }
        assert_eq!(dog.ticks(), 0);
    }
}
