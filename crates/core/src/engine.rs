//! Run harness: dispatch an [`Algorithm`] onto a backend and assemble the
//! [`RunReport`].

use std::time::Instant;

use pgas::native::NativeCluster;
use pgas::sim::SimCluster;
use pgas::{Comm, MachineModel};

use pgas::Collectives;

use crate::config::{ConfigError, RunConfig};
use crate::report::{RunReport, ThreadResult};
use crate::taskgen::TaskGen;
use crate::vars;

/// Run the configured algorithm's worker body on this thread. Exposed so
/// custom harnesses can embed workers in their own clusters.
///
/// The algorithm (plus any [`RunConfig::victim_policy`] /
/// [`RunConfig::steal_policy`] overrides) resolves to a policy bundle and
/// runs on the generic driver — see [`crate::sched`].
pub fn worker<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let cfg = &clamp_release_to_frontier(comm, gen, cfg);
    let mut res = crate::sched::run_bundle(comm, gen, cfg);
    if cfg.faults.crash_active() {
        // A dead rank can never join the collective; the host-side
        // aggregation does the conservation accounting instead.
        res.reduced_total = 0;
    } else {
        // In-band final count, as the original UTS does with upc_all_reduce
        // after termination. Every thread learns the global total.
        let mut coll = Collectives::new(vars::COLL_BASE);
        res.reduced_total = coll.all_reduce_sum(comm, res.nodes as i64) as u64;
    }
    res
}

/// The E18 guard: auto-clamp the release heuristic when the workload's
/// ready frontier cannot feed it.
///
/// The paper's release trigger fires at local depth
/// `max(release_depth, 2k)` — sized for trees, whose DFS frontier grows
/// with the subtree. A DAG with a bounded ready frontier `F`
/// ([`TaskGen::frontier_hint`]) narrower than that threshold per thread can
/// *never* trigger a release: every stack stays below the threshold and the
/// run silently serialises at k > 1 (the E18 wavefront foot-gun). When the
/// per-thread frontier share `max(1, F/p)` is below `2k`, clamp the chunk
/// to half that share and the release depth to twice the clamped chunk, and
/// warn once (thread 0). Tree workloads hint `None` and are untouched —
/// their configs, schedules, and CSVs stay bit-identical.
fn clamp_release_to_frontier<G, C>(comm: &C, gen: &G, cfg: &RunConfig) -> RunConfig
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let mut cfg = *cfg;
    let Some(frontier) = gen.frontier_hint() else {
        return cfg;
    };
    let share = (frontier / comm.n_threads() as u64).max(1) as usize;
    if 2 * cfg.chunk_size <= share && cfg.release_depth <= share {
        return cfg;
    }
    let k = (share / 2).max(1).min(cfg.chunk_size);
    let depth = (2 * k).min(cfg.release_depth).max(1);
    if k == cfg.chunk_size && depth == cfg.release_depth {
        return cfg; // already as small as the clamp would go
    }
    if comm.my_id() == 0 {
        eprintln!(
            "[engine] warning: ready frontier ≤ {frontier} can never reach the \
             release threshold (k={}, release_depth={}) on {} threads; \
             clamping to k={k}, release_depth={depth} so work can move",
            cfg.chunk_size,
            cfg.release_depth,
            comm.n_threads(),
        );
    }
    cfg.chunk_size = k;
    cfg.release_depth = depth;
    cfg
}

/// Crash-mode fail-fast (see [`crate::taskgen::TaskGen::fingerprint`]):
/// a generator still on the degenerate default fingerprint would silently
/// understate duplicate counts, so refuse the run before it starts. The
/// root-vs-first-child probe is exactly the degenerate-default detector —
/// injective fingerprints always differ there, the all-zero default never
/// does.
pub(crate) fn check_crash_fingerprints<G: TaskGen>(
    gen: &G,
    cfg: &RunConfig,
) -> Result<(), ConfigError> {
    if !cfg.faults.crash_active() {
        return Ok(());
    }
    let root = gen.root();
    let mut kids = Vec::new();
    gen.expand(&root, &mut kids);
    if let Some(first) = kids.first() {
        if gen.fingerprint(&root) == gen.fingerprint(first) {
            return Err(ConfigError::DegenerateFingerprints);
        }
    }
    Ok(())
}

/// Run on the virtual-time simulator: `nthreads` simulated UPC threads over
/// `machine`'s cost model. Deterministic for fixed config; the makespan is
/// virtual time.
///
/// # Panics
///
/// On any [`ConfigError`] — use [`try_run_sim`] to handle it as a value.
pub fn run_sim<G>(machine: MachineModel, nthreads: usize, gen: &G, cfg: &RunConfig) -> RunReport
where
    G: TaskGen,
{
    try_run_sim(machine, nthreads, gen, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_sim`] with typed config errors instead of panics.
///
/// # Errors
///
/// [`ConfigError::DegenerateFingerprints`] if the config arms crash-class
/// faults while the generator still uses the degenerate default
/// [`TaskGen::fingerprint`] (duplicate accounting would silently break).
pub fn try_run_sim<G>(
    machine: MachineModel,
    nthreads: usize,
    gen: &G,
    cfg: &RunConfig,
) -> Result<RunReport, ConfigError>
where
    G: TaskGen,
{
    check_crash_fingerprints(gen, cfg)?;
    let machine_name = machine.name;
    let mut cluster: SimCluster<G::Task> =
        SimCluster::new(machine, nthreads, vars::space_config_for(gen, nthreads))
            .with_lookahead(cfg.sim_lookahead)
            .with_faults(cfg.faults);
    if cfg.sim_workers > 0 {
        // 0 keeps the builder's default: inherit UTS_SIM_WORKERS.
        cluster = cluster.with_workers(cfg.sim_workers);
    }
    let report = cluster.run(|comm| worker(comm, gen, cfg));
    Ok(assemble(
        cfg,
        machine_name,
        nthreads,
        gen.critical_path_len().unwrap_or(0),
        report.makespan_ns,
        report.results,
    ))
}

/// Run on real OS threads (the shared-memory setting). The makespan is
/// wall-clock time.
///
/// # Errors
///
/// [`ConfigError::CrashFaultsAreSimOnly`] if the config arms crash-class
/// faults (kills, partitions, gray stalls, restarts) — those only exist in
/// virtual time; run such plans through [`run_sim`].
pub fn run_native<G>(
    machine: MachineModel,
    nthreads: usize,
    gen: &G,
    cfg: &RunConfig,
) -> Result<RunReport, ConfigError>
where
    G: TaskGen,
{
    let machine_name = machine.name;
    if cfg.faults.crash_active() {
        return Err(ConfigError::CrashFaultsAreSimOnly);
    }
    if let Ok(avail) = std::thread::available_parallelism() {
        if nthreads > avail.get() {
            eprintln!(
                "[native] warning: {nthreads} OS threads requested but the host \
                 has {avail} hardware threads; they will timeshare \
                 (wall-clock makespans will not scale past {avail})"
            );
        }
    }
    let cluster: NativeCluster<G::Task> =
        NativeCluster::new(machine, nthreads, vars::space_config_for(gen, nthreads));
    let report = cluster.run(|comm| worker(comm, gen, cfg));
    Ok(assemble(
        cfg,
        machine_name,
        nthreads,
        gen.critical_path_len().unwrap_or(0),
        report.makespan_ns,
        report.results,
    ))
}

/// Sequential reference traversal of the same task tree; returns
/// (nodes, wall-clock ns). Used for baselines and conservation checks.
pub fn seq_run<G: TaskGen>(gen: &G) -> (u64, u64) {
    let t0 = Instant::now();
    let mut stack = vec![gen.root()];
    let mut nodes = 0u64;
    let mut scratch = Vec::new();
    while let Some(n) = stack.pop() {
        nodes += 1;
        scratch.clear();
        gen.expand(&n, &mut scratch);
        stack.extend_from_slice(&scratch);
    }
    (nodes, t0.elapsed().as_nanos() as u64)
}

fn assemble(
    cfg: &RunConfig,
    machine: &'static str,
    threads: usize,
    critical_path_len: u64,
    makespan_ns: u64,
    per_thread: Vec<ThreadResult>,
) -> RunReport {
    let total_nodes: u64 = per_thread.iter().map(|t| t.nodes).sum();
    let crash = cfg.faults.crash_active();
    if !crash {
        // The in-band reduction must agree with the host-side sum on every
        // thread — a run-time conservation check in every single run. (Crash
        // runs skip the collective: a dead rank cannot join it.)
        for (t, r) in per_thread.iter().enumerate() {
            assert_eq!(
                r.reduced_total, total_nodes,
                "thread {t}: in-band reduced total disagrees with host-side sum"
            );
        }
    }
    let (recovered_nodes, duplicate_nodes, max_multiplicity) = if crash {
        let recovered = per_thread.iter().map(|t| t.recovered_nodes).sum();
        let mut mult: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for t in &per_thread {
            for &fp in &t.explored {
                *mult.entry(fp).or_insert(0) += 1;
            }
        }
        let dup = mult.values().map(|&m| m - 1).sum();
        let max = mult.values().copied().max().unwrap_or(1).max(1);
        (recovered, dup, max)
    } else {
        (0, 0, 1)
    };
    RunReport {
        label: cfg.algorithm.label(),
        machine,
        threads,
        chunk_size: cfg.chunk_size,
        total_nodes,
        makespan_ns,
        recovered_nodes,
        duplicate_nodes,
        max_multiplicity,
        deaths: per_thread.iter().filter(|t| t.died).count(),
        evictions: per_thread.iter().map(|t| t.evictions).sum(),
        rejoins: per_thread.iter().map(|t| t.rejoins).sum(),
        steal_attempts: per_thread
            .iter()
            .map(|t| t.steals_ok + t.steals_failed)
            .sum(),
        successful_steals: per_thread.iter().map(|t| t.steals_ok).sum(),
        critical_path_len,
        service: None,
        per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::taskgen::{SyntheticGen, UtsGen};
    use uts_tree::presets;

    /// Every algorithm must count the tiny tree exactly, on a small
    /// simulated cluster.
    #[test]
    fn all_algorithms_conserve_tiny_tree_sim() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        for alg in Algorithm::all() {
            for threads in [1, 2, 5] {
                let cfg = RunConfig::new(alg, 2);
                let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
                assert_eq!(
                    report.total_nodes, p.expected.nodes,
                    "{} with {} threads lost/duplicated nodes",
                    alg.label(),
                    threads
                );
            }
        }
    }

    /// Same on the native backend with a couple of real threads.
    #[test]
    fn all_algorithms_conserve_tiny_tree_native() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        for alg in Algorithm::all() {
            let cfg = RunConfig::new(alg, 2);
            let report = run_native(MachineModel::smp(), 3, &gen, &cfg)
                .expect("fault-free config runs natively");
            assert_eq!(
                report.total_nodes, p.expected.nodes,
                "{} lost/duplicated nodes natively",
                alg.label()
            );
        }
    }

    /// Crash plans are sim-only: the native backend refuses them with a
    /// typed error that points at the simulator, instead of panicking.
    #[test]
    fn run_native_rejects_crash_plans_with_typed_error() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut cfg = RunConfig::new(Algorithm::DistMem, 2);
        cfg.faults = pgas::FaultPlan::crashy(7);
        let err = run_native(MachineModel::smp(), 2, &gen, &cfg)
            .expect_err("crash plan must be rejected");
        assert_eq!(err, crate::config::ConfigError::CrashFaultsAreSimOnly);
        assert!(err.to_string().contains("run_sim"), "error points at the sim backend");
    }

    /// A DAG workload runs through every policy bundle on the simulator and
    /// executes each task exactly once — the ready-queue reduction keeps the
    /// stack protocols untouched.
    #[test]
    fn dag_workloads_conserve_across_all_algorithms_sim() {
        use crate::workload::{DagWorkload, ForkJoin, RandomLayered, Wavefront};
        let fj = DagWorkload::new(ForkJoin {
            levels: 5,
            width: 8,
            seed: 3,
        });
        let wf = DagWorkload::new(Wavefront {
            rows: 9,
            cols: 7,
            seed: 4,
        });
        let rl = DagWorkload::new(RandomLayered::new(6, 8, 200, 5));
        for alg in Algorithm::all() {
            for threads in [1, 3, 8] {
                let cfg = RunConfig::new(alg, 2);
                for (name, report, expect) in [
                    ("fork-join", run_sim(MachineModel::smp(), threads, &fj, &cfg), fj.n_tasks()),
                    ("wavefront", run_sim(MachineModel::smp(), threads, &wf, &cfg), wf.n_tasks()),
                    ("layered", run_sim(MachineModel::smp(), threads, &rl, &cfg), rl.n_tasks()),
                ] {
                    assert_eq!(
                        report.total_nodes,
                        expect,
                        "{name} on {} with {threads} threads lost or duplicated tasks",
                        alg.label()
                    );
                    assert!(report.critical_path_len > 0, "{name}: critical path missing");
                }
            }
        }
    }

    /// Same reduction on the native OS-thread backend (real atomics under
    /// the count-up cells).
    #[test]
    fn dag_workload_conserves_native() {
        use crate::workload::{DagWorkload, Wavefront};
        let gen = DagWorkload::new(Wavefront {
            rows: 12,
            cols: 12,
            seed: 6,
        });
        let cfg = RunConfig::new(Algorithm::DistMem, 2);
        let report = run_native(MachineModel::smp(), 3, &gen, &cfg)
            .expect("fault-free DAG runs natively");
        assert_eq!(report.total_nodes, gen.n_tasks());
    }

    /// Crash plans refuse generators still on the degenerate default
    /// fingerprint — conservation-with-multiplicity would silently break.
    #[test]
    fn crash_plan_rejects_degenerate_fingerprints_with_typed_error() {
        /// A generator that "forgot" to override `fingerprint`.
        struct NoFp;
        impl TaskGen for NoFp {
            type Task = u32;
            fn root(&self) -> u32 {
                0
            }
            fn expand(&self, t: &u32, out: &mut Vec<u32>) -> u32 {
                if *t < 2 {
                    out.push(t + 1);
                    1
                } else {
                    0
                }
            }
        }
        let mut cfg = RunConfig::new(Algorithm::DistMem, 2);
        cfg.faults = pgas::FaultPlan::crashy(3);
        let err = try_run_sim(MachineModel::smp(), 2, &NoFp, &cfg)
            .expect_err("degenerate fingerprints must be rejected");
        assert_eq!(err, ConfigError::DegenerateFingerprints);
        assert!(err.to_string().contains("fingerprint"));
        // The same generator is fine without crash faults...
        cfg.faults = pgas::FaultPlan::none();
        let report = try_run_sim(MachineModel::smp(), 2, &NoFp, &cfg).expect("fault-free runs");
        assert_eq!(report.total_nodes, 3);
        // ...and a crash plan is fine once fingerprints are injective.
        let p = presets::t_tiny();
        let mut cfg = RunConfig::new(Algorithm::DistMem, 2);
        cfg.faults = pgas::FaultPlan::crashy(3);
        cfg.steal_timeout_ns = Some(30_000);
        try_run_sim(MachineModel::smp(), 2, &UtsGen::new(p.spec), &cfg)
            .expect("UtsGen fingerprints are injective");
    }

    /// E18 regression: a DAG whose ready frontier is far below the release
    /// threshold must still move work (the clamp in
    /// [`clamp_release_to_frontier`]); pre-clamp such runs silently
    /// serialised because no stack ever reached `max(release_depth, 2k)`.
    #[test]
    fn narrow_dag_release_clamp_keeps_parallelism() {
        use crate::workload::{DagWorkload, Wavefront};
        let gen = DagWorkload::new(Wavefront {
            rows: 64,
            cols: 4,
            seed: 9,
        });
        // k=8 → release threshold 16, but the frontier never exceeds 4.
        let cfg = RunConfig::new(Algorithm::DistMem, 8);
        let report = run_sim(MachineModel::smp(), 4, &gen, &cfg);
        assert_eq!(report.total_nodes, gen.n_tasks());
        assert!(
            report.successful_steals > 0,
            "narrow DAG ran serial despite the frontier clamp: {report:?}"
        );
        let busy = report.per_thread.iter().filter(|t| t.nodes > 0).count();
        assert!(busy > 1, "all work stayed on one thread: {report:?}");
    }

    #[test]
    fn seq_run_matches_preset() {
        let p = presets::t_tiny();
        let (nodes, _) = seq_run(&UtsGen::new(p.spec));
        assert_eq!(nodes, p.expected.nodes);
    }

    #[test]
    fn synthetic_balanced_tree_distributes_work() {
        let gen = SyntheticGen {
            branch: 3,
            depth: 7,
        };
        let cfg = RunConfig::new(Algorithm::DistMem, 4);
        let report = run_sim(MachineModel::smp(), 4, &gen, &cfg);
        assert_eq!(report.total_nodes, gen.size());
        // On a 3280-node balanced tree, at least one steal must land.
        assert!(report.total_steals() > 0, "no load balancing happened");
        // Every thread should have explored something.
        for (t, r) in report.per_thread.iter().enumerate() {
            assert!(r.nodes > 0, "thread {t} did no work: {report:?}");
        }
    }

    #[test]
    fn sim_runs_are_deterministic() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let cfg = RunConfig::new(Algorithm::DistMem, 2);
        let a = run_sim(MachineModel::kittyhawk(), 4, &gen, &cfg);
        let b = run_sim(MachineModel::kittyhawk(), 4, &gen, &cfg);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.total_steals(), b.total_steals());
        let na: Vec<u64> = a.per_thread.iter().map(|t| t.nodes).collect();
        let nb: Vec<u64> = b.per_thread.iter().map(|t| t.nodes).collect();
        assert_eq!(na, nb);
    }
}
