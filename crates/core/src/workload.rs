//! Task-DAG workloads: dependency-aware work on the unchanged scheduler.
//!
//! The paper balances one workload — UTS, an implicit *tree* — but §3 claims
//! the approach extends to richer search methods. This module supplies the
//! richer workload: implicitly-defined task **DAGs** with dependency edges,
//! per-task weights, and priorities ([`DagGen`]), reduced onto the existing
//! [`TaskGen`] seam by [`DagWorkload`] so the generic Figure-1 driver, all
//! four policy axes, and both conductors run DAGs unchanged.
//!
//! # The ready-queue reduction
//!
//! A tree task is ready the moment its parent expands; a DAG task is ready
//! only when its *last* predecessor completes. [`DagWorkload`] layers a
//! ready queue over the DFS split stack ([`crate::stack`]) without touching
//! the driver:
//!
//! - Every task `t` owns a **count-up cell** in the global address space
//!   (rank `t mod p`, slot [`crate::vars::DAG_BASE`]` + t div p`), starting
//!   at its zero-initialised value.
//! - Completing a task fetch-adds `+1` into each successor's cell via
//!   [`Comm::add`] — inside the expansion hook, *before* the driver pushes
//!   anything, so the decrement is published before any produced task can
//!   migrate (the PR-7 publish-before-migration discipline).
//! - The add whose returned previous value makes the counter reach the
//!   successor's in-degree — exactly one add can, the counter is monotonic —
//!   emits the successor as a "child" of the completing task. Tasks
//!   therefore enter a stack exactly when they become ready, and **only
//!   ready tasks are ever stealable**: the shared stack region doubles as
//!   the distributed ready queue, and every steal/release/termination
//!   protocol applies verbatim.
//!
//! Counting *up* to the in-degree (rather than down from it) means cells
//! need no initialisation pass, and under crash faults the scheme stays
//! safe: each predecessor executes at least once, so each cell receives at
//! least `in_degree` adds, so the crossing happens and the task is emitted
//! onto some rank's stack — where the existing spill/adoption/lineage
//! recovery guarantees at-least-once execution. Duplicate predecessor
//! executions push the counter past the in-degree without a second
//! crossing, so a task is *emitted* at most once per crossing; its own
//! multiplicity then comes only from the generic recovery paths, and
//! conservation-with-multiplicity (`total − duplicates == n_tasks`) holds
//! with the machinery already in place.
//!
//! Going through [`Comm`] — not host atomics — is what preserves the
//! conductor bit-identity contract: both the fiber fast path and the
//! reference OS-thread conductor order comm operations in virtual time, so
//! "which predecessor's add crossed the threshold" is deterministic.
//!
//! Priorities order same-batch emissions (higher priority lands nearer the
//! stack top and pops first); weights feed [`TaskGen::work_units`], so a
//! heavy task advances the virtual clock proportionally.
//!
//! See `docs/workloads.md` for the design note and [`crate::theory`] for
//! the steal-bound/conservation checks run against these workloads.

use std::collections::HashMap;
use std::sync::Mutex;

use pgas::Comm;

use crate::taskgen::TaskGen;
use crate::vars;

/// An implicitly-defined task DAG. Tasks are dense ids `0..n_tasks()`; task
/// 0 is the unique source (the only task with in-degree 0), and every
/// successor id is strictly greater than its predecessor's — acyclicity by
/// construction. Implementations must be deterministic: edges, weights, and
/// priorities are pure functions of the task id.
pub trait DagGen: Sync {
    /// Total number of tasks. Ids are dense: `0..n_tasks()`.
    fn n_tasks(&self) -> u64;

    /// Append `task`'s successor ids onto `out`. Every id must be strictly
    /// greater than `task` and below [`DagGen::n_tasks`]; the same edge must
    /// not be listed twice.
    fn successors(&self, task: u64, out: &mut Vec<u64>);

    /// Number of predecessor edges of `task`. Must equal the number of
    /// times `task` appears across all predecessors' successor lists
    /// ([`validate`] checks this); 0 only for task 0.
    fn in_degree(&self, task: u64) -> u32;

    /// Work units (virtual node-explorations) executing `task` costs.
    fn weight(&self, _task: u64) -> u64 {
        1
    }

    /// Scheduling priority: among tasks becoming ready in the same
    /// expansion, higher priority is pushed nearer the stack top and pops
    /// first. Purely an ordering hint; correctness never depends on it.
    fn priority(&self, _task: u64) -> u32 {
        0
    }

    /// Weighted critical-path length: the maximum total weight along any
    /// source→sink path (the depth `D` of the O(p·D) steal bound).
    fn critical_path(&self) -> u64;

    /// Upper bound on the ready frontier (how many tasks can be ready at
    /// once), when the generator knows one in closed form. Feeds
    /// [`TaskGen::frontier_hint`] through [`DagWorkload`] so the engine can
    /// clamp the release heuristic for narrow DAGs (the E18 foot-gun).
    /// `None` (the default) disables the clamp.
    fn max_frontier(&self) -> Option<u64> {
        None
    }
}

/// Host-side structural check of a [`DagGen`]: edges go strictly forward to
/// in-range ids, advertised in-degrees match the enumerated edges, task 0 is
/// the unique source, and every task is reachable from it. Returns the
/// first violation as a message.
pub fn validate<G: DagGen>(g: &G) -> Result<(), String> {
    let n = g.n_tasks();
    if n == 0 {
        return Err("DAG has no tasks".into());
    }
    let mut indeg = vec![0u32; n as usize];
    let mut succ = Vec::new();
    for t in 0..n {
        succ.clear();
        g.successors(t, &mut succ);
        let mut seen = succ.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != succ.len() {
            return Err(format!("task {t} lists a duplicate successor edge"));
        }
        for &s in &succ {
            if s <= t {
                return Err(format!("edge {t} -> {s} is not strictly forward"));
            }
            if s >= n {
                return Err(format!("edge {t} -> {s} leaves the id range 0..{n}"));
            }
            indeg[s as usize] += 1;
        }
    }
    for t in 0..n {
        let advertised = g.in_degree(t);
        if advertised != indeg[t as usize] {
            return Err(format!(
                "task {t}: in_degree() says {advertised}, edges say {}",
                indeg[t as usize]
            ));
        }
        if t == 0 && advertised != 0 {
            return Err("task 0 must be the source (in-degree 0)".into());
        }
        if t > 0 && advertised == 0 {
            return Err(format!("task {t} is unreachable (in-degree 0)"));
        }
    }
    Ok(())
}

/// Unweighted critical path by forward DP over the ids (valid because edges
/// go strictly forward): the maximum total [`DagGen::weight`] along any
/// source→sink path. Generators with closed-form paths use this in tests
/// as the independent cross-check.
pub fn critical_path_dp<G: DagGen>(g: &G) -> u64 {
    let n = g.n_tasks() as usize;
    let mut dist = vec![0u64; n];
    dist[0] = g.weight(0);
    let mut succ = Vec::new();
    let mut best = dist[0];
    for t in 0..n as u64 {
        let d = dist[t as usize];
        if d == 0 && t != 0 {
            continue; // unreachable under an invalid DAG; validate() catches it
        }
        succ.clear();
        g.successors(t, &mut succ);
        for &s in &succ {
            let cand = d + g.weight(s);
            if cand > dist[s as usize] {
                dist[s as usize] = cand;
                best = best.max(cand);
            }
        }
        best = best.max(d);
    }
    best
}

/// A chain of fork-join diamonds: `levels` diamonds in sequence, each a
/// fork task fanning out to `width` parallel tasks joined by the next fork
/// (the final join is a dedicated sink). Task weights vary deterministically
/// with the seed so parallel branches are imbalanced, and deeper levels get
/// higher priority (finish the oldest diamond first).
#[derive(Clone, Copy, Debug)]
pub struct ForkJoin {
    /// Number of fork-join diamonds in the chain.
    pub levels: u32,
    /// Parallel tasks per diamond.
    pub width: u32,
    /// Seed for the per-task weight jitter.
    pub seed: u64,
}

impl ForkJoin {
    // Layout: level l's fork is task l*(width+1); its parallel tasks are the
    // following `width` ids; level `levels`'s fork slot is the sink.
    fn stride(&self) -> u64 {
        u64::from(self.width) + 1
    }
}

impl DagGen for ForkJoin {
    fn n_tasks(&self) -> u64 {
        u64::from(self.levels) * self.stride() + 1
    }

    fn successors(&self, task: u64, out: &mut Vec<u64>) {
        let stride = self.stride();
        let (level, pos) = (task / stride, task % stride);
        if level >= u64::from(self.levels) {
            return; // the sink
        }
        if pos == 0 {
            // Fork: all parallel tasks of this diamond.
            out.extend((1..stride).map(|i| task + i));
        } else {
            // Parallel task: the next diamond's fork (or the sink).
            out.push((level + 1) * stride);
        }
    }

    fn in_degree(&self, task: u64) -> u32 {
        let pos = task % self.stride();
        if task == 0 {
            0
        } else if pos == 0 {
            self.width // a join: all parallel tasks of the previous diamond
        } else {
            1
        }
    }

    fn weight(&self, task: u64) -> u64 {
        1 + mix(self.seed ^ task) % 4
    }

    fn priority(&self, task: u64) -> u32 {
        // Older diamonds first: priority decreases with level.
        self.levels - (task / self.stride()) as u32
    }

    fn critical_path(&self) -> u64 {
        // Forks and the sink are forced; per diamond add the heaviest
        // parallel task.
        let stride = self.stride();
        let mut d = 0;
        for level in 0..u64::from(self.levels) {
            let fork = level * stride;
            d += self.weight(fork);
            d += (1..stride).map(|i| self.weight(fork + i)).max().unwrap_or(0);
        }
        d + self.weight(u64::from(self.levels) * stride)
    }

    fn max_frontier(&self) -> Option<u64> {
        // At most one diamond's parallel tasks are ready at a time.
        Some(u64::from(self.width))
    }
}

/// A stencil/wavefront grid: task `(r, c)` depends on `(r-1, c)` and
/// `(r, c-1)`, the classic dynamic-programming dependence. Parallelism
/// sweeps in as an anti-diagonal front of width `min(rows, cols)`; the
/// unweighted critical path is `rows + cols - 1`.
#[derive(Clone, Copy, Debug)]
pub struct Wavefront {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Seed for the per-task weight jitter.
    pub seed: u64,
}

impl DagGen for Wavefront {
    fn n_tasks(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    fn successors(&self, task: u64, out: &mut Vec<u64>) {
        let cols = u64::from(self.cols);
        let (r, c) = (task / cols, task % cols);
        if c + 1 < cols {
            out.push(task + 1);
        }
        if r + 1 < u64::from(self.rows) {
            out.push(task + cols);
        }
    }

    fn in_degree(&self, task: u64) -> u32 {
        let cols = u64::from(self.cols);
        u32::from(task / cols > 0) + u32::from(!task.is_multiple_of(cols))
    }

    fn weight(&self, task: u64) -> u64 {
        1 + mix(self.seed ^ task) % 3
    }

    fn priority(&self, task: u64) -> u32 {
        // Earlier anti-diagonals first: the front advances evenly.
        let cols = u64::from(self.cols);
        let diag = (task / cols + task % cols) as u32;
        self.rows + self.cols - diag
    }

    fn critical_path(&self) -> u64 {
        // Weighted longest monotone lattice path, by the same forward DP the
        // generic helper runs — but over (r, c) directly, in closed layout.
        critical_path_dp(self)
    }

    fn max_frontier(&self) -> Option<u64> {
        // The anti-diagonal front is at most min(rows, cols) wide — the E18
        // narrow-DAG case when that is small against p·2k.
        Some(u64::from(self.rows.min(self.cols)))
    }
}

/// A random layered DAG: `layers` layers of `width` tasks over a dedicated
/// source. Every task has a guaranteed predecessor in the previous layer
/// (reachability), plus extra edges drawn per-mille from the full previous
/// layer — the seeded generator family for shapes nobody hand-picked.
/// Edges are precomputed into CSR form at construction, so per-task queries
/// stay allocation-free and O(degree).
#[derive(Debug)]
pub struct RandomLayered {
    n: u64,
    /// CSR offsets into `edges`, one per task plus the trailing end.
    succ_off: Vec<u32>,
    /// Concatenated successor lists.
    edges: Vec<u64>,
    indeg: Vec<u32>,
    seed: u64,
    width: u32,
    critical: u64,
}

impl RandomLayered {
    /// Build the DAG: `layers` layers of `width` tasks under a single
    /// source (task 0), with extra previous-layer edges at `edge_pm`
    /// per-mille density, all drawn deterministically from `seed`.
    pub fn new(layers: u32, width: u32, edge_pm: u32, seed: u64) -> RandomLayered {
        assert!(layers > 0 && width > 0, "need at least one layer and task");
        assert!(edge_pm <= 1000, "edge density is per-mille");
        let n = 1 + u64::from(layers) * u64::from(width);
        // Collect predecessor lists first (the guarantee is per-target),
        // then transpose into successor CSR.
        let mut preds: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
        let id = |layer: u32, slot: u32| 1 + u64::from(layer) * u64::from(width) + u64::from(slot);
        for layer in 0..layers {
            for slot in 0..width {
                let t = id(layer, slot);
                let p = &mut preds[t as usize];
                if layer == 0 {
                    p.push(0);
                    continue;
                }
                // Guaranteed predecessor, then per-mille extras.
                let anchor = id(layer - 1, (mix(seed ^ t) % u64::from(width)) as u32);
                p.push(anchor);
                for s in 0..width {
                    let cand = id(layer - 1, s);
                    if cand != anchor && mix(seed ^ (t << 20) ^ cand) % 1000 < u64::from(edge_pm) {
                        p.push(cand);
                    }
                }
            }
        }
        let mut succ: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
        let mut indeg = vec![0u32; n as usize];
        for (t, ps) in preds.iter().enumerate() {
            indeg[t] = ps.len() as u32;
            for &p in ps {
                succ[p as usize].push(t as u64);
            }
        }
        let mut succ_off = Vec::with_capacity(n as usize + 1);
        let mut edges = Vec::new();
        for s in &succ {
            succ_off.push(edges.len() as u32);
            edges.extend_from_slice(s);
        }
        succ_off.push(edges.len() as u32);
        let mut dag = RandomLayered {
            n,
            succ_off,
            edges,
            indeg,
            seed,
            width,
            critical: 0,
        };
        dag.critical = critical_path_dp(&dag);
        dag
    }
}

impl DagGen for RandomLayered {
    fn n_tasks(&self) -> u64 {
        self.n
    }

    fn successors(&self, task: u64, out: &mut Vec<u64>) {
        let (a, b) = (
            self.succ_off[task as usize] as usize,
            self.succ_off[task as usize + 1] as usize,
        );
        out.extend_from_slice(&self.edges[a..b]);
    }

    fn in_degree(&self, task: u64) -> u32 {
        self.indeg[task as usize]
    }

    fn weight(&self, task: u64) -> u64 {
        1 + mix(self.seed ^ !task) % 5
    }

    fn critical_path(&self) -> u64 {
        self.critical
    }

    fn max_frontier(&self) -> Option<u64> {
        // Tasks become ready at most a layer at a time.
        Some(self.n.min(u64::from(self.width)))
    }
}

/// Adapter running any [`DagGen`] through the scheduler's [`TaskGen`] seam:
/// the task descriptor is the DAG task id, and expansion emits exactly the
/// successors that *became ready* — see the module docs for the count-up
/// cell protocol. Construct with [`DagWorkload::new`] and run it through
/// [`crate::engine::run_sim`] / [`crate::engine::run_native`] like any tree
/// workload.
#[derive(Debug)]
pub struct DagWorkload<G: DagGen> {
    gen: G,
    /// Pending-count state for comm-free host traversals
    /// ([`TaskGen::expand`], used by `seq_run` and engine pre-checks).
    /// Parallel runs never touch it — they go through
    /// [`TaskGen::expand_in`], whose counters live in the global address
    /// space. Expanding the root resets it, so repeated host traversals of
    /// the same workload stay independent.
    host_pending: Mutex<HashMap<u64, u32>>,
}

impl<G: DagGen> DagWorkload<G> {
    /// Wrap a DAG generator. Panics if [`validate`] rejects the DAG — a
    /// malformed workload (dangling in-degree, unreachable task) would
    /// otherwise surface as a livelock or a conservation failure mid-run.
    pub fn new(gen: G) -> DagWorkload<G> {
        if let Err(e) = validate(&gen) {
            panic!("invalid DAG workload: {e}");
        }
        DagWorkload {
            gen,
            host_pending: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped generator.
    pub fn dag(&self) -> &G {
        &self.gen
    }

    /// Total task count — the expected `total_nodes` of any fault-free run.
    pub fn n_tasks(&self) -> u64 {
        self.gen.n_tasks()
    }

    /// Order a batch of newly-ready tasks for pushing: ascending
    /// `(priority, id)`, so the highest-priority (then highest-id) task
    /// lands nearest the stack top and pops first. Deterministic by ids
    /// being unique within a batch.
    fn order_ready(&self, batch: &mut [u64]) {
        batch.sort_unstable_by_key(|&s| (self.gen.priority(s), s));
    }
}

impl<G: DagGen> TaskGen for DagWorkload<G> {
    type Task = u64;

    fn root(&self) -> u64 {
        0
    }

    /// Comm-free expansion for host-side traversals: counts dependencies in
    /// the internal map. Resets the map when the root is expanded, so each
    /// traversal starts fresh.
    fn expand(&self, task: &u64, out: &mut Vec<u64>) -> u32 {
        let mut pend = self.host_pending.lock().expect("host pending poisoned");
        if *task == 0 {
            pend.clear();
        }
        let before = out.len();
        let mut succ = Vec::new();
        self.gen.successors(*task, &mut succ);
        for &s in &succ {
            let c = pend.entry(s).or_insert(0);
            *c += 1;
            if *c == self.gen.in_degree(s) {
                out.push(s);
            }
        }
        self.order_ready(&mut out[before..]);
        (out.len() - before) as u32
    }

    /// The parallel path: publish one fetch-add per successor into its
    /// count-up cell and emit the successors whose counter crossed their
    /// in-degree. All shared state goes through [`Comm`] — see the module
    /// docs for why host atomics would break conductor bit-identity.
    fn expand_in<C: Comm<u64>>(&self, comm: &mut C, task: &u64, out: &mut Vec<u64>) -> u32 {
        let p = comm.n_threads() as u64;
        let before = out.len();
        let mut succ = Vec::new();
        self.gen.successors(*task, &mut succ);
        for &s in &succ {
            let prev = comm.add((s % p) as usize, vars::DAG_BASE + (s / p) as usize, 1);
            if prev + 1 == i64::from(self.gen.in_degree(s)) {
                out.push(s);
            }
        }
        self.order_ready(&mut out[before..]);
        (out.len() - before) as u32
    }

    fn work_units(&self, task: &u64) -> u64 {
        self.gen.weight(*task)
    }

    fn extra_scalars(&self, n_threads: usize) -> usize {
        (self.gen.n_tasks() as usize).div_ceil(n_threads)
    }

    fn critical_path_len(&self) -> Option<u64> {
        Some(self.gen.critical_path())
    }

    fn frontier_hint(&self) -> Option<u64> {
        self.gen.max_frontier()
    }

    /// `id + 1`: injective by construction (ids are unique), nonzero so the
    /// degenerate-default check never confuses a real DAG fingerprint with
    /// the unset default.
    fn fingerprint(&self, task: &u64) -> u64 {
        task + 1
    }
}

/// SplitMix64 finaliser: a cheap, high-quality deterministic mixer for
/// per-task weight/priority/edge draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq_run;

    #[test]
    fn fork_join_layout_and_sizes() {
        let g = ForkJoin {
            levels: 3,
            width: 4,
            seed: 7,
        };
        assert_eq!(g.n_tasks(), 3 * 5 + 1);
        validate(&g).expect("fork-join is well-formed");
        // Fork 0 fans out to 4 parallel tasks; each joins at task 5.
        let mut out = Vec::new();
        g.successors(0, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
        out.clear();
        g.successors(3, &mut out);
        assert_eq!(out, vec![5]);
        assert_eq!(g.in_degree(5), 4);
        // The sink has no successors.
        out.clear();
        g.successors(15, &mut out);
        assert!(out.is_empty());
        assert_eq!(g.critical_path(), critical_path_dp(&g));
    }

    #[test]
    fn wavefront_structure() {
        let g = Wavefront {
            rows: 3,
            cols: 4,
            seed: 1,
        };
        assert_eq!(g.n_tasks(), 12);
        validate(&g).expect("wavefront is well-formed");
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 1); // (0,1): only (0,0)
        assert_eq!(g.in_degree(5), 2); // (1,1): both neighbours
        let mut out = Vec::new();
        g.successors(5, &mut out);
        assert_eq!(out, vec![6, 9]);
        // Unweighted depth would be rows+cols-1; the weighted DP dominates it.
        assert!(g.critical_path() >= u64::from(g.rows + g.cols) - 1);
    }

    #[test]
    fn random_layered_is_valid_and_reachable_across_seeds() {
        for seed in 0..8 {
            let g = RandomLayered::new(5, 6, 300, seed);
            validate(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(g.n_tasks(), 31);
            assert!(g.critical_path() >= 6, "at least one task per layer");
        }
    }

    #[test]
    fn validate_rejects_malformed_dags() {
        struct Backward;
        impl DagGen for Backward {
            fn n_tasks(&self) -> u64 {
                2
            }
            fn successors(&self, task: u64, out: &mut Vec<u64>) {
                if task == 1 {
                    out.push(0); // backward edge
                }
            }
            fn in_degree(&self, _t: u64) -> u32 {
                0
            }
            fn critical_path(&self) -> u64 {
                1
            }
        }
        let err = validate(&Backward).expect_err("backward edge must fail");
        assert!(err.contains("not strictly forward"), "{err}");

        struct WrongDegree;
        impl DagGen for WrongDegree {
            fn n_tasks(&self) -> u64 {
                2
            }
            fn successors(&self, task: u64, out: &mut Vec<u64>) {
                if task == 0 {
                    out.push(1);
                }
            }
            fn in_degree(&self, t: u64) -> u32 {
                if t == 1 {
                    2 // edges say 1
                } else {
                    0
                }
            }
            fn critical_path(&self) -> u64 {
                2
            }
        }
        let err = validate(&WrongDegree).expect_err("degree mismatch must fail");
        assert!(err.contains("in_degree"), "{err}");
    }

    #[test]
    fn host_traversal_executes_every_task_exactly_once() {
        let w = DagWorkload::new(ForkJoin {
            levels: 4,
            width: 3,
            seed: 2,
        });
        assert_eq!(seq_run(&w).0, w.n_tasks());
        // Repeatable: the root expansion resets the host counters.
        assert_eq!(seq_run(&w).0, w.n_tasks());
        let w = DagWorkload::new(Wavefront {
            rows: 6,
            cols: 5,
            seed: 3,
        });
        assert_eq!(seq_run(&w).0, 30);
        let w = DagWorkload::new(RandomLayered::new(4, 5, 250, 9));
        assert_eq!(seq_run(&w).0, w.n_tasks());
    }

    #[test]
    fn ready_order_puts_high_priority_on_top() {
        let w = DagWorkload::new(ForkJoin {
            levels: 2,
            width: 3,
            seed: 0,
        });
        let mut batch = vec![4, 1, 3, 2];
        w.order_ready(&mut batch);
        // Task 4 is the next diamond's fork — lower priority than the
        // current diamond's parallel tasks (older diamonds drain first), so
        // it is pushed first and pops last; the same-priority tasks order
        // by ascending id, highest nearest the top.
        assert_eq!(batch, vec![4, 1, 2, 3]);
    }

    #[test]
    fn weights_and_fingerprints_are_deterministic_and_injective() {
        let w = DagWorkload::new(Wavefront {
            rows: 4,
            cols: 4,
            seed: 11,
        });
        let fps: Vec<u64> = (0..w.n_tasks()).map(|t| w.fingerprint(&t)).collect();
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), fps.len(), "fingerprints must be injective");
        assert!((0..w.n_tasks()).all(|t| w.work_units(&t) >= 1));
        assert_eq!(w.critical_path_len(), Some(w.dag().critical_path()));
    }
}
