//! HDR-style log-bucketed latency histogram.
//!
//! Service mode reports per-request latency quantiles (p50/p99/p999) over
//! thousands of requests whose latencies span five-plus orders of magnitude
//! of virtual nanoseconds. A fixed-width histogram cannot cover that range;
//! a sorted vector of raw samples can, but makes merging per-thread results
//! allocation-heavy and makes the report's equality semantics (the
//! conductor bit-identity tests compare whole histograms) depend on sample
//! order. The classic answer is HDR bucketing: exact counts for small
//! values, then every power-of-two octave split into a fixed number of
//! sub-buckets, giving a bounded relative error (< 1/32 ≈ 3.1% here) at
//! every scale with a few KiB of `u64` counters.
//!
//! Everything is integer arithmetic — recording, merging, and quantile
//! extraction are deterministic, so two runs that process the same
//! latencies in any order produce `==` histograms.

/// Sub-buckets per octave. Values below `SUBS` are recorded exactly;
/// above, each octave `[2^k, 2^{k+1})` is split into `SUBS` equal buckets.
const SUBS: u64 = 32;
/// log2(SUBS).
const SUB_BITS: u32 = 5;
/// Total bucket count: 32 exact + 32 per octave for octaves 5..=63.
const N_BUCKETS: usize = (SUBS as usize) * 60;

/// Log-bucketed histogram of `u64` samples (virtual nanoseconds).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a value: identity below [`SUBS`], then
/// `(octave, top 5 mantissa bits)`.
fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let k = 63 - v.leading_zeros(); // k >= SUB_BITS
    let sub = (v >> (k - SUB_BITS)) & (SUBS - 1);
    ((k - SUB_BITS + 1) as u64 * SUBS + sub) as usize
}

/// Lower bound of a bucket: the smallest value that maps to it. Used as the
/// reported quantile value, so quantiles are always an actual representable
/// sample floor (≤ the true quantile, within one bucket width).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        return idx;
    }
    let g = idx >> SUB_BITS; // octave group, >= 1
    let sub = idx & (SUBS - 1);
    (SUBS + sub) << (g - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; N_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (order-independent).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded samples, rounded down (0 if empty). Exact — the
    /// sum is kept outside the buckets.
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) as a bucket floor: the largest value `x`
    /// such that fewer than `ceil(q · count)` samples are below `x`'s
    /// bucket. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // ceil(q * total) computed in integers to stay deterministic: the
        // only float op is the product, identical on every platform.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the exact extremes so p0/p100 are exact.
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Iterate non-empty buckets as `(floor, count)` (for plotting/CSV).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose floor is <= it, floors are
        // non-decreasing in the value, and adjacent octaves join up.
        let mut last = 0;
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX]) {
            let idx = bucket_of(v);
            assert!(bucket_floor(idx) <= v, "floor({idx}) > {v}");
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
            assert!(idx < N_BUCKETS);
        }
        // Small values are exact.
        for v in 0..SUBS {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 20, 987_654_321] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            assert!((v - floor) as f64 / (v as f64) < 1.0 / 16.0, "error at {v}");
        }
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1ms .. 1s in µs units, say
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1_000_000);
        // p50 within one bucket (3.1%) of 500_000.
        let p50 = h.p50() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.04, "p50={p50}");
        let p99 = h.p99() as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.04, "p99={p99}");
        assert!(h.p999() <= h.max());
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        let mean = h.mean();
        assert_eq!(mean, 500_500); // exact: sum tracked outside buckets
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples: Vec<u64> = (0..500u64).map(|i| i * i + 7).collect();
        let mut whole = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        a.merge(&b);
        assert!(a == whole, "merge must be exact: {a:?} vs {whole:?}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(123_456);
        // min/max clamping makes every quantile exact with one sample.
        assert_eq!(h.p50(), 123_456);
        assert_eq!(h.p99(), 123_456);
        assert_eq!(h.p999(), 123_456);
    }
}
