//! `push-random`: a randomized work-*pushing* baseline (extension).
//!
//! The paper's related work cites Chakrabarti & Yelick's randomized load
//! balancing by pushing for tree-structured computation (\[16\]). The mirror
//! image of stealing: *loaded* threads take the initiative, shipping surplus
//! chunks to uniformly random targets, while idle threads simply wait for
//! work to land in their mailbox. This is the classic contrast case for the
//! "work-first principle" — the push overhead is paid by the threads doing
//! useful work, which is exactly what work stealing avoids — so it makes a
//! good ablation baseline against the five paper algorithms.
//!
//! As a [`StealTransport`] this is the degenerate corner:
//! [`StealTransport::STEALS`] is `false`, so the token-ring termination
//! detector never probes or steals — idle threads park, alternating mailbox
//! absorption with ring steps, until a pushed chunk or the termination
//! announcement arrives.

use pgas::comm::Item;
use pgas::Comm;

use crate::probe::Xorshift;
use crate::recovery::{Lineage, TAG_ACK};
use crate::sched::{Cx, StealTransport};
use crate::stack::DfsStack;

/// Pushed chunk of work.
pub const TAG_PUSH: i64 = 10;

/// Idle backoff.
const IDLE_BACKOFF_NS: u64 = 2_000;

/// Randomized work pushing as a [`StealTransport`]: surplus is *sent* by
/// the working thread to a uniformly random peer; idle threads only absorb.
///
/// Under a crash-fault plan every push is lineage-tracked exactly like an
/// mpi-ws grant (`docs/faults.md`): the receiver ACKs after marking itself
/// working, and unacknowledged pushes are re-injected by the sender.
///
/// Fenced membership (`docs/faults.md` §8): crash-mode pushes and ACKs
/// carry the sender's incarnation in `meta[3]`; stale-incarnation traffic
/// is dropped (counted in `fenced_drops`). A dropped zombie push survives
/// in the zombie's own lineage copy, which folds back on refence.
#[derive(Clone, Debug)]
pub struct PushTransport<T> {
    me: usize,
    n: usize,
    rng: Xorshift,
    since_poll: u64,
    /// Cumulative PUSH messages sent (for the termination token).
    sent: i64,
    /// Cumulative PUSH messages received (for the termination token).
    recv: i64,
    /// Sender-side push registry (crash mode only; empty otherwise).
    lineage: Lineage<T>,
    /// Whether the run's fault plan has a crash class active.
    crash: bool,
    /// Service mode's task→epoch extractor (see
    /// [`StealTransport::arm_service`]); `None` in batch runs.
    epoch_of: Option<fn(&T) -> u32>,
}

impl<T: Item> PushTransport<T> {
    /// A pushing transport for thread `me` of `n`, with its own push-target
    /// random stream derived from `seed`.
    pub fn new(me: usize, n: usize, seed: u64) -> PushTransport<T> {
        PushTransport {
            me,
            n,
            rng: Xorshift::new(seed ^ (me as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)),
            since_poll: 0,
            sent: 0,
            recv: 0,
            lineage: Lineage::new(),
            crash: false,
            epoch_of: None,
        }
    }

    /// Crash mode: close acknowledged pushes and re-inject overdue ones.
    fn crash_lineage_service<C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        cx: &mut Cx,
    ) {
        if !self.crash {
            return;
        }
        while let Some(m) = comm.try_recv(Some(TAG_ACK)) {
            if !cx.recovery.admit(m.src, m.meta[3]) {
                cx.res.fenced_drops += 1;
                continue; // fenced ACK: leave the push open to re-inject
            }
            if let Some(grant) = self.lineage.ack(comm, m.meta[0] as u64) {
                // Receiver's +items preceded this ACK, so the −items close
                // can only overcount in between (service mode only).
                if let Some(ep) = self.epoch_of {
                    cx.svc.bump_items(comm, grant.payload(), ep, -1);
                }
            }
        }
        let items = self.lineage.reinject_due(comm, stack, &mut cx.recovery);
        if items > 0 {
            cx.res.recovered_nodes += items;
            let now = comm.now();
            cx.log.reinject(items, now);
        }
    }

    /// Pull every pushed chunk out of the mailbox onto the stack; returns
    /// how many chunks arrived. In crash mode each chunk is acknowledged
    /// after the working marker is published (working-before-ACK).
    fn absorb<C: Comm<T>>(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> i64 {
        let mut got = 0i64;
        while let Some(m) = comm.try_recv(Some(TAG_PUSH)) {
            if self.crash {
                if !cx.recovery.admit(m.src, m.meta[3]) {
                    // A fenced incarnation's push: drop it unconsumed and
                    // un-ACKed — the zombie's lineage copy keeps the nodes
                    // alive and folds back when it refences.
                    cx.res.fenced_drops += 1;
                    continue;
                }
                cx.recovery.publish_working(comm);
                // Absorb-before-ACK (service mode): the pushed items go on
                // our per-epoch books before the sender may close its own.
                if let Some(ep) = self.epoch_of {
                    cx.svc.bump_items(comm, &m.payload, ep, 1);
                }
                comm.send(m.src, TAG_ACK, [m.meta[0], 0, 0, cx.recovery.incarnation()], &[]);
            }
            cx.log.steal_ok(m.src, 1, comm.now());
            stack.push_all(&m.payload);
            got += 1;
            cx.res.chunks_stolen += 1; // "received" chunks, for uniform reporting
        }
        got
    }
}

impl<T: Item, C: Comm<T>> StealTransport<T, C> for PushTransport<T> {
    const NAME: &'static str = "push-random";
    const STEALS: bool = false;
    const IDLE_BACKOFF_NS: u64 = IDLE_BACKOFF_NS;

    fn init(&mut self, _comm: &mut C, cx: &mut Cx) {
        self.crash = cx.recovery.active;
    }

    fn arm_service(&mut self, epoch_of: fn(&T) -> u32) {
        self.epoch_of = Some(epoch_of);
    }

    fn on_enter_working(&mut self) {
        self.since_poll = 0;
    }

    fn poll(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.since_poll += 1;
        if self.since_poll >= cx.cfg.poll_interval {
            self.since_poll = 0;
            let got = self.absorb(comm, stack, cx);
            self.recv += got;
            self.crash_lineage_service(comm, stack, cx);
        }
    }

    fn maybe_release(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        // Surplus? Push the oldest chunk at a random peer. The sender pays
        // the cost — the defining anti-"work-first" property.
        if self.n <= 1 || !stack.should_release(cx.cfg.release_depth) {
            return false;
        }
        let mut target = self.rng.below(self.n - 1);
        if target >= self.me {
            target += 1;
        }
        if self.crash && cx.recovery.is_gone(target) {
            // Never push at a confirmed-dead or evicted rank (the chunk
            // would orphan until the re-injection timeout); keep the nodes
            // and retry the next time the release condition holds. The rng
            // advanced, so the next draw targets someone else.
            return false;
        }
        let chunk = stack.take_bottom_chunk();
        let meta = if self.crash {
            let id = self.lineage.open(comm, target, &chunk);
            [id as i64, 0, 0, cx.recovery.incarnation()]
        } else {
            [0; 4]
        };
        comm.send(target, TAG_PUSH, meta, &chunk);
        self.sent += 1;
        cx.res.releases += 1;
        cx.log.release(comm.now());
        true
    }

    fn idle_service(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.crash_lineage_service(comm, stack, cx);
    }

    fn absorb_pending(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        let got = self.absorb(comm, stack, cx);
        self.recv += got;
        got > 0
    }

    fn ring_counts(&self) -> (i64, i64) {
        (self.sent, self.recv)
    }

    fn inflight(&self) -> usize {
        self.lineage.len()
    }

    fn deathbed(&mut self, _comm: &mut C, stack: &mut DfsStack<T>, _cx: &mut Cx) {
        // Unacknowledged pushes ride the spill (see MpiTransport::deathbed).
        self.lineage.drain_into(stack);
    }

    fn finish(&mut self, comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {
        mpisim::drain_mailbox(comm);
    }
}
