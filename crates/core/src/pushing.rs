//! `push-random`: a randomized work-*pushing* baseline (extension).
//!
//! The paper's related work cites Chakrabarti & Yelick's randomized load
//! balancing by pushing for tree-structured computation (\[16\]). The mirror
//! image of stealing: *loaded* threads take the initiative, shipping surplus
//! chunks to uniformly random targets, while idle threads simply wait for
//! work to land in their mailbox. This is the classic contrast case for the
//! "work-first principle" — the push overhead is paid by the threads doing
//! useful work, which is exactly what work stealing avoids — so it makes a
//! good ablation baseline against the five paper algorithms.
//!
//! As a [`StealTransport`] this is the degenerate corner:
//! [`StealTransport::STEALS`] is `false`, so the token-ring termination
//! detector never probes or steals — idle threads park, alternating mailbox
//! absorption with ring steps, until a pushed chunk or the termination
//! announcement arrives.

use pgas::comm::Item;
use pgas::Comm;

use crate::probe::Xorshift;
use crate::report::ThreadResult;
use crate::sched::{Cx, StealTransport};
use crate::stack::DfsStack;
use crate::trace::TraceLog;

/// Pushed chunk of work.
pub const TAG_PUSH: i64 = 10;

/// Idle backoff.
const IDLE_BACKOFF_NS: u64 = 2_000;

/// Randomized work pushing as a [`StealTransport`]: surplus is *sent* by
/// the working thread to a uniformly random peer; idle threads only absorb.
#[derive(Clone, Debug)]
pub struct PushTransport {
    me: usize,
    n: usize,
    rng: Xorshift,
    since_poll: u64,
    /// Cumulative PUSH messages sent (for the termination token).
    sent: i64,
    /// Cumulative PUSH messages received (for the termination token).
    recv: i64,
}

impl PushTransport {
    /// A pushing transport for thread `me` of `n`, with its own push-target
    /// random stream derived from `seed`.
    pub fn new(me: usize, n: usize, seed: u64) -> PushTransport {
        PushTransport {
            me,
            n,
            rng: Xorshift::new(seed ^ (me as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)),
            since_poll: 0,
            sent: 0,
            recv: 0,
        }
    }
}

impl<T: Item, C: Comm<T>> StealTransport<T, C> for PushTransport {
    const NAME: &'static str = "push-random";
    const STEALS: bool = false;
    const IDLE_BACKOFF_NS: u64 = IDLE_BACKOFF_NS;

    fn on_enter_working(&mut self) {
        self.since_poll = 0;
    }

    fn poll(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.since_poll += 1;
        if self.since_poll >= cx.cfg.poll_interval {
            self.since_poll = 0;
            self.recv += absorb(comm, stack, &mut cx.res, &mut cx.log);
        }
    }

    fn maybe_release(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        // Surplus? Push the oldest chunk at a random peer. The sender pays
        // the cost — the defining anti-"work-first" property.
        if self.n <= 1 || !stack.should_release(cx.cfg.release_depth) {
            return false;
        }
        let mut target = self.rng.below(self.n - 1);
        if target >= self.me {
            target += 1;
        }
        let chunk = stack.take_bottom_chunk();
        comm.send(target, TAG_PUSH, [0; 4], &chunk);
        self.sent += 1;
        cx.res.releases += 1;
        cx.log.release(comm.now());
        true
    }

    fn absorb_pending(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        let got = absorb(comm, stack, &mut cx.res, &mut cx.log);
        self.recv += got;
        got > 0
    }

    fn ring_counts(&self) -> (i64, i64) {
        (self.sent, self.recv)
    }

    fn finish(&mut self, comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {
        mpisim::drain_mailbox(comm);
    }
}

/// Pull every pushed chunk out of the mailbox onto the stack; returns how
/// many chunks arrived.
fn absorb<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> i64
where
    T: Item,
    C: Comm<T>,
{
    let mut got = 0i64;
    while let Some(m) = comm.try_recv(Some(TAG_PUSH)) {
        log.steal_ok(m.src, 1, comm.now());
        stack.push_all(&m.payload);
        got += 1;
        res.chunks_stolen += 1; // "received" chunks, for uniform reporting
    }
    got
}
