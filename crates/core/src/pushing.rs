//! `push-random`: a randomized work-*pushing* baseline (extension).
//!
//! The paper's related work cites Chakrabarti & Yelick's randomized load
//! balancing by pushing for tree-structured computation (\[16\]). The mirror
//! image of stealing: *loaded* threads take the initiative, shipping surplus
//! chunks to uniformly random targets, while idle threads simply wait for
//! work to land in their mailbox. This is the classic contrast case for the
//! "work-first principle" — the push overhead is paid by the threads doing
//! useful work, which is exactly what work stealing avoids — so it makes a
//! good ablation baseline against the five paper algorithms.

use pgas::comm::Item;
use pgas::Comm;

use mpisim::TokenRing;

use crate::config::RunConfig;
use crate::probe::Xorshift;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;

/// Pushed chunk of work.
pub const TAG_PUSH: i64 = 10;

/// Idle backoff.
const IDLE_BACKOFF_NS: u64 = 2_000;

/// Run the work-pushing worker on this thread.
pub fn run<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut rng = Xorshift::new(cfg.seed ^ (me as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let mut ring = TokenRing::new(me, n);
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();
    let mut pushes_sent: i64 = 0;
    let mut pushes_recv: i64 = 0;

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------------- Working
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        let mut since_poll = 0u64;
        while let Some(node) = stack.pop() {
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                pushes_recv += absorb(comm, &mut stack, &mut res, &mut log);
            }
            // Surplus? Push the oldest chunk at a random peer. The sender
            // pays the cost — the defining anti-"work-first" property.
            if n > 1 && stack.should_release(cfg.release_depth) {
                let mut target = rng.below(n - 1);
                if target >= me {
                    target += 1;
                }
                let chunk = stack.take_bottom_chunk();
                comm.send(target, TAG_PUSH, [0; 4], &chunk);
                pushes_sent += 1;
                res.releases += 1;
                log.release(comm.now());
            }
        }

        // ------------------------------------------------- Idle / Terminating
        { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
        loop {
            let got = absorb(comm, &mut stack, &mut res, &mut log);
            if got > 0 {
                pushes_recv += got;
                continue 'outer;
            }
            if ring.step(comm, pushes_sent, pushes_recv) {
                break 'outer;
            }
            comm.advance_idle(IDLE_BACKOFF_NS);
        }
    }

    mpisim::drain_mailbox(comm);
    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

/// Pull every pushed chunk out of the mailbox onto the stack; returns how
/// many chunks arrived.
fn absorb<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> i64
where
    T: Item,
    C: Comm<T>,
{
    let mut got = 0i64;
    while let Some(m) = comm.try_recv(Some(TAG_PUSH)) {
        log.steal_ok(m.src, 1, comm.now());
        stack.push_all(&m.payload);
        got += 1;
        res.chunks_stolen += 1; // "received" chunks, for uniform reporting
    }
    got
}
