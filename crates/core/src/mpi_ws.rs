//! `mpi-ws` (§3.2): the message-passing work-stealing baseline of
//! Dinan et al. (PMEO-PDS'07), reproduced over the [`mpisim`] layer.
//!
//! Stealing is a two-sided message exchange: an idle thread sends a steal
//! request; working threads poll for requests "at an interval set by a
//! user-supplied parameter" and answer with a chunk of work or a denial.
//! Global quiescence is detected with the token ring ([`mpisim::TokenRing`]).
//!
//! Contrast with `upc-distmem`: the victim must assemble and *send* the
//! chunk (two-sided), whereas UPC lets the thief pull it one-sidedly while
//! the victim keeps exploring. The compensating advantage the paper notes —
//! "a clear advantage in not using any remote locking operations" — applies
//! here too: there are no locks anywhere in this implementation.

use pgas::comm::Item;
use pgas::Comm;

use mpisim::TokenRing;

use crate::config::RunConfig;
use crate::probe::ProbeOrder;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;

/// Steal request (meta unused).
pub const TAG_REQ: i64 = 1;
/// Work grant; payload carries the chunk.
pub const TAG_WORK: i64 = 2;
/// Denial.
pub const TAG_NOWORK: i64 = 3;

/// Backoff while awaiting a steal response.
const RESPONSE_BACKOFF_NS: u64 = 2_000;
/// Backoff between idle-loop iterations.
const IDLE_BACKOFF_NS: u64 = 5_000;

/// Run the message-passing worker on this thread.
pub fn run<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut probe = ProbeOrder::flat(me, n, cfg.seed);
    let mut ring = TokenRing::new(me, n);
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();
    // Cumulative WORK-message counts for the termination token.
    let mut work_sent: i64 = 0;
    let mut work_recv: i64 = 0;

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------------- Working
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        let mut since_poll: u64 = 0;
        while let Some(node) = stack.pop() {
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);
            }
        }

        // -------------------------------------------- Searching / Stealing
        // One victim per iteration, alternating with termination-token
        // handling (Dinan et al. interleave the same way): at large thread
        // counts a full probe sweep between token steps would park the token
        // for thousands of messages.
        { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        let mut victims = probe.cycle();
        let mut next_victim = 0usize;
        loop {
            // Deny whatever arrived while we were idle.
            service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);

            if next_victim >= victims.len() {
                victims = probe.cycle();
                next_victim = 0;
            }
            if victims.is_empty() {
                // Solo rank: nothing to steal from; go straight to the ring.
                { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
                if ring.step(comm, work_sent, work_recv) {
                    break 'outer;
                }
                { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                continue;
            }
            let v = victims[next_victim];
            next_victim += 1;
            res.probes += 1;
            { let now = comm.now(); clock.transition(State::Stealing, now); log.enter(State::Stealing, now); }
            comm.send(v, TAG_REQ, [0; 4], &[]);
            // Await WORK or NOWORK, staying responsive to requests and
            // to a termination announcement racing with our request: the
            // ring can complete while our (uncounted) request is in
            // flight, and the victim may already have exited — without
            // the TERM check we would wait forever. A WORK grant cannot
            // race this way because grants are counted by the token.
            let mut term_raced = false;
            let granted = loop {
                if let Some(m) = comm.try_recv(Some(TAG_WORK)) {
                    work_recv += 1;
                    stack.push_all(&m.payload);
                    res.steals_ok += 1;
                    res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
                    log.steal_ok(v, 1, comm.now());
                    break true;
                }
                if comm.try_recv(Some(TAG_NOWORK)).is_some() {
                    res.steals_failed += 1;
                    log.steal_fail(v, comm.now());
                    break false;
                }
                if comm.has_msg(Some(mpisim::tags::TERM)) {
                    term_raced = true;
                    break false;
                }
                service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);
                comm.advance_idle(RESPONSE_BACKOFF_NS);
            };
            { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
            if granted {
                continue 'outer;
            }

            // ---------------------------------------------- Terminating
            { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
            if term_raced || ring.step(comm, work_sent, work_recv) {
                break 'outer;
            }
            comm.advance_idle(IDLE_BACKOFF_NS);
            { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        }
    }

    // Late requests may still sit in the mailbox; they are unanswerable and
    // harmless (their senders terminated through the same announcement).
    mpisim::drain_mailbox(comm);

    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

/// Answer every queued steal request: a chunk of the `k` oldest local nodes
/// if we hold a comfortable surplus, a denial otherwise.
fn service_requests<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    cfg: &RunConfig,
    work_sent: &mut i64,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let mut serviced = false;
    while let Some(req) = comm.try_recv(Some(TAG_REQ)) {
        serviced = true;
        if stack.local_len() >= cfg.release_depth.max(2 * stack.k) {
            let chunk = stack.take_bottom_chunk();
            comm.send(req.src, TAG_WORK, [0; 4], &chunk);
            *work_sent += 1;
            res.requests_serviced += 1;
            log.release(comm.now());
        } else {
            comm.send(req.src, TAG_NOWORK, [0; 4], &[]);
        }
    }
    serviced
}
