//! `mpi-ws` (§3.2): the message-passing work-stealing baseline of
//! Dinan et al. (PMEO-PDS'07), reproduced over the [`mpisim`] layer.
//!
//! Stealing is a two-sided message exchange: an idle thread sends a steal
//! request; working threads poll for requests "at an interval set by a
//! user-supplied parameter" and answer with a chunk of work or a denial.
//! Global quiescence is detected with the token ring ([`mpisim::TokenRing`]).
//!
//! Contrast with `upc-distmem`: the victim must assemble and *send* the
//! chunk (two-sided), whereas UPC lets the thief pull it one-sidedly while
//! the victim keeps exploring. The compensating advantage the paper notes —
//! "a clear advantage in not using any remote locking operations" — applies
//! here too: there are no locks anywhere in this implementation.

use pgas::comm::Item;
use pgas::Comm;

use mpisim::TokenRing;

use crate::config::RunConfig;
use crate::probe::ProbeOrder;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;
use crate::watchdog::Watchdog;

/// Steal request (meta unused).
pub const TAG_REQ: i64 = 1;
/// Work grant; payload carries the chunk.
pub const TAG_WORK: i64 = 2;
/// Denial.
pub const TAG_NOWORK: i64 = 3;

/// Backoff while awaiting a steal response.
const RESPONSE_BACKOFF_NS: u64 = 2_000;
/// Backoff between idle-loop iterations.
const IDLE_BACKOFF_NS: u64 = 5_000;
/// Initial post-timeout backoff; doubles per consecutive timeout up to
/// [`TIMEOUT_BACKOFF_MAX_NS`], resets on a successful steal.
const TIMEOUT_BACKOFF_MIN_NS: u64 = 4_000;
/// Cap on the post-timeout exponential backoff.
const TIMEOUT_BACKOFF_MAX_NS: u64 = 512_000;

/// Run the message-passing worker on this thread.
pub fn run<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut probe = ProbeOrder::flat(me, n, cfg.seed);
    let mut ring = TokenRing::new(me, n);
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();
    // Cumulative WORK-message counts for the termination token.
    let mut work_sent: i64 = 0;
    let mut work_recv: i64 = 0;
    // Timeout hardening (docs/faults.md): responses still outstanding from
    // victims we timed out on. Grants are counted by the token ring, so a
    // late WORK message *must* eventually be consumed — the drain below does
    // that — or the ring would never balance. Stays 0 (and the drain is
    // never even probed) unless `cfg.steal_timeout_ns` is armed.
    let mut pending_responses: usize = 0;
    let mut timeout_backoff = TIMEOUT_BACKOFF_MIN_NS;

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------------- Working
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        let mut since_poll: u64 = 0;
        while let Some(node) = stack.pop() {
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);
            }
        }

        // -------------------------------------------- Searching / Stealing
        // One victim per iteration, alternating with termination-token
        // handling (Dinan et al. interleave the same way): at large thread
        // counts a full probe sweep between token steps would park the token
        // for thousands of messages.
        { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        let mut victims = probe.cycle();
        let mut next_victim = 0usize;
        loop {
            // Deny whatever arrived while we were idle.
            service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);

            // Drain responses from victims we previously timed out on. A
            // late WORK grant is still work in hand — and its consumption is
            // required for the ring's sent/recv balance.
            if pending_responses > 0 {
                if let Some(m) = comm.try_recv(Some(TAG_WORK)) {
                    pending_responses -= 1;
                    work_recv += 1;
                    stack.push_all(&m.payload);
                    res.steals_ok += 1;
                    res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
                    log.steal_ok(m.src, 1, comm.now());
                    timeout_backoff = TIMEOUT_BACKOFF_MIN_NS;
                    continue 'outer;
                }
                // With no request in flight, any NOWORK here is late.
                while pending_responses > 0 && comm.try_recv(Some(TAG_NOWORK)).is_some() {
                    pending_responses -= 1;
                }
            }

            if next_victim >= victims.len() {
                victims = probe.cycle();
                next_victim = 0;
            }
            if victims.is_empty() {
                // Solo rank: nothing to steal from; go straight to the ring.
                { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
                if ring.step(comm, work_sent, work_recv) {
                    break 'outer;
                }
                { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                continue;
            }
            let v = victims[next_victim];
            next_victim += 1;
            res.probes += 1;
            { let now = comm.now(); clock.transition(State::Stealing, now); log.enter(State::Stealing, now); }
            comm.send(v, TAG_REQ, [0; 4], &[]);
            // Await WORK or NOWORK, staying responsive to requests and
            // to a termination announcement racing with our request: the
            // ring can complete while our (uncounted) request is in
            // flight, and the victim may already have exited — without
            // the TERM check we would wait forever. A WORK grant cannot
            // race this way because grants are counted by the token.
            let mut term_raced = false;
            let mut timed_out = false;
            let deadline = cfg.steal_timeout_ns.map(|d| comm.now() + d);
            let mut dog = Watchdog::new("mpi-ws steal response wait");
            let granted = loop {
                dog.tick();
                if let Some(m) = comm.try_recv(Some(TAG_WORK)) {
                    // Work in hand, whether from `v` or a late grant from an
                    // earlier timed-out victim. In the late case one
                    // outstanding response was consumed while `v`'s becomes
                    // outstanding, so `pending_responses` is unchanged
                    // either way (we abandon `v`'s response by breaking out).
                    work_recv += 1;
                    stack.push_all(&m.payload);
                    res.steals_ok += 1;
                    res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
                    log.steal_ok(m.src, 1, comm.now());
                    timeout_backoff = TIMEOUT_BACKOFF_MIN_NS;
                    break true;
                }
                if let Some(m) = comm.try_recv(Some(TAG_NOWORK)) {
                    if m.src != v {
                        // A late denial from an earlier timed-out victim;
                        // keep waiting for v's answer.
                        pending_responses = pending_responses.saturating_sub(1);
                        continue;
                    }
                    res.steals_failed += 1;
                    log.steal_fail(v, comm.now());
                    break false;
                }
                if comm.has_msg(Some(mpisim::tags::TERM)) {
                    term_raced = true;
                    break false;
                }
                if let Some(dl) = deadline {
                    if comm.now() >= dl {
                        // Abandon the unresponsive victim; its eventual
                        // WORK/NOWORK is drained at the top of the search
                        // loop (or classified by source above).
                        res.steal_timeouts += 1;
                        res.steal_retries += 1;
                        res.steals_failed += 1;
                        log.steal_timeout(v, comm.now());
                        pending_responses += 1;
                        timed_out = true;
                        break false;
                    }
                }
                service_requests(comm, &mut stack, cfg, &mut work_sent, &mut res, &mut log);
                comm.advance_idle(RESPONSE_BACKOFF_NS);
            };
            { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
            if granted {
                continue 'outer;
            }
            if timed_out {
                // Back off, then re-probe the next victim directly — no ring
                // step: the timed-out request proves nothing about global
                // quiescence.
                res.timeout_backoff_ns += timeout_backoff;
                comm.advance_idle(timeout_backoff);
                timeout_backoff = (timeout_backoff * 2).min(TIMEOUT_BACKOFF_MAX_NS);
                continue;
            }

            // ---------------------------------------------- Terminating
            { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
            if term_raced || ring.step(comm, work_sent, work_recv) {
                break 'outer;
            }
            comm.advance_idle(IDLE_BACKOFF_NS);
            { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        }
    }

    // Premature-termination detector: the ring announced while this thread
    // still held work — impossible under a correct sent/recv accounting.
    debug_assert!(
        stack.is_local_empty(),
        "thread {me} terminated holding {} local nodes",
        stack.local_len()
    );

    // Late requests may still sit in the mailbox; they are unanswerable and
    // harmless (their senders terminated through the same announcement).
    mpisim::drain_mailbox(comm);

    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

#[cfg(test)]
mod tests {
    use crate::config::{Algorithm, RunConfig};
    use crate::engine::run_sim;
    use crate::taskgen::UtsGen;
    use pgas::{FaultPlan, MachineModel};
    use uts_tree::presets;

    /// Under seeded fault schedules with the request timeout armed, every
    /// run still counts the tree exactly, and at least one schedule in the
    /// sweep actually exercises the timeout/re-probe path (so the late-grant
    /// and late-denial drains are not dead code).
    #[test]
    fn timeout_reprobe_conserves_nodes_under_faults() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut total_timeouts = 0u64;
        for seed in 0..6u64 {
            let mut cfg = RunConfig::new(Algorithm::MpiWs, 2);
            cfg.faults = FaultPlan::seeded(seed);
            cfg.steal_timeout_ns = Some(25_000);
            let report = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
            assert_eq!(
                report.total_nodes, p.expected.nodes,
                "seed {seed}: lost/duplicated nodes under faults"
            );
            total_timeouts += report
                .per_thread
                .iter()
                .map(|t| t.steal_timeouts)
                .sum::<u64>();
        }
        assert!(
            total_timeouts > 0,
            "no fault schedule fired a steal timeout — hardening untested"
        );
    }

    /// Faulted, timeout-armed runs are bit-deterministic: the whole
    /// per-thread counter set matches across repeated runs.
    #[test]
    fn faulted_timeout_runs_are_deterministic() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut cfg = RunConfig::new(Algorithm::MpiWs, 2);
        cfg.faults = FaultPlan::seeded(3);
        cfg.steal_timeout_ns = Some(25_000);
        let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
        let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        for (x, y) in a.per_thread.iter().zip(&b.per_thread) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.steal_timeouts, y.steal_timeouts);
            assert_eq!(x.steal_retries, y.steal_retries);
            assert_eq!(x.timeout_backoff_ns, y.timeout_backoff_ns);
        }
    }
}

/// Answer every queued steal request: a chunk of the `k` oldest local nodes
/// if we hold a comfortable surplus, a denial otherwise.
fn service_requests<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    cfg: &RunConfig,
    work_sent: &mut i64,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let mut serviced = false;
    while let Some(req) = comm.try_recv(Some(TAG_REQ)) {
        serviced = true;
        if stack.local_len() >= cfg.release_depth.max(2 * stack.k) {
            let chunk = stack.take_bottom_chunk();
            comm.send(req.src, TAG_WORK, [0; 4], &chunk);
            *work_sent += 1;
            res.requests_serviced += 1;
            log.release(comm.now());
        } else {
            comm.send(req.src, TAG_NOWORK, [0; 4], &[]);
        }
    }
    serviced
}
