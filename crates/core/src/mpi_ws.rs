//! `mpi-ws` (§3.2): the message-passing work-stealing baseline of
//! Dinan et al. (PMEO-PDS'07), reproduced over the [`mpisim`] layer.
//!
//! Stealing is a two-sided message exchange: an idle thread sends a steal
//! request; working threads poll for requests "at an interval set by a
//! user-supplied parameter" and answer with a chunk of work or a denial.
//! Global quiescence is detected with the counting token ring
//! ([`crate::sched::termination::RingTerm`] over [`mpisim::TokenRing`]).
//!
//! Contrast with `upc-distmem`: the victim must assemble and *send* the
//! chunk (two-sided), whereas UPC lets the thief pull it one-sidedly while
//! the victim keeps exploring. The compensating advantage the paper notes —
//! "a clear advantage in not using any remote locking operations" — applies
//! here too: there are no locks anywhere in this implementation.
//!
//! The grant size per request message comes from the bundle's
//! [`StealPolicy`]: the paper baseline sends one chunk per grant, and the
//! same transport ships multi-chunk grants for the half/adaptive policies
//! (the surplus beyond the keep-threshold is what's divisible).
//!
//! [`StealPolicy`]: crate::sched::policy::StealPolicy

use pgas::comm::Item;
use pgas::Comm;

use crate::recovery::{Lineage, TAG_ACK};
use crate::sched::policy::{StealPolicy, StealPolicyKind};
use crate::sched::{Cx, StealOutcome, StealTransport};
use crate::stack::DfsStack;
use crate::watchdog::Watchdog;

/// Steal request (meta unused).
pub const TAG_REQ: i64 = 1;
/// Work grant; payload carries the chunk(s).
pub const TAG_WORK: i64 = 2;
/// Denial.
pub const TAG_NOWORK: i64 = 3;

/// Backoff while awaiting a steal response.
const RESPONSE_BACKOFF_NS: u64 = 2_000;
/// Backoff between idle-loop iterations.
const IDLE_BACKOFF_NS: u64 = 5_000;
/// Initial post-timeout backoff; doubles per consecutive timeout up to
/// [`TIMEOUT_BACKOFF_MAX_NS`], resets on a successful steal.
const TIMEOUT_BACKOFF_MIN_NS: u64 = 4_000;
/// Cap on the post-timeout exponential backoff.
const TIMEOUT_BACKOFF_MAX_NS: u64 = 512_000;

/// §3.2's two-sided request/grant message exchange as a [`StealTransport`].
///
/// Carries the cumulative WORK-message counts the termination token needs
/// ([`StealTransport::ring_counts`]) and, with the steal timeout armed
/// (`docs/faults.md`), the count of responses still outstanding from victims
/// we abandoned. Grants are counted by the token ring, so a late WORK
/// message *must* eventually be consumed — [`StealTransport::absorb_pending`]
/// does that — or the ring would never balance. The count stays 0 (and the
/// drain is never even probed) unless `cfg.steal_timeout_ns` is armed.
///
/// Under a crash-fault plan (`docs/faults.md`) the transport additionally
/// runs the lineage protocol: every WORK grant is registered in a
/// [`Lineage`] with a payload copy and its id stamped into `meta[0]`; the
/// thief acknowledges with [`TAG_ACK`] after marking itself working; grants
/// never acknowledged (lost WORK, lost ACK, dead thief) are re-injected
/// onto the donor's own stack. None of this issues a single operation
/// without a crash class active.
///
/// Fenced membership (`docs/faults.md` §8): every crash-mode message also
/// carries the sender's incarnation in `meta[3]`; traffic from an
/// incarnation below the receiver's admission floor for that rank is
/// dropped (counted in `fenced_drops`), so an evicted zombie cannot feed
/// stale grants, requests, or ACKs into the new membership view.
#[derive(Clone, Debug)]
pub struct MpiTransport<T> {
    sp: StealPolicyKind,
    since_poll: u64,
    /// Responses still outstanding from victims we timed out on.
    pending_responses: usize,
    /// Exponential backoff across consecutive steal timeouts.
    timeout_backoff: u64,
    /// Cumulative WORK messages sent (for the termination token).
    work_sent: i64,
    /// Cumulative WORK messages received (for the termination token).
    work_recv: i64,
    /// Donor-side grant registry (crash mode only; empty otherwise).
    lineage: Lineage<T>,
    /// Whether the run's fault plan has a crash class active.
    crash: bool,
    /// Service mode's task→epoch extractor (see
    /// [`StealTransport::arm_service`]); `None` in batch runs.
    epoch_of: Option<fn(&T) -> u32>,
}

impl<T: Item> MpiTransport<T> {
    /// An mpi-ws transport granting per the given steal policy.
    pub fn new(sp: StealPolicyKind) -> MpiTransport<T> {
        MpiTransport {
            sp,
            since_poll: 0,
            pending_responses: 0,
            timeout_backoff: TIMEOUT_BACKOFF_MIN_NS,
            work_sent: 0,
            work_recv: 0,
            lineage: Lineage::new(),
            crash: false,
            epoch_of: None,
        }
    }

    /// Crash mode: close acknowledged grants and re-inject overdue ones.
    fn crash_lineage_service<C: Comm<T>>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        cx: &mut Cx,
    ) {
        if !self.crash {
            return;
        }
        while let Some(m) = comm.try_recv(Some(TAG_ACK)) {
            if !cx.recovery.admit(m.src, m.meta[3]) {
                // An evicted incarnation's ACK: ignore it, the grant stays
                // open and re-injects (duplicates are multiplicity-safe).
                cx.res.fenced_drops += 1;
                continue;
            }
            if let Some(grant) = self.lineage.ack(comm, m.meta[0] as u64) {
                // The thief published its +items before this ACK could be
                // sent, so closing the donor side now can only overcount,
                // never undercount (service mode only).
                if let Some(ep) = self.epoch_of {
                    cx.svc.bump_items(comm, grant.payload(), ep, -1);
                }
            }
        }
        let items = self.lineage.reinject_due(comm, stack, &mut cx.recovery);
        if items > 0 {
            cx.res.recovered_nodes += items;
            let now = comm.now();
            cx.log.reinject(items, now);
        }
    }

    /// Crash mode: mark ourselves working (and, in service mode, put the
    /// absorbed items on our per-epoch books), then acknowledge grant `m`
    /// so the donor can close its lineage entry. Working/absorb-before-ACK
    /// is the ordering both quiescence scans' soundness rests on: the
    /// donor's `−items` can only follow our `+items`.
    fn crash_ack_work<C: Comm<T>>(
        &mut self,
        comm: &mut C,
        src: usize,
        grant_id: i64,
        payload: &[T],
        cx: &mut Cx,
    ) {
        if self.crash {
            cx.recovery.publish_working(comm);
            if let Some(ep) = self.epoch_of {
                cx.svc.bump_items(comm, payload, ep, 1);
            }
            comm.send(src, TAG_ACK, [grant_id, 0, 0, cx.recovery.incarnation()], &[]);
        }
    }

    /// Answer every queued steal request: chunks of the oldest local nodes
    /// if we hold a comfortable surplus, a denial otherwise. The keep
    /// threshold is `release_depth.max(2k)`; the policy sizes its grant from
    /// the spare chunks above it, shipped as one message.
    fn service_requests<C>(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx)
    where
        C: Comm<T>,
    {
        self.crash_lineage_service(comm, stack, cx);
        while let Some(req) = comm.try_recv(Some(TAG_REQ)) {
            if self.crash {
                if !cx.recovery.admit(req.src, req.meta[3]) {
                    cx.res.fenced_drops += 1;
                    continue; // a fenced incarnation's request is void
                }
                if cx.recovery.is_gone(req.src) {
                    continue; // a dead or evicted thief cannot consume a grant
                }
            }
            let threshold = cx.cfg.release_depth.max(2 * stack.k);
            if stack.local_len() >= threshold {
                let spare = (stack.local_len() - threshold) / stack.k + 1;
                let give = self.sp.amount(spare).clamp(1, spare);
                let mut payload = Vec::with_capacity(give * stack.k);
                for _ in 0..give {
                    payload.extend_from_slice(&stack.take_bottom_chunk());
                }
                let meta = if self.crash {
                    // Grant-before-send: the lineage entry (and the LIN_OUT
                    // marker it raises) must exist before the message can.
                    let id = self.lineage.open(comm, req.src, &payload);
                    [id as i64, 0, 0, cx.recovery.incarnation()]
                } else {
                    [0; 4]
                };
                comm.send(req.src, TAG_WORK, meta, &payload);
                self.work_sent += 1;
                cx.res.requests_serviced += 1;
                cx.log.release(comm.now());
            } else {
                let meta = if self.crash {
                    [0, 0, 0, cx.recovery.incarnation()]
                } else {
                    [0; 4]
                };
                comm.send(req.src, TAG_NOWORK, meta, &[]);
            }
        }
    }
}

impl<T: Item, C: Comm<T>> StealTransport<T, C> for MpiTransport<T> {
    const NAME: &'static str = "mpi-ws";
    const IDLE_BACKOFF_NS: u64 = IDLE_BACKOFF_NS;

    fn init(&mut self, _comm: &mut C, cx: &mut Cx) {
        self.crash = cx.recovery.active;
    }

    fn arm_service(&mut self, epoch_of: fn(&T) -> u32) {
        self.epoch_of = Some(epoch_of);
    }

    fn on_enter_working(&mut self) {
        self.since_poll = 0;
    }

    fn poll(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.since_poll += 1;
        if self.since_poll >= cx.cfg.poll_interval {
            self.since_poll = 0;
            self.service_requests(comm, stack, cx);
        }
    }

    fn steal(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        victim: usize,
        cx: &mut Cx,
    ) -> StealOutcome {
        let req_meta = if self.crash {
            [0, 0, 0, cx.recovery.incarnation()]
        } else {
            [0; 4]
        };
        comm.send(victim, TAG_REQ, req_meta, &[]);
        // Await WORK or NOWORK, staying responsive to requests and to a
        // termination announcement racing with our request: the ring can
        // complete while our (uncounted) request is in flight, and the
        // victim may already have exited — without the TERM check we would
        // wait forever. A WORK grant cannot race this way because grants
        // are counted by the token.
        let deadline = cx.cfg.steal_timeout_ns.map(|d| comm.now() + d);
        let mut dog = Watchdog::new("mpi-ws steal response wait");
        loop {
            dog.tick();
            if let Some(m) = comm.try_recv(Some(TAG_WORK)) {
                if self.crash && !cx.recovery.admit(m.src, m.meta[3]) {
                    // A fenced incarnation's grant: drop it unconsumed and
                    // un-ACKed. The zombie's own lineage copy keeps the
                    // payload alive (it folds on refence), so nothing is
                    // lost — only possibly duplicated.
                    cx.res.fenced_drops += 1;
                    continue;
                }
                // Work in hand, whether from `victim` or a late grant from
                // an earlier timed-out victim. In the late case one
                // outstanding response was consumed while `victim`'s becomes
                // outstanding, so `pending_responses` is unchanged either
                // way (we abandon `victim`'s response by returning).
                self.work_recv += 1;
                self.crash_ack_work(comm, m.src, m.meta[0], &m.payload, cx);
                stack.push_all(&m.payload);
                cx.res.steals_ok += 1;
                cx.res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
                cx.log.steal_ok(m.src, 1, comm.now());
                self.timeout_backoff = TIMEOUT_BACKOFF_MIN_NS;
                return StealOutcome::Got;
            }
            if let Some(m) = comm.try_recv(Some(TAG_NOWORK)) {
                if self.crash && !cx.recovery.admit(m.src, m.meta[3]) {
                    cx.res.fenced_drops += 1;
                    continue;
                }
                if m.src != victim {
                    // A late denial from an earlier timed-out victim; keep
                    // waiting for the answer of `victim`.
                    self.pending_responses = self.pending_responses.saturating_sub(1);
                    continue;
                }
                cx.res.steals_failed += 1;
                cx.log.steal_fail(victim, comm.now());
                return StealOutcome::Denied;
            }
            if comm.has_msg(Some(mpisim::tags::TERM)) {
                return StealOutcome::TermRaced;
            }
            if let Some(dl) = deadline {
                if comm.now() >= dl {
                    // Abandon the unresponsive victim; its eventual
                    // WORK/NOWORK is drained by `absorb_pending` (or
                    // classified by source above).
                    cx.res.steal_timeouts += 1;
                    cx.res.steal_retries += 1;
                    cx.res.steals_failed += 1;
                    cx.log.steal_timeout(victim, comm.now());
                    self.pending_responses += 1;
                    return StealOutcome::TimedOut;
                }
            }
            self.service_requests(comm, stack, cx);
            comm.advance_idle(RESPONSE_BACKOFF_NS);
        }
    }

    fn after_timeout(&mut self, comm: &mut C, cx: &mut Cx) {
        cx.res.timeout_backoff_ns += self.timeout_backoff;
        comm.advance_idle(self.timeout_backoff);
        self.timeout_backoff = (self.timeout_backoff * 2).min(TIMEOUT_BACKOFF_MAX_NS);
    }

    fn idle_service(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.service_requests(comm, stack, cx);
    }

    fn absorb_pending(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        if self.crash {
            // Crash mode: drain every queued WORK unconditionally — a
            // duplicated REQ can draw a second grant no `pending_responses`
            // count ever armed, and a consumed (+ ACKed) duplicate is how
            // the donor's lineage entry closes.
            let mut got = false;
            while let Some(m) = comm.try_recv(Some(TAG_WORK)) {
                self.pending_responses = self.pending_responses.saturating_sub(1);
                if !cx.recovery.admit(m.src, m.meta[3]) {
                    cx.res.fenced_drops += 1;
                    continue; // fenced grant: the zombie's lineage copy survives
                }
                self.work_recv += 1;
                self.crash_ack_work(comm, m.src, m.meta[0], &m.payload, cx);
                stack.push_all(&m.payload);
                cx.res.steals_ok += 1;
                cx.res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
                cx.log.steal_ok(m.src, 1, comm.now());
                got = true;
            }
            while comm.try_recv(Some(TAG_NOWORK)).is_some() {
                self.pending_responses = self.pending_responses.saturating_sub(1);
            }
            return got;
        }
        // Drain responses from victims we previously timed out on. A late
        // WORK grant is still work in hand — and its consumption is required
        // for the ring's sent/recv balance.
        if self.pending_responses == 0 {
            return false;
        }
        if let Some(m) = comm.try_recv(Some(TAG_WORK)) {
            self.pending_responses -= 1;
            self.work_recv += 1;
            stack.push_all(&m.payload);
            cx.res.steals_ok += 1;
            cx.res.chunks_stolen += (m.payload.len() / stack.k.max(1)) as u64;
            cx.log.steal_ok(m.src, 1, comm.now());
            self.timeout_backoff = TIMEOUT_BACKOFF_MIN_NS;
            return true;
        }
        // With no request in flight, any NOWORK here is late.
        while self.pending_responses > 0 && comm.try_recv(Some(TAG_NOWORK)).is_some() {
            self.pending_responses -= 1;
        }
        false
    }

    fn ring_counts(&self) -> (i64, i64) {
        (self.work_sent, self.work_recv)
    }

    fn inflight(&self) -> usize {
        self.lineage.len()
    }

    fn deathbed(&mut self, _comm: &mut C, stack: &mut DfsStack<T>, _cx: &mut Cx) {
        // Fold every unacknowledged grant's payload copy back into the local
        // deque: it rides the spill, so even if both the WORK message and
        // its thief are gone the nodes survive. Unanswered requests in the
        // mailbox die with us — their senders re-probe or time out.
        self.lineage.drain_into(stack);
    }

    fn finish(&mut self, comm: &mut C, stack: &mut DfsStack<T>, _cx: &mut Cx) {
        // Premature-termination detector: the ring announced while this
        // thread still held work — impossible under a correct sent/recv
        // accounting.
        debug_assert!(
            stack.is_local_empty(),
            "thread {} terminated holding {} local nodes",
            comm.my_id(),
            stack.local_len()
        );
        // Late requests may still sit in the mailbox; they are unanswerable
        // and harmless (their senders terminated through the same
        // announcement).
        mpisim::drain_mailbox(comm);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Algorithm, RunConfig};
    use crate::engine::run_sim;
    use crate::taskgen::UtsGen;
    use pgas::{FaultPlan, MachineModel};
    use uts_tree::presets;

    /// Under seeded fault schedules with the request timeout armed, every
    /// run still counts the tree exactly, and at least one schedule in the
    /// sweep actually exercises the timeout/re-probe path (so the late-grant
    /// and late-denial drains are not dead code).
    #[test]
    fn timeout_reprobe_conserves_nodes_under_faults() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut total_timeouts = 0u64;
        for seed in 0..6u64 {
            let mut cfg = RunConfig::new(Algorithm::MpiWs, 2);
            cfg.faults = FaultPlan::seeded(seed);
            cfg.steal_timeout_ns = Some(25_000);
            let report = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
            assert_eq!(
                report.total_nodes, p.expected.nodes,
                "seed {seed}: lost/duplicated nodes under faults"
            );
            total_timeouts += report
                .per_thread
                .iter()
                .map(|t| t.steal_timeouts)
                .sum::<u64>();
        }
        assert!(
            total_timeouts > 0,
            "no fault schedule fired a steal timeout — hardening untested"
        );
    }

    /// Faulted, timeout-armed runs are bit-deterministic: the whole
    /// per-thread counter set matches across repeated runs.
    #[test]
    fn faulted_timeout_runs_are_deterministic() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut cfg = RunConfig::new(Algorithm::MpiWs, 2);
        cfg.faults = FaultPlan::seeded(3);
        cfg.steal_timeout_ns = Some(25_000);
        let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
        let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        for (x, y) in a.per_thread.iter().zip(&b.per_thread) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.steal_timeouts, y.steal_timeouts);
            assert_eq!(x.steal_retries, y.steal_retries);
            assert_eq!(x.timeout_backoff_ns, y.timeout_backoff_ns);
        }
    }
}
