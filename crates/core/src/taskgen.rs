//! The task-generation abstraction: what the load balancer balances.
//!
//! The paper's benchmark is UTS, but §3 notes the approach "could be easily
//! augmented to use more complex search methods such as branch-and-bound and
//! backtracking". [`TaskGen`] is that seam: any implicitly-defined tree of
//! tasks can be traversed and balanced by the algorithms in this crate.

use pgas::comm::Item;
use pgas::Comm;
use uts_tree::{Node, TreeSpec};

/// An implicit tree of tasks. Implementations must be deterministic: the
/// children of a task are a pure function of the task.
pub trait TaskGen: Sync {
    /// The task descriptor moved between workers.
    type Task: Item;

    /// The root task.
    fn root(&self) -> Self::Task;

    /// Append `task`'s children onto `out`; return how many were produced.
    fn expand(&self, task: &Self::Task, out: &mut Vec<Self::Task>) -> u32;

    /// Expansion with access to the communication substrate, called by the
    /// generic driver's working loop in place of [`TaskGen::expand`]. The
    /// default simply forwards to `expand`, issuing no comm operations —
    /// which keeps the op stream (and therefore virtual-time results) of
    /// every tree workload bit-identical to the pre-hook driver. Workloads
    /// whose readiness is a *shared* property — task DAGs publishing
    /// dependency-count decrements ([`crate::workload::DagWorkload`]) —
    /// override this to route that state through [`Comm`], so both
    /// conductors order the updates identically.
    ///
    /// Contract: any comm operation issued here must happen before the
    /// produced tasks are pushed (the driver pushes `out` only after this
    /// returns), preserving the publish-before-migration discipline — a
    /// task's readiness is globally visible before the task can be stolen.
    fn expand_in<C: Comm<Self::Task>>(
        &self,
        comm: &mut C,
        task: &Self::Task,
        out: &mut Vec<Self::Task>,
    ) -> u32 {
        let _ = comm;
        self.expand(task, out)
    }

    /// Virtual work units charged for executing `task` (node-explorations on
    /// the simulator's cost model). Default 1: every task costs one node,
    /// the UTS accounting. Weighted workloads (DAG task weights) override.
    fn work_units(&self, _task: &Self::Task) -> u64 {
        1
    }

    /// Extra per-rank scalar cells this workload needs beyond the protocol
    /// layout in [`crate::vars`] (e.g. DAG pending-dependency counters,
    /// striped across ranks). The engine adds this to the
    /// [`pgas::SpaceConfig`] it builds. Default 0: tree workloads keep the
    /// exact seed layout, preserving bit-identity.
    fn extra_scalars(&self, _n_threads: usize) -> usize {
        0
    }

    /// Critical-path length of the workload (the depth `D` in the
    /// O(p·D) steal bound — see [`crate::theory`]), when the generator
    /// knows it in closed form. `None` (the default) means "not known";
    /// [`crate::theory::tree_depth`] can compute it by host traversal.
    fn critical_path_len(&self) -> Option<u64> {
        None
    }

    /// Upper bound on how many tasks can ever be ready simultaneously (the
    /// maximum width of the ready frontier), when the generator knows one.
    /// `None` (the default) means "unbounded / unknown" — correct for trees,
    /// whose DFS frontier grows with the subtree. The engine uses this to
    /// auto-clamp the release heuristic: with the paper's depth ≥ 2k release
    /// trigger, a workload whose per-thread frontier share stays below 2k
    /// would never release and silently run serial (the E18 wavefront
    /// foot-gun) — see [`crate::engine::worker`]. Purely a tuning hint:
    /// conservation and bit-identity never depend on it.
    fn frontier_hint(&self) -> Option<u64> {
        None
    }

    /// A stable identity for `task`, used only by crash-fault runs to count
    /// exploration multiplicity (conservation-with-multiplicity checks in
    /// [`crate::report::RunReport`]).
    ///
    /// # Contract
    ///
    /// Crash-fault runs require this to be **injective** over the workload's
    /// tasks: `duplicate_nodes` is computed as the per-fingerprint excess
    /// over one, so two distinct tasks sharing a fingerprint silently
    /// *understate* the duplicate count (collisions masquerade as
    /// re-explorations, and `total − duplicates` drifts below the true task
    /// count). The default `0` collapses every task into one identity —
    /// fine when crash faults are off, which never read it. Crash-mode
    /// setup fails fast with [`crate::config::ConfigError::DegenerateFingerprints`]
    /// when it detects the degenerate default (root and first child sharing
    /// a fingerprint); override with a collision-free hash to run crash
    /// plans ([`UtsGen`] uses the first 8 bytes of the node's SHA-1 state).
    fn fingerprint(&self, _task: &Self::Task) -> u64 {
        0
    }
}

/// UTS: the Unbalanced Tree Search workload (the paper's benchmark).
#[derive(Clone, Copy, Debug)]
pub struct UtsGen {
    spec: TreeSpec,
}

impl UtsGen {
    /// Wrap a UTS tree specification.
    pub fn new(spec: TreeSpec) -> UtsGen {
        UtsGen { spec }
    }

    /// The underlying tree specification.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }
}

impl TaskGen for UtsGen {
    type Task = Node;

    fn root(&self) -> Node {
        self.spec.root()
    }

    fn expand(&self, task: &Node, out: &mut Vec<Node>) -> u32 {
        self.spec.expand_into(task, out)
    }

    /// The first 8 bytes of the node's SHA-1 state: unique per node for all
    /// practical tree sizes, so crash-mode duplicate counts are exact.
    fn fingerprint(&self, task: &Node) -> u64 {
        u64::from_le_bytes(task.state[..8].try_into().expect("8-byte prefix"))
    }
}

/// A cheap synthetic tree for unit tests: a perfect `branch`-ary tree of the
/// given `depth`, so its size is known in closed form without hashing.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticGen {
    /// Branching factor.
    pub branch: u32,
    /// Depth (root at depth 0; nodes at `depth` are leaves).
    pub depth: u32,
}

impl SyntheticGen {
    /// Total node count: (b^(d+1) - 1) / (b - 1) for b > 1.
    pub fn size(&self) -> u64 {
        if self.branch <= 1 {
            return u64::from(self.depth) + 1;
        }
        let b = u64::from(self.branch);
        (b.pow(self.depth + 1) - 1) / (b - 1)
    }
}

/// Task for [`SyntheticGen`]: just the node's depth.
impl TaskGen for SyntheticGen {
    type Task = u32;

    fn root(&self) -> u32 {
        0
    }

    fn expand(&self, task: &u32, out: &mut Vec<u32>) -> u32 {
        if *task >= self.depth {
            0
        } else {
            for _ in 0..self.branch {
                out.push(task + 1);
            }
            self.branch
        }
    }

    /// Depth only — deliberately non-unique (all same-depth nodes collide),
    /// so the synthetic workload is unsuitable for exact duplicate counting.
    fn fingerprint(&self, task: &u32) -> u64 {
        u64::from(*task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::presets;

    #[test]
    fn uts_gen_matches_spec() {
        let p = presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let mut out = Vec::new();
        let n = gen.expand(&gen.root(), &mut out);
        assert_eq!(n, 16); // t_tiny root branching factor
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn synthetic_size_formula() {
        assert_eq!(SyntheticGen { branch: 2, depth: 3 }.size(), 15);
        assert_eq!(SyntheticGen { branch: 3, depth: 2 }.size(), 13);
        assert_eq!(SyntheticGen { branch: 1, depth: 5 }.size(), 6);
    }

    #[test]
    fn synthetic_expand_respects_depth() {
        let g = SyntheticGen { branch: 2, depth: 1 };
        let mut out = Vec::new();
        assert_eq!(g.expand(&0, &mut out), 2);
        out.clear();
        assert_eq!(g.expand(&1, &mut out), 0);
    }
}
