//! The §2 chunk-size tradeoff, formalized.
//!
//! The paper argues qualitatively: "The larger this chunk size k, the lower
//! the overhead to work stealing when amortized over the expected work …
//! However, the likelihood that a depth first search of one of our trees has
//! k nodes on the stack at any given time is proportional to 1/k … Thus, the
//! value of k represents a tradeoff between load imbalance and communication
//! costs."
//!
//! This module turns that argument into a two-parameter performance model.
//! With `N` nodes on `p` threads at `t` ns/node, and a steal transfer
//! costing `L + γ·k` ns (latency plus bandwidth):
//!
//! - **communication overhead**: a fraction `α` of all nodes must migrate;
//!   in chunks of `k` that is `αN/k` transfers, i.e. relative overhead
//!   `(α/k)·(L + γk)/t`;
//! - **granularity imbalance**: work parcels out in quanta of `k` nodes, so
//!   end-of-run idling grows linearly in `k`: relative cost `β·k·p/N`.
//!
//! ```text
//! rate(k) = (p/t) / (1 + (α/k)(L + γk)/t + βkp/N)
//! k*      = sqrt(α·L·N / (t·β·p))
//! ```
//!
//! The model reproduces the paper's observations: an interior sweet spot, a
//! plateau that *narrows* and an optimum that *shifts* as `p` grows
//! ("As more processors are used, performance is more sensitive to chunk
//! size", §4.2.1). `α` and `β` are workload/algorithm properties fitted
//! from two cheap measurements; see `fit_alpha` / `fit_beta` and the
//! `model_check` bench binary, which validates the predicted curve against
//! the measured Figure 4 sweep.

/// Closed-form chunk-size performance model.
#[derive(Clone, Copy, Debug)]
pub struct ChunkModel {
    /// ns of useful work per node (`1/seq_rate`).
    pub node_ns: f64,
    /// Fixed cost of one steal transfer (probe + request/response latency +
    /// transfer startup), ns.
    pub steal_latency_ns: f64,
    /// Marginal cost per stolen node (bandwidth term), ns.
    pub per_node_ns: f64,
    /// Fraction of all nodes that migrate between threads (workload +
    /// algorithm property; fitted).
    pub alpha: f64,
    /// Granularity-imbalance coefficient (fitted).
    pub beta: f64,
}

impl ChunkModel {
    /// Predicted relative communication overhead at chunk size `k`.
    pub fn comm_overhead(&self, k: f64) -> f64 {
        (self.alpha / k) * (self.steal_latency_ns + self.per_node_ns * k) / self.node_ns
    }

    /// Predicted relative imbalance cost at chunk size `k` for `p` threads
    /// over `n_nodes` total nodes.
    pub fn imbalance(&self, k: f64, p: f64, n_nodes: f64) -> f64 {
        self.beta * k * p / n_nodes
    }

    /// Predicted exploration rate (nodes/ns) at chunk size `k`.
    pub fn rate(&self, k: f64, p: f64, n_nodes: f64) -> f64 {
        let denom = 1.0 + self.comm_overhead(k) + self.imbalance(k, p, n_nodes);
        (p / self.node_ns) / denom
    }

    /// The closed-form optimal chunk size `k* = sqrt(αLN / (tβp))`.
    pub fn optimal_k(&self, p: f64, n_nodes: f64) -> f64 {
        (self.alpha * self.steal_latency_ns * n_nodes / (self.node_ns * self.beta * p)).sqrt()
    }

    /// Predicted number of steals at chunk size `k`.
    pub fn steals(&self, k: f64, n_nodes: f64) -> f64 {
        self.alpha * n_nodes / k
    }
}

/// Fit `α` from measured (chunk, steals) points: each transfer moves `k`
/// nodes, so `α ≈ mean(steals·k) / N`. Uses small-`k` points (where the 1/k
/// law holds best — at very large `k` transfers are limited by availability).
pub fn fit_alpha(points: &[(usize, u64)], n_nodes: u64) -> f64 {
    let take = points.len().clamp(1, 4);
    let mut sorted: Vec<&(usize, u64)> = points.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let s: f64 = sorted
        .iter()
        .take(take)
        .map(|&&(k, steals)| steals as f64 * k as f64)
        .sum();
    s / (take as f64 * n_nodes as f64)
}

/// Fit `β` from one measured rate at a large chunk size `k_big`, where the
/// imbalance term dominates: solve `rate = (p/t)/(1 + comm + βkp/N)` for β.
pub fn fit_beta(
    model_without_beta: &ChunkModel,
    k_big: f64,
    measured_rate_nodes_per_ns: f64,
    p: f64,
    n_nodes: f64,
) -> f64 {
    let ideal = p / model_without_beta.node_ns;
    let denom = ideal / measured_rate_nodes_per_ns;
    let residual = denom - 1.0 - model_without_beta.comm_overhead(k_big);
    (residual * n_nodes / (k_big * p)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChunkModel {
        ChunkModel {
            node_ns: 418.0,
            steal_latency_ns: 25_000.0,
            per_node_ns: 40.0,
            alpha: 0.05,
            beta: 2.0,
        }
    }

    #[test]
    fn interior_optimum_exists() {
        let m = model();
        let (p, n) = (256.0, 1.3e6);
        let k_star = m.optimal_k(p, n);
        assert!(k_star > 1.0 && k_star < 128.0, "k* = {k_star}");
        // The predicted rate at k* beats both extremes.
        let r_star = m.rate(k_star, p, n);
        assert!(r_star > m.rate(1.0, p, n));
        assert!(r_star > m.rate(256.0, p, n));
    }

    #[test]
    fn optimum_shifts_down_with_more_threads() {
        let m = model();
        let n = 1.3e6;
        assert!(m.optimal_k(1024.0, n) < m.optimal_k(64.0, n));
    }

    #[test]
    fn optimum_grows_with_latency_and_problem_size() {
        let m = model();
        let mut slow = m;
        slow.steal_latency_ns *= 4.0;
        assert!(slow.optimal_k(256.0, 1e6) > m.optimal_k(256.0, 1e6));
        assert!(m.optimal_k(256.0, 1e8) > m.optimal_k(256.0, 1e6));
    }

    #[test]
    fn overhead_monotone_decreasing_imbalance_increasing() {
        let m = model();
        let mut last_over = f64::INFINITY;
        let mut last_imb = 0.0;
        for k in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let over = m.comm_overhead(k);
            let imb = m.imbalance(k, 256.0, 1e6);
            assert!(over < last_over, "comm overhead must fall with k");
            assert!(imb > last_imb, "imbalance must grow with k");
            last_over = over;
            last_imb = imb;
        }
    }

    #[test]
    fn sensitivity_grows_with_threads() {
        // §4.2.1: "As more processors are used, performance is more
        // sensitive to chunk size." Measure the ratio of the peak rate to
        // the rate at 8× the optimal chunk: it must degrade more at high p.
        let m = model();
        let n = 1.3e6;
        let sensitivity = |p: f64| {
            let k_star = m.optimal_k(p, n);
            m.rate(k_star, p, n) / m.rate(8.0 * k_star, p, n)
        };
        assert!(sensitivity(1024.0) > sensitivity(64.0));
    }

    #[test]
    fn fit_alpha_recovers_inverse_k_law() {
        // Synthesize steals following steals = alpha*N/k exactly.
        let n = 1_000_000u64;
        let alpha = 0.08;
        let points: Vec<(usize, u64)> = [1usize, 2, 4, 8]
            .iter()
            .map(|&k| (k, (alpha * n as f64 / k as f64) as u64))
            .collect();
        let fitted = fit_alpha(&points, n);
        assert!((fitted - alpha).abs() < 0.005, "fitted {fitted}");
    }

    #[test]
    fn fit_beta_round_trip() {
        let mut m = model();
        let (p, n, k_big) = (256.0, 1.3e6, 64.0);
        let truth = m.rate(k_big, p, n);
        let beta0 = m.beta;
        m.beta = 0.0;
        let fitted = fit_beta(&m, k_big, truth, p, n);
        assert!(
            (fitted - beta0).abs() / beta0 < 1e-9,
            "fitted {fitted} vs {beta0}"
        );
    }

    #[test]
    fn predicted_steals_follow_inverse_k() {
        let m = model();
        let n = 1e6;
        assert!((m.steals(2.0, n) - m.steals(4.0, n) * 2.0).abs() < 1e-6);
    }
}
