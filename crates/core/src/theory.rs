//! Work-stealing theory checks: every deterministic run is a data point.
//!
//! The simulator's perfect observability (exact steal counts, exact
//! critical-path lengths, exact conservation accounting) turns this repo
//! into a falsification harness for work-stealing theory. This module
//! phrases two families of claims as per-run assertions:
//!
//! - **Steal bound** — for work stealing on rooted trees/DAGs, the number
//!   of *successful* steals is O(p·D) with `p` workers and critical-path
//!   length `D` (the classic Blumofe–Leiserson expectation; "Upper Bounds
//!   on Number of Steals in Rooted Trees", arxiv 1706.03184, gives the
//!   structural counterpart). The checked form is
//!   `successful_steals ≤ factor · p · D` with an explicit slack `factor`
//!   absorbing constants and the chunked-transfer protocol (one steal
//!   moves up to `k` chunks here, which only *lowers* the count).
//! - **Conservation** — every task executed exactly once on fault-free
//!   runs, at least once with accounted multiplicity under crash plans:
//!   `total − duplicates == expected`, and `duplicates == 0` without
//!   crash faults.
//!
//! [`check_run`] applies both to a [`RunReport`] and returns a typed
//! [`TheoryViolation`] instead of panicking, so harnesses decide whether a
//! violation is fatal (the `dag_sweep` binary fails its run) or the point
//! (the deliberately-broken-bound test in `tests/theory_bounds.rs`
//! demonstrates the asserter actually trips).

use crate::report::RunReport;
use crate::taskgen::TaskGen;

/// Default slack factor for the steal bound: generous enough that every
/// policy bundle on every workload family passes at the measured operating
/// points (see EXPERIMENTS.md E18), tight enough that a protocol regression
/// multiplying steal traffic by an order of magnitude trips it.
pub const DEFAULT_STEAL_FACTOR: f64 = 8.0;

/// The checked steal bound: `ceil(factor · p · depth)`, saturating.
pub fn steal_bound(threads: usize, depth: u64, factor: f64) -> u64 {
    let b = factor * threads as f64 * depth as f64;
    if b >= u64::MAX as f64 {
        u64::MAX
    } else {
        b.ceil() as u64
    }
}

/// What [`check_run`] verified, for harness reporting.
#[derive(Clone, Copy, Debug)]
pub struct TheorySummary {
    /// Expected task/node count (the sequential size).
    pub expected: u64,
    /// Successful steals observed.
    pub successful_steals: u64,
    /// Total steal attempts (successful + failed).
    pub steal_attempts: u64,
    /// Critical-path length used for the bound.
    pub depth: u64,
    /// The bound the steals were checked against.
    pub bound: u64,
}

/// A falsified claim. `Display` gives the full context for replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryViolation {
    /// Successful steals exceeded `factor · p · D`.
    StealBound {
        /// Successful steals observed.
        steals: u64,
        /// The bound that was exceeded.
        bound: u64,
        /// Worker count `p`.
        threads: usize,
        /// Critical-path length `D`.
        depth: u64,
    },
    /// `total − duplicates != expected`: work was lost (or double-counted
    /// beyond the multiplicity accounting).
    Conservation {
        /// Nodes the run explored.
        total: u64,
        /// Accounted duplicate explorations.
        duplicates: u64,
        /// The sequential size.
        expected: u64,
    },
    /// A crash-free run reported duplicate or recovered nodes — recovery
    /// machinery fired without a fault plan.
    SpuriousRecovery {
        /// Duplicates reported.
        duplicates: u64,
        /// Recovered nodes reported.
        recovered: u64,
    },
}

impl std::fmt::Display for TheoryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TheoryViolation::StealBound {
                steals,
                bound,
                threads,
                depth,
            } => write!(
                f,
                "steal bound violated: {steals} successful steals > bound {bound} \
                 (p={threads}, critical path D={depth})"
            ),
            TheoryViolation::Conservation {
                total,
                duplicates,
                expected,
            } => write!(
                f,
                "conservation violated: total {total} − duplicates {duplicates} \
                 != expected {expected}"
            ),
            TheoryViolation::SpuriousRecovery {
                duplicates,
                recovered,
            } => write!(
                f,
                "crash-free run reported {duplicates} duplicate and {recovered} \
                 recovered nodes — recovery fired without a fault plan"
            ),
        }
    }
}

impl std::error::Error for TheoryViolation {}

/// Check one run against the steal bound and conservation. `expected` is
/// the workload's sequential size; `depth` its critical-path length
/// (closed-form from the generator, or [`tree_depth`]); `crash` whether the
/// run's fault plan had a crash class (multiplicity is then allowed).
pub fn check_run(
    report: &RunReport,
    expected: u64,
    depth: u64,
    factor: f64,
    crash: bool,
) -> Result<TheorySummary, TheoryViolation> {
    if !crash && (report.duplicate_nodes > 0 || report.recovered_nodes > 0) {
        return Err(TheoryViolation::SpuriousRecovery {
            duplicates: report.duplicate_nodes,
            recovered: report.recovered_nodes,
        });
    }
    if report.total_nodes.checked_sub(report.duplicate_nodes) != Some(expected) {
        return Err(TheoryViolation::Conservation {
            total: report.total_nodes,
            duplicates: report.duplicate_nodes,
            expected,
        });
    }
    let bound = steal_bound(report.threads, depth, factor);
    if report.successful_steals > bound {
        return Err(TheoryViolation::StealBound {
            steals: report.successful_steals,
            bound,
            threads: report.threads,
            depth,
        });
    }
    Ok(TheorySummary {
        expected,
        successful_steals: report.successful_steals,
        steal_attempts: report.steal_attempts,
        depth,
        bound,
    })
}

/// Critical-path length (maximum root→leaf depth in tasks) of a tree
/// workload, by host traversal. For DAG workloads prefer the generator's
/// closed form ([`TaskGen::critical_path_len`]); this helper serves the
/// tree generators, which know their size but not their depth.
pub fn tree_depth<G: TaskGen>(gen: &G) -> u64 {
    let mut stack = vec![(gen.root(), 1u64)];
    let mut scratch = Vec::new();
    let mut deepest = 0;
    while let Some((node, d)) = stack.pop() {
        deepest = deepest.max(d);
        scratch.clear();
        gen.expand(&node, &mut scratch);
        stack.extend(scratch.iter().map(|&c| (c, d + 1)));
    }
    deepest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ThreadResult;
    use crate::taskgen::SyntheticGen;

    fn report(total: u64, dup: u64, recovered: u64, steals: u64, threads: usize) -> RunReport {
        RunReport {
            label: "test",
            machine: "smp",
            threads,
            chunk_size: 4,
            total_nodes: total,
            makespan_ns: 1,
            recovered_nodes: recovered,
            duplicate_nodes: dup,
            max_multiplicity: if dup > 0 { 2 } else { 1 },
            deaths: 0,
            evictions: 0,
            rejoins: 0,
            steal_attempts: steals + 3,
            successful_steals: steals,
            critical_path_len: 0,
            service: None,
            per_thread: vec![ThreadResult::default(); threads],
        }
    }

    #[test]
    fn clean_run_passes_and_summarises() {
        let r = report(100, 0, 0, 10, 4);
        let s = check_run(&r, 100, 5, 1.0, false).expect("clean run");
        assert_eq!(s.bound, 20);
        assert_eq!(s.successful_steals, 10);
        assert_eq!(s.steal_attempts, 13);
    }

    #[test]
    fn steal_bound_trips() {
        let r = report(100, 0, 0, 25, 4);
        let err = check_run(&r, 100, 5, 1.0, false).expect_err("25 > 20");
        assert_eq!(
            err,
            TheoryViolation::StealBound {
                steals: 25,
                bound: 20,
                threads: 4,
                depth: 5
            }
        );
        assert!(err.to_string().contains("steal bound"));
    }

    #[test]
    fn zero_factor_rejects_any_steal() {
        let r = report(10, 0, 0, 1, 2);
        assert!(matches!(
            check_run(&r, 10, 100, 0.0, false),
            Err(TheoryViolation::StealBound { bound: 0, .. })
        ));
    }

    #[test]
    fn conservation_trips_on_lost_work() {
        let r = report(95, 0, 0, 0, 2);
        let err = check_run(&r, 100, 5, 1.0, false).expect_err("lost 5");
        assert!(matches!(err, TheoryViolation::Conservation { .. }));
        assert!(err.to_string().contains("conservation"));
    }

    #[test]
    fn crash_runs_may_carry_multiplicity_but_not_lose_work() {
        let r = report(110, 10, 4, 2, 2);
        check_run(&r, 100, 5, 1.0, true).expect("total - dup == expected");
        let r = report(110, 5, 0, 2, 2);
        assert!(matches!(
            check_run(&r, 100, 5, 1.0, true),
            Err(TheoryViolation::Conservation { .. })
        ));
    }

    #[test]
    fn spurious_recovery_without_crash_trips() {
        let r = report(102, 2, 0, 0, 2);
        assert!(matches!(
            check_run(&r, 100, 5, 1.0, false),
            Err(TheoryViolation::SpuriousRecovery { .. })
        ));
    }

    #[test]
    fn tree_depth_of_synthetic_tree() {
        let g = SyntheticGen {
            branch: 2,
            depth: 6,
        };
        assert_eq!(tree_depth(&g), 7); // root at depth 1, leaves at depth 7
    }

    #[test]
    fn bound_saturates() {
        assert_eq!(steal_bound(usize::MAX, u64::MAX, 1e18), u64::MAX);
        assert_eq!(steal_bound(4, 5, 1.0), 20);
        assert_eq!(steal_bound(4, 0, 8.0), 0);
    }
}
