//! Run results: per-thread counters and the aggregated report with the
//! paper's headline metrics (nodes/sec, speedup, efficiency, steal rate,
//! working-state fraction).

use pgas::CommStats;

use crate::state::{N_STATES, State};
use crate::trace::{diffusion, Diffusion, Event, StealMatrix};

/// What one worker thread did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadResult {
    /// Tree nodes this thread explored.
    pub nodes: u64,
    /// Chunks released from local to shared region.
    pub releases: u64,
    /// Chunks moved back from shared to local region.
    pub reacquires: u64,
    /// Steal attempts that transferred work.
    pub steals_ok: u64,
    /// Steal attempts that failed (lost race / denied / emptied).
    pub steals_failed: u64,
    /// Chunks obtained by successful steals.
    pub chunks_stolen: u64,
    /// Victim probes (work_avail examinations or steal-request messages).
    pub probes: u64,
    /// Steal requests this thread serviced for others (distmem/mpi).
    pub requests_serviced: u64,
    /// Steal requests abandoned after the virtual-time timeout expired
    /// (0 unless `RunConfig::steal_timeout_ns` is armed).
    pub steal_timeouts: u64,
    /// Timeout retracts that withdrew the request before the victim saw it.
    pub retracts_won: u64,
    /// Timeout retracts that lost to a concurrent victim response (which was
    /// then consumed normally — never dropped).
    pub retracts_lost: u64,
    /// Steal attempts re-issued after a timeout.
    pub steal_retries: u64,
    /// Nanoseconds spent in post-timeout exponential backoff.
    pub timeout_backoff_ns: u64,
    /// Nanoseconds in each Figure-1 state.
    pub state_ns: [u64; N_STATES],
    /// State transitions taken.
    pub transitions: u64,
    /// Communication counters from the substrate.
    pub comm: CommStats,
    /// Traced events (empty unless `RunConfig::trace` was set).
    pub events: Vec<Event>,
    /// Global node total computed *in-band* by the end-of-run tree
    /// reduction (every thread must agree, and it must equal the host-side
    /// sum — the engine asserts both). Zero on crash-fault runs, which skip
    /// the collective (a dead rank cannot join it).
    pub reduced_total: u64,
    /// Nodes recovered through crash-recovery paths: adopted spills and
    /// re-injected lineage grants (always 0 without crash faults).
    pub recovered_nodes: u64,
    /// Whether this rank's scheduled crash fired (it spilled and exited).
    pub died: bool,
    /// Quorum evictions this rank executed (its vote completed the quorum;
    /// docs/faults.md §8). Always 0 without crash faults.
    pub evictions: u64,
    /// Times this rank re-entered as a new incarnation (fence rejoin after
    /// a gray stall / healed partition, or post-kill restart).
    pub rejoins: u64,
    /// Nodes this rank reclaimed from evicted ranks' shared regions via the
    /// transport scavenge pass.
    pub scavenged_nodes: u64,
    /// Inbound messages dropped because their incarnation stamp was below
    /// the sender's admissibility floor (zombie traffic fenced off).
    pub fenced_drops: u64,
    /// Fingerprints of every node explored, in order — recorded only on
    /// crash-fault runs, where the engine folds them into the
    /// conservation-with-multiplicity counters of [`RunReport`].
    pub explored: Vec<u64>,
    /// Submission epoch of every explored node, parallel to `explored` —
    /// recorded only on crash-fault *service* runs, where conservation is
    /// checked per epoch (see [`crate::service`]).
    pub explored_epoch: Vec<u32>,
    /// Service mode: epochs this rank's scanner declared quiescent, as
    /// `(epoch, completion virtual time)`. Empty outside service runs.
    pub svc_completions: Vec<(u32, u64)>,
    /// Service mode, rank 0 only: every injected request as
    /// `(epoch, scheduled arrival ns, actual injection ns)`.
    pub svc_injections: Vec<(u32, u64, u64)>,
    /// Service mode: nodes this rank explored per epoch (indexed by epoch;
    /// ragged — only as long as the highest epoch seen).
    pub svc_epoch_nodes: Vec<u64>,
    /// Service mode, rank 0 only: requests whose injection was deferred past
    /// their scheduled arrival because the admission window was full.
    pub svc_deferred: u64,
}

impl ThreadResult {
    /// Merge (for aggregate totals).
    pub fn merge(&mut self, o: &ThreadResult) {
        self.nodes += o.nodes;
        self.releases += o.releases;
        self.reacquires += o.reacquires;
        self.steals_ok += o.steals_ok;
        self.steals_failed += o.steals_failed;
        self.chunks_stolen += o.chunks_stolen;
        self.probes += o.probes;
        self.requests_serviced += o.requests_serviced;
        self.steal_timeouts += o.steal_timeouts;
        self.retracts_won += o.retracts_won;
        self.retracts_lost += o.retracts_lost;
        self.steal_retries += o.steal_retries;
        self.timeout_backoff_ns += o.timeout_backoff_ns;
        for i in 0..N_STATES {
            self.state_ns[i] += o.state_ns[i];
        }
        self.transitions += o.transitions;
        self.comm.merge(&o.comm);
        self.events.extend(o.events.iter().copied());
        self.reduced_total = self.reduced_total.max(o.reduced_total);
        self.recovered_nodes += o.recovered_nodes;
        self.died |= o.died;
        self.evictions += o.evictions;
        self.rejoins += o.rejoins;
        self.scavenged_nodes += o.scavenged_nodes;
        self.fenced_drops += o.fenced_drops;
        self.explored.extend(o.explored.iter().copied());
        self.explored_epoch.extend(o.explored_epoch.iter().copied());
        self.svc_completions.extend(o.svc_completions.iter().copied());
        self.svc_injections.extend(o.svc_injections.iter().copied());
        if self.svc_epoch_nodes.len() < o.svc_epoch_nodes.len() {
            self.svc_epoch_nodes.resize(o.svc_epoch_nodes.len(), 0);
        }
        for (i, &v) in o.svc_epoch_nodes.iter().enumerate() {
            self.svc_epoch_nodes[i] += v;
        }
        self.svc_deferred += o.svc_deferred;
    }
}

/// Aggregated result of a parallel run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm label (paper Figure 3).
    pub label: &'static str,
    /// Platform name.
    pub machine: &'static str,
    /// Threads used.
    pub threads: usize,
    /// Chunk size `k`.
    pub chunk_size: usize,
    /// Total nodes explored (must equal the sequential count).
    pub total_nodes: u64,
    /// Makespan in ns: virtual on sim, wall-clock on native.
    pub makespan_ns: u64,
    /// Nodes recovered through crash-recovery paths (adopted spills plus
    /// re-injected grants). Always 0 without crash faults.
    pub recovered_nodes: u64,
    /// Nodes explored more than once (sum over fingerprints of
    /// `multiplicity - 1`): the duplication cost of at-least-once recovery.
    /// Always 0 without crash faults.
    pub duplicate_nodes: u64,
    /// Largest per-node exploration multiplicity observed (1 = every node
    /// explored exactly once; always 1 on crash-free runs).
    pub max_multiplicity: u64,
    /// Ranks whose scheduled crash fired during the run.
    pub deaths: usize,
    /// Quorum evictions executed during the run (one per evicted tenant;
    /// docs/faults.md §8). Always 0 without crash faults.
    pub evictions: u64,
    /// Incarnation rejoins during the run (fence re-entries plus post-kill
    /// restarts).
    pub rejoins: u64,
    /// Total steal attempts across all threads (successful + failed) — the
    /// numerator of the theory layer's contention metrics.
    pub steal_attempts: u64,
    /// Steal attempts that transferred work, summed across threads. Always
    /// equals [`RunReport::total_steals`]; stored as a field so the theory
    /// checks ([`crate::theory`]) and CSV writers read it uniformly.
    pub successful_steals: u64,
    /// Critical-path length `D` of the workload (weighted longest
    /// root→sink path), when the generator knows it
    /// ([`crate::taskgen::TaskGen::critical_path_len`]); 0 when unknown.
    /// The O(p·D) steal bound in [`crate::theory`] checks against it.
    pub critical_path_len: u64,
    /// Service-mode results (per-request latencies, tail histogram) — `None`
    /// on batch runs; see [`crate::service::run_service_sim`].
    pub service: Option<crate::service::ServiceReport>,
    /// Per-thread details.
    pub per_thread: Vec<ThreadResult>,
}

impl RunReport {
    /// Exploration rate in nodes per second of makespan.
    pub fn nodes_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.total_nodes as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Speedup versus a sequential explorer running at `seq_rate` nodes/sec
    /// (paper §4: speedup = T_seq / T_par with T_seq = nodes / seq rate).
    pub fn speedup(&self, seq_rate: f64) -> f64 {
        let t_seq = self.total_nodes as f64 / seq_rate;
        let t_par = self.makespan_ns as f64 / 1e9;
        if t_par == 0.0 {
            return 0.0;
        }
        t_seq / t_par
    }

    /// Parallel efficiency: speedup / threads.
    pub fn efficiency(&self, seq_rate: f64) -> f64 {
        self.speedup(seq_rate) / self.threads as f64
    }

    /// Total successful steals.
    pub fn total_steals(&self) -> u64 {
        self.per_thread.iter().map(|t| t.steals_ok).sum()
    }

    /// Steals per second of makespan (the paper's ">85,000 total load
    /// balancing operations per second" metric).
    pub fn steals_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.total_steals() as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Fraction of total thread-time spent in a given state.
    pub fn state_fraction(&self, s: State) -> f64 {
        let mut in_state = 0u64;
        let mut total = 0u64;
        for t in &self.per_thread {
            in_state += t.state_ns[s as usize];
            total += t.state_ns.iter().sum::<u64>();
        }
        if total == 0 {
            0.0
        } else {
            in_state as f64 / total as f64
        }
    }

    /// §6.2's "efficiency of threads in the working state": the ratio of
    /// useful work time to time spent in the Working state (the shortfall is
    /// steal-request servicing and release/reacquire overhead).
    pub fn working_state_efficiency(&self) -> f64 {
        let mut useful = 0u64;
        let mut working = 0u64;
        for t in &self.per_thread {
            useful += t.comm.work_ns;
            working += t.state_ns[State::Working as usize];
        }
        if working == 0 {
            0.0
        } else {
            useful as f64 / working as f64
        }
    }

    /// Aggregate of every per-thread result.
    pub fn totals(&self) -> ThreadResult {
        let mut acc = ThreadResult::default();
        for t in &self.per_thread {
            acc.merge(t);
        }
        acc
    }

    /// Per-thread event logs (empty unless tracing was enabled).
    pub fn event_logs(&self) -> Vec<Vec<Event>> {
        self.per_thread.iter().map(|t| t.events.clone()).collect()
    }

    /// Work-diffusion analysis over the traced events.
    pub fn diffusion(&self) -> Diffusion {
        diffusion(&self.event_logs())
    }

    /// Thief/victim steal-count matrix over the traced events.
    pub fn steal_matrix(&self) -> StealMatrix {
        StealMatrix::new(&self.event_logs())
    }

    /// One-line summary for harness output.
    pub fn summary_row(&self, seq_rate: f64) -> String {
        format!(
            "{:<16} p={:<5} k={:<4} nodes={:<10} t={:>9.4}s rate={:>8.3} Mn/s speedup={:>8.2} eff={:>5.1}% steals={:<7} steals/s={:>9.0}",
            self.label,
            self.threads,
            self.chunk_size,
            self.total_nodes,
            self.makespan_ns as f64 / 1e9,
            self.nodes_per_sec() / 1e6,
            self.speedup(seq_rate),
            100.0 * self.efficiency(seq_rate),
            self.total_steals(),
            self.steals_per_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(nodes: u64, makespan: u64, threads: usize) -> RunReport {
        RunReport {
            label: "test",
            machine: "smp",
            threads,
            chunk_size: 8,
            total_nodes: nodes,
            makespan_ns: makespan,
            recovered_nodes: 0,
            duplicate_nodes: 0,
            max_multiplicity: 1,
            deaths: 0,
            evictions: 0,
            rejoins: 0,
            steal_attempts: 0,
            successful_steals: 0,
            critical_path_len: 0,
            service: None,
            per_thread: vec![ThreadResult::default(); threads],
        }
    }

    #[test]
    fn rate_speedup_efficiency() {
        // 1e6 nodes in 0.1 s → 10 Mnodes/s; at seq rate 1 Mnode/s the
        // sequential time is 1 s → speedup 10; on 16 threads eff = 62.5%.
        let r = report_with(1_000_000, 100_000_000, 16);
        assert!((r.nodes_per_sec() - 1e7).abs() < 1.0);
        assert!((r.speedup(1e6) - 10.0).abs() < 1e-9);
        assert!((r.efficiency(1e6) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn steal_rate() {
        let mut r = report_with(100, 2_000_000_000, 2);
        r.per_thread[0].steals_ok = 30;
        r.per_thread[1].steals_ok = 10;
        assert_eq!(r.total_steals(), 40);
        assert!((r.steals_per_sec() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn state_fraction_sums_to_one() {
        let mut r = report_with(1, 1, 2);
        r.per_thread[0].state_ns = [70, 10, 10, 10];
        r.per_thread[1].state_ns = [50, 30, 10, 10];
        let sum: f64 = [
            State::Working,
            State::Searching,
            State::Stealing,
            State::Terminating,
        ]
        .iter()
        .map(|&s| r.state_fraction(s))
        .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((r.state_fraction(State::Working) - 120.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn working_state_efficiency_ratio() {
        let mut r = report_with(1, 1, 1);
        r.per_thread[0].state_ns = [100, 0, 0, 0];
        r.per_thread[0].comm.work_ns = 93;
        assert!((r.working_state_efficiency() - 0.93).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let r = report_with(10, 0, 1);
        assert_eq!(r.nodes_per_sec(), 0.0);
        assert_eq!(r.steals_per_sec(), 0.0);
        assert_eq!(r.speedup(1e6), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ThreadResult {
            nodes: 5,
            steals_ok: 1,
            state_ns: [1, 2, 3, 4],
            ..Default::default()
        };
        let b = ThreadResult {
            nodes: 7,
            steals_failed: 2,
            state_ns: [10, 20, 30, 40],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 12);
        assert_eq!(a.steals_ok, 1);
        assert_eq!(a.steals_failed, 2);
        assert_eq!(a.state_ns, [11, 22, 33, 44]);
    }
}
