//! The lock-based work-stealing algorithm family.
//!
//! One parameterised implementation covers three of the paper's labels,
//! mirroring its refinement chain:
//!
//! - `upc-sharedmem` (§3.1) = locked stack + **cancelable barrier** + steal 1
//! - `upc-term` (§3.3.1)    = locked stack + **streamlined termination** + steal 1
//! - `upc-term-rapdif` (§3.3.2) = locked stack + streamlined termination +
//!   **steal half**
//!
//! The shared region's counters (`WORK_AVAIL`, `STEAL_BASE`, `RESERVED`) are
//! the ground truth and are read/updated **under the victim's stack lock**
//! by owner and thieves alike; chunk payloads are moved with one-sided bulk
//! transfers *outside* the critical section ("the reserved chunk is
//! transferred outside of the critical region to minimize the time that the
//! stack is locked", §3.1), with a fetch-add acknowledgement so the owner
//! never reclaims a region a thief is still copying.

use pgas::Comm;

use crate::barrier::{BarrierOutcome, CancelableBarrier, TerminationBarrier, BARRIER_BACKOFF_NS};
use crate::config::RunConfig;
use crate::probe::ProbeOrder;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;
use crate::vars;
use crate::watchdog::Watchdog;

/// Termination-detection style (the §3.1 → §3.3.1 refinement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationStyle {
    /// Cancelable barrier, reset on every release (§3.1).
    Cancelable,
    /// Full-cycle entry condition + in-barrier probing + tree announcement
    /// (§3.3.1).
    Streamlined,
}

/// How many chunks a thief takes (the §3.3.2 refinement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealAmount {
    /// One chunk per steal (§3.1).
    One,
    /// Half the available chunks, or one if only one is there (§3.3.2).
    Half,
}

/// Run the locked worker on this thread; returns its counters.
pub fn run<G, C>(
    comm: &mut C,
    gen: &G,
    cfg: &RunConfig,
    term_style: TerminationStyle,
    steal_amount: StealAmount,
) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let k = cfg.chunk_size;
    let mut stack: DfsStack<G::Task> = DfsStack::new(k);
    let mut probe = ProbeOrder::flat(me, n, cfg.seed);
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------- Working (Fig. 1)
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        loop {
            if stack.is_local_empty() {
                if !reacquire(comm, &mut stack, &mut res) {
                    break; // truly out of work
                }
                continue;
            }
            let node = stack.pop().expect("nonempty local region");
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            if stack.should_release(cfg.release_depth) {
                release(comm, &mut stack, &mut res);
                log.release(comm.now());
                if term_style == TerminationStyle::Cancelable {
                    // §3.1: every release resets the cancelable barrier so
                    // that waiting threads come back for the fresh chunk.
                    CancelableBarrier::cancel(comm);
                }
            }
        }
        // Out of work entirely: publish the tri-state marker.
        set_out_of_work(comm, me);

        // --------------------------------------- Work Discovery + Stealing
        { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        loop {
            let mut all_out = true;
            for v in probe.cycle() {
                res.probes += 1;
                // §3.1: "the count of available work on a stack is examined
                // without locking".
                let avail = comm.get(v, vars::WORK_AVAIL);
                if avail > 0 {
                    { let now = comm.now(); clock.transition(State::Stealing, now); log.enter(State::Stealing, now); }
                    if steal(comm, &mut stack, v, steal_amount, &mut res, &mut log) {
                        comm.put(me, vars::WORK_AVAIL, 0);
                        continue 'outer;
                    }
                    { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                    all_out = false; // it had work a moment ago
                } else if avail == 0 {
                    all_out = false; // working, no surplus (§3.3.1 tri-state)
                }
            }

            match term_style {
                TerminationStyle::Cancelable => {
                    // §3.1: enter the barrier after any unsuccessful sweep.
                    { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
                    match CancelableBarrier::wait(comm) {
                        BarrierOutcome::Terminated => break 'outer,
                        BarrierOutcome::Canceled => {
                            { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                        }
                    }
                }
                TerminationStyle::Streamlined => {
                    if !all_out {
                        // §3.3.1: "If it finds even a single thread still
                        // working, it continues searching for work and does
                        // not enter the barrier."
                        continue;
                    }
                    { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
                    if streamlined_wait(comm, &mut stack, &mut probe, steal_amount, &mut res, &mut log) {
                        break 'outer;
                    }
                    // Stole work from inside the barrier: back to work.
                    comm.put(me, vars::WORK_AVAIL, 0);
                    continue 'outer;
                }
            }
        }
    }

    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

/// Publish "no work at all" (§3.3.1's distinct value), under the stack lock
/// so it cannot race with a thief's reservation of our last chunk.
fn set_out_of_work<T: pgas::comm::Item, C: Comm<T>>(comm: &mut C, me: usize) {
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL);
    debug_assert!(avail <= 0, "going idle with stealable work");
    comm.put(me, vars::WORK_AVAIL, vars::OUT_OF_WORK);
    comm.unlock(me, vars::STACK_LOCK);
}

/// Move the oldest `k` local nodes into our shared region (§3.1 `release()`).
fn release<T, C, >(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: pgas::comm::Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let chunk = stack.take_bottom_chunk();
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL).max(0) as usize;
    let base = comm.get(me, vars::STEAL_BASE) as usize;
    comm.area_write(me, (base + avail) * stack.k, &chunk);
    comm.put(me, vars::WORK_AVAIL, (avail + 1) as i64);
    // Opportunistic compaction happens in reacquire when the region drains.
    comm.unlock(me, vars::STACK_LOCK);
    res.releases += 1;
}

/// Move the newest shared chunk back to the local region (§3.1
/// `reacquire()`). Returns false if the shared region is empty.
fn reacquire<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult) -> bool
where
    T: pgas::comm::Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL).max(0) as usize;
    if avail == 0 {
        // Reclaim dead area space if every granted chunk has been copied out.
        let reserved = comm.get(me, vars::RESERVED);
        let acked = comm.get(me, vars::ACK);
        if reserved == acked && comm.get(me, vars::STEAL_BASE) > 0 {
            comm.put(me, vars::STEAL_BASE, 0);
            comm.area_truncate(me, 0);
        }
        comm.unlock(me, vars::STACK_LOCK);
        return false;
    }
    let base = comm.get(me, vars::STEAL_BASE) as usize;
    let mut buf = Vec::with_capacity(stack.k);
    comm.area_read(me, (base + avail - 1) * stack.k, stack.k, &mut buf);
    comm.put(me, vars::WORK_AVAIL, (avail - 1) as i64);
    comm.unlock(me, vars::STACK_LOCK);
    stack.push_all(&buf);
    res.reacquires += 1;
    true
}

/// §3.1 `steal()`: lock the victim's stack, re-check availability, reserve,
/// unlock, then transfer one-sidedly outside the critical section.
fn steal<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    victim: usize,
    amount: StealAmount,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: pgas::comm::Item,
    C: Comm<T>,
{
    let k = stack.k;
    comm.lock(victim, vars::STACK_LOCK);
    let avail = comm.get(victim, vars::WORK_AVAIL);
    if avail <= 0 {
        // "a subsequent steal() operation may not succeed if in the interim
        // the state has changed" (§3.1).
        comm.unlock(victim, vars::STACK_LOCK);
        res.steals_failed += 1;
        log.steal_fail(victim, comm.now());
        return false;
    }
    let take = match amount {
        StealAmount::One => 1usize,
        StealAmount::Half => DfsStack::<T>::steal_half_amount(avail as usize),
    };
    let base = comm.get(victim, vars::STEAL_BASE) as usize;
    comm.put(victim, vars::STEAL_BASE, (base + take) as i64);
    comm.put(victim, vars::WORK_AVAIL, avail - take as i64);
    let reserved = comm.get(victim, vars::RESERVED);
    comm.put(victim, vars::RESERVED, reserved + take as i64);
    comm.unlock(victim, vars::STACK_LOCK);

    // One-sided transfer outside the lock; the victim keeps working.
    let mut buf = Vec::with_capacity(take * k);
    comm.area_read(victim, base * k, take * k, &mut buf);
    comm.add(victim, vars::ACK, take as i64);
    stack.push_all(&buf);
    res.steals_ok += 1;
    res.chunks_stolen += take as u64;
    log.steal_ok(victim, take as u64, comm.now());
    true
}

/// §3.3.1 in-barrier behaviour: spin on our local flag, probing a single
/// victim per iteration; leave the barrier to steal if one shows work.
/// Returns `true` on termination, `false` if we stole work and left.
fn streamlined_wait<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    probe: &mut ProbeOrder,
    amount: StealAmount,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: pgas::comm::Item,
    C: Comm<T>,
{
    if TerminationBarrier::enter(comm) {
        TerminationBarrier::announce_root(comm);
    }
    let mut dog = Watchdog::new("streamlined termination barrier");
    loop {
        dog.tick();
        if TerminationBarrier::term_seen(comm) {
            TerminationBarrier::propagate(comm);
            return true;
        }
        // "each thread that has entered the barrier only inspects one other
        // thread to avoid overwhelming the remaining working threads".
        if let Some(v) = probe.one() {
            res.probes += 1;
            if comm.get(v, vars::WORK_AVAIL) > 0 {
                TerminationBarrier::leave(comm);
                if steal(comm, stack, v, amount, res, log) {
                    return false;
                }
                if TerminationBarrier::enter(comm) {
                    TerminationBarrier::announce_root(comm);
                }
                // Seeing (even losing) work is observable progress.
                dog.reset();
            }
        }
        comm.advance_idle(BARRIER_BACKOFF_NS);
    }
}
