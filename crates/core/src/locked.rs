//! The lock-protected shared-stack transport (§3.1).
//!
//! The foundation of three of the paper's labels, now expressed as policy
//! bundles over this one transport (see [`crate::sched::bundle`]):
//!
//! - `upc-sharedmem` (§3.1) = locked stack + **cancelable barrier** + steal 1
//! - `upc-term` (§3.3.1)    = locked stack + **streamlined termination** + steal 1
//! - `upc-term-rapdif` (§3.3.2) = locked stack + streamlined termination +
//!   **steal half**
//!
//! The shared region's counters (`WORK_AVAIL`, `STEAL_BASE`, `RESERVED`) are
//! the ground truth and are read/updated **under the victim's stack lock**
//! by owner and thieves alike; chunk payloads are moved with one-sided bulk
//! transfers *outside* the critical section ("the reserved chunk is
//! transferred outside of the critical region to minimize the time that the
//! stack is locked", §3.1), with a fetch-add acknowledgement so the owner
//! never reclaims a region a thief is still copying.

use pgas::comm::Item;
use pgas::Comm;

use crate::report::ThreadResult;
use crate::sched::policy::{StealPolicy, StealPolicyKind};
use crate::sched::{Cx, StealOutcome, StealTransport};
use crate::stack::DfsStack;
use crate::trace::TraceLog;
use crate::vars;

/// §3.1's lock-protected shared stack region as a [`StealTransport`]:
/// every counter access goes through the victim's stack lock, steals
/// reserve under that lock and transfer outside it.
#[derive(Clone, Copy, Debug)]
pub struct LockedTransport {
    sp: StealPolicyKind,
}

impl LockedTransport {
    /// A locked transport granting chunks per the given steal policy.
    pub fn new(sp: StealPolicyKind) -> LockedTransport {
        LockedTransport { sp }
    }
}

impl<T: Item, C: Comm<T>> StealTransport<T, C> for LockedTransport {
    const NAME: &'static str = "locked";
    const BARRIER_WATCHDOG: &'static str = "streamlined termination barrier";

    fn refill(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        reacquire(comm, stack, &mut cx.res)
    }

    fn maybe_release(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        if !stack.should_release(cx.cfg.release_depth) {
            return false;
        }
        release(comm, stack, &mut cx.res);
        cx.log.release(comm.now());
        true
    }

    fn on_out_of_work(&mut self, comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {
        set_out_of_work(comm, comm.my_id());
    }

    fn probe(&mut self, comm: &mut C, victim: usize) -> i64 {
        // §3.1: "the count of available work on a stack is examined without
        // locking".
        comm.get(victim, vars::WORK_AVAIL)
    }

    fn steal(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        victim: usize,
        cx: &mut Cx,
    ) -> StealOutcome {
        if steal(comm, stack, victim, self.sp, &mut cx.res, &mut cx.log) {
            StealOutcome::Got
        } else {
            StealOutcome::Denied
        }
    }

    fn got_work(&mut self, comm: &mut C) {
        comm.put(comm.my_id(), vars::WORK_AVAIL, 0);
    }

    fn scavenge(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        victim: usize,
        cx: &mut Cx,
    ) -> u64 {
        // Reclaim everything the evicted rank still advertises in its
        // shared region, exactly like a steal of all available chunks —
        // under the victim's stack lock so this cannot race another thief.
        // Try-lock, never lock: a zombie frozen *while holding its own
        // stack lock* would deadlock the executor; if the lock is busy we
        // leave the work fenced with the zombie, which self-drains it after
        // the thaw (multiplicity-safe either way).
        if !comm.try_lock(victim, vars::STACK_LOCK) {
            return 0;
        }
        let avail = comm.get(victim, vars::WORK_AVAIL);
        if avail <= 0 {
            comm.unlock(victim, vars::STACK_LOCK);
            return 0;
        }
        let take = avail as usize;
        let base = comm.get(victim, vars::STEAL_BASE) as usize;
        comm.put(victim, vars::STEAL_BASE, (base + take) as i64);
        comm.put(victim, vars::WORK_AVAIL, vars::OUT_OF_WORK);
        let reserved = comm.get(victim, vars::RESERVED);
        comm.put(victim, vars::RESERVED, reserved + take as i64);
        comm.unlock(victim, vars::STACK_LOCK);
        let mut buf = Vec::with_capacity(take * stack.k);
        comm.area_read(victim, base * stack.k, take * stack.k, &mut buf);
        comm.add(victim, vars::ACK, take as i64);
        let items = buf.len() as u64;
        stack.push_all(&buf);
        cx.res.chunks_stolen += take as u64;
        items
    }

    fn deathbed(&mut self, comm: &mut C, stack: &mut DfsStack<T>, _cx: &mut Cx) {
        // Fold every chunk still advertised in our shared region back into
        // the local deque, under the lock so no thief reserves concurrently,
        // and retire the region. Chunks already reserved by thieves stay in
        // the area untouched (the spill appends past them), so an in-flight
        // one-sided copy still reads valid data.
        let me = comm.my_id();
        comm.lock(me, vars::STACK_LOCK);
        let avail = comm.get(me, vars::WORK_AVAIL).max(0) as usize;
        let mut buf = Vec::with_capacity(avail * stack.k);
        if avail > 0 {
            let base = comm.get(me, vars::STEAL_BASE) as usize;
            comm.area_read(me, base * stack.k, avail * stack.k, &mut buf);
        }
        comm.put(me, vars::WORK_AVAIL, vars::OUT_OF_WORK);
        comm.unlock(me, vars::STACK_LOCK);
        stack.push_all(&buf);
    }
}

/// Publish "no work at all" (§3.3.1's distinct value), under the stack lock
/// so it cannot race with a thief's reservation of our last chunk.
fn set_out_of_work<T: Item, C: Comm<T>>(comm: &mut C, me: usize) {
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL);
    debug_assert!(avail <= 0, "going idle with stealable work");
    comm.put(me, vars::WORK_AVAIL, vars::OUT_OF_WORK);
    comm.unlock(me, vars::STACK_LOCK);
}

/// Move the oldest `k` local nodes into our shared region (§3.1 `release()`).
fn release<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let chunk = stack.take_bottom_chunk();
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL).max(0) as usize;
    let base = comm.get(me, vars::STEAL_BASE) as usize;
    comm.area_write(me, (base + avail) * stack.k, &chunk);
    comm.put(me, vars::WORK_AVAIL, (avail + 1) as i64);
    // Opportunistic compaction happens in reacquire when the region drains.
    comm.unlock(me, vars::STACK_LOCK);
    res.releases += 1;
}

/// Move the newest shared chunk back to the local region (§3.1
/// `reacquire()`). Returns false if the shared region is empty.
fn reacquire<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    comm.lock(me, vars::STACK_LOCK);
    let avail = comm.get(me, vars::WORK_AVAIL).max(0) as usize;
    if avail == 0 {
        // Reclaim dead area space if every granted chunk has been copied out.
        let reserved = comm.get(me, vars::RESERVED);
        let acked = comm.get(me, vars::ACK);
        if reserved == acked && comm.get(me, vars::STEAL_BASE) > 0 {
            comm.put(me, vars::STEAL_BASE, 0);
            comm.area_truncate(me, 0);
        }
        comm.unlock(me, vars::STACK_LOCK);
        return false;
    }
    let base = comm.get(me, vars::STEAL_BASE) as usize;
    let mut buf = Vec::with_capacity(stack.k);
    comm.area_read(me, (base + avail - 1) * stack.k, stack.k, &mut buf);
    comm.put(me, vars::WORK_AVAIL, (avail - 1) as i64);
    comm.unlock(me, vars::STACK_LOCK);
    stack.push_all(&buf);
    res.reacquires += 1;
    true
}

/// §3.1 `steal()`: lock the victim's stack, re-check availability, reserve
/// the policy's amount, unlock, then transfer one-sidedly outside the
/// critical section.
fn steal<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    victim: usize,
    sp: StealPolicyKind,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let k = stack.k;
    comm.lock(victim, vars::STACK_LOCK);
    let avail = comm.get(victim, vars::WORK_AVAIL);
    if avail <= 0 {
        // "a subsequent steal() operation may not succeed if in the interim
        // the state has changed" (§3.1).
        comm.unlock(victim, vars::STACK_LOCK);
        res.steals_failed += 1;
        log.steal_fail(victim, comm.now());
        return false;
    }
    let take = sp.amount(avail as usize);
    debug_assert!(take >= 1 && take <= avail as usize, "policy broke its contract");
    let base = comm.get(victim, vars::STEAL_BASE) as usize;
    comm.put(victim, vars::STEAL_BASE, (base + take) as i64);
    comm.put(victim, vars::WORK_AVAIL, avail - take as i64);
    let reserved = comm.get(victim, vars::RESERVED);
    comm.put(victim, vars::RESERVED, reserved + take as i64);
    comm.unlock(victim, vars::STACK_LOCK);

    // One-sided transfer outside the lock; the victim keeps working.
    let mut buf = Vec::with_capacity(take * k);
    comm.area_read(victim, base * k, take * k, &mut buf);
    comm.add(victim, vars::ACK, take as i64);
    stack.push_all(&buf);
    res.steals_ok += 1;
    res.chunks_stolen += take as u64;
    log.steal_ok(victim, take as u64, comm.now());
    true
}
