//! Layout of each thread's partition of the global address space.
//!
//! In the UPC sources these are shared variables declared with affinity to
//! each thread; here they are indices into the per-thread scalar cells and
//! locks of the [`pgas`] substrate.

/// `work_avail` (§3.3.1): number of stealable chunks in this thread's shared
/// region, or [`OUT_OF_WORK`] when the thread has no work at all. The
/// tri-state reading ("working threads with no surplus work" = 0 vs
/// "threads with no work at all" = -1) is what the streamlined termination
/// detector relies on.
pub const WORK_AVAIL: usize = 0;
/// Steal-request cell (§3.3.3): a thief CASes its id here; [`NO_REQUEST`]
/// when free. Affinity: the victim, so the victim's poll is a local read.
pub const REQUEST: usize = 1;
/// Response cell (§3.3.3): the victim writes the granted chunk count here.
/// Affinity: the *thief*, so the thief's wait-spin is a local read.
/// [`RESP_PENDING`] while waiting.
pub const RESP_AMT: usize = 2;
/// Response cell: offset (in items) of the granted region in the victim's
/// area. Affinity: the thief. Must be written *before* `RESP_AMT`.
pub const RESP_OFFSET: usize = 3;
/// Per-thread termination flag, set by the tree-based announcement (§3.3.1)
/// or by the cancelable-barrier owner (§3.1). Spinning on one's own flag is
/// a local read.
pub const TERM: usize = 4;
/// Barrier occupancy count. Affinity: thread 0.
pub const BARRIER_COUNT: usize = 5;
/// Cancelable-barrier epoch (§3.1): bumped by every releasing thread to
/// kick waiters out of the barrier. Affinity: thread 0.
pub const CANCEL_EPOCH: usize = 6;
/// Index (in items) of the first live chunk of the shared region (steals
/// are served oldest-first from here). Owner-maintained for the lock-less
/// variant; lock-protected for the locked variants.
pub const STEAL_BASE: usize = 7;
/// Cumulative chunks fully copied out by thieves (each thief fetch-adds
/// after its one-sided get completes); the owner may only reclaim area
/// space when this equals its own cumulative grant count.
pub const ACK: usize = 8;
/// Cumulative chunks granted/reserved (locked variants keep it shared so
/// thieves can reserve under lock; the lock-less owner keeps it private).
pub const RESERVED: usize = 9;

// ---- Crash-recovery cells (docs/faults.md "Crash faults and recovery").
// Only ever written when the active FaultPlan has a crash class enabled;
// fault-free runs never touch them, preserving bit-identity.

/// Quiescence marker: 1 while this rank is out of work (parked in crash-mode
/// work discovery, or dead), 0 while it holds work. Written by the owner
/// only; rank 0's quiescence scan reads it.
pub const Q_OUT: usize = 10;
/// Work-acquisition epoch: bumped by the owner every time it transitions
/// out → working. Rank 0's double scan declares termination only when two
/// consecutive quiescent scans observe identical epoch vectors.
pub const EPOCH: usize = 11;
/// In-flight work marker: number of acquisitions/grants chargeable to this
/// rank that quiescence must wait out (a thief mid-steal, a donor with
/// unacknowledged WORK grants). Termination requires 0 everywhere.
pub const LIN_OUT: usize = 12;
/// Lease heartbeat: last virtual time the rank proved liveness (throttled
/// own-cell put piggybacked on polls and idle loops).
pub const HEARTBEAT: usize = 13;
/// Death flag: the dying rank's last write, after its spill is published.
/// Survivors confirm a stale heartbeat against this cell.
pub const DEAD: usize = 14;
/// Item offset of the dead rank's spilled work in its area.
pub const SPILL_OFF: usize = 15;
/// Item count of the dead rank's spilled work (0 = died empty-handed).
pub const SPILL_LEN: usize = 16;
/// Adoption ticket for the spill: survivors CAS `0 → 1 + me`; exactly one
/// wins and re-injects the orphaned work.
pub const ADOPT: usize = 17;

// ---- Fenced-membership cells (docs/faults.md §8). Only ever written when
// the active FaultPlan has a crash class enabled.

/// Incarnation number of the rank currently (or last) operating this
/// partition: starts at 0, bumped by the owner on every rejoin/restart.
/// Survivors read it to re-admit an evicted rank under a new incarnation.
pub const INCARNATION: usize = 18;
/// Quorum eviction ballot, packed `(suspected_incarnation << 32) | votes`:
/// suspecting ranks CAS the vote count up; the voter whose CAS reaches
/// `quorum(n)` becomes the eviction executor.
pub const EVICT_VOTES: usize = 19;
/// Eviction fence: `1 + incarnation` of the evicted tenant, written by the
/// eviction executor *before* scavenging. A zombie resuming from a gray
/// stall or healed partition reads its own cell, sees its incarnation
/// fenced, and must re-enter as a new incarnation (or stay dead).
pub const EVICTED: usize = 20;

// ---- Service-mode cells (docs/service.md). Only ever written by
// service-mode runs (`run_service_sim`); batch runs never touch them.

/// Service shutdown flag: rank 0 broadcasts 1 once every request has been
/// injected *and* detected complete. Workers poll their own copy locally.
pub const SVC_TERM: usize = 21;
/// Admission window: how many epochs may be in flight at once. Epoch `e`
/// shares its cells with epochs `e ± SVC_WINDOW`, so injection of `e` waits
/// until `e - SVC_WINDOW` is declared complete.
pub const SVC_WINDOW: usize = 16;
/// Rank-0 done board, [`SVC_WINDOW`] cells: scanners write `epoch + 1` into
/// slot `epoch % SVC_WINDOW` when they declare that epoch quiescent.
pub const SVC_DONE_BASE: usize = SVC_TERM + 1;
/// Per-rank scan assignment board, [`SVC_WINDOW`] cells: rank 0 writes
/// `epoch + 1` into slot `epoch % SVC_WINDOW` of the scanner rank it
/// assigns that epoch to (normally `epoch % n`, reassigned on death).
pub const SVC_ASSIGN_BASE: usize = SVC_DONE_BASE + SVC_WINDOW;
/// Per-rank per-epoch accounting cells, [`SVC_WINDOW`] slots: slot
/// `epoch % SVC_WINDOW` holds this rank's packed
/// `(write-count, biased task deficit)` for that epoch residue class — see
/// `service::SvcAccount` for the packing and the snapshot argument.
pub const SVC_SLOT_BASE: usize = SVC_ASSIGN_BASE + SVC_WINDOW;

/// Base of the block of cells reserved for the end-of-run collective
/// reduction (the `upc_all_reduce` analog that combines per-thread node
/// counts, as in the original UTS sources).
pub const COLL_BASE: usize = SVC_SLOT_BASE + SVC_WINDOW;

/// Number of scalar cells the algorithms need per thread.
pub const N_SCALARS: usize = COLL_BASE + pgas::collectives::COLLECTIVE_CELLS;

/// Base of the per-workload cell block, allocated *above* the fixed
/// protocol layout when the workload asks for it
/// ([`crate::taskgen::TaskGen::extra_scalars`]). DAG workloads stripe task
/// `t`'s pending-dependency count-up cell to rank `t mod p`, slot
/// `DAG_BASE + t div p` (see `crate::workload`). Tree workloads request no
/// extra cells and never touch this region, preserving the seed layout
/// bit-exactly.
pub const DAG_BASE: usize = N_SCALARS;

/// `work_avail` value meaning "no work at all" (distinct from 0 = working
/// with no surplus).
pub const OUT_OF_WORK: i64 = -1;
/// `REQUEST` value meaning "no thief waiting".
pub const NO_REQUEST: i64 = -1;
/// `RESP_AMT` value meaning "response not yet written".
pub const RESP_PENDING: i64 = -1;

/// Lock guarding a thread's shared stack region (locked variants).
pub const STACK_LOCK: usize = 0;
/// Lock guarding the barrier cells on thread 0 (§3.1 cancelable barrier).
pub const BARRIER_LOCK: usize = 1;

/// Number of locks per thread.
pub const N_LOCKS: usize = 2;

/// The [`pgas::SpaceConfig`] every run uses.
pub fn space_config() -> pgas::SpaceConfig {
    pgas::SpaceConfig {
        scalars: N_SCALARS,
        locks: N_LOCKS,
    }
}

/// The [`pgas::SpaceConfig`] for a specific workload on `n_threads` ranks:
/// the fixed protocol layout plus whatever per-workload cells the generator
/// requests above [`DAG_BASE`]. Identical to [`space_config`] for tree
/// workloads (which request none).
pub fn space_config_for<G: crate::taskgen::TaskGen>(gen: &G, n_threads: usize) -> pgas::SpaceConfig {
    pgas::SpaceConfig {
        scalars: N_SCALARS + gen.extra_scalars(n_threads),
        locks: N_LOCKS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate layout checks
    fn indices_are_distinct_and_in_range() {
        let idx = [
            WORK_AVAIL,
            REQUEST,
            RESP_AMT,
            RESP_OFFSET,
            TERM,
            BARRIER_COUNT,
            CANCEL_EPOCH,
            STEAL_BASE,
            ACK,
            RESERVED,
            Q_OUT,
            EPOCH,
            LIN_OUT,
            HEARTBEAT,
            DEAD,
            SPILL_OFF,
            SPILL_LEN,
            ADOPT,
            INCARNATION,
            EVICT_VOTES,
            EVICTED,
            SVC_TERM,
        ];
        for (i, a) in idx.iter().enumerate() {
            assert!(*a < N_SCALARS);
            for b in idx.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert!(STACK_LOCK != BARRIER_LOCK);
        assert!(STACK_LOCK < N_LOCKS && BARRIER_LOCK < N_LOCKS);
        // The service boards are disjoint, contiguous, and below the
        // collective block.
        assert_eq!(SVC_DONE_BASE, SVC_TERM + 1);
        assert_eq!(SVC_ASSIGN_BASE, SVC_DONE_BASE + SVC_WINDOW);
        assert_eq!(SVC_SLOT_BASE, SVC_ASSIGN_BASE + SVC_WINDOW);
        assert_eq!(COLL_BASE, SVC_SLOT_BASE + SVC_WINDOW);
        // The collective block must not overlap the protocol cells.
        assert!(idx.iter().all(|&i| i < COLL_BASE));
        assert_eq!(COLL_BASE + pgas::collectives::COLLECTIVE_CELLS, N_SCALARS);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate layout checks
    fn sentinels_are_negative() {
        assert!(OUT_OF_WORK < 0);
        assert!(NO_REQUEST < 0);
        assert!(RESP_PENDING < 0);
    }
}
