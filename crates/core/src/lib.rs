//! # worksteal — scalable asynchronous work stealing (the paper's contribution)
//!
//! Reproduces all five load-balancing implementations evaluated in
//! Olivier & Prins, *Scalable Dynamic Load Balancing Using UPC* (ICPP 2008):
//!
//! | [`Algorithm`]                                     | Paper label       | Section |
//! |---------------------------------------------------|-------------------|---------|
//! | [`Algorithm::SharedMem`]                          | `upc-sharedmem`   | §3.1    |
//! | [`Algorithm::Term`]                               | `upc-term`        | §3.3.1  |
//! | [`Algorithm::TermRapdif`]                         | `upc-term-rapdif` | §3.3.2  |
//! | [`Algorithm::DistMem`]                            | `upc-distmem`     | §3.3.3  |
//! | [`Algorithm::MpiWs`]                              | `mpi-ws`          | §3.2    |
//!
//! plus two extensions: [`Algorithm::Hier`] (the §6.2 future-work idea:
//! steal within the compute node before probing off-node) and
//! [`Algorithm::Pushing`] (a randomized work-*pushing* baseline in the
//! spirit of the paper's reference \[16\]).
//!
//! Every worker runs the Figure-1 state machine (Working → Work Discovery →
//! Work Stealing → Termination Detection) over the [`pgas::Comm`] substrate,
//! so the same code executes on real threads (`native`) or on the
//! virtual-time cluster simulator (`sim`).
//!
//! The engine is generic over [`TaskGen`], so any exhaustive tree-shaped
//! search — not just UTS — can be load balanced (see `examples/`).
//!
//! ```
//! use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};
//! use pgas::MachineModel;
//!
//! let preset = uts_tree::presets::t_tiny();
//! let cfg = RunConfig { algorithm: Algorithm::DistMem, ..RunConfig::default() };
//! let report = run_sim(MachineModel::smp(), 4, &UtsGen::new(preset.spec), &cfg);
//! assert_eq!(report.total_nodes, preset.expected.nodes);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod config;
pub mod distmem;
pub mod engine;
pub mod hist;
pub mod locked;
pub mod model;
pub mod mpi_ws;
pub mod probe;
pub mod pushing;
pub mod recovery;
pub mod report;
pub mod sched;
pub mod service;
pub mod stack;
pub mod state;
pub mod taskgen;
pub mod theory;
pub mod trace;
pub mod vars;
pub mod watchdog;
pub mod workload;

pub use config::{Algorithm, ConfigError, RunConfig};
pub use engine::{run_native, run_sim, seq_run, try_run_sim, worker};
pub use hist::LatencyHistogram;
pub use probe::{ProbeOrder, VictimSelector};
pub use report::{RunReport, ThreadResult};
pub use sched::{
    drive, run_bundle, BundleSpec, StealPolicy, StealPolicyKind, TerminationKind, TransportKind,
    VictimPolicy,
};
pub use service::{run_service_sim, RequestStat, ServiceReport, ServiceWorkload, Stamped};
pub use taskgen::{SyntheticGen, TaskGen, UtsGen};
pub use theory::{check_run, steal_bound, tree_depth, TheorySummary, TheoryViolation};
pub use workload::{DagGen, DagWorkload, ForkJoin, RandomLayered, Wavefront};
