//! Run configuration: algorithm selection and tuning knobs.

use pgas::FaultPlan;

use crate::sched::policy::{StealPolicyKind, VictimPolicy};

/// Which load-balancing implementation to run (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// §3.1 `upc-sharedmem`: lock-protected shared stack region, cancelable
    /// barrier termination, single-chunk steals.
    SharedMem,
    /// §3.3.1 `upc-term`: SharedMem + streamlined termination detection.
    Term,
    /// §3.3.2 `upc-term-rapdif`: Term + steal-half rapid diffusion.
    TermRapdif,
    /// §3.3.3 `upc-distmem`: TermRapdif + lock-less request/response stack.
    DistMem,
    /// §3.2 `mpi-ws`: message-passing work stealing with polling victims and
    /// token-ring termination.
    MpiWs,
    /// Extension (§6.2 future work): DistMem with node-local-first victim
    /// selection (the `bupc_thread_distance()` idea).
    Hier,
    /// Extension (paper ref \[16\] flavour): randomized work *pushing* —
    /// loaded threads push surplus chunks to random targets.
    Pushing,
}

impl Algorithm {
    /// The paper's label for this implementation.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::SharedMem => "upc-sharedmem",
            Algorithm::Term => "upc-term",
            Algorithm::TermRapdif => "upc-term-rapdif",
            Algorithm::DistMem => "upc-distmem",
            Algorithm::MpiWs => "mpi-ws",
            Algorithm::Hier => "upc-hier",
            Algorithm::Pushing => "push-random",
        }
    }

    /// The five implementations evaluated in the paper, in refinement order.
    pub fn paper_set() -> [Algorithm; 5] {
        [
            Algorithm::SharedMem,
            Algorithm::Term,
            Algorithm::TermRapdif,
            Algorithm::DistMem,
            Algorithm::MpiWs,
        ]
    }

    /// Every implementation in this crate.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::SharedMem,
            Algorithm::Term,
            Algorithm::TermRapdif,
            Algorithm::DistMem,
            Algorithm::MpiWs,
            Algorithm::Hier,
            Algorithm::Pushing,
        ]
    }
}

/// Tuning parameters for a run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Chunk size `k`: nodes moved per release/steal unit (§2: "the value of
    /// k represents a tradeoff between load imbalance and communication
    /// costs").
    pub chunk_size: usize,
    /// Local-region depth that triggers a release. The paper releases "when
    /// the local region has built up a comfortable stack depth (at least 2k
    /// in our implementation)".
    pub release_depth: usize,
    /// For polling implementations (DistMem victim polling, MpiWs): number
    /// of nodes explored between polls for incoming requests.
    pub poll_interval: u64,
    /// Seed for the pseudo-random victim probe order.
    pub seed: u64,
    /// Record per-thread [`crate::trace::Event`] logs (state transitions,
    /// steals, releases) for post-run analysis. Off by default: tracing
    /// allocates.
    pub trace: bool,
    /// Enable the simulator conductor's lookahead fast path (on by default).
    /// Purely a harness-speed knob: virtual-time results are bit-identical
    /// either way (see `docs/conductor.md`). Ignored by the native backend.
    pub sim_lookahead: bool,
    /// Worker OS threads for the simulator's parallel conductor (see
    /// `docs/conductor.md` §Parallel conductor). Another pure harness-speed
    /// knob: virtual-time results are bit-identical at any worker count.
    /// `0` (the default) defers to the `UTS_SIM_WORKERS` environment
    /// variable (unset/0 = serial conductors); `> 0` forces that many
    /// workers. Ignored by the native backend and when `sim_lookahead` is
    /// off.
    pub sim_workers: usize,
    /// Deterministic fault schedule injected into the simulator's cost
    /// accounting (see `docs/faults.md`). [`FaultPlan::none()`] by default:
    /// fault-free runs pay zero cost and stay bit-identical. Ignored by the
    /// native backend.
    pub faults: FaultPlan,
    /// Virtual-time budget a thief waits on an outstanding steal request
    /// before retracting it and re-probing (the timeout/retract hardening in
    /// `docs/faults.md`). `None` (the default) reproduces the paper's
    /// wait-forever protocol exactly; fault schedules with stalled victims
    /// need it armed to stay live-ish under long stalls.
    pub steal_timeout_ns: Option<u64>,
    /// Override the victim-order policy of the algorithm's bundle (see
    /// [`RunConfig::bundle`](crate::sched::bundle)). `None` (the default)
    /// keeps the algorithm's own choice, preserving the paper labels
    /// bit-exactly; `Some(VictimPolicy::Hier)` puts same-node-first victim
    /// selection on any probing transport.
    pub victim_policy: Option<VictimPolicy>,
    /// Override the steal-amount policy of the algorithm's bundle. `None`
    /// (the default) keeps the algorithm's own choice;
    /// `Some(StealPolicyKind::Adaptive)` sizes grants by the victim's
    /// surplus depth on any transport.
    pub steal_policy: Option<StealPolicyKind>,
}

/// A [`RunConfig`] that a backend cannot execute. Returned (rather than
/// panicking) so harnesses can route the run to the right backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The plan requests crash-class faults (kills, leases, partitions,
    /// gray stalls, restarts), which only exist in virtual time. The
    /// native OS-thread backend has no kill schedule, no virtual leases,
    /// and no deterministic membership protocol; run the config through
    /// `run_sim` instead.
    CrashFaultsAreSimOnly,
    /// The plan requests crash-class faults but the task generator still
    /// uses the degenerate default [`crate::taskgen::TaskGen::fingerprint`]
    /// (root and first child share an identity), which would silently
    /// understate duplicate counts and break
    /// conservation-with-multiplicity. Override `fingerprint` with an
    /// injective hash (see the trait docs) to run crash plans.
    DegenerateFingerprints,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CrashFaultsAreSimOnly => write!(
                f,
                "crash fault plans are sim-only: virtual-time kills, leases, \
                 partitions, and restarts have no native analogue; run this \
                 config through run_sim (the simulator backend) instead"
            ),
            ConfigError::DegenerateFingerprints => write!(
                f,
                "crash fault plans need injective task fingerprints: this \
                 generator's root and first child share the degenerate \
                 default fingerprint, so duplicate counting (conservation \
                 with multiplicity) would silently understate; override \
                 TaskGen::fingerprint with a collision-free hash"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl RunConfig {
    /// Default configuration with a given algorithm and chunk size.
    pub fn new(algorithm: Algorithm, chunk_size: usize) -> RunConfig {
        RunConfig {
            algorithm,
            chunk_size,
            release_depth: 2 * chunk_size,
            poll_interval: 8,
            seed: 0x5EED_CAFE,
            trace: false,
            sim_lookahead: true,
            sim_workers: 0,
            faults: FaultPlan::none(),
            steal_timeout_ns: None,
            victim_policy: None,
            steal_policy: None,
        }
    }

    /// Apply opt-in chaos overrides from the environment, so any harness can
    /// be fault-injected without new flags:
    ///
    /// - `UTS_CHAOS_SEED=<u64>` installs [`FaultPlan::seeded`] with that seed;
    /// - `UTS_STEAL_TIMEOUT_NS=<u64>` arms the thief request timeout;
    /// - `UTS_CHAOS_LOSS_PM=<0..=1000>`, `UTS_CHAOS_DUP_PM=<0..=1000>`, and
    ///   `UTS_CHAOS_KILL_PM=<0..=1000>` set the crash-class per-mille rates
    ///   (message loss, duplication, rank death — see `docs/faults.md`) on
    ///   top of whatever plan is installed, enabling it if necessary. A
    ///   kill rate set this way gets [`FaultPlan::crashy`]'s death window
    ///   unless the plan already has one;
    /// - `UTS_CHAOS_PARTITION_PM=<0..=1000>` and `UTS_CHAOS_GRAY_PM=<0..=1000>`
    ///   arm the correlated membership faults (network partition, gray
    ///   stall — `docs/faults.md` §8) the same way, borrowing
    ///   [`FaultPlan::partitioned`]'s windows when the plan has none;
    /// - `UTS_CHAOS_RESTART_NS=<u64>` makes killed ranks restart after that
    ///   virtual-time delay (0 disables restarts).
    ///
    /// Unset variables leave the config untouched, keeping fault-free runs
    /// bit-identical. A *set but malformed* variable panics with the
    /// offending name and value — a chaos run that silently ran fault-free
    /// because of a typo is worse than no chaos run at all.
    ///
    /// # Panics
    ///
    /// If any of the variables above is set to a value that does not parse
    /// as `u64`, or a `_PM` rate exceeds 1000.
    pub fn with_env_chaos(mut self) -> RunConfig {
        if let Some(seed) = parse_env("UTS_CHAOS_SEED") {
            self.faults = FaultPlan::seeded(seed);
        }
        if let Some(ns) = parse_env("UTS_STEAL_TIMEOUT_NS") {
            self.steal_timeout_ns = Some(ns);
        }
        if let Some(pm) = parse_env_pm("UTS_CHAOS_LOSS_PM") {
            self.faults.loss_per_mille = pm;
            self.faults.enabled = true;
        }
        if let Some(pm) = parse_env_pm("UTS_CHAOS_DUP_PM") {
            self.faults.dup_per_mille = pm;
            self.faults.enabled = true;
        }
        if let Some(pm) = parse_env_pm("UTS_CHAOS_KILL_PM") {
            self.faults.kill_per_mille = pm;
            self.faults.enabled = true;
            if pm > 0 && self.faults.kill_min_ns == 0 && self.faults.kill_span_ns == 0 {
                let crashy = FaultPlan::crashy(self.faults.seed);
                self.faults.kill_min_ns = crashy.kill_min_ns;
                self.faults.kill_span_ns = crashy.kill_span_ns;
            }
        }
        if let Some(pm) = parse_env_pm("UTS_CHAOS_PARTITION_PM") {
            self.faults.partition_per_mille = pm;
            self.faults.enabled = true;
            if pm > 0 && self.faults.partition_span_ns == 0 {
                let part = FaultPlan::partitioned(self.faults.seed);
                self.faults.partition_min_ns = part.partition_min_ns;
                self.faults.partition_span_ns = part.partition_span_ns;
                self.faults.partition_dur_ns = part.partition_dur_ns;
            }
        }
        if let Some(pm) = parse_env_pm("UTS_CHAOS_GRAY_PM") {
            self.faults.gray_per_mille = pm;
            self.faults.enabled = true;
            if pm > 0 && self.faults.gray_span_ns == 0 {
                let part = FaultPlan::partitioned(self.faults.seed);
                self.faults.gray_min_ns = part.gray_min_ns;
                self.faults.gray_span_ns = part.gray_span_ns;
                self.faults.gray_stall_ns = part.gray_stall_ns;
            }
        }
        if let Some(ns) = parse_env("UTS_CHAOS_RESTART_NS") {
            self.faults.restart_after_ns = ns;
            self.faults.enabled = true;
        }
        self
    }
}

fn parse_env(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!(
            "{name}={raw:?} is not a valid u64; unset it or fix the value \
             (chaos overrides refuse to be silently ignored)"
        ),
    }
}

fn parse_env_pm(name: &str) -> Option<u32> {
    let v = parse_env(name)?;
    assert!(
        v <= 1000,
        "{name}={v} is out of range: per-mille rates must be 0..=1000"
    );
    Some(v as u32)
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::new(Algorithm::DistMem, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figure3() {
        assert_eq!(Algorithm::SharedMem.label(), "upc-sharedmem");
        assert_eq!(Algorithm::Term.label(), "upc-term");
        assert_eq!(Algorithm::TermRapdif.label(), "upc-term-rapdif");
        assert_eq!(Algorithm::DistMem.label(), "upc-distmem");
        assert_eq!(Algorithm::MpiWs.label(), "mpi-ws");
    }

    #[test]
    fn default_release_depth_is_twice_chunk() {
        let cfg = RunConfig::new(Algorithm::Term, 16);
        assert_eq!(cfg.release_depth, 32);
    }

    /// All env-chaos cases in one test: env vars are process-global and the
    /// test harness runs tests on parallel threads, so splitting these up
    /// would race on the variables.
    #[test]
    fn env_chaos_overrides_parse_strictly() {
        let vars = [
            "UTS_CHAOS_SEED",
            "UTS_STEAL_TIMEOUT_NS",
            "UTS_CHAOS_LOSS_PM",
            "UTS_CHAOS_DUP_PM",
            "UTS_CHAOS_KILL_PM",
            "UTS_CHAOS_PARTITION_PM",
            "UTS_CHAOS_GRAY_PM",
            "UTS_CHAOS_RESTART_NS",
        ];
        let clear = || {
            for v in vars {
                std::env::remove_var(v);
            }
        };
        clear();

        // Unset vars leave the config untouched.
        let cfg = RunConfig::default().with_env_chaos();
        assert!(!cfg.faults.is_active());
        assert_eq!(cfg.steal_timeout_ns, None);

        // Well-formed values install a plan, arm the timeout, and set the
        // crash rates (which also pick up crashy()'s death window).
        std::env::set_var("UTS_CHAOS_SEED", "42");
        std::env::set_var("UTS_STEAL_TIMEOUT_NS", " 30000 ");
        std::env::set_var("UTS_CHAOS_LOSS_PM", "25");
        std::env::set_var("UTS_CHAOS_DUP_PM", "0");
        std::env::set_var("UTS_CHAOS_KILL_PM", "400");
        let cfg = RunConfig::default().with_env_chaos();
        assert_eq!(cfg.faults.seed, 42);
        assert_eq!(cfg.steal_timeout_ns, Some(30_000));
        assert_eq!(cfg.faults.loss_per_mille, 25);
        assert_eq!(cfg.faults.dup_per_mille, 0);
        assert_eq!(cfg.faults.kill_per_mille, 400);
        assert!(cfg.faults.kill_span_ns > 0, "kill window defaulted");
        assert!(cfg.faults.crash_active());

        // Crash rates alone enable a plan even without UTS_CHAOS_SEED.
        clear();
        std::env::set_var("UTS_CHAOS_DUP_PM", "10");
        let cfg = RunConfig::default().with_env_chaos();
        assert!(cfg.faults.crash_active());
        assert_eq!(cfg.faults.dup_per_mille, 10);

        // Membership faults borrow partitioned()'s windows when armed bare.
        clear();
        std::env::set_var("UTS_CHAOS_PARTITION_PM", "500");
        std::env::set_var("UTS_CHAOS_GRAY_PM", "250");
        std::env::set_var("UTS_CHAOS_RESTART_NS", "200000");
        let cfg = RunConfig::default().with_env_chaos();
        assert!(cfg.faults.crash_active());
        assert_eq!(cfg.faults.partition_per_mille, 500);
        assert!(cfg.faults.partition_span_ns > 0, "partition window defaulted");
        assert!(cfg.faults.partition_dur_ns > 0, "partition heals by default");
        assert_eq!(cfg.faults.gray_per_mille, 250);
        assert!(cfg.faults.gray_stall_ns > 0, "gray stall defaulted");
        assert_eq!(cfg.faults.restart_after_ns, 200_000);

        // Malformed or out-of-range values panic instead of being swallowed.
        for (var, bad) in [
            ("UTS_CHAOS_SEED", "banana"),
            ("UTS_STEAL_TIMEOUT_NS", "12ms"),
            ("UTS_CHAOS_LOSS_PM", "-3"),
            ("UTS_CHAOS_KILL_PM", "1001"),
        ] {
            clear();
            std::env::set_var(var, bad);
            let err = std::panic::catch_unwind(|| RunConfig::default().with_env_chaos())
                .expect_err("malformed {var} must panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains(var), "panic names the variable: {msg}");
        }
        clear();
    }

    #[test]
    fn paper_set_has_five_distinct() {
        let set = Algorithm::paper_set();
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                assert_ne!(set[i], set[j]);
            }
        }
    }
}
