//! Run configuration: algorithm selection and tuning knobs.

/// Which load-balancing implementation to run (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// §3.1 `upc-sharedmem`: lock-protected shared stack region, cancelable
    /// barrier termination, single-chunk steals.
    SharedMem,
    /// §3.3.1 `upc-term`: SharedMem + streamlined termination detection.
    Term,
    /// §3.3.2 `upc-term-rapdif`: Term + steal-half rapid diffusion.
    TermRapdif,
    /// §3.3.3 `upc-distmem`: TermRapdif + lock-less request/response stack.
    DistMem,
    /// §3.2 `mpi-ws`: message-passing work stealing with polling victims and
    /// token-ring termination.
    MpiWs,
    /// Extension (§6.2 future work): DistMem with node-local-first victim
    /// selection (the `bupc_thread_distance()` idea).
    Hier,
    /// Extension (paper ref \[16\] flavour): randomized work *pushing* —
    /// loaded threads push surplus chunks to random targets.
    Pushing,
}

impl Algorithm {
    /// The paper's label for this implementation.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::SharedMem => "upc-sharedmem",
            Algorithm::Term => "upc-term",
            Algorithm::TermRapdif => "upc-term-rapdif",
            Algorithm::DistMem => "upc-distmem",
            Algorithm::MpiWs => "mpi-ws",
            Algorithm::Hier => "upc-hier",
            Algorithm::Pushing => "push-random",
        }
    }

    /// The five implementations evaluated in the paper, in refinement order.
    pub fn paper_set() -> [Algorithm; 5] {
        [
            Algorithm::SharedMem,
            Algorithm::Term,
            Algorithm::TermRapdif,
            Algorithm::DistMem,
            Algorithm::MpiWs,
        ]
    }

    /// Every implementation in this crate.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::SharedMem,
            Algorithm::Term,
            Algorithm::TermRapdif,
            Algorithm::DistMem,
            Algorithm::MpiWs,
            Algorithm::Hier,
            Algorithm::Pushing,
        ]
    }
}

/// Tuning parameters for a run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Chunk size `k`: nodes moved per release/steal unit (§2: "the value of
    /// k represents a tradeoff between load imbalance and communication
    /// costs").
    pub chunk_size: usize,
    /// Local-region depth that triggers a release. The paper releases "when
    /// the local region has built up a comfortable stack depth (at least 2k
    /// in our implementation)".
    pub release_depth: usize,
    /// For polling implementations (DistMem victim polling, MpiWs): number
    /// of nodes explored between polls for incoming requests.
    pub poll_interval: u64,
    /// Seed for the pseudo-random victim probe order.
    pub seed: u64,
    /// Record per-thread [`crate::trace::Event`] logs (state transitions,
    /// steals, releases) for post-run analysis. Off by default: tracing
    /// allocates.
    pub trace: bool,
    /// Enable the simulator conductor's lookahead fast path (on by default).
    /// Purely a harness-speed knob: virtual-time results are bit-identical
    /// either way (see `docs/conductor.md`). Ignored by the native backend.
    pub sim_lookahead: bool,
}

impl RunConfig {
    /// Default configuration with a given algorithm and chunk size.
    pub fn new(algorithm: Algorithm, chunk_size: usize) -> RunConfig {
        RunConfig {
            algorithm,
            chunk_size,
            release_depth: 2 * chunk_size,
            poll_interval: 8,
            seed: 0x5EED_CAFE,
            trace: false,
            sim_lookahead: true,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::new(Algorithm::DistMem, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figure3() {
        assert_eq!(Algorithm::SharedMem.label(), "upc-sharedmem");
        assert_eq!(Algorithm::Term.label(), "upc-term");
        assert_eq!(Algorithm::TermRapdif.label(), "upc-term-rapdif");
        assert_eq!(Algorithm::DistMem.label(), "upc-distmem");
        assert_eq!(Algorithm::MpiWs.label(), "mpi-ws");
    }

    #[test]
    fn default_release_depth_is_twice_chunk() {
        let cfg = RunConfig::new(Algorithm::Term, 16);
        assert_eq!(cfg.release_depth, 32);
    }

    #[test]
    fn paper_set_has_five_distinct() {
        let set = Algorithm::paper_set();
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                assert_ne!(set[i], set[j]);
            }
        }
    }
}
