//! Service mode: open-loop task arrivals, per-epoch quiescence detection,
//! and tail-latency reporting (`docs/service.md`).
//!
//! Batch mode (the paper's setting) pushes one root task and runs to global
//! termination. Service mode models the load balancer as a long-lived
//! system: a seeded arrival process ([`pgas::ArrivalSpec`]) schedules root
//! tasks ("requests") on a virtual-time clock, rank 0 injects each one
//! tagged with its submission **epoch**, and the run reports per-request
//! makespan and p50/p99/p999 tail latency ([`crate::hist`]) instead of a
//! single makespan.
//!
//! # Epoch quiescence
//!
//! Run-to-termination detectors (barriers, token rings, the crash-mode
//! double scan) answer "is *everything* done" — useless mid-service, where
//! new work keeps arriving. Service mode instead proves per-epoch
//! quiescence with cumulative **packed deficit cells**:
//!
//! - Every rank owns [`vars::SVC_WINDOW`] cells, one per epoch residue
//!   class `epoch % SVC_WINDOW`. A cell packs a 24-bit wrapping write count
//!   and a biased 40-bit task deficit ([`SvcAccount`]).
//! - **Publish-before-migration**: an item's `+1` is published before the
//!   item can exist anywhere (injection bumps before pushing the root; each
//!   expansion publishes one fused `kids − 1` bump before `push_all`; a
//!   crash-mode message absorb bumps `+items` before sending the ACK that
//!   lets the donor bump `−items`). At every real instant the global sum
//!   for an epoch is ≥ the number of live tasks of that epoch.
//! - A **scanner** rank (epoch `e` is scanned by rank `e % n`, reassigned
//!   by rank 0 if that rank dies) reads all `n` cells of the slot twice,
//!   one scan interval apart. If both passes return the *identical* packed
//!   vector and the deficits sum to zero, the unchanged write counts prove
//!   the reads form a consistent snapshot — the epoch had zero outstanding
//!   tasks at every instant between the passes, and since only live tasks
//!   create tasks, it is quiescent forever. This generalizes the rank-0
//!   double scan of `crates/core/src/recovery.rs` from "one global
//!   termination event" to "a stream of per-epoch completion events".
//! - Cells are cumulative and never reset; the admission window (at most
//!   [`vars::SVC_WINDOW`] epochs in flight, enforced by rank 0's pump)
//!   guarantees at most one live epoch per residue class, so a zero sum
//!   always refers to the newest epoch of the class.
//!
//! # Termination and the exit race
//!
//! When every request has been injected and declared quiescent, rank 0
//! broadcasts [`vars::SVC_TERM`]; workers poll their own copy locally and
//! exit. A thief's steal request can still be in flight toward a rank that
//! exits on the same tick, so service runs always arm a steal timeout
//! ([`SVC_STEAL_TIMEOUT_NS`]) even without crash faults: the thief times
//! out, rechecks its `SVC_TERM` cell, and exits instead of waiting forever.

use std::collections::{HashMap, HashSet};

use pgas::comm::Item;
use pgas::sim::SimCluster;
use pgas::{ArrivalSpec, Collectives, Comm, MachineModel};

use crate::config::RunConfig;
use crate::distmem::DistMemTransport;
use crate::hist::LatencyHistogram;
use crate::locked::LockedTransport;
use crate::mpi_ws::MpiTransport;
use crate::probe::VictimSelector;
use crate::pushing::PushTransport;
use crate::recovery::Recovery;
use crate::report::{RunReport, ThreadResult};
use crate::sched::bundle::CRASH_STEAL_TIMEOUT_NS;
use crate::sched::{Cx, Discovery, StealOutcome, StealTransport, TransportKind};
use crate::stack::DfsStack;
use crate::state::State;
use crate::taskgen::{SyntheticGen, TaskGen, UtsGen};
use crate::vars;
use crate::watchdog::Watchdog;

/// Virtual-time interval between a scanner's passes over its assigned
/// slots. Two identical passes this far apart declare an epoch quiescent,
/// so detection adds roughly two to three intervals to reported latency.
pub const SVC_SCAN_INTERVAL_NS: u64 = 100_000;

/// Virtual-time interval between rank 0's pump checks (arrival injection,
/// completion-floor advance, shutdown broadcast).
pub const SVC_PUMP_INTERVAL_NS: u64 = 20_000;

/// Base idle backoff between service work-discovery iterations.
pub const SVC_IDLE_BACKOFF_NS: u64 = 3_000;

/// Cap for the escalating idle backoff. Idle ranks double their backoff up
/// to this while no work is sighted, so quiet gaps between arrivals don't
/// burn probe traffic; a request landing in a deep-idle system pays at most
/// this much extra discovery latency per rank.
pub const SVC_IDLE_BACKOFF_MAX_NS: u64 = 100_000;

/// Steal timeout armed for every service run when the config leaves
/// [`RunConfig::steal_timeout_ns`] unset (see the module docs on the exit
/// race). Crash-fault service runs need it for dead victims anyway.
pub const SVC_STEAL_TIMEOUT_NS: u64 = CRASH_STEAL_TIMEOUT_NS;

/// A task tagged with the submission epoch of the request it descends
/// from. This is the task type service-mode clusters actually ship around:
/// children inherit the parent's epoch, so every steal, spill, and
/// reinjection carries its accounting class with it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stamped<T> {
    /// The underlying workload task.
    pub task: T,
    /// Submission epoch (index of the request in arrival order).
    pub epoch: u32,
}

/// The epoch extractor handed to message transports via
/// [`StealTransport::arm_service`].
fn stamp_epoch<T: Item>(t: &Stamped<T>) -> u32 {
    t.epoch
}

/// A workload that can mint a fresh root task per request.
///
/// Epoch 0's root should match [`TaskGen::root`] so batch and service runs
/// agree on the first tree; later epochs may (and for UTS do) perturb the
/// tree seed so requests differ.
pub trait ServiceWorkload: TaskGen {
    /// The root task of request `epoch`.
    fn request_root(&self, epoch: u32) -> Self::Task;
}

impl ServiceWorkload for UtsGen {
    fn request_root(&self, epoch: u32) -> Self::Task {
        // Each request is a UTS tree with the seed perturbed by its epoch —
        // epoch 0 is exactly the batch tree.
        let mut spec = *self.spec();
        spec.seed = spec.seed.wrapping_add(epoch);
        spec.root()
    }
}

impl ServiceWorkload for SyntheticGen {
    fn request_root(&self, _epoch: u32) -> Self::Task {
        // The synthetic balanced tree is identical every epoch.
        self.root()
    }
}

/// Additive bias applied to the 40-bit deficit field so an initialized
/// zero-deficit cell is distinguishable from a raw (never written) zero
/// cell: a rank's cells only enter a scanner's zero-sum once that rank has
/// actually activated and published them.
const DEFICIT_BIAS: i64 = 1 << 39;
const DEFICIT_MASK: i64 = (1 << 40) - 1;
const WCOUNT_MASK: u32 = 0x00FF_FFFF;

/// Pack a (write count, deficit) pair into one shared cell. The write
/// count occupies the top 24 bits and wraps; the biased deficit the low 40.
fn pack(wcount: u32, deficit: i64) -> i64 {
    debug_assert!(
        deficit > -DEFICIT_BIAS && deficit < DEFICIT_BIAS,
        "service deficit out of packable range: {deficit}"
    );
    (((wcount & WCOUNT_MASK) as i64) << 40) | (deficit + DEFICIT_BIAS)
}

/// The deficit half of a packed cell. A raw zero cell (rank not yet
/// activated, or dead before activating) unpacks to `-DEFICIT_BIAS`, which
/// can never contribute to a zero sum.
fn unpack_deficit(cell: i64) -> i64 {
    (cell & DEFICIT_MASK) - DEFICIT_BIAS
}

/// Per-rank service accounting state, threaded through [`Cx`] so transports
/// can publish crash-mode transfer attributions without being generic over
/// the stamped task type.
///
/// Each bump is a single put of the freshly packed cell to this rank's own
/// partition — writers never contend (cells are rank-private), scanners
/// only read.
pub struct SvcAccount {
    /// Whether this run is a service run. All methods are no-ops when not.
    pub active: bool,
    me: usize,
    wcount: [u32; vars::SVC_WINDOW],
    deficit: [i64; vars::SVC_WINDOW],
}

impl SvcAccount {
    /// The inert account every batch-mode [`Cx`] carries.
    pub fn inactive() -> SvcAccount {
        SvcAccount {
            active: false,
            me: 0,
            wcount: [0; vars::SVC_WINDOW],
            deficit: [0; vars::SVC_WINDOW],
        }
    }

    /// Arm service accounting and publish `pack(0, 0)` to every owned slot
    /// cell, so scanners can tell "this rank is live with zero deficit"
    /// (biased zero) from "this rank never wrote" (raw zero).
    fn activate<T: Item, C: Comm<T>>(&mut self, comm: &mut C) {
        self.active = true;
        self.me = comm.my_id();
        self.wcount = [0; vars::SVC_WINDOW];
        self.deficit = [0; vars::SVC_WINDOW];
        for w in 0..vars::SVC_WINDOW {
            comm.put(self.me, vars::SVC_SLOT_BASE + w, pack(0, 0));
        }
    }

    /// Publish a deficit change for `epoch`: bump the slot's write count,
    /// apply `delta`, and put the repacked cell (one comm op). The caller
    /// must issue this *before* the tasks it accounts for become visible to
    /// any other rank (publish-before-migration, see the module docs).
    pub fn bump<T: Item, C: Comm<T>>(&mut self, comm: &mut C, epoch: u32, delta: i64) {
        debug_assert!(self.active, "SvcAccount::bump outside service mode");
        let w = epoch as usize % vars::SVC_WINDOW;
        self.wcount[w] = self.wcount[w].wrapping_add(1);
        self.deficit[w] += delta;
        comm.put(
            self.me,
            vars::SVC_SLOT_BASE + w,
            pack(self.wcount[w], self.deficit[w]),
        );
    }

    /// Attribute a moved payload to its epochs: one [`SvcAccount::bump`] of
    /// `sign` per item, grouped so each distinct epoch in the payload costs
    /// one put. Used by the message transports' crash-mode absorb (`+1`
    /// before the ACK is sent) and ACK-close (`−1` once the lineage grant
    /// actually closes); no-op outside service mode.
    pub fn bump_items<T: Item, C: Comm<T>>(
        &mut self,
        comm: &mut C,
        payload: &[T],
        epoch_of: fn(&T) -> u32,
        sign: i64,
    ) {
        if !self.active || payload.is_empty() {
            return;
        }
        let mut groups: Vec<(u32, i64)> = Vec::new();
        for t in payload {
            let e = epoch_of(t);
            match groups.iter_mut().find(|g| g.0 == e) {
                Some(g) => g.1 += sign,
                None => groups.push((e, sign)),
            }
        }
        for (e, d) in groups {
            self.bump(comm, e, d);
        }
    }
}

/// Rank 0's service pump: walks the precomputed arrival schedule, injects
/// due requests (subject to the admission window), advances the completion
/// floor from the done board, reassigns scans orphaned by rank death, and
/// broadcasts shutdown when the stream is drained.
struct SvcPump<'s> {
    schedule: &'s [u64],
    n: usize,
    next_arrival: usize,
    /// Epochs `< floor` are declared complete; the admission window is
    /// `[floor, floor + SVC_WINDOW)`.
    floor: usize,
    /// First epoch whose deferral has not been counted yet (each epoch is
    /// counted as deferred at most once).
    deferred_counted: usize,
    /// Scanner rank assigned to each injected epoch.
    scanner_of: Vec<usize>,
    next_check: u64,
    term_sent: bool,
}

impl<'s> SvcPump<'s> {
    fn new(schedule: &'s [u64], n: usize) -> SvcPump<'s> {
        SvcPump {
            schedule,
            n,
            next_arrival: 0,
            floor: 0,
            deferred_counted: 0,
            scanner_of: Vec::with_capacity(schedule.len()),
            next_check: 0,
            term_sent: false,
        }
    }

    /// The next present rank at or after `start` (wrapping): neither dead
    /// nor evicted by quorum. Rank 0 never dies and is never partitioned
    /// (kills and cuts skip it), so this always terminates.
    fn next_live(&self, start: usize, recovery: &Recovery) -> usize {
        let mut s = start % self.n;
        while recovery.is_gone(s) {
            s = (s + 1) % self.n;
        }
        s
    }

    fn tick<G, C>(
        &mut self,
        comm: &mut C,
        gen: &G,
        stack: &mut DfsStack<Stamped<G::Task>>,
        cx: &mut Cx,
    ) where
        G: ServiceWorkload,
        C: Comm<Stamped<G::Task>>,
    {
        let now = comm.now();
        if self.term_sent || now < self.next_check {
            return;
        }
        self.next_check = now + SVC_PUMP_INTERVAL_NS;

        // Advance the completion floor over the local done board.
        while self.floor < self.next_arrival {
            let w = self.floor % vars::SVC_WINDOW;
            if comm.get(0, vars::SVC_DONE_BASE + w) > self.floor as i64 {
                self.floor += 1;
            } else {
                break;
            }
        }

        // Crash mode: reassign scans owned by a rank that died — or was
        // evicted by quorum — before declaring. Duplicate declarations (the
        // gone rank's declare was already in flight) are harmless — assembly
        // dedups per epoch. The replacement scanner still reads *every*
        // rank's deficit cell, including evicted ones: an epoch whose tasks
        // sit with a fenced zombie simply stays open until the zombie
        // rejoins and drains them, which is exactly the zero-lost-requests
        // guarantee.
        if cx.recovery.active {
            cx.recovery.scan(comm);
            for e in self.floor..self.next_arrival {
                let w = e % vars::SVC_WINDOW;
                if comm.get(0, vars::SVC_DONE_BASE + w) > e as i64 {
                    continue;
                }
                if cx.recovery.is_gone(self.scanner_of[e]) {
                    let s = self.next_live(e + 1, &cx.recovery);
                    self.scanner_of[e] = s;
                    comm.put(s, vars::SVC_ASSIGN_BASE + w, e as i64 + 1);
                }
            }
        }

        // Inject every due arrival the admission window allows. Ordering
        // per epoch: publish the +1 deficit, push the root, then hand the
        // scan assignment out — a scanner can never observe the epoch
        // before its deficit is on the books.
        while self.next_arrival < self.schedule.len() {
            let e = self.next_arrival;
            if self.schedule[e] > now {
                break;
            }
            if e >= self.floor + vars::SVC_WINDOW {
                if self.deferred_counted <= e {
                    cx.res.svc_deferred += 1;
                    self.deferred_counted = e + 1;
                }
                break;
            }
            let epoch = e as u32;
            cx.svc.bump(comm, epoch, 1);
            stack.push(Stamped {
                task: gen.request_root(epoch),
                epoch,
            });
            let s = self.next_live(e, &cx.recovery);
            self.scanner_of.push(s);
            comm.put(s, vars::SVC_ASSIGN_BASE + e % vars::SVC_WINDOW, e as i64 + 1);
            let injected = comm.now();
            cx.res.svc_injections.push((epoch, self.schedule[e], injected));
            self.next_arrival += 1;
        }

        // Stream drained and every epoch declared: broadcast shutdown. At
        // this point every deficit is zero, so no rank holds or will ever
        // hold work again.
        if self.next_arrival == self.schedule.len() && self.floor == self.schedule.len() {
            for r in 0..self.n {
                comm.put(r, vars::SVC_TERM, 1);
            }
            self.term_sent = true;
        }
    }
}

/// The per-rank quiescence scanner: for each slot this rank is assigned
/// (via its [`vars::SVC_ASSIGN_BASE`] board), read all `n` packed cells;
/// two identical zero-sum passes one interval apart declare the epoch
/// complete (see the module docs for why this is a consistent snapshot).
struct Scanner {
    n: usize,
    next_scan: u64,
    /// Armed first pass per slot: the (assignment, packed vector) observed.
    last: Vec<Option<(i64, Vec<i64>)>>,
}

impl Scanner {
    fn new(n: usize) -> Scanner {
        Scanner {
            n,
            next_scan: 0,
            last: (0..vars::SVC_WINDOW).map(|_| None).collect(),
        }
    }

    fn tick<T: Item, C: Comm<T>>(&mut self, comm: &mut C, cx: &mut Cx) {
        let now = comm.now();
        if now < self.next_scan {
            return;
        }
        self.next_scan = now + SVC_SCAN_INTERVAL_NS;
        let me = comm.my_id();
        for w in 0..vars::SVC_WINDOW {
            let assign = comm.get(me, vars::SVC_ASSIGN_BASE + w);
            if assign <= 0 {
                self.last[w] = None;
                continue;
            }
            let mut cur = Vec::with_capacity(self.n);
            let mut sum = 0i64;
            for r in 0..self.n {
                let cell = comm.get(r, vars::SVC_SLOT_BASE + w);
                sum += unpack_deficit(cell);
                cur.push(cell);
            }
            if sum != 0 {
                self.last[w] = None;
                continue;
            }
            match &self.last[w] {
                Some((a, prev)) if *a == assign && *prev == cur => {
                    // Second identical zero-sum pass: declare, clear the
                    // assignment, and record the completion instant.
                    let epoch = (assign - 1) as u32;
                    comm.put(0, vars::SVC_DONE_BASE + w, assign);
                    comm.put(me, vars::SVC_ASSIGN_BASE + w, 0);
                    let done = comm.now();
                    cx.res.svc_completions.push((epoch, done));
                    self.last[w] = None;
                }
                _ => self.last[w] = Some((assign, cur)),
            }
        }
    }
}

/// Service-mode work discovery: replaces the batch termination detectors.
/// Idle ranks keep stealing (probing transports probe-then-steal under
/// `LIN_OUT` guards, message transports blind-steal one victim per
/// iteration), stay responsive to requests, interleave the crash-recovery
/// protocol, run their pump/scanner duties, and exit only on the rank-0
/// [`vars::SVC_TERM`] broadcast — with an escalating idle backoff so quiet
/// arrival gaps don't spin.
#[allow(clippy::too_many_arguments)]
fn svc_discover<G, C, ST, VS>(
    comm: &mut C,
    stack: &mut DfsStack<Stamped<G::Task>>,
    transport: &mut ST,
    victims: &mut VS,
    cx: &mut Cx,
    pump: &mut Option<SvcPump<'_>>,
    scanner: &mut Scanner,
    gen: &G,
    probing: bool,
) -> Discovery
where
    G: ServiceWorkload,
    C: Comm<Stamped<G::Task>>,
    ST: StealTransport<Stamped<G::Task>, C>,
    VS: VictimSelector,
{
    cx.enter(comm, State::Searching);
    cx.recovery.publish_out(comm);
    let mut dog = Watchdog::new("service work discovery");
    let crash = cx.recovery.active;
    let me = comm.my_id();
    // Rank 0 caps its backoff at the pump interval so injections stay on
    // schedule; everyone else may back off up to the scan interval bound.
    let cap = if me == 0 {
        SVC_PUMP_INTERVAL_NS
    } else {
        SVC_IDLE_BACKOFF_MAX_NS
    };
    let mut backoff = SVC_IDLE_BACKOFF_NS.max(ST::IDLE_BACKOFF_NS);
    let mut cycle: Vec<usize> = Vec::new();
    let mut next = 0usize;
    loop {
        dog.tick();
        if crash && cx.recovery.kill_due(comm.now()) {
            return Discovery::Died;
        }
        if let Some(p) = pump.as_mut() {
            p.tick(comm, gen, stack, cx);
        }
        scanner.tick(comm, cx);
        transport.idle_service(comm, stack, cx);
        if transport.absorb_pending(comm, stack, cx) || !stack.is_local_empty() {
            cx.recovery.publish_working(comm);
            transport.got_work(comm);
            return Discovery::GotWork;
        }
        if comm.get(me, vars::SVC_TERM) == 1 {
            return Discovery::Terminated;
        }
        let mut saw_work = false;
        if ST::STEALS {
            if probing {
                for v in victims.cycle() {
                    if cx.recovery.is_gone(v) {
                        continue;
                    }
                    cx.res.probes += 1;
                    if transport.probe(comm, v) > 0 {
                        saw_work = true;
                        cx.enter(comm, State::Stealing);
                        cx.recovery.guard_begin(comm);
                        let outcome = transport.steal(comm, stack, v, cx);
                        if outcome == StealOutcome::Got {
                            // Working-before-unguard (see crate::recovery).
                            cx.recovery.publish_working(comm);
                        }
                        cx.recovery.guard_end(comm);
                        cx.enter(comm, State::Searching);
                        match outcome {
                            StealOutcome::Got => {
                                transport.got_work(comm);
                                return Discovery::GotWork;
                            }
                            StealOutcome::TimedOut => transport.after_timeout(comm, cx),
                            StealOutcome::Denied | StealOutcome::TermRaced => {}
                        }
                        dog.reset();
                    }
                    transport.idle_service(comm, stack, cx);
                }
            } else {
                if next >= cycle.len() {
                    cycle = victims.cycle();
                    next = 0;
                }
                if !cycle.is_empty() {
                    let v = cycle[next];
                    next += 1;
                    if !cx.recovery.is_gone(v) {
                        cx.res.probes += 1;
                        cx.enter(comm, State::Stealing);
                        let outcome = transport.steal(comm, stack, v, cx);
                        cx.enter(comm, State::Searching);
                        match outcome {
                            StealOutcome::Got => {
                                cx.recovery.publish_working(comm);
                                transport.got_work(comm);
                                return Discovery::GotWork;
                            }
                            StealOutcome::TimedOut => {
                                saw_work = true;
                                transport.after_timeout(comm, cx);
                            }
                            StealOutcome::Denied | StealOutcome::TermRaced => {}
                        }
                        dog.reset();
                    }
                }
            }
        }
        if crash {
            cx.recovery.heartbeat(comm);
            if cx.recovery.is_fenced() {
                // Evicted while stalled (partition/gray freeze): fold the
                // old incarnation's holdings and re-enter as a new one.
                crate::sched::refence(comm, stack, transport, cx);
                if !stack.is_local_empty() {
                    return Discovery::GotWork;
                }
            }
            cx.recovery.scan(comm);
            // Evictions this rank just executed by quorum: reclaim what the
            // transport can take over race-free, then release the scavenge
            // guard opened at the quorum vote.
            while let Some(victim) = cx.recovery.take_scavenge() {
                let items = transport.scavenge(comm, stack, victim, cx);
                cx.res.scavenged_nodes += items;
                let now = comm.now();
                cx.log.evict(victim, items, now);
                if items > 0 {
                    cx.recovery.publish_working(comm);
                }
                cx.recovery.guard_end(comm);
                if items > 0 {
                    transport.got_work(comm);
                    return Discovery::GotWork;
                }
            }
            if let Some((dead, items)) = cx.recovery.try_adopt(comm, stack) {
                cx.res.recovered_nodes += items;
                let now = comm.now();
                cx.log.adopt(dead, items, now);
                transport.got_work(comm);
                return Discovery::GotWork;
            }
        }
        backoff = if saw_work {
            SVC_IDLE_BACKOFF_NS.max(ST::IDLE_BACKOFF_NS)
        } else {
            (backoff * 2).min(cap)
        };
        comm.advance_idle(backoff);
    }
}

/// The service-mode worker driver: [`crate::sched::drive`]'s working loop
/// with epoch-stamped tasks, fused per-expansion deficit publication, the
/// rank-0 pump, and per-rank scanners; work discovery goes through
/// [`svc_discover`] instead of a [`crate::sched::TerminationDetector`].
fn drive_service<G, C, ST, VS>(
    comm: &mut C,
    gen: &G,
    cfg: &RunConfig,
    schedule: &[u64],
    mut transport: ST,
    mut victims: VS,
    probing: bool,
) -> ThreadResult
where
    G: ServiceWorkload,
    C: Comm<Stamped<G::Task>>,
    ST: StealTransport<Stamped<G::Task>, C>,
    VS: VictimSelector,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<Stamped<G::Task>> = DfsStack::new(cfg.chunk_size);
    let mut cx = Cx::new(cfg, comm.now());
    cx.recovery = Recovery::new(me, n, &cfg.faults);
    let crash = cx.recovery.active;
    cx.svc.activate(comm);
    transport.init(comm, &mut cx);
    transport.arm_service(stamp_epoch::<G::Task>);

    let mut pump = (me == 0).then(|| SvcPump::new(schedule, n));
    let mut scanner = Scanner::new(n);
    let mut kids: Vec<G::Task> = Vec::new();
    let mut scratch: Vec<Stamped<G::Task>> = Vec::new();

    'outer: loop {
        // ------------------------------------------------- Working (Fig. 1)
        cx.enter(comm, State::Working);
        transport.on_enter_working();
        let mut died = false;
        loop {
            if crash {
                if cx.recovery.kill_due(comm.now()) {
                    died = true;
                    break;
                }
                cx.recovery.heartbeat(comm);
                if cx.recovery.is_fenced() {
                    crate::sched::refence(comm, &mut stack, &mut transport, &mut cx);
                    continue 'outer;
                }
            }
            if let Some(p) = pump.as_mut() {
                p.tick(comm, gen, &mut stack, &mut cx);
            }
            scanner.tick(comm, &mut cx);
            if stack.is_local_empty() {
                if transport.refill(comm, &mut stack, &mut cx) {
                    continue;
                }
                break; // truly out of local work
            }
            let node = stack.pop().expect("nonempty local region");
            cx.res.nodes += 1;
            let e = node.epoch as usize;
            if cx.res.svc_epoch_nodes.len() <= e {
                cx.res.svc_epoch_nodes.resize(e + 1, 0);
            }
            cx.res.svc_epoch_nodes[e] += 1;
            if crash {
                cx.res.explored.push(gen.fingerprint(&node.task));
                cx.res.explored_epoch.push(node.epoch);
            }
            kids.clear();
            gen.expand(&node.task, &mut kids);
            // Publish-before-migration: one fused bump (−1 consumed parent,
            // +kids created children, all the same epoch) must be on this
            // rank's cell before any child can be stolen away.
            cx.svc.bump(comm, node.epoch, kids.len() as i64 - 1);
            scratch.clear();
            scratch.extend(kids.iter().map(|t| Stamped {
                task: *t,
                epoch: node.epoch,
            }));
            stack.push_all(&scratch);
            comm.work(gen.work_units(&node.task));
            transport.poll(comm, &mut stack, &mut cx);
            transport.maybe_release(comm, &mut stack, &mut cx);
        }
        if !died {
            transport.on_out_of_work(comm, &mut stack, &mut cx);
            // ------------------------------ Work discovery / service shutdown
            match svc_discover(
                comm,
                &mut stack,
                &mut transport,
                &mut victims,
                &mut cx,
                &mut pump,
                &mut scanner,
                gen,
                probing,
            ) {
                Discovery::GotWork => continue 'outer,
                Discovery::Terminated => break 'outer,
                Discovery::Died => {} // fall through to the deathbed
            }
        }

        // Deathbed, then (if the plan revives us) sit out the restart delay
        // and rejoin as a new incarnation — same shape as the batch driver.
        transport.deathbed(comm, &mut stack, &mut cx);
        let spilled = cx.recovery.spill_and_die(comm, &mut stack);
        cx.res.died = true;
        let now = comm.now();
        cx.log.death(spilled, now);
        let Some(at) = cx.recovery.restart_at() else {
            return cx.into_result(comm);
        };
        let now = comm.now();
        if at > now {
            comm.advance_idle(at - now);
        }
        let items = cx.recovery.restart(comm, &mut stack);
        cx.res.recovered_nodes += items;
        let now = comm.now();
        cx.log.rejoin(cx.recovery.incarnation(), items, now);
    }

    transport.finish(comm, &mut stack, &mut cx);
    cx.into_result(comm)
}

/// One completed request's statistics in a [`ServiceReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestStat {
    /// Submission epoch (arrival order).
    pub epoch: u32,
    /// Scheduled arrival instant (virtual ns) from the arrival process.
    pub scheduled_ns: u64,
    /// Instant rank 0 actually injected the root (≥ scheduled; later when
    /// the admission window deferred it).
    pub injected_ns: u64,
    /// Instant a scanner declared the epoch quiescent.
    pub completed_ns: u64,
    /// `completed_ns − scheduled_ns`: the client-visible latency, including
    /// deferral and detection time.
    pub latency_ns: u64,
    /// Tree nodes explored for this request (including crash-mode
    /// duplicates).
    pub nodes: u64,
    /// Nodes explored more than once (crash runs; 0 otherwise).
    pub dup_nodes: u64,
}

/// Aggregate results of a service run, attached to
/// [`RunReport::service`](crate::report::RunReport::service).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceReport {
    /// Number of requests in the arrival schedule (all must complete).
    pub requests: usize,
    /// How many injections the admission window deferred past their
    /// scheduled arrival (each epoch counted once).
    pub deferred_injections: u64,
    /// Per-request statistics, in epoch order.
    pub per_request: Vec<RequestStat>,
    /// Log-bucketed latency histogram over all requests; quantiles via
    /// [`LatencyHistogram::quantile`].
    pub hist: LatencyHistogram,
}

/// Sequentially expand request `epoch`'s tree; returns the node count and,
/// when `fps` is given, pushes every node's fingerprint.
fn seq_request<G: ServiceWorkload>(gen: &G, epoch: u32, mut fps: Option<&mut Vec<u64>>) -> u64 {
    let mut stack = vec![gen.request_root(epoch)];
    let mut scratch = Vec::new();
    let mut nodes = 0u64;
    while let Some(t) = stack.pop() {
        nodes += 1;
        if let Some(f) = fps.as_deref_mut() {
            f.push(gen.fingerprint(&t));
        }
        scratch.clear();
        gen.expand(&t, &mut scratch);
        stack.extend_from_slice(&scratch);
    }
    nodes
}

/// Run a service-mode workload on the virtual-time simulator: `nthreads`
/// simulated ranks over `machine`'s cost model, with root tasks injected
/// per `arrivals` (see [`pgas::ArrivalSpec`]). Deterministic for a fixed
/// (config, arrival spec) pair on either conductor; panics if any request
/// fails per-epoch conservation or never completes.
///
/// Service mode is sim-only: arrivals are scheduled on the virtual clock,
/// so there is no native-backend analogue.
pub fn run_service_sim<G>(
    machine: MachineModel,
    nthreads: usize,
    gen: &G,
    cfg: &RunConfig,
    arrivals: &ArrivalSpec,
) -> RunReport
where
    G: ServiceWorkload,
{
    let machine_name = machine.name;
    let mut armed = *cfg;
    if armed.steal_timeout_ns.is_none() {
        // Always armed in service mode — see the module docs (exit race).
        armed.steal_timeout_ns = Some(SVC_STEAL_TIMEOUT_NS);
    }
    let cfg = &armed;
    if let Err(e) = crate::engine::check_crash_fingerprints(gen, cfg) {
        panic!("{e}");
    }
    let schedule = arrivals.schedule();
    let schedule = &schedule[..];
    let spec = cfg.bundle();
    let mut cluster: SimCluster<Stamped<G::Task>> =
        SimCluster::new(machine, nthreads, vars::space_config_for(gen, nthreads))
            .with_lookahead(cfg.sim_lookahead)
            .with_faults(cfg.faults);
    if cfg.sim_workers > 0 {
        // 0 keeps the builder's default: inherit UTS_SIM_WORKERS.
        cluster = cluster.with_workers(cfg.sim_workers);
    }
    let report = cluster.run(|comm| {
        let me = comm.my_id();
        let n = comm.n_threads();
        let victims = spec.victims.build(me, n, cfg.seed, comm.machine());
        let sp = spec.steal;
        let mut res = match spec.transport {
            TransportKind::Locked => {
                drive_service(comm, gen, cfg, schedule, LockedTransport::new(sp), victims, true)
            }
            TransportKind::DistMem => {
                drive_service(comm, gen, cfg, schedule, DistMemTransport::new(sp), victims, true)
            }
            TransportKind::MpiMsg => {
                drive_service(comm, gen, cfg, schedule, MpiTransport::new(sp), victims, false)
            }
            TransportKind::PushMsg => drive_service(
                comm,
                gen,
                cfg,
                schedule,
                PushTransport::new(me, n, cfg.seed),
                victims,
                false,
            ),
        };
        if cfg.faults.crash_active() {
            // A dead rank can never join the collective (as in batch mode).
            res.reduced_total = 0;
        } else {
            let mut coll = Collectives::new(vars::COLL_BASE);
            res.reduced_total = coll.all_reduce_sum(comm, res.nodes as i64) as u64;
        }
        res
    });
    assemble_service(
        cfg,
        machine_name,
        nthreads,
        gen,
        schedule,
        report.makespan_ns,
        report.results,
    )
}

/// Host-side assembly and conservation checking for a service run: dedup
/// scanner declarations, pair injections with completions, verify every
/// epoch's node count against a sequential re-expansion (with
/// conservation-with-multiplicity under crash plans), and build the
/// latency histogram.
fn assemble_service<G: ServiceWorkload>(
    cfg: &RunConfig,
    machine: &'static str,
    threads: usize,
    gen: &G,
    schedule: &[u64],
    makespan_ns: u64,
    per_thread: Vec<ThreadResult>,
) -> RunReport {
    let crash = cfg.faults.crash_active();
    let n_requests = schedule.len();
    let total_nodes: u64 = per_thread.iter().map(|t| t.nodes).sum();
    if !crash {
        for (t, r) in per_thread.iter().enumerate() {
            assert_eq!(
                r.reduced_total, total_nodes,
                "thread {t}: in-band reduced total disagrees with host-side sum"
            );
        }
    }

    // Injections come from rank 0's pump, already in epoch order.
    let mut injections: Vec<(u32, u64, u64)> = Vec::with_capacity(n_requests);
    for t in &per_thread {
        injections.extend(t.svc_injections.iter().copied());
    }
    injections.sort_unstable();
    assert_eq!(injections.len(), n_requests, "not every request was injected");

    // Completions: keep the earliest declaration per epoch (a reassigned
    // scan can declare twice after a scanner death).
    let mut completion: Vec<Option<u64>> = vec![None; n_requests];
    for t in &per_thread {
        for &(e, at) in &t.svc_completions {
            let c = &mut completion[e as usize];
            *c = Some(c.map_or(at, |prev| prev.min(at)));
        }
    }

    // Per-epoch explored-node counts across ranks.
    let mut epoch_nodes = vec![0u64; n_requests];
    for t in &per_thread {
        for (e, &v) in t.svc_epoch_nodes.iter().enumerate() {
            epoch_nodes[e] += v;
        }
    }

    // Conservation per epoch, against a sequential re-expansion of each
    // request tree.
    let mut dup_per_epoch = vec![0u64; n_requests];
    let mut max_multiplicity = 1u64;
    if crash {
        let mut mult_by_epoch: Vec<HashMap<u64, u64>> =
            (0..n_requests).map(|_| HashMap::new()).collect();
        for t in &per_thread {
            assert_eq!(t.explored.len(), t.explored_epoch.len());
            for (fp, &e) in t.explored.iter().zip(&t.explored_epoch) {
                *mult_by_epoch[e as usize].entry(*fp).or_insert(0) += 1;
            }
        }
        for e in 0..n_requests {
            let mut fps = Vec::new();
            let seq = seq_request(gen, e as u32, Some(&mut fps));
            let mult = &mult_by_epoch[e];
            let dup: u64 = mult.values().map(|&m| m - 1).sum();
            dup_per_epoch[e] = dup;
            max_multiplicity = max_multiplicity.max(mult.values().copied().max().unwrap_or(1));
            let seq_set: HashSet<u64> = fps.iter().copied().collect();
            if seq_set.len() as u64 == seq {
                // Fingerprints are collision-free for this request:
                // conservation-with-multiplicity must hold exactly.
                assert_eq!(
                    mult.len() as u64,
                    seq,
                    "epoch {e}: unique explored nodes disagree with the request tree"
                );
                assert!(
                    mult.keys().all(|fp| seq_set.contains(fp)),
                    "epoch {e}: explored a fingerprint outside the request tree"
                );
                assert_eq!(
                    epoch_nodes[e],
                    seq + dup,
                    "epoch {e}: explored count is not tree + duplicates"
                );
            }
        }
    } else {
        for (e, &counted) in epoch_nodes.iter().enumerate() {
            let seq = seq_request(gen, e as u32, None);
            assert_eq!(
                counted, seq,
                "epoch {e}: explored {counted} nodes, sequential tree has {seq}"
            );
        }
    }

    // Pair every injection with its (mandatory) completion.
    let mut per_request = Vec::with_capacity(n_requests);
    let mut hist = LatencyHistogram::new();
    for (i, &(e, scheduled_ns, injected_ns)) in injections.iter().enumerate() {
        assert_eq!(e as usize, i, "injection epochs must be dense and ordered");
        let completed_ns = completion[i]
            .unwrap_or_else(|| panic!("epoch {i} was never declared quiescent"));
        let latency_ns = completed_ns.saturating_sub(scheduled_ns);
        hist.record(latency_ns);
        per_request.push(RequestStat {
            epoch: e,
            scheduled_ns,
            injected_ns,
            completed_ns,
            latency_ns,
            nodes: epoch_nodes[i],
            dup_nodes: dup_per_epoch[i],
        });
    }

    RunReport {
        label: cfg.algorithm.label(),
        machine,
        threads,
        chunk_size: cfg.chunk_size,
        total_nodes,
        makespan_ns,
        recovered_nodes: per_thread.iter().map(|t| t.recovered_nodes).sum(),
        duplicate_nodes: dup_per_epoch.iter().sum(),
        max_multiplicity,
        deaths: per_thread.iter().filter(|t| t.died).count(),
        evictions: per_thread.iter().map(|t| t.evictions).sum(),
        rejoins: per_thread.iter().map(|t| t.rejoins).sum(),
        steal_attempts: per_thread
            .iter()
            .map(|t| t.steals_ok + t.steals_failed)
            .sum(),
        successful_steals: per_thread.iter().map(|t| t.steals_ok).sum(),
        critical_path_len: gen.critical_path_len().unwrap_or(0),
        service: Some(ServiceReport {
            requests: n_requests,
            deferred_injections: per_thread.iter().map(|t| t.svc_deferred).sum(),
            per_request,
            hist,
        }),
        per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use pgas::ArrivalSpec;

    #[test]
    fn packed_cells_roundtrip() {
        for wc in [0u32, 1, 7, WCOUNT_MASK, WCOUNT_MASK + 3] {
            for d in [0i64, 1, -1, 12345, -9876, DEFICIT_BIAS - 1, 1 - DEFICIT_BIAS] {
                let cell = pack(wc, d);
                assert_eq!(unpack_deficit(cell), d, "wc={wc} d={d}");
                // A raw zero cell is distinguishable from any packed cell.
                assert_ne!(cell, 0, "pack({wc}, {d}) collides with the raw cell");
            }
        }
        assert_eq!(unpack_deficit(0), -DEFICIT_BIAS);
        // The write count wraps at 24 bits without touching the deficit.
        assert_eq!(pack(WCOUNT_MASK + 1, 5), pack(0, 5));
        assert_ne!(pack(1, 5), pack(2, 5));
    }

    #[test]
    fn uts_requests_differ_by_epoch_and_epoch0_is_batch_root() {
        let gen = UtsGen::new(uts_tree::presets::t_tiny().spec);
        assert_eq!(gen.request_root(0), gen.root());
        assert_ne!(
            gen.fingerprint(&gen.request_root(0)),
            gen.fingerprint(&gen.request_root(1))
        );
    }

    #[test]
    fn service_conserves_and_completes_every_request() {
        let gen = SyntheticGen {
            branch: 2,
            depth: 5,
        };
        let cfg = RunConfig::new(Algorithm::DistMem, 2);
        // 20 requests > SVC_WINDOW exercises slot reuse across classes.
        let arrivals = ArrivalSpec::poisson(7, 20, 20_000.0);
        let report = run_service_sim(MachineModel::smp(), 4, &gen, &cfg, &arrivals);
        let svc = report.service.as_ref().expect("service report attached");
        assert_eq!(svc.requests, 20);
        assert_eq!(svc.per_request.len(), 20);
        assert_eq!(svc.hist.count(), 20);
        for r in &svc.per_request {
            assert_eq!(r.nodes, gen.size(), "epoch {}", r.epoch);
            assert_eq!(r.dup_nodes, 0);
            assert!(r.injected_ns >= r.scheduled_ns, "epoch {}", r.epoch);
            assert!(r.completed_ns > r.injected_ns, "epoch {}", r.epoch);
            assert_eq!(r.latency_ns, r.completed_ns - r.scheduled_ns);
        }
        assert_eq!(report.total_nodes, gen.size() * 20);
        assert!(svc.hist.p50() > 0);
        assert!(svc.hist.p999() >= svc.hist.p50());
    }

    #[test]
    fn service_runs_identically_twice() {
        let gen = UtsGen::new(uts_tree::TreeSpec::binomial(11, 6, 2, 0.4));
        let cfg = RunConfig::new(Algorithm::MpiWs, 2);
        let arrivals = ArrivalSpec::mmpp(3, 8, 5_000.0, 60_000.0, 300_000);
        let a = run_service_sim(MachineModel::smp(), 3, &gen, &cfg, &arrivals);
        let b = run_service_sim(MachineModel::smp(), 3, &gen, &cfg, &arrivals);
        assert_eq!(a.service, b.service);
        assert_eq!(a.makespan_ns, b.makespan_ns);
    }

    #[test]
    fn pushing_transport_supports_service_mode() {
        let gen = SyntheticGen {
            branch: 3,
            depth: 3,
        };
        let cfg = RunConfig::new(Algorithm::Pushing, 2);
        let arrivals = ArrivalSpec::poisson(5, 4, 50_000.0);
        let report = run_service_sim(MachineModel::smp(), 3, &gen, &cfg, &arrivals);
        let svc = report.service.unwrap();
        assert_eq!(svc.per_request.len(), 4);
        assert_eq!(report.total_nodes, gen.size() * 4);
    }
}
