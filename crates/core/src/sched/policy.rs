//! Steal-amount and victim-selection policies: the two "how much / from
//! whom" axes of the scheduler core.
//!
//! Steal amounts are the §3.1 → §3.3.2 refinement (one chunk vs. half the
//! victim's surplus), plus an adaptive extension in the spirit of per-victim
//! steal-amount adaptation in distributed task runtimes. Victim selection is
//! §3.1's flat pseudo-random probe order vs. the §6.2 hierarchical
//! same-node-first order ([`crate::probe`]).

use pgas::MachineModel;

use crate::probe::ProbeOrder;

/// How many chunks move per successful steal: the grant-sizing policy a
/// victim (or lock-holding thief) applies to its stealable surplus.
///
/// Contract: `amount(0) == 0` and `amount(avail) <= avail` — a policy can
/// never grant work that is not there.
pub trait StealPolicy {
    /// Chunks to transfer when `avail` chunks are stealable.
    fn amount(&self, avail: usize) -> usize;
}

/// §3.1: one chunk per steal — minimal transfer cost, slow diffusion.
#[derive(Clone, Copy, Debug, Default)]
pub struct StealOne;

impl StealPolicy for StealOne {
    fn amount(&self, avail: usize) -> usize {
        avail.min(1)
    }
}

/// §3.3.2 rapid diffusion: half the available chunks (rounded down), or the
/// single chunk when only one is there. "Stealing half ... allows work to
/// diffuse more rapidly through the pool of idle processors."
#[derive(Clone, Copy, Debug, Default)]
pub struct StealHalf;

impl StealPolicy for StealHalf {
    fn amount(&self, avail: usize) -> usize {
        if avail > 1 {
            avail / 2
        } else {
            avail
        }
    }
}

/// Extension: adapt the transfer to the victim's surplus depth. Poor victims
/// (≤ 2 chunks) yield a single chunk — minimal disruption where steal-half
/// would strip them anyway; moderately rich victims diffuse half (§3.3.2);
/// very rich victims (≥ 8 chunks) yield three quarters, spreading hoarded
/// subtrees aggressively so diffusion does not bottleneck on one deep stack
/// at large thread counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveDepth;

impl StealPolicy for AdaptiveDepth {
    fn amount(&self, avail: usize) -> usize {
        match avail {
            0 => 0,
            1..=2 => 1,
            3..=7 => avail / 2,
            _ => avail - avail / 4,
        }
    }
}

/// Value-level steal policy, for storing in the (`Copy`) run configuration
/// and in transport state. Implements [`StealPolicy`] by delegating to the
/// corresponding unit policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StealPolicyKind {
    /// [`StealOne`].
    One,
    /// [`StealHalf`].
    Half,
    /// [`AdaptiveDepth`].
    Adaptive,
}

impl StealPolicyKind {
    /// Short label for reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            StealPolicyKind::One => "one",
            StealPolicyKind::Half => "half",
            StealPolicyKind::Adaptive => "adaptive",
        }
    }
}

impl StealPolicy for StealPolicyKind {
    fn amount(&self, avail: usize) -> usize {
        match self {
            StealPolicyKind::One => StealOne.amount(avail),
            StealPolicyKind::Half => StealHalf.amount(avail),
            StealPolicyKind::Adaptive => AdaptiveDepth.amount(avail),
        }
    }
}

/// Which victim-order construction a bundle uses. Both resolve to a
/// [`ProbeOrder`] — the single xorshift/Fisher–Yates source in the codebase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// Flat pseudo-random order over all other threads (§3.1).
    Flat,
    /// Same-node victims first, classified by [`MachineModel::distance`]
    /// (§6.2's `bupc_thread_distance()` idea).
    Hier,
}

impl VictimPolicy {
    /// Short label for reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Flat => "flat",
            VictimPolicy::Hier => "hier",
        }
    }

    /// Build this thread's probe-order generator.
    pub fn build(self, me: usize, n: usize, seed: u64, machine: &MachineModel) -> ProbeOrder {
        match self {
            VictimPolicy::Flat => ProbeOrder::flat(me, n, seed),
            VictimPolicy::Hier => ProbeOrder::hierarchical(me, n, seed, machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_contract(p: &dyn Fn(usize) -> usize) {
        assert_eq!(p(0), 0, "amount(0) must be 0");
        for avail in 1..=64 {
            let a = p(avail);
            assert!(a >= 1, "nonzero surplus must grant at least one chunk");
            assert!(a <= avail, "cannot grant more than available");
        }
    }

    #[test]
    fn all_policies_satisfy_the_contract() {
        check_contract(&|a| StealOne.amount(a));
        check_contract(&|a| StealHalf.amount(a));
        check_contract(&|a| AdaptiveDepth.amount(a));
        for kind in [
            StealPolicyKind::One,
            StealPolicyKind::Half,
            StealPolicyKind::Adaptive,
        ] {
            check_contract(&|a| kind.amount(a));
        }
    }

    #[test]
    fn half_matches_the_paper_rule() {
        assert_eq!(StealHalf.amount(1), 1);
        assert_eq!(StealHalf.amount(2), 1);
        assert_eq!(StealHalf.amount(7), 3);
        assert_eq!(StealHalf.amount(8), 4);
    }

    #[test]
    fn adaptive_has_three_regimes() {
        // Poor victims: one chunk, where half would take the same or more.
        assert_eq!(AdaptiveDepth.amount(1), 1);
        assert_eq!(AdaptiveDepth.amount(2), 1);
        // Middling: rapid diffusion.
        assert_eq!(AdaptiveDepth.amount(4), 2);
        assert_eq!(AdaptiveDepth.amount(7), 3);
        // Rich: three quarters — strictly more aggressive than half.
        assert_eq!(AdaptiveDepth.amount(8), 6);
        assert_eq!(AdaptiveDepth.amount(16), 12);
        assert!(AdaptiveDepth.amount(12) > StealHalf.amount(12));
    }

    #[test]
    fn kind_delegates_to_unit_policies() {
        for avail in 0..=32 {
            assert_eq!(StealPolicyKind::One.amount(avail), StealOne.amount(avail));
            assert_eq!(StealPolicyKind::Half.amount(avail), StealHalf.amount(avail));
            assert_eq!(
                StealPolicyKind::Adaptive.amount(avail),
                AdaptiveDepth.amount(avail)
            );
        }
    }
}
