//! Termination-detection policies: how an out-of-work thread discovers more
//! work or proves global quiescence.
//!
//! Three detectors cover the paper's spectrum:
//!
//! - [`CancelableTerm`] (§3.1): enter a cancelable barrier after every
//!   unsuccessful probe sweep; any release resets the barrier.
//! - [`StreamlinedTerm`] (§3.3.1): enter the barrier only when a full sweep
//!   saw every other thread out of work (the tri-state reading of
//!   `work_avail`), keep probing one victim per spin from inside, announce
//!   termination down a binary tree.
//! - [`RingTerm`] (§3.2): Dinan et al.'s counting token ring over message
//!   transports — no shared counters at all.
//!
//! Each detector drives the transport through the same narrow hook set
//! ([`StealTransport`]), so any probing detector composes with any
//! shared-region transport and the ring with any message transport.

use pgas::comm::Item;
use pgas::Comm;

use mpisim::TokenRing;

use crate::barrier::{
    BarrierOutcome, CancelableBarrier, TerminationBarrier, BARRIER_BACKOFF_NS,
};
use crate::probe::VictimSelector;
use crate::recovery::CRASH_IDLE_BACKOFF_NS;
use crate::stack::DfsStack;
use crate::state::State;
use crate::watchdog::Watchdog;

use super::{Cx, Discovery, StealOutcome, StealTransport};

/// One iteration of the crash-mode recovery protocol an idle rank must run:
/// heartbeat (with the piggybacked self-fence check), membership scan
/// (death confirmation, quorum eviction, re-admission), eviction scavenge,
/// orphan adoption, and the quiescence check (rank 0 scans and broadcasts;
/// everyone else watches its `TERM` cell). Returns a verdict when the
/// iteration acquired work or proved termination.
fn crash_tick<T, C, ST>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    cx: &mut Cx,
) -> Option<Discovery>
where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
{
    cx.recovery.heartbeat(comm);
    if cx.recovery.is_fenced() {
        // Our tenancy was revoked while we were stalled: fold what the old
        // incarnation held and re-enter as a new one.
        super::refence(comm, stack, transport, cx);
        if !stack.is_local_empty() {
            return Some(Discovery::GotWork);
        }
    }
    cx.recovery.scan(comm);
    // Evictions this rank just executed: reclaim what the transport can
    // take over race-free, then release the scavenge guard opened at the
    // quorum vote.
    while let Some(victim) = cx.recovery.take_scavenge() {
        let items = transport.scavenge(comm, stack, victim, cx);
        cx.res.scavenged_nodes += items;
        let now = comm.now();
        cx.log.evict(victim, items, now);
        if items > 0 {
            // Working-before-unguard (see crate::recovery).
            cx.recovery.publish_working(comm);
        }
        cx.recovery.guard_end(comm);
        if items > 0 {
            transport.got_work(comm);
            return Some(Discovery::GotWork);
        }
    }
    if let Some((dead, items)) = cx.recovery.try_adopt(comm, stack) {
        cx.res.recovered_nodes += items;
        let now = comm.now();
        cx.log.adopt(dead, items, now);
        transport.got_work(comm);
        return Some(Discovery::GotWork);
    }
    let done = if comm.my_id() == 0 {
        cx.recovery.quiescence_check(comm)
    } else {
        cx.recovery.term_seen(comm)
    };
    // A rank may not exit while it alone holds open lineage payloads (a
    // fenced zombie's pushes to already-exited ranks land in mailboxes no
    // one drains); the periodic lineage service re-injects them within
    // REINJECT_TIMEOUT_NS and the next iteration finds the work.
    (done && transport.inflight() == 0).then_some(Discovery::Terminated)
}

/// Crash-mode work discovery for the probing detectors (§3.1 and §3.3.1
/// both): the barriers are unusable with a rank missing, so the idle loop
/// probes live victims for work — each steal wrapped in a `LIN_OUT` guard so
/// quiescence can never slip between the victim's counter update and the
/// thief's working marker — and interleaves the recovery protocol.
fn discover_probing_crash<T, C, ST, VS>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    victims: &mut VS,
    cx: &mut Cx,
) -> Discovery
where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
    VS: VictimSelector,
{
    cx.enter(comm, State::Searching);
    cx.recovery.publish_out(comm);
    let mut dog = Watchdog::new("crash-mode work discovery");
    loop {
        dog.tick();
        if cx.recovery.kill_due(comm.now()) {
            return Discovery::Died;
        }
        transport.idle_service(comm, stack, cx);
        if transport.absorb_pending(comm, stack, cx) || !stack.is_local_empty() {
            cx.recovery.publish_working(comm);
            transport.got_work(comm);
            return Discovery::GotWork;
        }
        for v in victims.cycle() {
            if cx.recovery.is_gone(v) {
                continue;
            }
            cx.res.probes += 1;
            if transport.probe(comm, v) > 0 {
                cx.enter(comm, State::Stealing);
                cx.recovery.guard_begin(comm);
                let outcome = transport.steal(comm, stack, v, cx);
                if outcome == StealOutcome::Got {
                    // Working-before-unguard (see crate::recovery).
                    cx.recovery.publish_working(comm);
                }
                cx.recovery.guard_end(comm);
                cx.enter(comm, State::Searching);
                match outcome {
                    StealOutcome::Got => {
                        transport.got_work(comm);
                        return Discovery::GotWork;
                    }
                    StealOutcome::TimedOut => transport.after_timeout(comm, cx),
                    StealOutcome::Denied | StealOutcome::TermRaced => {}
                }
                dog.reset();
            }
            transport.idle_service(comm, stack, cx);
        }
        if let Some(v) = crash_tick(comm, stack, transport, cx) {
            return v;
        }
        comm.advance_idle(CRASH_IDLE_BACKOFF_NS);
    }
}

/// Crash-mode work discovery for the message transports: the counting token
/// ring is unsound under loss/duplication (its transfer counts can never
/// balance), so crash runs bypass the ring entirely. Stealing transports
/// probe one live victim per iteration (the transport itself publishes the
/// working marker and ACKs before any counter clears); the pushing transport
/// parks, absorbing and acknowledging pushed chunks. Both interleave the
/// recovery protocol.
fn discover_message_crash<T, C, ST, VS>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    victims: &mut VS,
    cx: &mut Cx,
) -> Discovery
where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
    VS: VictimSelector,
{
    cx.enter(comm, State::Searching);
    cx.recovery.publish_out(comm);
    let mut dog = Watchdog::new("crash-mode work discovery (message)");
    let mut cycle = victims.cycle();
    let mut next = 0usize;
    loop {
        dog.tick();
        if cx.recovery.kill_due(comm.now()) {
            return Discovery::Died;
        }
        transport.idle_service(comm, stack, cx);
        if transport.absorb_pending(comm, stack, cx) || !stack.is_local_empty() {
            cx.recovery.publish_working(comm);
            transport.got_work(comm);
            return Discovery::GotWork;
        }
        if ST::STEALS {
            if next >= cycle.len() {
                cycle = victims.cycle();
                next = 0;
            }
            if !cycle.is_empty() {
                let v = cycle[next];
                next += 1;
                if !cx.recovery.is_gone(v) {
                    cx.res.probes += 1;
                    cx.enter(comm, State::Stealing);
                    let outcome = transport.steal(comm, stack, v, cx);
                    cx.enter(comm, State::Searching);
                    match outcome {
                        StealOutcome::Got => {
                            cx.recovery.publish_working(comm);
                            transport.got_work(comm);
                            return Discovery::GotWork;
                        }
                        StealOutcome::TimedOut => transport.after_timeout(comm, cx),
                        StealOutcome::Denied | StealOutcome::TermRaced => {}
                    }
                    dog.reset();
                }
            }
        }
        if let Some(v) = crash_tick(comm, stack, transport, cx) {
            return v;
        }
        comm.advance_idle(CRASH_IDLE_BACKOFF_NS);
    }
}

/// How an idle worker finds more work or detects global termination — the
/// §3.1 → §3.3.1 → §3.2 policy axis.
pub trait TerminationDetector<T: Item, C: Comm<T>> {
    /// The owner released a chunk; detectors whose protocol must observe
    /// releases (the cancelable barrier) react here.
    fn on_release(&mut self, _comm: &mut C) {}

    /// The worker is out of local and shared work: probe, steal, or park
    /// until either work is in hand or termination is proven. On
    /// [`Discovery::GotWork`] the transport has already placed work on
    /// `stack`.
    fn discover<ST, VS>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        transport: &mut ST,
        victims: &mut VS,
        cx: &mut Cx,
    ) -> Discovery
    where
        ST: StealTransport<T, C>,
        VS: VictimSelector;
}

/// Result of one full probe sweep over a victim cycle.
enum Sweep {
    /// A steal landed: work is on the stack.
    Stole,
    /// Every probed thread advertised "out of work" (§3.3.1's entry
    /// condition for the termination barrier).
    AllOut,
    /// At least one thread was still working (or a steal raced and failed).
    SomeWorking,
}

/// One probe cycle over every victim: examine advertised work levels without
/// locking (§3.1), steal where surplus shows, and keep the transport's
/// protocol responsive between probes.
fn sweep<T, C, ST, VS>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    victims: &mut VS,
    cx: &mut Cx,
) -> Sweep
where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
    VS: VictimSelector,
{
    let mut all_out = true;
    for v in victims.cycle() {
        cx.res.probes += 1;
        let avail = transport.probe(comm, v);
        if avail > 0 {
            cx.enter(comm, State::Stealing);
            if transport.steal(comm, stack, v, cx) == StealOutcome::Got {
                return Sweep::Stole;
            }
            cx.enter(comm, State::Searching);
            all_out = false; // it had work a moment ago
        } else if avail == 0 {
            all_out = false; // working, no surplus (§3.3.1 tri-state)
        }
        transport.idle_service(comm, stack, cx);
    }
    if all_out {
        Sweep::AllOut
    } else {
        Sweep::SomeWorking
    }
}

/// §3.3.1 in-barrier loop: spin on our local termination flag, probe a
/// single victim per iteration ("each thread that has entered the barrier
/// only inspects one other thread to avoid overwhelming the remaining
/// working threads"), leave the barrier to steal when one shows work.
/// Returns `true` on termination, `false` if we left with stolen work.
fn barrier_wait<T, C, ST, VS>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    victims: &mut VS,
    cx: &mut Cx,
) -> bool
where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
    VS: VictimSelector,
{
    if TerminationBarrier::enter(comm) {
        TerminationBarrier::announce_root(comm);
    }
    let mut dog = Watchdog::new(ST::BARRIER_WATCHDOG);
    loop {
        dog.tick();
        if TerminationBarrier::term_seen(comm) {
            TerminationBarrier::propagate(comm);
            return true;
        }
        transport.idle_service(comm, stack, cx);
        if let Some(v) = victims.one() {
            cx.res.probes += 1;
            if transport.probe(comm, v) > 0 {
                TerminationBarrier::leave(comm);
                if transport.steal(comm, stack, v, cx) == StealOutcome::Got {
                    return false;
                }
                if TerminationBarrier::enter(comm) {
                    TerminationBarrier::announce_root(comm);
                }
                // Seeing (even losing) work is observable progress.
                dog.reset();
            }
        }
        comm.advance_idle(BARRIER_BACKOFF_NS);
    }
}

/// §3.1 cancelable-barrier termination: enter the barrier after *any*
/// unsuccessful sweep; every release cancels it and sends waiters back out.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelableTerm;

impl<T: Item, C: Comm<T>> TerminationDetector<T, C> for CancelableTerm {
    fn on_release(&mut self, comm: &mut C) {
        // §3.1: every release resets the cancelable barrier so that waiting
        // threads come back for the fresh chunk.
        CancelableBarrier::cancel(comm);
    }

    fn discover<ST, VS>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        transport: &mut ST,
        victims: &mut VS,
        cx: &mut Cx,
    ) -> Discovery
    where
        ST: StealTransport<T, C>,
        VS: VictimSelector,
    {
        if cx.recovery.active {
            // Crash faults: a dead rank would park the cancelable barrier
            // forever; route through the recovery-aware discovery loop.
            return discover_probing_crash(comm, stack, transport, victims, cx);
        }
        cx.enter(comm, State::Searching);
        loop {
            if let Sweep::Stole = sweep(comm, stack, transport, victims, cx) {
                transport.got_work(comm);
                return Discovery::GotWork;
            }
            // §3.1: enter the barrier after any unsuccessful sweep.
            cx.enter(comm, State::Terminating);
            match CancelableBarrier::wait_with(comm, |c| {
                transport.idle_service(c, stack, cx)
            }) {
                BarrierOutcome::Terminated => return Discovery::Terminated,
                BarrierOutcome::Canceled => cx.enter(comm, State::Searching),
            }
        }
    }
}

/// §3.3.1 streamlined termination: full-cycle entry condition, in-barrier
/// probing on local flags, tree-based announcement.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamlinedTerm;

impl<T: Item, C: Comm<T>> TerminationDetector<T, C> for StreamlinedTerm {
    fn discover<ST, VS>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        transport: &mut ST,
        victims: &mut VS,
        cx: &mut Cx,
    ) -> Discovery
    where
        ST: StealTransport<T, C>,
        VS: VictimSelector,
    {
        if cx.recovery.active {
            // Crash faults: the termination barrier cannot fill with a rank
            // missing; route through the recovery-aware discovery loop.
            return discover_probing_crash(comm, stack, transport, victims, cx);
        }
        cx.enter(comm, State::Searching);
        loop {
            match sweep(comm, stack, transport, victims, cx) {
                Sweep::Stole => {
                    transport.got_work(comm);
                    return Discovery::GotWork;
                }
                // §3.3.1: "If it finds even a single thread still working,
                // it continues searching for work and does not enter the
                // barrier."
                Sweep::SomeWorking => continue,
                Sweep::AllOut => {
                    cx.enter(comm, State::Terminating);
                    if barrier_wait(comm, stack, transport, victims, cx) {
                        return Discovery::Terminated;
                    }
                    // Stole work from inside the barrier: back to work.
                    transport.got_work(comm);
                    return Discovery::GotWork;
                }
            }
        }
    }
}

/// §3.2 counting token ring ([`TokenRing`]): termination is proven when the
/// token completes two clean passes with globally balanced transfer-message
/// counts. With a stealing transport the detector interleaves one steal
/// attempt per ring step (Dinan et al.'s structure); with a pushing
/// transport ([`StealTransport::STEALS`] = `false`) idle threads simply
/// alternate mailbox absorption with ring steps.
#[derive(Debug)]
pub struct RingTerm {
    ring: TokenRing,
}

impl RingTerm {
    /// Ring membership for thread `me` of `n`.
    pub fn new(me: usize, n: usize) -> RingTerm {
        RingTerm {
            ring: TokenRing::new(me, n),
        }
    }
}

impl<T: Item, C: Comm<T>> TerminationDetector<T, C> for RingTerm {
    fn discover<ST, VS>(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        transport: &mut ST,
        victims: &mut VS,
        cx: &mut Cx,
    ) -> Discovery
    where
        ST: StealTransport<T, C>,
        VS: VictimSelector,
    {
        if cx.recovery.active {
            // Crash faults: the counting token ring is unsound under message
            // loss/duplication (transfer counts never balance) and a dead
            // rank breaks the ring; bypass it entirely.
            return discover_message_crash(comm, stack, transport, victims, cx);
        }
        if !ST::STEALS {
            // Work pushing: idle threads have no initiative — park in
            // Terminating, absorbing pushed chunks between ring steps.
            cx.enter(comm, State::Terminating);
            loop {
                if transport.absorb_pending(comm, stack, cx) {
                    return Discovery::GotWork;
                }
                let (sent, recv) = transport.ring_counts();
                if self.ring.step(comm, sent, recv) {
                    return Discovery::Terminated;
                }
                comm.advance_idle(ST::IDLE_BACKOFF_NS);
            }
        }

        // Stealing transport: one victim per iteration, alternating with
        // termination-token handling (Dinan et al. interleave the same way):
        // at large thread counts a full probe sweep between token steps
        // would park the token for thousands of messages.
        cx.enter(comm, State::Searching);
        let mut cycle = victims.cycle();
        let mut next = 0usize;
        loop {
            // Deny whatever arrived while we were idle.
            transport.idle_service(comm, stack, cx);
            // Late grants from timed-out victims are still work in hand.
            if transport.absorb_pending(comm, stack, cx) {
                return Discovery::GotWork;
            }
            if next >= cycle.len() {
                cycle = victims.cycle();
                next = 0;
            }
            if cycle.is_empty() {
                // Solo rank: nothing to steal from; go straight to the ring.
                cx.enter(comm, State::Terminating);
                let (sent, recv) = transport.ring_counts();
                if self.ring.step(comm, sent, recv) {
                    return Discovery::Terminated;
                }
                cx.enter(comm, State::Searching);
                continue;
            }
            let v = cycle[next];
            next += 1;
            cx.res.probes += 1;
            cx.enter(comm, State::Stealing);
            let outcome = transport.steal(comm, stack, v, cx);
            cx.enter(comm, State::Searching);
            match outcome {
                StealOutcome::Got => return Discovery::GotWork,
                StealOutcome::TimedOut => {
                    // Back off, then re-probe the next victim directly — no
                    // ring step: the timed-out request proves nothing about
                    // global quiescence.
                    transport.after_timeout(comm, cx);
                    continue;
                }
                StealOutcome::Denied | StealOutcome::TermRaced => {
                    cx.enter(comm, State::Terminating);
                    if outcome == StealOutcome::TermRaced {
                        // The announcement already proves quiescence; the
                        // ring must not step again (the token is retired).
                        return Discovery::Terminated;
                    }
                    let (sent, recv) = transport.ring_counts();
                    if self.ring.step(comm, sent, recv) {
                        return Discovery::Terminated;
                    }
                    comm.advance_idle(ST::IDLE_BACKOFF_NS);
                    cx.enter(comm, State::Searching);
                }
            }
        }
    }
}
