//! The policy-based scheduler core.
//!
//! The paper's refinement chain (§3.1 → §3.3.3) is a sequence of orthogonal
//! policy swaps — termination style, steal amount, stack synchronisation
//! discipline, victim order — so this module factors the worker into exactly
//! those axes:
//!
//! | Axis | Trait | Implementations |
//! |------|-------|-----------------|
//! | victim order | [`VictimSelector`] | flat random, hierarchical same-node-first ([`crate::probe`]) |
//! | steal amount | [`StealPolicy`](policy::StealPolicy) | one, half, adaptive-by-depth ([`policy`]) |
//! | termination | [`TerminationDetector`] | cancelable barrier, streamlined tri-state, counting token ring ([`termination`]) |
//! | transport | [`StealTransport`] | locked shared region, CAS request/response, mpisim messages, work pushing |
//!
//! [`drive`] is the single generic worker: the Figure-1 state machine,
//! per-state time accounting, trace emission, and the working loop
//! (pop/expand/push, periodic polling, release checks) live here **once**,
//! parameterized by the four policies. Each of the seven [`Algorithm`]
//! variants is now a named policy bundle ([`bundle`]), resolved by
//! [`bundle::run_bundle`] — and because the axes are independent, non-paper
//! combinations (hierarchical victims on the locked transport, adaptive
//! steal amounts on distmem) are one-line configurations instead of new
//! algorithm modules.
//!
//! **Bit-identity contract**: for the seven seed bundles, the sequence of
//! [`Comm`] operations issued by `drive` is identical, call for call, to the
//! pre-refactor monolithic loops. On the virtual-time simulator every comm
//! op advances the clock, so this is checked end-to-end by regenerating the
//! committed result CSVs — any stray operation shifts every subsequent
//! timestamp.
//!
//! [`Algorithm`]: crate::config::Algorithm

pub mod bundle;
pub mod policy;
pub mod termination;

use pgas::comm::Item;
use pgas::Comm;

use crate::config::RunConfig;
use crate::probe::VictimSelector;
use crate::recovery::Recovery;
use crate::report::ThreadResult;
use crate::service::SvcAccount;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;

pub use bundle::{run_bundle, BundleSpec, TerminationKind, TransportKind};
pub use policy::{StealPolicy, StealPolicyKind, VictimPolicy};
pub use termination::{CancelableTerm, RingTerm, StreamlinedTerm, TerminationDetector};

/// Per-worker bookkeeping threaded through every policy hook: configuration,
/// result counters, the Figure-1 state clock, and the trace log.
///
/// Policies mutate `res` and `log` directly (they own their protocol
/// counters and trace events); state transitions go through [`Cx::enter`] so
/// the clock and the log always agree on the timestamp.
pub struct Cx<'a> {
    /// The run configuration (chunk size, poll interval, timeouts, ...).
    pub cfg: &'a RunConfig,
    /// Per-thread counters accumulated by the driver and the policies.
    pub res: ThreadResult,
    /// Per-state virtual-time accounting (paper §6.2).
    pub clock: StateClock,
    /// Event recorder (no-op unless [`RunConfig::trace`] is set).
    pub log: TraceLog,
    /// Crash-recovery state (inert unless the fault plan has a crash class;
    /// see [`crate::recovery`]).
    pub recovery: Recovery,
    /// Service-mode per-epoch accounting (inert outside
    /// [`crate::service::run_service_sim`]; see [`crate::service`]).
    pub svc: SvcAccount,
}

impl<'a> Cx<'a> {
    /// Fresh context starting in [`State::Working`] at time `now`, with
    /// inert crash recovery ([`drive`] arms it from the fault plan).
    pub fn new(cfg: &'a RunConfig, now: u64) -> Cx<'a> {
        Cx {
            cfg,
            res: ThreadResult::default(),
            clock: StateClock::new(now),
            log: TraceLog::new(cfg.trace),
            recovery: Recovery::inactive(),
            svc: SvcAccount::inactive(),
        }
    }

    /// Transition to `state`, stamping the clock and the trace log with a
    /// single `now()` read (one per transition, as the accounting requires).
    #[inline]
    pub fn enter<T: Item, C: Comm<T>>(&mut self, comm: &mut C, state: State) {
        let now = comm.now();
        self.clock.transition(state, now);
        self.log.enter(state, now);
    }

    /// Close the books: final state interval, comm statistics, trace events.
    pub(crate) fn into_result<T: Item, C: Comm<T>>(self, comm: &mut C) -> ThreadResult {
        let mut res = self.res;
        let (state_ns, transitions) = self.clock.finish(comm.now());
        res.state_ns = state_ns;
        res.transitions = transitions;
        res.comm = comm.stats().clone();
        res.events = self.log.into_events();
        res.evictions = self.recovery.evictions;
        res.rejoins = self.recovery.rejoins;
        res
    }
}

/// What the termination detector's work-discovery phase concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discovery {
    /// Work is in hand (stolen or received); resume the working loop.
    GotWork,
    /// Global termination was detected; the worker is done.
    Terminated,
    /// This rank's scheduled crash fired while it was searching: run the
    /// deathbed spill and exit (crash-fault runs only).
    Died,
}

/// Outcome of one steal attempt against one victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealOutcome {
    /// Chunks arrived on the local stack.
    Got,
    /// The victim denied (no surplus, lost race, or stale probe).
    Denied,
    /// A termination announcement raced the request (message transports):
    /// the victim has already exited and global quiescence is proven.
    TermRaced,
    /// The armed steal timeout expired and the request was retracted
    /// (`docs/faults.md`); back off and re-probe elsewhere.
    TimedOut,
}

/// How a worker moves work and requests between threads — the
/// synchronisation discipline of the shared stack region, which is the §3.1
/// vs §3.2 vs §3.3.3 algorithmic difference.
///
/// Every method has a no-op default so each transport implements only the
/// hooks its protocol uses; the defaults are what the message transports
/// (which have no shared-region counters to maintain) want. The generic
/// driver and the [`TerminationDetector`]s call these hooks at exactly the
/// points the original monolithic loops performed the corresponding
/// operations, which is what makes policy composition preserve op sequences.
pub trait StealTransport<T: Item, C: Comm<T>> {
    /// Short transport name (for labels and diagnostics).
    const NAME: &'static str;
    /// Whether idle threads actively steal. `false` only for work *pushing*,
    /// where idle threads park in termination detection and wait for chunks
    /// to land in their mailbox.
    const STEALS: bool = true;
    /// Backoff charged between idle termination-protocol iterations
    /// (token-ring transports).
    const IDLE_BACKOFF_NS: u64 = 0;
    /// Watchdog label for the streamlined termination barrier loop.
    const BARRIER_WATCHDOG: &'static str = "termination barrier";

    /// One-time protocol setup before the root task is pushed (e.g. arming
    /// the distmem request cell).
    fn init(&mut self, _comm: &mut C, _cx: &mut Cx) {}

    /// Service mode is starting: the driver hands the transport an extractor
    /// mapping a task to its submission epoch, so crash-mode transfer
    /// accounting (grant absorption, ACK-closed lineage) can attribute moved
    /// items to epochs (see `docs/service.md`). Default no-op: the
    /// shared-region transports move items exactly once even across rank
    /// death and need no per-transfer accounting.
    fn arm_service(&mut self, _epoch_of: fn(&T) -> u32) {}

    /// Called at each (re-)entry of the Working state (resets poll counters).
    fn on_enter_working(&mut self) {}

    /// The local region drained: try to move work back from the shared
    /// region. Returns `true` if the local region is nonempty again.
    fn refill(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) -> bool {
        false
    }

    /// Per-node progress hook in the working loop (periodic request
    /// servicing / mailbox absorption, driven by `cfg.poll_interval`).
    fn poll(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {}

    /// Release surplus work if the local region is deep enough. Returns
    /// `true` if a release happened (the termination detector may need to
    /// know — the §3.1 cancelable barrier resets on every release).
    fn maybe_release(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) -> bool {
        false
    }

    /// The thread is entirely out of work: publish the tri-state marker,
    /// answer any straggler request, reclaim dead area space.
    fn on_out_of_work(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {}

    /// Read `victim`'s advertised work level (§3.3.1 tri-state: positive =
    /// stealable surplus, 0 = working without surplus, negative = out of
    /// work). Only called by probing termination detectors.
    fn probe(&mut self, _comm: &mut C, _victim: usize) -> i64 {
        unimplemented!("transport `{}` does not probe victims", Self::NAME)
    }

    /// Execute one steal against `victim` (the victim advertised work or a
    /// request is warranted). Chunks land on `stack` on success.
    fn steal(
        &mut self,
        _comm: &mut C,
        _stack: &mut DfsStack<T>,
        _victim: usize,
        _cx: &mut Cx,
    ) -> StealOutcome {
        unimplemented!("transport `{}` does not steal", Self::NAME)
    }

    /// A steal returned [`StealOutcome::TimedOut`]: charge and escalate the
    /// thief-side backoff before re-probing.
    fn after_timeout(&mut self, _comm: &mut C, _cx: &mut Cx) {}

    /// Stay responsive while idle: deny or service steal requests that
    /// arrive while this thread is searching or parked in a barrier.
    fn idle_service(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {}

    /// Absorb work that arrived asynchronously (pushed chunks, late grants
    /// from timed-out victims). Returns `true` if work is now in hand.
    fn absorb_pending(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) -> bool {
        false
    }

    /// Work was just acquired through the termination detector's discovery
    /// phase: re-advertise as working (clear the out-of-work marker).
    fn got_work(&mut self, _comm: &mut C) {}

    /// Cumulative (sent, received) transfer-message counts for the counting
    /// token ring. Only meaningful for message transports.
    fn ring_counts(&self) -> (i64, i64) {
        (0, 0)
    }

    /// This rank's scheduled crash arrived (crash-fault runs only): fold
    /// every node the protocol still holds responsibility for — shared-region
    /// chunks no thief has copied out, unacknowledged lineage grants — back
    /// into the local deque, and withdraw from any in-flight request, so the
    /// generic spill in [`drive`] publishes one complete snapshot. The same
    /// fold runs when a fenced rank re-enters via
    /// [`crate::recovery::Recovery::rejoin`].
    fn deathbed(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {}

    /// This rank just evicted `victim` by quorum (no deathbed): reclaim
    /// whatever shared-region work the transport can take over *race-free*.
    /// The locked transport empties the victim's advertised chunks under
    /// the victim's stack lock; transports whose owner-side bookkeeping a
    /// resuming zombie could silently race (distmem, the message
    /// transports) leave the work fenced with the zombie, which self-drains
    /// it after observing its eviction — multiplicity-safe either way
    /// (docs/faults.md §8). Scavenged items land on `stack`; returns their
    /// count.
    fn scavenge(
        &mut self,
        _comm: &mut C,
        _stack: &mut DfsStack<T>,
        _victim: usize,
        _cx: &mut Cx,
    ) -> u64 {
        0
    }

    /// Open lineage grants whose payloads only this rank still holds.
    /// Crash-mode termination must not let a rank exit while this is
    /// nonzero (a fenced zombie's re-released work could otherwise be lost
    /// in a mailbox no one drains); pure local read, no comm operations.
    fn inflight(&self) -> usize {
        0
    }

    /// Post-termination teardown (drain mailboxes, conservation asserts),
    /// before the state clock takes its final reading.
    fn finish(&mut self, _comm: &mut C, _stack: &mut DfsStack<T>, _cx: &mut Cx) {}
}

/// The single generic worker driver: the paper's Figure-1 state machine
/// parameterized by transport, termination detector, and victim selector
/// (the steal-amount policy lives inside the transport, where grant sizing
/// happens).
///
/// Custom harnesses can call this directly with hand-built policies; the
/// seven paper/extension algorithms go through [`bundle::run_bundle`].
pub fn drive<G, C, ST, TD, VS>(
    comm: &mut C,
    gen: &G,
    cfg: &RunConfig,
    mut transport: ST,
    mut td: TD,
    mut victims: VS,
) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
    ST: StealTransport<G::Task, C>,
    TD: TerminationDetector<G::Task, C>,
    VS: VictimSelector,
{
    let me = comm.my_id();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut cx = Cx::new(cfg, comm.now());
    cx.recovery = Recovery::new(me, comm.n_threads(), &cfg.faults);
    let crash = cx.recovery.active;
    let mut scratch: Vec<G::Task> = Vec::new();

    transport.init(comm, &mut cx);

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------- Working (Fig. 1)
        cx.enter(comm, State::Working);
        transport.on_enter_working();
        let mut died = false;
        loop {
            if crash {
                if cx.recovery.kill_due(comm.now()) {
                    died = true;
                    break;
                }
                cx.recovery.heartbeat(comm);
                if cx.recovery.is_fenced() {
                    refence(comm, &mut stack, &mut transport, &mut cx);
                    continue 'outer;
                }
            }
            if stack.is_local_empty() {
                if transport.refill(comm, &mut stack, &mut cx) {
                    continue;
                }
                break; // truly out of local work
            }
            let node = stack.pop().expect("nonempty local region");
            cx.res.nodes += 1;
            if crash {
                cx.res.explored.push(gen.fingerprint(&node));
            }
            scratch.clear();
            // Workloads with shared readiness state (task DAGs) publish it
            // inside expand_in, before the produced tasks are pushed and
            // before maybe_release can migrate them — tree workloads expand
            // purely, leaving the comm-op stream bit-identical.
            gen.expand_in(comm, &node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(gen.work_units(&node));
            transport.poll(comm, &mut stack, &mut cx);
            if transport.maybe_release(comm, &mut stack, &mut cx) {
                td.on_release(comm);
            }
        }

        if !died {
            transport.on_out_of_work(comm, &mut stack, &mut cx);
            // --------------- Work Discovery / Stealing / Termination (Fig. 1)
            match td.discover(comm, &mut stack, &mut transport, &mut victims, &mut cx) {
                Discovery::GotWork => continue 'outer,
                Discovery::Terminated => break 'outer,
                Discovery::Died => {} // fall through to the deathbed
            }
        }

        // Deathbed: the transport folds every chunk it is still responsible
        // for into the local deque, then the spill publishes the snapshot
        // (coordinates first, DEAD flag last) for a survivor to adopt.
        transport.deathbed(comm, &mut stack, &mut cx);
        let spilled = cx.recovery.spill_and_die(comm, &mut stack);
        cx.res.died = true;
        let now = comm.now();
        cx.log.death(spilled, now);
        let Some(at) = cx.recovery.restart_at() else {
            return cx.into_result(comm);
        };
        // The plan revives this rank: sit out the restart delay, reclaim
        // our own spill if no survivor beat us to it, and rejoin as a new
        // incarnation.
        let now = comm.now();
        if at > now {
            comm.advance_idle(at - now);
        }
        let items = cx.recovery.restart(comm, &mut stack);
        cx.res.recovered_nodes += items;
        let now = comm.now();
        cx.log.rejoin(cx.recovery.incarnation(), items, now);
    }

    transport.finish(comm, &mut stack, &mut cx);
    cx.into_result(comm)
}

/// A rank observed its own eviction fence: fold everything the old
/// incarnation still holds (the transport deathbed hook covers shared
/// chunks and open lineage), then re-enter as a new incarnation. Shared by
/// [`drive`] and the crash-mode discovery loops.
pub(crate) fn refence<T, C, ST>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    transport: &mut ST,
    cx: &mut Cx,
) where
    T: Item,
    C: Comm<T>,
    ST: StealTransport<T, C>,
{
    transport.deathbed(comm, stack, cx);
    cx.recovery.rejoin(comm, !stack.is_local_empty());
    if !stack.is_local_empty() {
        transport.got_work(comm);
    }
    let now = comm.now();
    cx.log.rejoin(cx.recovery.incarnation(), 0, now);
}
