//! Named policy bundles: each [`Algorithm`] variant resolved to a concrete
//! (victim, steal, termination, transport) quadruple, and the dispatcher
//! that instantiates the generic driver for it.
//!
//! | [`Algorithm`] | victims | steal | termination | transport |
//! |---------------|---------|-------|-------------|-----------|
//! | `SharedMem`   | flat    | one   | cancelable  | locked    |
//! | `Term`        | flat    | one   | streamlined | locked    |
//! | `TermRapdif`  | flat    | half  | streamlined | locked    |
//! | `DistMem`     | flat    | half  | streamlined | distmem   |
//! | `Hier`        | hier    | half  | streamlined | distmem   |
//! | `MpiWs`       | flat    | one   | token ring  | mpi-msg   |
//! | `Pushing`     | —       | —     | token ring  | push-msg  |
//!
//! [`RunConfig::victim_policy`] and [`RunConfig::steal_policy`] override the
//! bundle's victim/steal axes, which is how non-paper combinations
//! (hierarchical victims on the locked transport, adaptive steal on
//! distmem) are expressed — see `docs/policies.md`.

use pgas::Comm;

use crate::config::{Algorithm, RunConfig};
use crate::distmem::DistMemTransport;
use crate::locked::LockedTransport;
use crate::mpi_ws::MpiTransport;
use crate::pushing::PushTransport;
use crate::report::ThreadResult;
use crate::taskgen::TaskGen;

use super::policy::{StealPolicyKind, VictimPolicy};
use super::termination::{CancelableTerm, RingTerm, StreamlinedTerm};
use super::drive;

/// Which termination detector a bundle uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TerminationKind {
    /// §3.1 cancelable barrier ([`CancelableTerm`]).
    Cancelable,
    /// §3.3.1 streamlined tri-state barrier ([`StreamlinedTerm`]).
    Streamlined,
    /// §3.2 counting token ring ([`RingTerm`]).
    TokenRing,
}

/// Which steal transport a bundle runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// §3.1 lock-protected shared stack region ([`LockedTransport`]).
    Locked,
    /// §3.3.3 lock-less CAS request/response protocol ([`DistMemTransport`]).
    DistMem,
    /// §3.2 two-sided message exchange ([`MpiTransport`]).
    MpiMsg,
    /// Randomized work pushing ([`PushTransport`]).
    PushMsg,
}

/// A fully resolved policy quadruple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BundleSpec {
    /// Victim-order policy.
    pub victims: VictimPolicy,
    /// Steal-amount policy.
    pub steal: StealPolicyKind,
    /// Termination detector.
    pub termination: TerminationKind,
    /// Steal transport.
    pub transport: TransportKind,
}

impl Algorithm {
    /// The policy bundle this algorithm names (see the module table).
    pub fn bundle(self) -> BundleSpec {
        let (victims, steal, termination, transport) = match self {
            Algorithm::SharedMem => (
                VictimPolicy::Flat,
                StealPolicyKind::One,
                TerminationKind::Cancelable,
                TransportKind::Locked,
            ),
            Algorithm::Term => (
                VictimPolicy::Flat,
                StealPolicyKind::One,
                TerminationKind::Streamlined,
                TransportKind::Locked,
            ),
            Algorithm::TermRapdif => (
                VictimPolicy::Flat,
                StealPolicyKind::Half,
                TerminationKind::Streamlined,
                TransportKind::Locked,
            ),
            Algorithm::DistMem => (
                VictimPolicy::Flat,
                StealPolicyKind::Half,
                TerminationKind::Streamlined,
                TransportKind::DistMem,
            ),
            Algorithm::Hier => (
                VictimPolicy::Hier,
                StealPolicyKind::Half,
                TerminationKind::Streamlined,
                TransportKind::DistMem,
            ),
            Algorithm::MpiWs => (
                VictimPolicy::Flat,
                StealPolicyKind::One,
                TerminationKind::TokenRing,
                TransportKind::MpiMsg,
            ),
            // Pushing ships exactly one chunk to a uniformly random target;
            // the victim/steal axes are nominal (unused by the transport).
            Algorithm::Pushing => (
                VictimPolicy::Flat,
                StealPolicyKind::One,
                TerminationKind::TokenRing,
                TransportKind::PushMsg,
            ),
        };
        BundleSpec {
            victims,
            steal,
            termination,
            transport,
        }
    }
}

impl RunConfig {
    /// The effective bundle for this run: the algorithm's named bundle with
    /// any [`RunConfig::victim_policy`] / [`RunConfig::steal_policy`]
    /// overrides applied.
    pub fn bundle(&self) -> BundleSpec {
        let mut spec = self.algorithm.bundle();
        if let Some(v) = self.victim_policy {
            spec.victims = v;
        }
        if let Some(s) = self.steal_policy {
            spec.steal = s;
        }
        spec
    }
}

/// Virtual-time steal timeout auto-armed under crash-fault plans when the
/// config leaves [`RunConfig::steal_timeout_ns`] unset: a thief waiting on a
/// rank that died mid-request must eventually retract and re-probe, so the
/// paper's wait-forever default would hang.
pub const CRASH_STEAL_TIMEOUT_NS: u64 = 50_000;

/// Resolve `cfg`'s policy bundle and run the generic driver with it.
///
/// Under a crash-fault plan ([`pgas::FaultPlan::crash_active`]) an unset
/// [`RunConfig::steal_timeout_ns`] is auto-armed to
/// [`CRASH_STEAL_TIMEOUT_NS`] so no thief waits forever on a dead victim;
/// fault-free configs are passed through untouched.
///
/// Panics on a bundle whose termination detector cannot run over its
/// transport: the barriers need the shared `work_avail`/barrier cells the
/// message transports never publish, and the counting ring needs
/// transfer-message counts the shared-region transports never produce.
pub fn run_bundle<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let mut armed = *cfg;
    if armed.faults.crash_active() && armed.steal_timeout_ns.is_none() {
        armed.steal_timeout_ns = Some(CRASH_STEAL_TIMEOUT_NS);
    }
    let cfg = &armed;
    let spec = cfg.bundle();
    let me = comm.my_id();
    let n = comm.n_threads();
    let victims = spec.victims.build(me, n, cfg.seed, comm.machine());
    let sp = spec.steal;
    match (spec.transport, spec.termination) {
        (TransportKind::Locked, TerminationKind::Cancelable) => {
            drive(comm, gen, cfg, LockedTransport::new(sp), CancelableTerm, victims)
        }
        (TransportKind::Locked, TerminationKind::Streamlined) => {
            drive(comm, gen, cfg, LockedTransport::new(sp), StreamlinedTerm, victims)
        }
        (TransportKind::DistMem, TerminationKind::Cancelable) => {
            drive(comm, gen, cfg, DistMemTransport::new(sp), CancelableTerm, victims)
        }
        (TransportKind::DistMem, TerminationKind::Streamlined) => {
            drive(comm, gen, cfg, DistMemTransport::new(sp), StreamlinedTerm, victims)
        }
        (TransportKind::MpiMsg, TerminationKind::TokenRing) => {
            drive(comm, gen, cfg, MpiTransport::new(sp), RingTerm::new(me, n), victims)
        }
        (TransportKind::PushMsg, TerminationKind::TokenRing) => {
            drive(
                comm,
                gen,
                cfg,
                PushTransport::new(me, n, cfg.seed),
                RingTerm::new(me, n),
                victims,
            )
        }
        (transport, termination) => panic!(
            "unsupported policy bundle: {termination:?} termination cannot run over the \
             {transport:?} transport"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The policy-bundle equivalence test from the issue: each `Algorithm`
    /// maps to exactly the bundle the paper's refinement chain prescribes.
    #[test]
    fn algorithms_map_to_expected_bundles() {
        use StealPolicyKind as S;
        use TerminationKind as D;
        use TransportKind as T;
        use VictimPolicy as V;
        let expect = [
            (Algorithm::SharedMem, V::Flat, S::One, D::Cancelable, T::Locked),
            (Algorithm::Term, V::Flat, S::One, D::Streamlined, T::Locked),
            (Algorithm::TermRapdif, V::Flat, S::Half, D::Streamlined, T::Locked),
            (Algorithm::DistMem, V::Flat, S::Half, D::Streamlined, T::DistMem),
            (Algorithm::Hier, V::Hier, S::Half, D::Streamlined, T::DistMem),
            (Algorithm::MpiWs, V::Flat, S::One, D::TokenRing, T::MpiMsg),
            (Algorithm::Pushing, V::Flat, S::One, D::TokenRing, T::PushMsg),
        ];
        for (alg, v, s, d, t) in expect {
            let b = alg.bundle();
            assert_eq!(b.victims, v, "{}", alg.label());
            assert_eq!(b.steal, s, "{}", alg.label());
            assert_eq!(b.termination, d, "{}", alg.label());
            assert_eq!(b.transport, t, "{}", alg.label());
        }
    }

    #[test]
    fn config_overrides_replace_bundle_axes() {
        let mut cfg = RunConfig::new(Algorithm::TermRapdif, 4);
        assert_eq!(cfg.bundle(), Algorithm::TermRapdif.bundle());
        cfg.victim_policy = Some(VictimPolicy::Hier);
        cfg.steal_policy = Some(StealPolicyKind::Adaptive);
        let b = cfg.bundle();
        assert_eq!(b.victims, VictimPolicy::Hier);
        assert_eq!(b.steal, StealPolicyKind::Adaptive);
        // The structural axes are not overridable.
        assert_eq!(b.termination, TerminationKind::Streamlined);
        assert_eq!(b.transport, TransportKind::Locked);
    }
}
