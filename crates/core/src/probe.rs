//! Pseudo-random victim probe order (§3.1 "Work Discovery": "a pseudo-random
//! probe order is used to examine other threads' stacks"), plus the
//! hierarchical variant from §6.2's future work: probe threads on the same
//! compute node before going off-node.
//!
//! This module is the **only** place victim orders come from: every
//! transport receives its [`VictimSelector`] from the policy bundle (see
//! [`crate::sched`]), so there is exactly one xorshift/Fisher–Yates
//! implementation in the codebase and every algorithm draws from the same
//! decorrelated per-thread streams.

use pgas::{Distance, MachineModel};

/// Deterministic xorshift64* generator — cheap, seedable per thread, and
/// independent of any external crate so sim runs are bit-reproducible.
#[derive(Clone, Debug)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Seed the generator; a zero seed is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Chooses which victims a thread probes, and in what order. One of the four
/// policy axes of the scheduler core (see [`crate::sched`]); the driver and
/// the termination detectors are generic over this trait, so victim policy
/// composes with any transport.
pub trait VictimSelector {
    /// A fresh probe cycle: every potential victim exactly once.
    fn cycle(&mut self) -> Vec<usize>;
    /// A single victim (used while waiting in the barrier, where the paper
    /// limits each thread to "only inspect one other thread").
    fn one(&mut self) -> Option<usize>;
}

/// Produces victim probe orders for one thread. The sole [`VictimSelector`]
/// implementation: flat and hierarchical orders are the two constructions of
/// the same generator, so they share one RNG and one shuffle.
#[derive(Clone, Debug)]
pub struct ProbeOrder {
    me: usize,
    victims: Vec<usize>,
    rng: Xorshift,
    /// Same-node-first partitioning, using this machine's distance map.
    machine: Option<MachineModel>,
}

impl ProbeOrder {
    /// Flat pseudo-random order over all threads except `me`.
    pub fn flat(me: usize, n: usize, seed: u64) -> ProbeOrder {
        ProbeOrder {
            me,
            victims: (0..n).filter(|&t| t != me).collect(),
            rng: Xorshift::new(seed ^ (me as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
            machine: None,
        }
    }

    /// Hierarchical order: a random permutation of same-node victims first,
    /// then a random permutation of off-node victims (§6.2:
    /// "first try to steal work within a cluster node before probing
    /// off-node ... using bupc_thread_distance()"). Locality is classified
    /// by [`MachineModel::distance`], our `bupc_thread_distance` analog.
    pub fn hierarchical(me: usize, n: usize, seed: u64, machine: &MachineModel) -> ProbeOrder {
        let mut p = ProbeOrder::flat(me, n, seed);
        p.machine = Some(machine.clone());
        p
    }

    /// A fresh probe cycle: every other thread exactly once.
    pub fn cycle(&mut self) -> Vec<usize> {
        let mut order = self.victims.clone();
        self.rng.shuffle(&mut order);
        if let Some(machine) = &self.machine {
            // Stable partition: same-node victims keep their shuffled
            // relative order but come first.
            order.sort_by_key(|&v| machine.distance(self.me, v) == Distance::Remote);
        }
        order
    }

    /// A single random victim.
    pub fn one(&mut self) -> Option<usize> {
        if self.victims.is_empty() {
            None
        } else {
            Some(self.victims[self.rng.below(self.victims.len())])
        }
    }
}

impl VictimSelector for ProbeOrder {
    fn cycle(&mut self) -> Vec<usize> {
        ProbeOrder::cycle(self)
    }

    fn one(&mut self) -> Option<usize> {
        ProbeOrder::one(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_a_permutation_of_victims() {
        let mut p = ProbeOrder::flat(3, 8, 42);
        let mut c = p.cycle();
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn cycles_vary() {
        let mut p = ProbeOrder::flat(0, 16, 7);
        let a = p.cycle();
        let b = p.cycle();
        assert_ne!(a, b, "consecutive cycles should differ (whp)");
    }

    #[test]
    fn different_threads_get_different_orders() {
        let a = ProbeOrder::flat(0, 16, 7).cycle();
        let b = ProbeOrder::flat(1, 16, 7).cycle();
        let bx: Vec<usize> = b.iter().copied().filter(|&v| v != 0).collect();
        let ax: Vec<usize> = a.iter().copied().filter(|&v| v != 1).collect();
        assert_ne!(ax, bx, "probe orders must be decorrelated across threads");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ProbeOrder::flat(2, 8, 99).cycle();
        let b = ProbeOrder::flat(2, 8, 99).cycle();
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_probes_same_node_first() {
        let m = MachineModel::kittyhawk(); // 4 threads/node
        let mut p = ProbeOrder::hierarchical(5, 16, 3, &m);
        let c = p.cycle();
        // Thread 5 is on node 1 (threads 4-7); the first victims must be the
        // other three threads of node 1 in some order.
        let first: Vec<usize> = c[..3].to_vec();
        for v in first {
            assert_eq!(v / 4, 1, "same-node victims must come first: {c:?}");
        }
        assert_eq!(c.len(), 15);
    }

    #[test]
    fn one_never_returns_me() {
        let mut p = ProbeOrder::flat(1, 4, 5);
        for _ in 0..100 {
            assert_ne!(p.one(), Some(1));
        }
    }

    #[test]
    fn solo_thread_has_no_victims() {
        let mut p = ProbeOrder::flat(0, 1, 5);
        assert!(p.cycle().is_empty());
        assert_eq!(p.one(), None);
    }

    #[test]
    fn xorshift_below_in_range() {
        let mut r = Xorshift::new(0);
        for bound in 1..50 {
            for _ in 0..20 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
