//! `upc-distmem` (§3.3.3): the lock-less DFS stack with an asynchronous
//! request/response steal protocol — the paper's headline transport.
//!
//! Division of labour:
//!
//! - The **owner** has complete control of its own stack: it alone moves the
//!   region counters, so no lock exists on the stack at all. While working
//!   it polls a *local* request cell every `poll_interval` nodes ("the costs
//!   are minimal since it only involves a read of a local variable without
//!   locking").
//! - A **thief** that sees `work_avail > 0` at a victim CASes its thread id
//!   into the victim's request cell (our one remote atomic — the paper uses
//!   a small lock-protected request variable; a CAS is the modern identical-
//!   cost equivalent). It then spins on its *own* response cells until the
//!   victim answers with `(offset, amount)` or a denial, and finally pulls
//!   the granted chunks with a one-sided bulk get — "the victim is not
//!   required to actively participate".
//! - Servicing a request costs the victim **two remote writes** (response
//!   offset + amount) and a local reset of the request cell, exactly the
//!   §3.3.3 budget.
//!
//! The grant size comes from the bundle's [`StealPolicy`]: the paper's
//! `upc-distmem` uses steal-half (§3.3.2 rapid diffusion), and the same
//! transport serves steal-one or adaptive grants unchanged — the victim
//! alone sizes the grant, so the thief side is policy-oblivious.
//! Termination detection and victim order are likewise the bundle's choice
//! (see [`crate::sched::bundle`]); `upc-hier` is this transport with the
//! §6.2 same-node-first victim policy.
//!
//! # Timeout/retract hardening (`docs/faults.md`)
//!
//! The paper's thief waits on its response cell *forever*; a stalled victim
//! therefore stalls the thief too. When [`RunConfig::steal_timeout_ns`] is
//! armed, a thief whose wait exceeds the budget **retracts**: it CASes the
//! victim's request cell from its own id back to `NO_REQUEST`. Winning that
//! CAS proves the victim never observed the request (in hardened mode the
//! victim *claims* a request with the mirror CAS before acting on it), so
//! no grant can ever be issued against it — the thief safely abandons the
//! victim, backs off exponentially, and re-probes elsewhere. Losing the CAS
//! proves the victim already claimed the request at an earlier virtual
//! time, so a grant or denial is guaranteed to land in the thief's response
//! cells; the thief disarms the deadline and consumes it normally. Either
//! way a granted chunk is consumed exactly once: the request cell only
//! moves `NO_REQUEST → thief` (thief install) and `thief → NO_REQUEST`
//! (victim claim **or** thief retract, never both — CAS picks one winner).
//! The claim-CAS replaces the fault-free protocol's trailing plain-write
//! reset only when a timeout is armed, leaving the paper-faithful op
//! sequence (and its bit-exact virtual times) untouched otherwise.
//!
//! [`StealPolicy`]: crate::sched::policy::StealPolicy
//! [`RunConfig::steal_timeout_ns`]: crate::config::RunConfig::steal_timeout_ns

use pgas::comm::Item;
use pgas::Comm;

use crate::config::RunConfig;
use crate::report::ThreadResult;
use crate::sched::policy::{StealPolicy, StealPolicyKind};
use crate::sched::{Cx, StealOutcome, StealTransport};
use crate::stack::DfsStack;
use crate::trace::TraceLog;
use crate::vars;
use crate::watchdog::Watchdog;

/// Backoff while spinning on our own response cell (local reads).
const RESPONSE_BACKOFF_NS: u64 = 1_500;
/// Initial post-timeout backoff before re-probing; doubles per consecutive
/// timeout up to [`TIMEOUT_BACKOFF_MAX_NS`], resets on a successful steal.
const TIMEOUT_BACKOFF_MIN_NS: u64 = 4_000;
/// Cap on the post-timeout exponential backoff.
const TIMEOUT_BACKOFF_MAX_NS: u64 = 512_000;

/// §3.3.3's lock-less request/response protocol as a [`StealTransport`].
#[derive(Clone, Copy, Debug)]
pub struct DistMemTransport {
    sp: StealPolicyKind,
    since_poll: u64,
    /// Exponential backoff across consecutive steal timeouts (hardened mode).
    steal_backoff_ns: u64,
}

impl DistMemTransport {
    /// A distmem transport granting chunks per the given steal policy.
    pub fn new(sp: StealPolicyKind) -> DistMemTransport {
        DistMemTransport {
            sp,
            since_poll: 0,
            steal_backoff_ns: TIMEOUT_BACKOFF_MIN_NS,
        }
    }
}

impl<T: Item, C: Comm<T>> StealTransport<T, C> for DistMemTransport {
    const NAME: &'static str = "distmem";
    const BARRIER_WATCHDOG: &'static str = "distmem termination barrier";

    fn init(&mut self, comm: &mut C, _cx: &mut Cx) {
        // Scalar cells start at 0; the request cell's idle value is -1. Arm
        // it before any exploration (thieves CAS against NO_REQUEST, so
        // until this write lands their attempts simply fail).
        comm.put(comm.my_id(), vars::REQUEST, vars::NO_REQUEST);
    }

    fn on_enter_working(&mut self) {
        self.since_poll = 0;
    }

    fn refill(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        if stack.avail > 0 {
            reacquire(comm, stack, &mut cx.res);
            true
        } else {
            false
        }
    }

    fn poll(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        self.since_poll += 1;
        if self.since_poll >= cx.cfg.poll_interval {
            self.since_poll = 0;
            service_request(comm, stack, cx.cfg, self.sp, &mut cx.res);
        }
    }

    fn maybe_release(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) -> bool {
        if !stack.should_release(cx.cfg.release_depth) {
            return false;
        }
        release(comm, stack, &mut cx.res);
        cx.log.release(comm.now());
        true
    }

    fn on_out_of_work(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        // Deny any in-flight request, reclaim dead area space, and publish
        // the tri-state marker.
        service_request(comm, stack, cx.cfg, self.sp, &mut cx.res);
        compact(comm, stack);
        comm.put(comm.my_id(), vars::WORK_AVAIL, vars::OUT_OF_WORK);
    }

    fn probe(&mut self, comm: &mut C, victim: usize) -> i64 {
        comm.get(victim, vars::WORK_AVAIL)
    }

    fn steal(
        &mut self,
        comm: &mut C,
        stack: &mut DfsStack<T>,
        victim: usize,
        cx: &mut Cx,
    ) -> StealOutcome {
        if steal(
            comm,
            stack,
            victim,
            cx.cfg,
            &mut self.steal_backoff_ns,
            &mut cx.res,
            &mut cx.log,
        ) {
            StealOutcome::Got
        } else {
            StealOutcome::Denied
        }
    }

    fn idle_service(&mut self, comm: &mut C, _stack: &mut DfsStack<T>, cx: &mut Cx) {
        // Keep the protocol responsive while we wander: deny thieves that
        // CASed us on a stale read.
        deny_request(comm, cx.cfg, &mut cx.res);
    }

    fn got_work(&mut self, comm: &mut C) {
        comm.put(comm.my_id(), vars::WORK_AVAIL, 0);
    }

    fn deathbed(&mut self, comm: &mut C, stack: &mut DfsStack<T>, cx: &mut Cx) {
        // Deny whichever thief is currently installed in our request cell
        // (a thief installed later hits its timeout and retracts — crash
        // mode always arms the steal timeout), fold the shared region back
        // into the local deque, and retire the tri-state marker. Granted
        // chunks below `base` stay in the area for their thieves' one-sided
        // copies; the spill appends past them.
        deny_request(comm, cx.cfg, &mut cx.res);
        while stack.avail > 0 {
            reacquire(comm, stack, &mut cx.res);
        }
        comm.put(comm.my_id(), vars::WORK_AVAIL, vars::OUT_OF_WORK);
    }

    fn finish(&mut self, comm: &mut C, stack: &mut DfsStack<T>, _cx: &mut Cx) {
        // Premature-termination detector: a thread leaving through the
        // barrier with work still in hand means the termination protocol
        // fired early under this (possibly fault-injected) schedule.
        debug_assert!(
            stack.is_local_empty() && stack.avail == 0,
            "thread {} terminated holding work: local={} avail={}",
            comm.my_id(),
            stack.local_len(),
            stack.avail
        );
    }
}

/// Owner: move the oldest `k` local nodes into the shared region. No lock —
/// a local bulk write plus a local scalar store.
fn release<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let chunk = stack.take_bottom_chunk();
    comm.area_write(me, stack.release_offset(), &chunk);
    stack.avail += 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    res.releases += 1;
}

/// Owner: take the newest shared chunk back. No lock.
fn reacquire<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let mut buf = Vec::with_capacity(stack.k);
    comm.area_read(me, stack.top_chunk_offset(), stack.k, &mut buf);
    stack.avail -= 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    stack.push_all(&buf);
    res.reacquires += 1;
}

/// Owner: atomically claim a pending request before acting on it (hardened
/// mode only — see the module docs). Returns the thief's id if we now own
/// the request. In fault-free mode the claim is implicit (`get` alone) and
/// the caller resets the cell after responding, preserving the paper's op
/// sequence bit-exactly.
fn claim_request<T, C>(comm: &mut C, cfg: &RunConfig) -> Option<usize>
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let req = comm.get(me, vars::REQUEST); // local read
    if req == vars::NO_REQUEST {
        return None;
    }
    if cfg.steal_timeout_ns.is_some() {
        // Claim-by-CAS: exactly one of {us, the retracting thief} wins the
        // transition `thief → NO_REQUEST`. Losing means the thief retracted
        // between our read and now — touch nothing, especially not its
        // response cells (it may already be mid-steal against someone else).
        if comm.cas(me, vars::REQUEST, req, vars::NO_REQUEST) != req {
            return None;
        }
    }
    Some(req as usize)
}

/// Owner: answer a pending steal request, granting per the bundle's steal
/// policy (§3.3.2 steal-half for the paper bundles) or denying with amount
/// 0. Two remote writes + local reset.
fn service_request<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    cfg: &RunConfig,
    sp: StealPolicyKind,
    res: &mut ThreadResult,
) where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let Some(thief) = claim_request(comm, cfg) else {
        return;
    };
    let give = sp.amount(stack.avail);
    if give > 0 {
        let offset = stack.grant(give);
        comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
        // Response offset must land before the amount: the thief spins on
        // the amount cell.
        comm.put(thief, vars::RESP_OFFSET, offset as i64);
        comm.put(thief, vars::RESP_AMT, give as i64);
        res.requests_serviced += 1;
    } else {
        comm.put(thief, vars::RESP_AMT, 0);
    }
    if cfg.steal_timeout_ns.is_none() {
        comm.put(me, vars::REQUEST, vars::NO_REQUEST); // local reset
    }
}

/// Deny a pending request outright (used when we have nothing to give and
/// are not in the Working state).
fn deny_request<T, C>(comm: &mut C, cfg: &RunConfig, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    if let Some(thief) = claim_request(comm, cfg) {
        comm.put(thief, vars::RESP_AMT, 0);
        if cfg.steal_timeout_ns.is_none() {
            comm.put(me, vars::REQUEST, vars::NO_REQUEST);
        }
        let _ = res;
    }
}

/// Owner: reclaim the dead region below `base` once every granted chunk has
/// been acknowledged by its thief.
fn compact<T, C>(comm: &mut C, stack: &mut DfsStack<T>)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    if stack.base == 0 {
        return;
    }
    let acked = comm.get(me, vars::ACK) as u64; // local read
    if stack.can_compact(acked) {
        comm.area_truncate(me, 0);
        comm.put(me, vars::ACK, 0);
        stack.granted = 0;
        stack.reset_region();
    }
}

/// Thief: the §3.3.3 request/response steal. Returns true if work arrived.
/// With [`RunConfig::steal_timeout_ns`] armed, an unresponsive victim is
/// abandoned via the CAS retract described in the module docs.
fn steal<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    victim: usize,
    cfg: &RunConfig,
    backoff_ns: &mut u64,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    // Arm our response cell, then try to install ourselves as the requester.
    comm.put(me, vars::RESP_AMT, vars::RESP_PENDING);
    let observed = comm.cas(victim, vars::REQUEST, vars::NO_REQUEST, me as i64);
    if observed != vars::NO_REQUEST {
        // Another thief got there first ("If the request is denied ... the
        // thief continues probing other threads").
        res.steals_failed += 1;
        log.steal_fail(victim, comm.now());
        return false;
    }
    let mut deadline = cfg.steal_timeout_ns.map(|d| comm.now() + d);
    let mut dog = Watchdog::new("distmem steal response wait");
    // Wait for the victim's answer on our own (local-affinity) cell.
    loop {
        dog.tick();
        let amt = comm.get(me, vars::RESP_AMT);
        if amt == vars::RESP_PENDING {
            if let Some(dl) = deadline {
                if comm.now() >= dl {
                    res.steal_timeouts += 1;
                    log.steal_timeout(victim, comm.now());
                    // Retract: withdraw the request if — and only if — the
                    // victim has not claimed it yet.
                    let seen = comm.cas(victim, vars::REQUEST, me as i64, vars::NO_REQUEST);
                    if seen == me as i64 {
                        // Won: the victim never observed us and (with the
                        // claim-CAS on its side) never will — no grant can
                        // exist. Back off and re-probe elsewhere.
                        res.retracts_won += 1;
                        res.steals_failed += 1;
                        res.steal_retries += 1;
                        log.retract(victim, true, comm.now());
                        res.timeout_backoff_ns += *backoff_ns;
                        comm.advance_idle(*backoff_ns);
                        *backoff_ns = (*backoff_ns * 2).min(TIMEOUT_BACKOFF_MAX_NS);
                        return false;
                    }
                    // Lost: the victim claimed the request at an earlier
                    // virtual time, so a grant or denial is already on its
                    // way to our response cells. Disarm and consume it —
                    // the chunk must be taken exactly once.
                    res.retracts_lost += 1;
                    log.retract(victim, false, comm.now());
                    deadline = None;
                }
            }
            // Stay responsive to thieves that CASed us on a stale read.
            deny_request(comm, cfg, res);
            comm.advance_idle(RESPONSE_BACKOFF_NS);
            continue;
        }
        if amt == 0 {
            res.steals_failed += 1;
            log.steal_fail(victim, comm.now());
            return false;
        }
        let amt = amt as usize;
        let offset = comm.get(me, vars::RESP_OFFSET) as usize;
        // One-sided transfer; the victim keeps exploring meanwhile.
        let mut buf = Vec::with_capacity(amt * stack.k);
        comm.area_read(victim, offset, amt * stack.k, &mut buf);
        comm.add(victim, vars::ACK, amt as i64);
        stack.push_all(&buf);
        res.steals_ok += 1;
        res.chunks_stolen += amt as u64;
        log.steal_ok(victim, amt as u64, comm.now());
        *backoff_ns = TIMEOUT_BACKOFF_MIN_NS;
        return true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use pgas::sim::SimCluster;
    use pgas::MachineModel;

    const K: usize = 2;
    const TOTAL_ITEMS: u64 = 4; // victim starts with 4 items (2 local + 1 shared chunk)

    /// One victim/thief race at a given victim stall length. The victim
    /// releases one 2-item chunk, stalls `delay_ns`, then services once —
    /// racing the thief's timeout/retract. Returns
    /// `(victim_remaining_items, thief_items, retracts_won, retracts_lost, final_request_cell)`.
    fn retract_race(delay_ns: u64, timeout_ns: u64) -> (u64, u64, u64, u64, i64) {
        let mut cfg = RunConfig::new(Algorithm::DistMem, K);
        cfg.steal_timeout_ns = Some(timeout_ns);
        let sp = cfg.bundle().steal;
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::kittyhawk(), 2, vars::space_config());
        let report = cluster.run(|comm| {
            let me = comm.my_id();
            comm.put(me, vars::REQUEST, vars::NO_REQUEST);
            let mut stack: DfsStack<u64> = DfsStack::new(K);
            let mut res = ThreadResult::default();
            let mut log = TraceLog::new(false);
            if me == 0 {
                // Victim: 4 items, one chunk released to the shared region.
                for i in 0..TOTAL_ITEMS {
                    stack.push(i);
                }
                release(comm, &mut stack, &mut res);
                // Stall (an unresponsive owner), then service once.
                comm.advance_idle(delay_ns);
                service_request(comm, &mut stack, &cfg, sp, &mut res);
                [stack.local_len() as u64 + stack.avail as u64 * K as u64, 0, 0, 0, 0]
            } else {
                // Thief: single hardened steal attempt against thread 0.
                let mut backoff = TIMEOUT_BACKOFF_MIN_NS;
                let got = steal(comm, &mut stack, 0, &cfg, &mut backoff, &mut res, &mut log);
                assert_eq!(
                    got,
                    stack.local_len() > 0,
                    "steal outcome must match items in hand"
                );
                [
                    stack.local_len() as u64,
                    1,
                    res.retracts_won,
                    res.retracts_lost,
                    res.steal_timeouts,
                ]
            }
        });
        let victim = report.results[0];
        let thief = report.results[1];
        (
            victim[0],
            thief[0],
            thief[2],
            thief[3],
            report.final_scalar(0, vars::REQUEST),
        )
    }

    /// The acceptance-criterion test: sweeping the victim's stall across the
    /// timeout boundary drives every interleaving of retract vs. late grant,
    /// and in every single one the chunk is neither duplicated nor lost,
    /// the request cell ends clean, and both retract outcomes are observed.
    #[test]
    fn retract_never_duplicates_or_loses_a_chunk() {
        let timeout_ns = 50_000;
        let mut won = 0u64;
        let mut lost = 0u64;
        let mut granted_runs = 0u64;
        // Coarse sweep over the whole race window plus a fine sweep around
        // the timeout boundary, where the retract and the victim's claim
        // interleave at single-op granularity.
        let coarse = (0..60).map(|i| i * 5_000);
        let fine = (0..2_000).map(|i| 30_000 + i * 25);
        for delay in coarse.chain(fine) {
            let (victim_items, thief_items, w, l, req_cell) = retract_race(delay, timeout_ns);
            assert_eq!(
                victim_items + thief_items,
                TOTAL_ITEMS,
                "conservation violated at delay={delay}: victim={victim_items} thief={thief_items}"
            );
            assert_eq!(req_cell, vars::NO_REQUEST, "request cell left dirty at delay={delay}");
            won += w;
            lost += l;
            if thief_items > 0 {
                granted_runs += 1;
            }
        }
        assert!(won > 0, "sweep never produced a successful retract");
        assert!(lost > 0, "sweep never produced a retract racing a late grant");
        assert!(granted_runs > 0, "sweep never produced a grant");
    }

    /// Determinism: the same stall/timeout parameters give bit-identical
    /// outcomes across repeated runs (the race is virtual-time-scheduled,
    /// not wall-clock-scheduled).
    #[test]
    fn retract_race_is_deterministic() {
        for delay in [0, 42_000, 49_000, 51_000, 120_000] {
            assert_eq!(retract_race(delay, 50_000), retract_race(delay, 50_000));
        }
    }
}
