//! `upc-distmem` (§3.3.3): the lock-less DFS stack with an asynchronous
//! request/response steal protocol — the paper's headline algorithm.
//!
//! Division of labour:
//!
//! - The **owner** has complete control of its own stack: it alone moves the
//!   region counters, so no lock exists on the stack at all. While working
//!   it polls a *local* request cell every `poll_interval` nodes ("the costs
//!   are minimal since it only involves a read of a local variable without
//!   locking").
//! - A **thief** that sees `work_avail > 0` at a victim CASes its thread id
//!   into the victim's request cell (our one remote atomic — the paper uses
//!   a small lock-protected request variable; a CAS is the modern identical-
//!   cost equivalent). It then spins on its *own* response cells until the
//!   victim answers with `(offset, amount)` or a denial, and finally pulls
//!   the granted chunks with a one-sided bulk get — "the victim is not
//!   required to actively participate".
//! - Servicing a request costs the victim **two remote writes** (response
//!   offset + amount) and a local reset of the request cell, exactly the
//!   §3.3.3 budget.
//!
//! Rapid diffusion (§3.3.2) is inherited: the victim grants half its
//! available chunks when more than one is available. Termination detection
//! is the §3.3.1 streamlined barrier. The `hier` flag enables the §6.2
//! future-work refinement: probe same-node victims before off-node ones.
//!
//! # Timeout/retract hardening (`docs/faults.md`)
//!
//! The paper's thief waits on its response cell *forever*; a stalled victim
//! therefore stalls the thief too. When [`RunConfig::steal_timeout_ns`] is
//! armed, a thief whose wait exceeds the budget **retracts**: it CASes the
//! victim's request cell from its own id back to `NO_REQUEST`. Winning that
//! CAS proves the victim never observed the request (in hardened mode the
//! victim *claims* a request with the mirror CAS before acting on it), so
//! no grant can ever be issued against it — the thief safely abandons the
//! victim, backs off exponentially, and re-probes elsewhere. Losing the CAS
//! proves the victim already claimed the request at an earlier virtual
//! time, so a grant or denial is guaranteed to land in the thief's response
//! cells; the thief disarms the deadline and consumes it normally. Either
//! way a granted chunk is consumed exactly once: the request cell only
//! moves `NO_REQUEST → thief` (thief install) and `thief → NO_REQUEST`
//! (victim claim **or** thief retract, never both — CAS picks one winner).
//! The claim-CAS replaces the fault-free protocol's trailing plain-write
//! reset only when a timeout is armed, leaving the paper-faithful op
//! sequence (and its bit-exact virtual times) untouched otherwise.

use pgas::comm::Item;
use pgas::Comm;

use crate::barrier::{TerminationBarrier, BARRIER_BACKOFF_NS};
use crate::config::RunConfig;
use crate::probe::ProbeOrder;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;
use crate::vars;
use crate::watchdog::Watchdog;

/// Backoff while spinning on our own response cell (local reads).
const RESPONSE_BACKOFF_NS: u64 = 1_500;
/// Initial post-timeout backoff before re-probing; doubles per consecutive
/// timeout up to [`TIMEOUT_BACKOFF_MAX_NS`], resets on a successful steal.
const TIMEOUT_BACKOFF_MIN_NS: u64 = 4_000;
/// Cap on the post-timeout exponential backoff.
const TIMEOUT_BACKOFF_MAX_NS: u64 = 512_000;

/// Run the lock-less worker on this thread.
pub fn run<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig, hier: bool) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut probe = if hier {
        ProbeOrder::hierarchical(me, n, cfg.seed, comm.machine())
    } else {
        ProbeOrder::flat(me, n, cfg.seed)
    };
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();
    // Exponential backoff across consecutive steal timeouts (hardened mode).
    let mut steal_backoff_ns = TIMEOUT_BACKOFF_MIN_NS;

    // Scalar cells start at 0; the request cell's idle value is -1. Arm it
    // before any exploration (thieves CAS against NO_REQUEST, so until this
    // write lands their attempts simply fail).
    comm.put(me, vars::REQUEST, vars::NO_REQUEST);

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------------- Working
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        let mut since_poll: u64 = 0;
        loop {
            if stack.is_local_empty() {
                if stack.avail > 0 {
                    reacquire(comm, &mut stack, &mut res);
                    continue;
                }
                break; // out of work
            }
            let node = stack.pop().expect("nonempty local region");
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                service_request(comm, &mut stack, cfg, &mut res);
            }
            if stack.should_release(cfg.release_depth) {
                release(comm, &mut stack, &mut res);
                log.release(comm.now());
            }
        }
        // Out of work: deny any in-flight request, reclaim dead area space,
        // and publish the tri-state marker.
        service_request(comm, &mut stack, cfg, &mut res);
        compact(comm, &mut stack);
        comm.put(me, vars::WORK_AVAIL, vars::OUT_OF_WORK);

        // --------------------------------------------------- Searching
        { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        loop {
            let mut all_out = true;
            for v in probe.cycle() {
                res.probes += 1;
                let avail = comm.get(v, vars::WORK_AVAIL);
                if avail > 0 {
                    { let now = comm.now(); clock.transition(State::Stealing, now); log.enter(State::Stealing, now); }
                    if steal(comm, &mut stack, v, cfg, &mut steal_backoff_ns, &mut res, &mut log) {
                        comm.put(me, vars::WORK_AVAIL, 0);
                        continue 'outer;
                    }
                    { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                    all_out = false;
                } else if avail == 0 {
                    all_out = false;
                }
                // Keep the protocol responsive while we wander: deny thieves
                // that CASed us on a stale read.
                deny_request(comm, cfg, &mut res);
            }
            if !all_out {
                continue;
            }

            // ------------------------------------------------ Terminating
            { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
            if barrier_wait(comm, &mut stack, &mut probe, cfg, &mut steal_backoff_ns, &mut res, &mut log) {
                break 'outer;
            }
            comm.put(me, vars::WORK_AVAIL, 0);
            continue 'outer;
        }
    }

    // Premature-termination detector: a thread leaving through the barrier
    // with work still in hand means the termination protocol fired early
    // under this (possibly fault-injected) schedule.
    debug_assert!(
        stack.is_local_empty() && stack.avail == 0,
        "thread {me} terminated holding work: local={} avail={}",
        stack.local_len(),
        stack.avail
    );

    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

/// Owner: move the oldest `k` local nodes into the shared region. No lock —
/// a local bulk write plus a local scalar store.
fn release<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let chunk = stack.take_bottom_chunk();
    comm.area_write(me, stack.release_offset(), &chunk);
    stack.avail += 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    res.releases += 1;
}

/// Owner: take the newest shared chunk back. No lock.
fn reacquire<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let mut buf = Vec::with_capacity(stack.k);
    comm.area_read(me, stack.top_chunk_offset(), stack.k, &mut buf);
    stack.avail -= 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    stack.push_all(&buf);
    res.reacquires += 1;
}

/// Owner: atomically claim a pending request before acting on it (hardened
/// mode only — see the module docs). Returns the thief's id if we now own
/// the request. In fault-free mode the claim is implicit (`get` alone) and
/// the caller resets the cell after responding, preserving the paper's op
/// sequence bit-exactly.
fn claim_request<T, C>(comm: &mut C, cfg: &RunConfig) -> Option<usize>
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let req = comm.get(me, vars::REQUEST); // local read
    if req == vars::NO_REQUEST {
        return None;
    }
    if cfg.steal_timeout_ns.is_some() {
        // Claim-by-CAS: exactly one of {us, the retracting thief} wins the
        // transition `thief → NO_REQUEST`. Losing means the thief retracted
        // between our read and now — touch nothing, especially not its
        // response cells (it may already be mid-steal against someone else).
        if comm.cas(me, vars::REQUEST, req, vars::NO_REQUEST) != req {
            return None;
        }
    }
    Some(req as usize)
}

/// Owner: answer a pending steal request, granting half the available
/// chunks (§3.3.2) or denying with amount 0. Two remote writes + local reset.
fn service_request<T, C>(comm: &mut C, stack: &mut DfsStack<T>, cfg: &RunConfig, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let Some(thief) = claim_request(comm, cfg) else {
        return;
    };
    let give = DfsStack::<T>::steal_half_amount(stack.avail);
    if give > 0 {
        let offset = stack.grant(give);
        comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
        // Response offset must land before the amount: the thief spins on
        // the amount cell.
        comm.put(thief, vars::RESP_OFFSET, offset as i64);
        comm.put(thief, vars::RESP_AMT, give as i64);
        res.requests_serviced += 1;
    } else {
        comm.put(thief, vars::RESP_AMT, 0);
    }
    if cfg.steal_timeout_ns.is_none() {
        comm.put(me, vars::REQUEST, vars::NO_REQUEST); // local reset
    }
}

/// Deny a pending request outright (used when we have nothing to give and
/// are not in the Working state).
fn deny_request<T, C>(comm: &mut C, cfg: &RunConfig, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    if let Some(thief) = claim_request(comm, cfg) {
        comm.put(thief, vars::RESP_AMT, 0);
        if cfg.steal_timeout_ns.is_none() {
            comm.put(me, vars::REQUEST, vars::NO_REQUEST);
        }
        let _ = res;
    }
}

/// Owner: reclaim the dead region below `base` once every granted chunk has
/// been acknowledged by its thief.
fn compact<T, C>(comm: &mut C, stack: &mut DfsStack<T>)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    if stack.base == 0 {
        return;
    }
    let acked = comm.get(me, vars::ACK) as u64; // local read
    if stack.can_compact(acked) {
        comm.area_truncate(me, 0);
        comm.put(me, vars::ACK, 0);
        stack.granted = 0;
        stack.reset_region();
    }
}

/// Thief: the §3.3.3 request/response steal. Returns true if work arrived.
/// With [`RunConfig::steal_timeout_ns`] armed, an unresponsive victim is
/// abandoned via the CAS retract described in the module docs.
fn steal<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    victim: usize,
    cfg: &RunConfig,
    backoff_ns: &mut u64,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    // Arm our response cell, then try to install ourselves as the requester.
    comm.put(me, vars::RESP_AMT, vars::RESP_PENDING);
    let observed = comm.cas(victim, vars::REQUEST, vars::NO_REQUEST, me as i64);
    if observed != vars::NO_REQUEST {
        // Another thief got there first ("If the request is denied ... the
        // thief continues probing other threads").
        res.steals_failed += 1;
        log.steal_fail(victim, comm.now());
        return false;
    }
    let mut deadline = cfg.steal_timeout_ns.map(|d| comm.now() + d);
    let mut dog = Watchdog::new("distmem steal response wait");
    // Wait for the victim's answer on our own (local-affinity) cell.
    loop {
        dog.tick();
        let amt = comm.get(me, vars::RESP_AMT);
        if amt == vars::RESP_PENDING {
            if let Some(dl) = deadline {
                if comm.now() >= dl {
                    res.steal_timeouts += 1;
                    log.steal_timeout(victim, comm.now());
                    // Retract: withdraw the request if — and only if — the
                    // victim has not claimed it yet.
                    let seen = comm.cas(victim, vars::REQUEST, me as i64, vars::NO_REQUEST);
                    if seen == me as i64 {
                        // Won: the victim never observed us and (with the
                        // claim-CAS on its side) never will — no grant can
                        // exist. Back off and re-probe elsewhere.
                        res.retracts_won += 1;
                        res.steals_failed += 1;
                        res.steal_retries += 1;
                        log.retract(victim, true, comm.now());
                        res.timeout_backoff_ns += *backoff_ns;
                        comm.advance_idle(*backoff_ns);
                        *backoff_ns = (*backoff_ns * 2).min(TIMEOUT_BACKOFF_MAX_NS);
                        return false;
                    }
                    // Lost: the victim claimed the request at an earlier
                    // virtual time, so a grant or denial is already on its
                    // way to our response cells. Disarm and consume it —
                    // the chunk must be taken exactly once.
                    res.retracts_lost += 1;
                    log.retract(victim, false, comm.now());
                    deadline = None;
                }
            }
            // Stay responsive to thieves that CASed us on a stale read.
            deny_request(comm, cfg, res);
            comm.advance_idle(RESPONSE_BACKOFF_NS);
            continue;
        }
        if amt == 0 {
            res.steals_failed += 1;
            log.steal_fail(victim, comm.now());
            return false;
        }
        let amt = amt as usize;
        let offset = comm.get(me, vars::RESP_OFFSET) as usize;
        // One-sided transfer; the victim keeps exploring meanwhile.
        let mut buf = Vec::with_capacity(amt * stack.k);
        comm.area_read(victim, offset, amt * stack.k, &mut buf);
        comm.add(victim, vars::ACK, amt as i64);
        stack.push_all(&buf);
        res.steals_ok += 1;
        res.chunks_stolen += amt as u64;
        log.steal_ok(victim, amt as u64, comm.now());
        *backoff_ns = TIMEOUT_BACKOFF_MIN_NS;
        return true;
    }
}

/// §3.3.1 in-barrier loop, lock-less edition: spin on our local termination
/// flag, probe one victim per iteration, keep denying steal requests.
/// Returns true on termination, false if we left with stolen work.
fn barrier_wait<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    probe: &mut ProbeOrder,
    cfg: &RunConfig,
    backoff_ns: &mut u64,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    if TerminationBarrier::enter(comm) {
        TerminationBarrier::announce_root(comm);
    }
    let mut dog = Watchdog::new("distmem termination barrier");
    loop {
        dog.tick();
        if TerminationBarrier::term_seen(comm) {
            TerminationBarrier::propagate(comm);
            return true;
        }
        deny_request(comm, cfg, res);
        if let Some(v) = probe.one() {
            res.probes += 1;
            if comm.get(v, vars::WORK_AVAIL) > 0 {
                TerminationBarrier::leave(comm);
                if steal(comm, stack, v, cfg, backoff_ns, res, log) {
                    return false;
                }
                if TerminationBarrier::enter(comm) {
                    TerminationBarrier::announce_root(comm);
                }
                dog.reset(); // barrier population changed — progress
            }
        }
        comm.advance_idle(BARRIER_BACKOFF_NS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use pgas::sim::SimCluster;
    use pgas::MachineModel;

    const K: usize = 2;
    const TOTAL_ITEMS: u64 = 4; // victim starts with 4 items (2 local + 1 shared chunk)

    /// One victim/thief race at a given victim stall length. The victim
    /// releases one 2-item chunk, stalls `delay_ns`, then services once —
    /// racing the thief's timeout/retract. Returns
    /// `(victim_remaining_items, thief_items, retracts_won, retracts_lost, final_request_cell)`.
    fn retract_race(delay_ns: u64, timeout_ns: u64) -> (u64, u64, u64, u64, i64) {
        let mut cfg = RunConfig::new(Algorithm::DistMem, K);
        cfg.steal_timeout_ns = Some(timeout_ns);
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::kittyhawk(), 2, vars::space_config());
        let report = cluster.run(|comm| {
            let me = comm.my_id();
            comm.put(me, vars::REQUEST, vars::NO_REQUEST);
            let mut stack: DfsStack<u64> = DfsStack::new(K);
            let mut res = ThreadResult::default();
            let mut log = TraceLog::new(false);
            if me == 0 {
                // Victim: 4 items, one chunk released to the shared region.
                for i in 0..TOTAL_ITEMS {
                    stack.push(i);
                }
                release(comm, &mut stack, &mut res);
                // Stall (an unresponsive owner), then service once.
                comm.advance_idle(delay_ns);
                service_request(comm, &mut stack, &cfg, &mut res);
                [stack.local_len() as u64 + stack.avail as u64 * K as u64, 0, 0, 0, 0]
            } else {
                // Thief: single hardened steal attempt against thread 0.
                let mut backoff = TIMEOUT_BACKOFF_MIN_NS;
                let got = steal(comm, &mut stack, 0, &cfg, &mut backoff, &mut res, &mut log);
                assert_eq!(
                    got,
                    stack.local_len() > 0,
                    "steal outcome must match items in hand"
                );
                [
                    stack.local_len() as u64,
                    1,
                    res.retracts_won,
                    res.retracts_lost,
                    res.steal_timeouts,
                ]
            }
        });
        let victim = report.results[0];
        let thief = report.results[1];
        (
            victim[0],
            thief[0],
            thief[2],
            thief[3],
            report.final_scalar(0, vars::REQUEST),
        )
    }

    /// The acceptance-criterion test: sweeping the victim's stall across the
    /// timeout boundary drives every interleaving of retract vs. late grant,
    /// and in every single one the chunk is neither duplicated nor lost,
    /// the request cell ends clean, and both retract outcomes are observed.
    #[test]
    fn retract_never_duplicates_or_loses_a_chunk() {
        let timeout_ns = 50_000;
        let mut won = 0u64;
        let mut lost = 0u64;
        let mut granted_runs = 0u64;
        // Coarse sweep over the whole race window plus a fine sweep around
        // the timeout boundary, where the retract and the victim's claim
        // interleave at single-op granularity.
        let coarse = (0..60).map(|i| i * 5_000);
        let fine = (0..2_000).map(|i| 30_000 + i * 25);
        for delay in coarse.chain(fine) {
            let (victim_items, thief_items, w, l, req_cell) = retract_race(delay, timeout_ns);
            assert_eq!(
                victim_items + thief_items,
                TOTAL_ITEMS,
                "conservation violated at delay={delay}: victim={victim_items} thief={thief_items}"
            );
            assert_eq!(req_cell, vars::NO_REQUEST, "request cell left dirty at delay={delay}");
            won += w;
            lost += l;
            if thief_items > 0 {
                granted_runs += 1;
            }
        }
        assert!(won > 0, "sweep never produced a successful retract");
        assert!(lost > 0, "sweep never produced a retract racing a late grant");
        assert!(granted_runs > 0, "sweep never produced a grant");
    }

    /// Determinism: the same stall/timeout parameters give bit-identical
    /// outcomes across repeated runs (the race is virtual-time-scheduled,
    /// not wall-clock-scheduled).
    #[test]
    fn retract_race_is_deterministic() {
        for delay in [0, 42_000, 49_000, 51_000, 120_000] {
            assert_eq!(retract_race(delay, 50_000), retract_race(delay, 50_000));
        }
    }
}
