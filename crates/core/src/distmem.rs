//! `upc-distmem` (§3.3.3): the lock-less DFS stack with an asynchronous
//! request/response steal protocol — the paper's headline algorithm.
//!
//! Division of labour:
//!
//! - The **owner** has complete control of its own stack: it alone moves the
//!   region counters, so no lock exists on the stack at all. While working
//!   it polls a *local* request cell every `poll_interval` nodes ("the costs
//!   are minimal since it only involves a read of a local variable without
//!   locking").
//! - A **thief** that sees `work_avail > 0` at a victim CASes its thread id
//!   into the victim's request cell (our one remote atomic — the paper uses
//!   a small lock-protected request variable; a CAS is the modern identical-
//!   cost equivalent). It then spins on its *own* response cells until the
//!   victim answers with `(offset, amount)` or a denial, and finally pulls
//!   the granted chunks with a one-sided bulk get — "the victim is not
//!   required to actively participate".
//! - Servicing a request costs the victim **two remote writes** (response
//!   offset + amount) and a local reset of the request cell, exactly the
//!   §3.3.3 budget.
//!
//! Rapid diffusion (§3.3.2) is inherited: the victim grants half its
//! available chunks when more than one is available. Termination detection
//! is the §3.3.1 streamlined barrier. The `hier` flag enables the §6.2
//! future-work refinement: probe same-node victims before off-node ones.

use pgas::comm::Item;
use pgas::Comm;

use crate::barrier::{TerminationBarrier, BARRIER_BACKOFF_NS};
use crate::config::RunConfig;
use crate::probe::ProbeOrder;
use crate::report::ThreadResult;
use crate::stack::DfsStack;
use crate::state::{State, StateClock};
use crate::taskgen::TaskGen;
use crate::trace::TraceLog;
use crate::vars;

/// Backoff while spinning on our own response cell (local reads).
const RESPONSE_BACKOFF_NS: u64 = 1_500;

/// Run the lock-less worker on this thread.
pub fn run<G, C>(comm: &mut C, gen: &G, cfg: &RunConfig, hier: bool) -> ThreadResult
where
    G: TaskGen,
    C: Comm<G::Task>,
{
    let me = comm.my_id();
    let n = comm.n_threads();
    let mut stack: DfsStack<G::Task> = DfsStack::new(cfg.chunk_size);
    let mut probe = if hier {
        ProbeOrder::hierarchical(me, n, cfg.seed, comm.machine())
    } else {
        ProbeOrder::flat(me, n, cfg.seed)
    };
    let mut res = ThreadResult::default();
    let mut clock = StateClock::new(comm.now());
    let mut log = TraceLog::new(cfg.trace);
    let mut scratch: Vec<G::Task> = Vec::new();

    // Scalar cells start at 0; the request cell's idle value is -1. Arm it
    // before any exploration (thieves CAS against NO_REQUEST, so until this
    // write lands their attempts simply fail).
    comm.put(me, vars::REQUEST, vars::NO_REQUEST);

    if me == 0 {
        stack.push(gen.root());
    }

    'outer: loop {
        // ------------------------------------------------------- Working
        { let now = comm.now(); clock.transition(State::Working, now); log.enter(State::Working, now); }
        let mut since_poll: u64 = 0;
        loop {
            if stack.is_local_empty() {
                if stack.avail > 0 {
                    reacquire(comm, &mut stack, &mut res);
                    continue;
                }
                break; // out of work
            }
            let node = stack.pop().expect("nonempty local region");
            res.nodes += 1;
            scratch.clear();
            gen.expand(&node, &mut scratch);
            stack.push_all(&scratch);
            comm.work(1);
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                service_request(comm, &mut stack, &mut res);
            }
            if stack.should_release(cfg.release_depth) {
                release(comm, &mut stack, &mut res);
                log.release(comm.now());
            }
        }
        // Out of work: deny any in-flight request, reclaim dead area space,
        // and publish the tri-state marker.
        service_request(comm, &mut stack, &mut res);
        compact(comm, &mut stack);
        comm.put(me, vars::WORK_AVAIL, vars::OUT_OF_WORK);

        // --------------------------------------------------- Searching
        { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
        loop {
            let mut all_out = true;
            for v in probe.cycle() {
                res.probes += 1;
                let avail = comm.get(v, vars::WORK_AVAIL);
                if avail > 0 {
                    { let now = comm.now(); clock.transition(State::Stealing, now); log.enter(State::Stealing, now); }
                    if steal(comm, &mut stack, v, &mut res, &mut log) {
                        comm.put(me, vars::WORK_AVAIL, 0);
                        continue 'outer;
                    }
                    { let now = comm.now(); clock.transition(State::Searching, now); log.enter(State::Searching, now); }
                    all_out = false;
                } else if avail == 0 {
                    all_out = false;
                }
                // Keep the protocol responsive while we wander: deny thieves
                // that CASed us on a stale read.
                deny_request(comm, &mut res);
            }
            if !all_out {
                continue;
            }

            // ------------------------------------------------ Terminating
            { let now = comm.now(); clock.transition(State::Terminating, now); log.enter(State::Terminating, now); }
            if barrier_wait(comm, &mut stack, &mut probe, &mut res, &mut log) {
                break 'outer;
            }
            comm.put(me, vars::WORK_AVAIL, 0);
            continue 'outer;
        }
    }

    let (state_ns, transitions) = clock.finish(comm.now());
    res.state_ns = state_ns;
    res.transitions = transitions;
    res.comm = comm.stats().clone();
    res.events = log.into_events();
    res
}

/// Owner: move the oldest `k` local nodes into the shared region. No lock —
/// a local bulk write plus a local scalar store.
fn release<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let chunk = stack.take_bottom_chunk();
    comm.area_write(me, stack.release_offset(), &chunk);
    stack.avail += 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    res.releases += 1;
}

/// Owner: take the newest shared chunk back. No lock.
fn reacquire<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let mut buf = Vec::with_capacity(stack.k);
    comm.area_read(me, stack.top_chunk_offset(), stack.k, &mut buf);
    stack.avail -= 1;
    comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
    stack.push_all(&buf);
    res.reacquires += 1;
}

/// Owner: answer a pending steal request, granting half the available
/// chunks (§3.3.2) or denying with amount 0. Two remote writes + local reset.
fn service_request<T, C>(comm: &mut C, stack: &mut DfsStack<T>, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let req = comm.get(me, vars::REQUEST); // local read
    if req == vars::NO_REQUEST {
        return;
    }
    let thief = req as usize;
    let give = DfsStack::<T>::steal_half_amount(stack.avail);
    if give > 0 {
        let offset = stack.grant(give);
        comm.put(me, vars::WORK_AVAIL, stack.avail as i64);
        // Response offset must land before the amount: the thief spins on
        // the amount cell.
        comm.put(thief, vars::RESP_OFFSET, offset as i64);
        comm.put(thief, vars::RESP_AMT, give as i64);
        res.requests_serviced += 1;
    } else {
        comm.put(thief, vars::RESP_AMT, 0);
    }
    comm.put(me, vars::REQUEST, vars::NO_REQUEST); // local reset
}

/// Deny a pending request outright (used when we have nothing to give and
/// are not in the Working state).
fn deny_request<T, C>(comm: &mut C, res: &mut ThreadResult)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    let req = comm.get(me, vars::REQUEST);
    if req != vars::NO_REQUEST {
        comm.put(req as usize, vars::RESP_AMT, 0);
        comm.put(me, vars::REQUEST, vars::NO_REQUEST);
        let _ = res;
    }
}

/// Owner: reclaim the dead region below `base` once every granted chunk has
/// been acknowledged by its thief.
fn compact<T, C>(comm: &mut C, stack: &mut DfsStack<T>)
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    if stack.base == 0 {
        return;
    }
    let acked = comm.get(me, vars::ACK) as u64; // local read
    if stack.can_compact(acked) {
        comm.area_truncate(me, 0);
        comm.put(me, vars::ACK, 0);
        stack.granted = 0;
        stack.reset_region();
    }
}

/// Thief: the §3.3.3 request/response steal. Returns true if work arrived.
fn steal<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    victim: usize,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    let me = comm.my_id();
    // Arm our response cell, then try to install ourselves as the requester.
    comm.put(me, vars::RESP_AMT, vars::RESP_PENDING);
    let observed = comm.cas(victim, vars::REQUEST, vars::NO_REQUEST, me as i64);
    if observed != vars::NO_REQUEST {
        // Another thief got there first ("If the request is denied ... the
        // thief continues probing other threads").
        res.steals_failed += 1;
        log.steal_fail(victim, comm.now());
        return false;
    }
    // Wait for the victim's answer on our own (local-affinity) cell.
    loop {
        let amt = comm.get(me, vars::RESP_AMT);
        if amt == vars::RESP_PENDING {
            // Stay responsive to thieves that CASed us on a stale read.
            deny_request(comm, res);
            comm.advance_idle(RESPONSE_BACKOFF_NS);
            continue;
        }
        if amt == 0 {
            res.steals_failed += 1;
            log.steal_fail(victim, comm.now());
            return false;
        }
        let amt = amt as usize;
        let offset = comm.get(me, vars::RESP_OFFSET) as usize;
        // One-sided transfer; the victim keeps exploring meanwhile.
        let mut buf = Vec::with_capacity(amt * stack.k);
        comm.area_read(victim, offset, amt * stack.k, &mut buf);
        comm.add(victim, vars::ACK, amt as i64);
        stack.push_all(&buf);
        res.steals_ok += 1;
        res.chunks_stolen += amt as u64;
        log.steal_ok(victim, amt as u64, comm.now());
        return true;
    }
}

/// §3.3.1 in-barrier loop, lock-less edition: spin on our local termination
/// flag, probe one victim per iteration, keep denying steal requests.
/// Returns true on termination, false if we left with stolen work.
fn barrier_wait<T, C>(
    comm: &mut C,
    stack: &mut DfsStack<T>,
    probe: &mut ProbeOrder,
    res: &mut ThreadResult,
    log: &mut TraceLog,
) -> bool
where
    T: Item,
    C: Comm<T>,
{
    if TerminationBarrier::enter(comm) {
        TerminationBarrier::announce_root(comm);
    }
    loop {
        if TerminationBarrier::term_seen(comm) {
            TerminationBarrier::propagate(comm);
            return true;
        }
        deny_request(comm, res);
        if let Some(v) = probe.one() {
            res.probes += 1;
            if comm.get(v, vars::WORK_AVAIL) > 0 {
                TerminationBarrier::leave(comm);
                if steal(comm, stack, v, res, log) {
                    return false;
                }
                if TerminationBarrier::enter(comm) {
                    TerminationBarrier::announce_root(comm);
                }
            }
        }
        comm.advance_idle(BARRIER_BACKOFF_NS);
    }
}
