//! Termination detection: the §3.1 cancelable barrier and the §3.3.1
//! streamlined barrier with tree-based announcement.
//!
//! The cancelable barrier is the shared-memory algorithm's weak point on
//! clusters: waiters spin on *remote* flags (thread 0's cells), entry/exit
//! happen under a remote lock, and every `release()` resets the barrier —
//! all of which the paper measures as the dominant overhead at small chunk
//! sizes. The streamlined variant enters the barrier only when a full probe
//! cycle saw every other thread out of work, waiters spin on their *own*
//! (local-affinity) flag, and the final announcement is an O(log n)-depth
//! tree of writes.

use pgas::comm::Item;
use pgas::Comm;

use crate::vars;
use crate::watchdog::Watchdog;

/// Backoff charged between barrier spin iterations (models the pause a real
/// implementation inserts between remote flag reads).
pub const BARRIER_BACKOFF_NS: u64 = 2_000;

/// Outcome of waiting at the cancelable barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// All threads arrived: global termination.
    Terminated,
    /// A releasing thread canceled the barrier: go search for work again.
    Canceled,
}

/// §3.1 cancelable barrier. All state lives on thread 0: the occupancy
/// count, a cancellation epoch, and the termination flag.
pub struct CancelableBarrier;

impl CancelableBarrier {
    /// Called by a thread that just released work: kick all waiters out of
    /// the barrier so they can steal the fresh chunk. "This is a remote
    /// operation, and it delays a thread that might otherwise be doing
    /// useful work" — the cost is the point.
    pub fn cancel<T: Item, C: Comm<T>>(comm: &mut C) {
        comm.lock(0, vars::BARRIER_LOCK);
        let epoch = comm.get(0, vars::CANCEL_EPOCH);
        comm.put(0, vars::CANCEL_EPOCH, epoch + 1);
        comm.unlock(0, vars::BARRIER_LOCK);
    }

    /// Enter the barrier and spin (remotely) until either every thread has
    /// arrived (termination) or a release cancels the barrier.
    pub fn wait<T: Item, C: Comm<T>>(comm: &mut C) -> BarrierOutcome {
        CancelableBarrier::wait_with(comm, |_| {})
    }

    /// [`CancelableBarrier::wait`] with a per-spin `service` hook, run after
    /// the outcome checks of each iteration. Transports whose steal protocol
    /// needs the victim's participation (the §3.3.3 request/response cells)
    /// use it to keep denying thieves while parked; for the locked transport
    /// the hook is a no-op and the spin is the paper's exactly.
    pub fn wait_with<T: Item, C: Comm<T>>(
        comm: &mut C,
        mut service: impl FnMut(&mut C),
    ) -> BarrierOutcome {
        let n = comm.n_threads() as i64;
        comm.lock(0, vars::BARRIER_LOCK);
        let count = comm.get(0, vars::BARRIER_COUNT) + 1;
        comm.put(0, vars::BARRIER_COUNT, count);
        let my_epoch = comm.get(0, vars::CANCEL_EPOCH);
        if count == n {
            comm.put(0, vars::TERM, 1);
        }
        comm.unlock(0, vars::BARRIER_LOCK);

        let mut dog = Watchdog::new("cancelable barrier wait");
        loop {
            dog.tick();
            // Remote spinning — "requiring an arbitrary number of remote
            // operations" (§3.1).
            if comm.get(0, vars::TERM) == 1 {
                return BarrierOutcome::Terminated;
            }
            if comm.get(0, vars::CANCEL_EPOCH) != my_epoch {
                comm.lock(0, vars::BARRIER_LOCK);
                let c = comm.get(0, vars::BARRIER_COUNT);
                comm.put(0, vars::BARRIER_COUNT, c - 1);
                comm.unlock(0, vars::BARRIER_LOCK);
                return BarrierOutcome::Canceled;
            }
            service(comm);
            comm.advance_idle(BARRIER_BACKOFF_NS);
        }
    }
}

/// Tree children of `me` in the binary announcement tree rooted at thread 0.
pub fn tree_children(me: usize, n: usize) -> (Option<usize>, Option<usize>) {
    let l = 2 * me + 1;
    let r = 2 * me + 2;
    ((l < n).then_some(l), (r < n).then_some(r))
}

/// §3.3.1 streamlined termination barrier: a shared occupancy counter on
/// thread 0 (entered/left with single atomics, no lock) plus per-thread
/// termination flags set by a tree-based announcement.
pub struct TerminationBarrier;

impl TerminationBarrier {
    /// Enter; returns `true` if we were the last thread in (and must launch
    /// the announcement).
    pub fn enter<T: Item, C: Comm<T>>(comm: &mut C) -> bool {
        let old = comm.add(0, vars::BARRIER_COUNT, 1);
        (old + 1) == comm.n_threads() as i64
    }

    /// Leave the barrier (before attempting a steal).
    pub fn leave<T: Item, C: Comm<T>>(comm: &mut C) {
        comm.add(0, vars::BARRIER_COUNT, -1);
    }

    /// Launch the tree announcement by flagging the root.
    pub fn announce_root<T: Item, C: Comm<T>>(comm: &mut C) {
        comm.put(0, vars::TERM, 1);
    }

    /// Has my own flag been raised? (A local-affinity read — the cheap spin
    /// the whole §3.3.1 design exists to enable.)
    pub fn term_seen<T: Item, C: Comm<T>>(comm: &mut C) -> bool {
        let me = comm.my_id();
        comm.get(me, vars::TERM) == 1
    }

    /// Forward the announcement to my tree children. Call exactly once,
    /// after [`TerminationBarrier::term_seen`] turns true.
    pub fn propagate<T: Item, C: Comm<T>>(comm: &mut C) {
        let (l, r) = tree_children(comm.my_id(), comm.n_threads());
        if let Some(l) = l {
            comm.put(l, vars::TERM, 1);
        }
        if let Some(r) = r {
            comm.put(r, vars::TERM, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::sim::SimCluster;
    use pgas::MachineModel;
    use uts_tree::Node;

    fn cluster(n: usize) -> SimCluster<Node> {
        SimCluster::new(MachineModel::smp(), n, crate::vars::space_config())
    }

    #[test]
    fn tree_children_cover_all_threads_once() {
        let n = 23;
        let mut seen = vec![0u32; n];
        for me in 0..n {
            let (l, r) = tree_children(me, n);
            for c in [l, r].into_iter().flatten() {
                seen[c] += 1;
            }
        }
        assert_eq!(seen[0], 0, "root has no parent");
        assert!(seen[1..].iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn cancelable_barrier_terminates_when_all_enter() {
        let n = 6;
        let report = cluster(n).run(CancelableBarrier::wait);
        assert!(report
            .results
            .iter()
            .all(|r| *r == BarrierOutcome::Terminated));
        assert_eq!(report.final_scalar(0, vars::TERM), 1);
    }

    #[test]
    fn cancelable_barrier_cancel_releases_waiters() {
        let n = 4;
        let report = cluster(n).run(|c| {
            if c.my_id() == 3 {
                // Give the others time to enter, then cancel, then enter so
                // the barrier can complete on the second round.
                c.advance_idle(2_000_000);
                CancelableBarrier::cancel(c);
                // Give the waiters time to observe the epoch bump and leave;
                // entering immediately would complete the barrier and set
                // TERM before any waiter polls the cancel flag.
                c.advance_idle(1_000_000);
                let mut outcomes = vec![];
                loop {
                    let o = CancelableBarrier::wait(c);
                    outcomes.push(o);
                    if o == BarrierOutcome::Terminated {
                        return outcomes;
                    }
                }
            } else {
                let mut outcomes = vec![];
                loop {
                    let o = CancelableBarrier::wait(c);
                    outcomes.push(o);
                    if o == BarrierOutcome::Terminated {
                        return outcomes;
                    }
                }
            }
        });
        // At least one waiter observed a cancellation before termination.
        let canceled = report
            .results
            .iter()
            .flatten()
            .filter(|&&o| o == BarrierOutcome::Canceled)
            .count();
        assert!(canceled >= 1, "cancel had no effect: {:?}", report.results);
        // And everyone terminated in the end.
        assert!(report
            .results
            .iter()
            .all(|os| *os.last().unwrap() == BarrierOutcome::Terminated));
    }

    #[test]
    fn streamlined_barrier_full_protocol() {
        let n = 9;
        let report = cluster(n).run(|c| {
            let was_last = TerminationBarrier::enter(c);
            if was_last {
                TerminationBarrier::announce_root(c);
            }
            let mut spins = 0u64;
            while !TerminationBarrier::term_seen(c) {
                c.advance_idle(BARRIER_BACKOFF_NS);
                spins += 1;
                assert!(spins < 1_000_000, "announcement never arrived");
            }
            TerminationBarrier::propagate(c);
            was_last
        });
        let lasts = report.results.iter().filter(|&&l| l).count();
        assert_eq!(lasts, 1, "exactly one thread is last into the barrier");
        // Everyone's flag ends raised.
        for t in 0..n {
            assert_eq!(report.final_scalar(t, vars::TERM), 1);
        }
        assert_eq!(report.final_scalar(0, vars::BARRIER_COUNT), n as i64);
    }

    #[test]
    fn leave_and_reenter_keeps_count_consistent() {
        let n = 3;
        let report = cluster(n).run(|c| {
            if c.my_id() == 2 {
                // Enter, leave (as if probing a victim), re-enter.
                let last1 = TerminationBarrier::enter(c);
                TerminationBarrier::leave(c);
                let last2 = TerminationBarrier::enter(c);
                if last1 || last2 {
                    TerminationBarrier::announce_root(c);
                }
            } else if TerminationBarrier::enter(c) {
                TerminationBarrier::announce_root(c);
            }
            while !TerminationBarrier::term_seen(c) {
                c.advance_idle(BARRIER_BACKOFF_NS);
            }
            TerminationBarrier::propagate(c);
        });
        assert_eq!(report.final_scalar(0, vars::BARRIER_COUNT), n as i64);
    }
}
