//! The Figure-1 state machine and per-state time accounting.
//!
//! §6.2 of the paper decomposes runtime into time *in the working state*
//! (93% at 1024 threads) versus time searching, stealing, and detecting
//! termination. [`StateClock`] performs exactly that accounting, using
//! whatever notion of time the backend provides (virtual or wall-clock).

/// The four top-level states of a worker (paper Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum State {
    /// Exploring nodes from the local stack (including release/reacquire).
    Working = 0,
    /// Probing other threads for available work ("Work Discovery").
    Searching = 1,
    /// Executing a steal (reserve/request + transfer).
    Stealing = 2,
    /// In the termination-detection protocol.
    Terminating = 3,
}

/// Number of states.
pub const N_STATES: usize = 4;

/// Tracks the current state and accumulates nanoseconds spent in each.
#[derive(Clone, Debug)]
pub struct StateClock {
    current: State,
    since: u64,
    acc: [u64; N_STATES],
    transitions: u64,
}

impl StateClock {
    /// Start in [`State::Working`] at time `now`.
    pub fn new(now: u64) -> StateClock {
        StateClock {
            current: State::Working,
            since: now,
            acc: [0; N_STATES],
            transitions: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> State {
        self.current
    }

    /// Switch to `next` at time `now`, accumulating the elapsed interval.
    pub fn transition(&mut self, next: State, now: u64) {
        debug_assert!(now >= self.since, "time went backwards");
        self.acc[self.current as usize] += now.saturating_sub(self.since);
        if next != self.current {
            self.transitions += 1;
        }
        self.current = next;
        self.since = now;
    }

    /// Close the clock at time `now` and return (per-state ns, transitions).
    pub fn finish(mut self, now: u64) -> ([u64; N_STATES], u64) {
        self.acc[self.current as usize] += now.saturating_sub(self.since);
        (self.acc, self.transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_state() {
        let mut c = StateClock::new(100);
        c.transition(State::Searching, 150); // 50 ns working
        c.transition(State::Stealing, 170); // 20 ns searching
        c.transition(State::Working, 200); // 30 ns stealing
        let (acc, transitions) = c.finish(260); // 60 ns working
        assert_eq!(acc[State::Working as usize], 110);
        assert_eq!(acc[State::Searching as usize], 20);
        assert_eq!(acc[State::Stealing as usize], 30);
        assert_eq!(acc[State::Terminating as usize], 0);
        assert_eq!(transitions, 3);
    }

    #[test]
    fn self_transition_is_not_counted() {
        let mut c = StateClock::new(0);
        c.transition(State::Working, 10);
        let (acc, transitions) = c.finish(10);
        assert_eq!(acc[State::Working as usize], 10);
        assert_eq!(transitions, 0);
    }

    #[test]
    fn starts_working() {
        let c = StateClock::new(5);
        assert_eq!(c.state(), State::Working);
    }
}
