//! Tree shape specifications: the child-count laws of the UTS benchmark.
//!
//! The paper's evaluation uses *binomial* trees exclusively (§4.1, footnotes 1
//! and 2): the root has `b0` children; every other node has `m` children with
//! probability `q` and none with probability `1-q`. With `m*q` slightly below
//! 1 the process is just-subcritical, which yields the scale-free, extremely
//! heavy-tailed subtree-size distribution that defeats static partitioning.
//!
//! The geometric and hybrid laws from the wider UTS benchmark suite are
//! implemented as well so the load balancers can be exercised on differently
//! shaped state spaces.

use crate::node::Node;

/// Depth profile of the branching factor for geometric trees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GeoShape {
    /// Constant expected branching factor `b0` until the depth cutoff.
    Fixed,
    /// Branching factor decreases linearly to zero at the depth cutoff.
    Linear,
    /// Exponential decrease with depth.
    ExpDec,
    /// Cyclic: bursts of high branching factor every `gen_mx` levels.
    Cyclic,
}

/// The child-count law.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TreeKind {
    /// Root has `b0` children; all other nodes have `m` children with
    /// probability `q`, else none. (The paper's tree type.)
    Binomial {
        /// Root branching factor.
        b0: u32,
        /// Non-root branching factor when the node branches.
        m: u32,
        /// Probability that a non-root node branches.
        q: f64,
    },
    /// Number of children drawn from a geometric distribution with expected
    /// value `b(depth)` given by `shape`; nodes at `depth >= gen_mx` are
    /// leaves.
    Geometric {
        /// Branching-factor scale.
        b0: f64,
        /// Depth cutoff.
        gen_mx: u32,
        /// Depth profile.
        shape: GeoShape,
    },
    /// Geometric down to `cutoff_depth`, binomial below: models search spaces
    /// with a bushy top and unpredictable depths underneath.
    Hybrid {
        /// Geometric branching-factor scale for the upper region.
        b0: f64,
        /// Depth at which the law switches to binomial.
        cutoff_depth: u32,
        /// Binomial `m` below the cutoff.
        m: u32,
        /// Binomial `q` below the cutoff.
        q: f64,
    },
}

/// A complete tree instance: a shape law plus the root seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeSpec {
    /// Root seed (`r` in the paper's parameter footnotes).
    pub seed: u32,
    /// Child-count law.
    pub kind: TreeKind,
}

/// Safety cap on the number of children of any single node (matches the UTS
/// reference implementation's `MAXNUMCHILDREN`-style guard for geometric
/// laws; binomial roots may exceed it by design).
pub const MAX_GEO_CHILDREN: u32 = 100;

impl TreeSpec {
    /// Binomial tree (the paper's configuration).
    pub fn binomial(seed: u32, b0: u32, m: u32, q: f64) -> TreeSpec {
        assert!((0.0..=1.0).contains(&q), "q must be a probability");
        TreeSpec {
            seed,
            kind: TreeKind::Binomial { b0, m, q },
        }
    }

    /// Geometric tree.
    pub fn geometric(seed: u32, b0: f64, gen_mx: u32, shape: GeoShape) -> TreeSpec {
        assert!(b0 > 0.0);
        TreeSpec {
            seed,
            kind: TreeKind::Geometric { b0, gen_mx, shape },
        }
    }

    /// Hybrid tree: geometric above `cutoff_depth`, binomial below.
    pub fn hybrid(seed: u32, b0: f64, cutoff_depth: u32, m: u32, q: f64) -> TreeSpec {
        assert!((0.0..=1.0).contains(&q));
        TreeSpec {
            seed,
            kind: TreeKind::Hybrid {
                b0,
                cutoff_depth,
                m,
                q,
            },
        }
    }

    /// The root node of this tree.
    pub fn root(&self) -> Node {
        Node::root(self.seed)
    }

    /// Number of children of `node` under this law.
    pub fn num_children(&self, node: &Node) -> u32 {
        match self.kind {
            TreeKind::Binomial { b0, m, q } => {
                if node.height == 0 {
                    b0
                } else {
                    binomial_children(node, m, q)
                }
            }
            TreeKind::Geometric { b0, gen_mx, shape } => {
                geometric_children(node, b0, gen_mx, shape)
            }
            TreeKind::Hybrid {
                b0,
                cutoff_depth,
                m,
                q,
            } => {
                if node.height < cutoff_depth {
                    geometric_children(node, b0, cutoff_depth, GeoShape::Fixed)
                } else {
                    binomial_children(node, m, q)
                }
            }
        }
    }

    /// Expand `node`, pushing its children onto `out` (in child-index order).
    /// Returns the number of children produced.
    pub fn expand_into(&self, node: &Node, out: &mut Vec<Node>) -> u32 {
        let n = self.num_children(node);
        out.reserve(n as usize);
        for i in 0..n {
            out.push(node.child(i));
        }
        n
    }

    /// Expected subtree size below a *non-root* binomial node: `1/(1 - m q)`.
    /// Returns `None` for non-binomial laws or supercritical parameters.
    pub fn expected_binomial_subtree(&self) -> Option<f64> {
        match self.kind {
            TreeKind::Binomial { m, q, .. } => {
                let drift = m as f64 * q;
                (drift < 1.0).then(|| 1.0 / (1.0 - drift))
            }
            _ => None,
        }
    }
}

/// Binomial law for non-root nodes: `m` children with probability `q`.
fn binomial_children(node: &Node, m: u32, q: f64) -> u32 {
    // Compare the node's 31-bit random value against q scaled to 31 bits,
    // exactly like the UTS reference (`rng_toProb` + comparison).
    let threshold = (q * (1u64 << 31) as f64) as u32;
    if node.rand31() < threshold {
        m
    } else {
        0
    }
}

/// Geometric law: child count with expectation `b(depth)`; leaves at and
/// beyond the depth cutoff.
fn geometric_children(node: &Node, b0: f64, gen_mx: u32, shape: GeoShape) -> u32 {
    let d = node.height;
    let b_i = match shape {
        GeoShape::Fixed => {
            if d >= gen_mx {
                return 0;
            }
            b0
        }
        GeoShape::Linear => {
            if d >= gen_mx {
                return 0;
            }
            b0 * (1.0 - d as f64 / gen_mx as f64)
        }
        GeoShape::ExpDec => {
            if d >= gen_mx {
                return 0;
            }
            // Halves every gen_mx/8 levels; same flavour as UTS EXPDEC.
            b0 * (-(d as f64) * 8.0 * std::f64::consts::LN_2 / gen_mx as f64).exp()
        }
        GeoShape::Cyclic => {
            if d >= 5 * gen_mx {
                return 0;
            }
            if d % gen_mx < gen_mx / 2 {
                b0
            } else {
                b0.powf(1.0 / 3.0)
            }
        }
    };
    if b_i <= 0.0 {
        return 0;
    }
    // Draw from a geometric distribution with mean b_i: success probability
    // p = 1/(1+b_i); children = floor(ln(u) / ln(1-p)).
    let p = 1.0 / (1.0 + b_i);
    let u = (node.rand31() as f64 + 1.0) / (1u64 << 31) as f64; // (0, 1]
    let n = (u.ln() / (1.0 - p).ln()).floor();
    (n as u32).min(MAX_GEO_CHILDREN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_root_has_b0_children() {
        let spec = TreeSpec::binomial(0, 17, 2, 0.4);
        assert_eq!(spec.num_children(&spec.root()), 17);
    }

    #[test]
    fn binomial_nonroot_children_are_zero_or_m() {
        let spec = TreeSpec::binomial(0, 8, 2, 0.45);
        let root = spec.root();
        for i in 0..8 {
            let c = root.child(i);
            let n = spec.num_children(&c);
            assert!(n == 0 || n == 2, "unexpected child count {n}");
        }
    }

    /// Empirically, the fraction of branching non-root nodes should be near q.
    #[test]
    fn binomial_branch_probability_close_to_q() {
        let q = 0.3;
        let spec = TreeSpec::binomial(3, 10_000, 2, q);
        let root = spec.root();
        let branching = (0..10_000u32)
            .filter(|&i| spec.num_children(&root.child(i)) == 2)
            .count() as f64
            / 10_000.0;
        assert!(
            (branching - q).abs() < 0.02,
            "empirical branch prob {branching} vs q {q}"
        );
    }

    #[test]
    fn q_extremes() {
        let never = TreeSpec::binomial(0, 4, 2, 0.0);
        let root = never.root();
        for i in 0..4 {
            assert_eq!(never.num_children(&root.child(i)), 0);
        }
        // q = 1.0: threshold is 2^31, every rand31 < 2^31 branches.
        let always = TreeSpec::binomial(0, 4, 3, 1.0);
        for i in 0..4 {
            assert_eq!(always.num_children(&root.child(i)), 3);
        }
    }

    #[test]
    fn geometric_respects_depth_cutoff() {
        let spec = TreeSpec::geometric(1, 4.0, 3, GeoShape::Fixed);
        let mut n = spec.root();
        for _ in 0..3 {
            n = n.child(0);
        }
        assert_eq!(n.height, 3);
        assert_eq!(spec.num_children(&n), 0);
    }

    #[test]
    fn geometric_mean_children_near_b0() {
        let b0 = 3.0;
        let spec = TreeSpec::geometric(1, b0, 100, GeoShape::Fixed);
        let root = spec.root();
        let mut total = 0u64;
        let samples = 20_000u32;
        for i in 0..samples {
            total += spec.num_children(&root.child(i)) as u64;
        }
        let mean = total as f64 / samples as f64;
        assert!(
            (mean - b0).abs() < 0.15,
            "empirical mean {mean} vs b0 {b0}"
        );
    }

    #[test]
    fn geometric_children_capped() {
        let spec = TreeSpec::geometric(1, 1e6, 10, GeoShape::Fixed);
        let root = spec.root();
        for i in 0..100 {
            assert!(spec.num_children(&root.child(i)) <= MAX_GEO_CHILDREN);
        }
    }

    #[test]
    fn linear_shape_decreases_with_depth() {
        let spec = TreeSpec::geometric(1, 8.0, 16, GeoShape::Linear);
        // Average branching at depth 1 should exceed that near the cutoff.
        let root = spec.root();
        let shallow: u32 = (0..500).map(|i| spec.num_children(&root.child(i))).sum();
        let mut deep_node = root;
        for _ in 0..14 {
            deep_node = deep_node.child(0);
        }
        let deep: u32 = (0..500).map(|i| spec.num_children(&deep_node.child(i))).sum();
        assert!(shallow > deep, "shallow {shallow} deep {deep}");
    }

    #[test]
    fn hybrid_switches_laws() {
        let spec = TreeSpec::hybrid(2, 3.0, 2, 2, 0.4);
        let root = spec.root();
        // Below the cutoff, counts must be 0 or m.
        let mut n = root;
        for _ in 0..2 {
            n = n.child(0);
        }
        let c = spec.num_children(&n);
        assert!(c == 0 || c == 2);
    }

    #[test]
    fn expand_into_matches_num_children() {
        let spec = TreeSpec::binomial(0, 5, 2, 0.5);
        let mut out = Vec::new();
        let n = spec.expand_into(&spec.root(), &mut out);
        assert_eq!(n, 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3], spec.root().child(3));
    }

    #[test]
    fn expected_subtree_size_formula() {
        let spec = TreeSpec::binomial(0, 4, 2, 0.25);
        assert!((spec.expected_binomial_subtree().unwrap() - 2.0).abs() < 1e-12);
        let crit = TreeSpec::binomial(0, 4, 2, 0.5);
        assert!(crit.expected_binomial_subtree().is_none());
        let geo = TreeSpec::geometric(0, 2.0, 4, GeoShape::Fixed);
        assert!(geo.expected_binomial_subtree().is_none());
    }
}
