//! Imbalance statistics.
//!
//! The paper's §4.1 notes that in its sample problem "over 99.9% of the work
//! is contained in just one of the 2000 subtrees below the root". The preset
//! trees in this repo are validated against the same kind of criterion: these
//! helpers measure how concentrated the work is.

use crate::seq::dfs_count_subtree;
use crate::spec::TreeSpec;

/// Distribution of work across the subtrees rooted at the root's children.
#[derive(Clone, Debug, Default)]
pub struct Imbalance {
    /// Total nodes in the tree (including the root).
    pub total: u64,
    /// Per-root-child subtree sizes, sorted descending.
    pub child_sizes: Vec<u64>,
}

impl Imbalance {
    /// Fraction of all nodes contained in the single largest root subtree.
    pub fn largest_fraction(&self) -> f64 {
        match self.child_sizes.first() {
            Some(&s) => s as f64 / self.total as f64,
            None => 0.0,
        }
    }

    /// Smallest number of root subtrees that together hold at least `frac`
    /// of the nodes. A tiny value on a wide root signals extreme imbalance.
    pub fn subtrees_for_fraction(&self, frac: f64) -> usize {
        let target = (self.total as f64 * frac) as u64;
        let mut acc = 0u64;
        for (i, &s) in self.child_sizes.iter().enumerate() {
            acc += s;
            if acc >= target {
                return i + 1;
            }
        }
        self.child_sizes.len()
    }

    /// Coefficient of variation of the root-subtree sizes (std-dev / mean).
    pub fn coefficient_of_variation(&self) -> f64 {
        let n = self.child_sizes.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.child_sizes.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .child_sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Measure the subtree-size distribution under the root by full traversal of
/// every root child. Cost is one full tree traversal.
pub fn measure_imbalance(spec: &TreeSpec) -> Imbalance {
    let root = spec.root();
    let nchildren = spec.num_children(&root);
    let mut child_sizes: Vec<u64> = (0..nchildren)
        .map(|i| dfs_count_subtree(spec, root.child(i)))
        .collect();
    child_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let total = 1 + child_sizes.iter().sum::<u64>();
    Imbalance { total, child_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_tree_is_balanced() {
        let spec = TreeSpec::binomial(0, 10, 2, 0.0);
        let imb = measure_imbalance(&spec);
        assert_eq!(imb.total, 11);
        assert_eq!(imb.child_sizes, vec![1; 10]);
        assert!(imb.coefficient_of_variation() < 1e-12);
        assert_eq!(imb.subtrees_for_fraction(0.5), 5);
    }

    #[test]
    fn subcritical_tree_is_imbalanced() {
        // Close-to-critical branching: sizes should vary by orders of
        // magnitude across root children.
        let spec = TreeSpec::binomial(3, 64, 2, 0.495);
        let imb = measure_imbalance(&spec);
        assert!(imb.coefficient_of_variation() > 1.0, "cv = {}", imb.coefficient_of_variation());
        // Work concentrated in far fewer than half the subtrees.
        assert!(imb.subtrees_for_fraction(0.9) < 16);
    }

    #[test]
    fn largest_fraction_bounds() {
        let spec = TreeSpec::binomial(3, 16, 2, 0.45);
        let imb = measure_imbalance(&spec);
        let f = imb.largest_fraction();
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn empty_imbalance_is_safe() {
        let imb = Imbalance::default();
        assert_eq!(imb.largest_fraction(), 0.0);
        assert_eq!(imb.coefficient_of_variation(), 0.0);
    }
}

/// Per-depth node counts and the DFS stack-depth profile of a tree.
///
/// The stack high-water mark bounds the shared-region footprint each worker
/// needs; the depth histogram characterises where the work lives.
#[derive(Clone, Debug, Default)]
pub struct DepthProfile {
    /// `histogram[d]` = number of nodes at depth `d`.
    pub histogram: Vec<u64>,
    /// Total nodes.
    pub total: u64,
    /// Maximum DFS stack occupancy during a sequential traversal.
    pub max_stack: usize,
}

impl DepthProfile {
    /// Depth below which `frac` of all nodes lie.
    pub fn depth_quantile(&self, frac: f64) -> u32 {
        let target = (self.total as f64 * frac) as u64;
        let mut acc = 0u64;
        for (d, &n) in self.histogram.iter().enumerate() {
            acc += n;
            if acc >= target {
                return d as u32;
            }
        }
        self.histogram.len().saturating_sub(1) as u32
    }

    /// Mean node depth.
    pub fn mean_depth(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &n)| d as f64 * n as f64)
            .sum();
        weighted / self.total as f64
    }
}

/// Measure the depth profile with one sequential traversal.
pub fn depth_profile(spec: &TreeSpec) -> DepthProfile {
    let mut stack = vec![spec.root()];
    let mut prof = DepthProfile::default();
    let mut scratch = Vec::new();
    prof.max_stack = 1;
    while let Some(node) = stack.pop() {
        let d = node.height as usize;
        if prof.histogram.len() <= d {
            prof.histogram.resize(d + 1, 0);
        }
        prof.histogram[d] += 1;
        prof.total += 1;
        scratch.clear();
        spec.expand_into(&node, &mut scratch);
        stack.extend_from_slice(&scratch);
        prof.max_stack = prof.max_stack.max(stack.len());
    }
    prof
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn star_profile() {
        let spec = TreeSpec::binomial(0, 6, 2, 0.0);
        let p = depth_profile(&spec);
        assert_eq!(p.histogram, vec![1, 6]);
        assert_eq!(p.total, 7);
        assert!((p.mean_depth() - 6.0 / 7.0).abs() < 1e-12);
        assert_eq!(p.depth_quantile(0.1), 0);
        assert_eq!(p.depth_quantile(1.0), 1);
    }

    #[test]
    fn profile_total_matches_dfs_count() {
        let spec = TreeSpec::binomial(7, 16, 2, 0.46);
        let p = depth_profile(&spec);
        let r = crate::seq::dfs_count(&spec);
        assert_eq!(p.total, r.nodes);
        assert_eq!(p.max_stack, r.max_stack);
        assert_eq!(p.histogram.len() as u32 - 1, r.max_depth);
        assert_eq!(p.histogram.iter().sum::<u64>(), r.nodes);
    }

    #[test]
    fn single_node_profile() {
        let spec = TreeSpec::binomial(0, 0, 2, 0.5);
        let p = depth_profile(&spec);
        assert_eq!(p.histogram, vec![1]);
        assert_eq!(p.mean_depth(), 0.0);
    }
}
