//! Reference sequential depth-first traversal.
//!
//! This is the baseline against which every parallel run is validated (node
//! counts must match exactly) and measured (§4.1 of the paper reports the
//! sequential exploration rate, which anchors the machine models).

use crate::node::Node;
use crate::spec::TreeSpec;

/// Result of a sequential traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqResult {
    /// Total number of tree nodes visited (including the root).
    pub nodes: u64,
    /// Number of leaves.
    pub leaves: u64,
    /// Maximum node height observed.
    pub max_depth: u32,
    /// High-water mark of the explicit DFS stack.
    pub max_stack: usize,
}

/// Count every node of the tree with an explicit-stack DFS.
pub fn dfs_count(spec: &TreeSpec) -> SeqResult {
    dfs_count_bounded(spec, u64::MAX).expect("unbounded traversal cannot exceed the bound")
}

/// Like [`dfs_count`] but aborts (returning `None`) once more than `limit`
/// nodes have been visited — a guard for possibly-supercritical parameters.
pub fn dfs_count_bounded(spec: &TreeSpec, limit: u64) -> Option<SeqResult> {
    let mut stack: Vec<Node> = vec![spec.root()];
    let mut res = SeqResult {
        max_stack: 1,
        ..SeqResult::default()
    };
    let mut scratch = Vec::new();
    while let Some(node) = stack.pop() {
        res.nodes += 1;
        if res.nodes > limit {
            return None;
        }
        res.max_depth = res.max_depth.max(node.height);
        scratch.clear();
        let n = spec.expand_into(&node, &mut scratch);
        if n == 0 {
            res.leaves += 1;
        } else {
            stack.extend_from_slice(&scratch);
        }
        res.max_stack = res.max_stack.max(stack.len());
    }
    Some(res)
}

/// Count only the subtree rooted at `node` (used by imbalance statistics and
/// by tests that cross-check partial traversals).
pub fn dfs_count_subtree(spec: &TreeSpec, node: Node) -> u64 {
    let mut stack = vec![node];
    let mut count = 0u64;
    let mut scratch = Vec::new();
    while let Some(n) = stack.pop() {
        count += 1;
        scratch.clear();
        spec.expand_into(&n, &mut scratch);
        stack.extend_from_slice(&scratch);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GeoShape;

    /// q = 0: the tree is exactly the root plus its b0 leaf children.
    #[test]
    fn star_tree() {
        let spec = TreeSpec::binomial(0, 12, 2, 0.0);
        let r = dfs_count(&spec);
        assert_eq!(r.nodes, 13);
        assert_eq!(r.leaves, 12);
        assert_eq!(r.max_depth, 1);
    }

    /// b0 = 0: the tree is just the root.
    #[test]
    fn single_node_tree() {
        let spec = TreeSpec::binomial(0, 0, 2, 0.9);
        let r = dfs_count(&spec);
        assert_eq!(r.nodes, 1);
        assert_eq!(r.leaves, 1);
        assert_eq!(r.max_depth, 0);
        assert_eq!(r.max_stack, 1);
    }

    /// Leaves + internal nodes account for every node; for a binary-or-leaf
    /// law, nodes = 2*internal_nonroot + ... simpler: check leaf/node
    /// relation for m=2: every internal non-root node has exactly 2 children,
    /// so nodes = 1 + b0 + 2*(internal non-root).
    #[test]
    fn binomial_node_leaf_arithmetic() {
        let spec = TreeSpec::binomial(5, 20, 2, 0.47);
        let r = dfs_count(&spec);
        let internal = r.nodes - r.leaves;
        // children edges: root contributes 20, every other internal node 2.
        let edges = 20 + 2 * (internal - 1);
        assert_eq!(edges, r.nodes - 1, "every non-root node has one parent");
    }

    /// Subtree counts of the root's children sum to the whole tree.
    #[test]
    fn subtree_counts_sum() {
        let spec = TreeSpec::binomial(9, 8, 2, 0.45);
        let whole = dfs_count(&spec);
        let root = spec.root();
        let sum: u64 = (0..8).map(|i| dfs_count_subtree(&spec, root.child(i))).sum();
        assert_eq!(sum + 1, whole.nodes);
    }

    #[test]
    fn bounded_traversal_aborts() {
        let spec = TreeSpec::binomial(5, 20, 2, 0.47);
        let full = dfs_count(&spec).nodes;
        assert!(dfs_count_bounded(&spec, full - 1).is_none());
        assert_eq!(dfs_count_bounded(&spec, full).unwrap().nodes, full);
    }

    #[test]
    fn geometric_fixed_tree_terminates() {
        let spec = TreeSpec::geometric(1, 2.0, 6, GeoShape::Fixed);
        let r = dfs_count_bounded(&spec, 10_000_000).expect("tree too large");
        assert!(r.nodes >= 1);
        assert!(r.max_depth <= 6);
    }

    /// Traversal is deterministic.
    #[test]
    fn deterministic() {
        let spec = TreeSpec::binomial(11, 16, 2, 0.48);
        assert_eq!(dfs_count(&spec), dfs_count(&spec));
    }
}

/// Lazy depth-first iterator over a tree's nodes.
///
/// Yields every node exactly once in DFS order without materialising the
/// tree; memory use is bounded by the DFS stack high-water mark. Useful for
/// streaming analyses (sampling node properties, exporting subsets) where
/// [`dfs_count`]'s aggregate view is too coarse.
///
/// ```
/// use uts_tree::{TreeSpec, seq::DfsIter};
/// let spec = TreeSpec::binomial(0, 4, 2, 0.3);
/// let total = DfsIter::new(&spec).count() as u64;
/// assert_eq!(total, uts_tree::seq::dfs_count(&spec).nodes);
/// ```
pub struct DfsIter<'a> {
    spec: &'a TreeSpec,
    stack: Vec<Node>,
    scratch: Vec<Node>,
}

impl<'a> DfsIter<'a> {
    /// Iterator over every node of `spec`'s tree, root first.
    pub fn new(spec: &'a TreeSpec) -> DfsIter<'a> {
        DfsIter {
            spec,
            stack: vec![spec.root()],
            scratch: Vec::new(),
        }
    }

    /// Current DFS stack depth (diagnostic).
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

impl Iterator for DfsIter<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        let node = self.stack.pop()?;
        self.scratch.clear();
        self.spec.expand_into(&node, &mut self.scratch);
        self.stack.extend_from_slice(&self.scratch);
        Some(node)
    }
}

#[cfg(test)]
mod iter_tests {
    use super::*;

    #[test]
    fn iterator_agrees_with_dfs_count() {
        let spec = TreeSpec::binomial(5, 12, 2, 0.44);
        let r = dfs_count(&spec);
        let mut n = 0u64;
        let mut leaves = 0u64;
        let mut max_depth = 0u32;
        for node in DfsIter::new(&spec) {
            n += 1;
            if spec.num_children(&node) == 0 {
                leaves += 1;
            }
            max_depth = max_depth.max(node.height);
        }
        assert_eq!(n, r.nodes);
        assert_eq!(leaves, r.leaves);
        assert_eq!(max_depth, r.max_depth);
    }

    #[test]
    fn first_item_is_root() {
        let spec = TreeSpec::binomial(3, 2, 2, 0.2);
        let mut it = DfsIter::new(&spec);
        assert_eq!(it.next(), Some(spec.root()));
    }

    #[test]
    fn iterator_is_fused_at_end() {
        let spec = TreeSpec::binomial(0, 0, 2, 0.0);
        let mut it = DfsIter::new(&spec);
        assert!(it.next().is_some());
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn visits_each_node_once() {
        use std::collections::HashSet;
        let spec = TreeSpec::binomial(9, 8, 2, 0.4);
        let mut seen = HashSet::new();
        for node in DfsIter::new(&spec) {
            assert!(seen.insert(node), "duplicate node visited");
        }
        assert_eq!(seen.len() as u64, dfs_count(&spec).nodes);
    }
}
