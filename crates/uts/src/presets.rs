//! Frozen tree instances used throughout the test suite and the benchmark
//! harness, plus the paper's original (unscaled) parameter sets for
//! reference.
//!
//! The paper's trees (footnotes 1-2 of §4.1) have 10.6 and 157 billion
//! nodes — hours of CPU per traversal. Our presets use the same law
//! (binomial, m = 2, q slightly below 1/2, wide root) scaled so that the
//! largest preset traverses in tens of seconds, with the imbalance property
//! re-verified rather than assumed (see `tests/` and `stats`).
//!
//! `expected` sizes were measured once with the reference sequential DFS and
//! are enforced by tests: any change to the SHA-1 engine, node derivation, or
//! child-count law will be caught as a size mismatch.

use crate::seq::SeqResult;
use crate::spec::TreeSpec;

/// A frozen tree preset: spec plus its exact measured traversal result.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// The tree.
    pub spec: TreeSpec,
    /// Exact sequential traversal result (nodes/leaves/max_depth frozen).
    pub expected: SeqResult,
}

/// Helper for preset construction.
const fn preset(
    name: &'static str,
    spec: TreeSpec,
    nodes: u64,
    leaves: u64,
    max_depth: u32,
    max_stack: usize,
) -> Preset {
    Preset {
        name,
        spec,
        expected: SeqResult {
            nodes,
            leaves,
            max_depth,
            max_stack,
        },
    }
}

/// q for a binomial law with `1 - m q = 1/inv` (m = 2): the expected size of
/// a subtree below any non-root node is `inv`.
pub const fn q_for_inverse_gap(inv: f64) -> f64 {
    (1.0 - 1.0 / inv) / 2.0
}

/// ~50 k nodes. Unit/integration test workhorse.
pub fn t_s() -> Preset {
    preset(
        "T-S",
        TreeSpec::binomial(12, 64, 2, q_for_inverse_gap(250.0)),
        45_925,
        22_994,
        428,
        259,
    )
}

/// ~1 M nodes. Sequential-rate anchor (E1) and Altix runs (E5).
pub fn t_m() -> Preset {
    preset(
        "T-M",
        TreeSpec::binomial(2, 500, 2, q_for_inverse_gap(2000.0)),
        1_328_225,
        664_362,
        2253,
        1262,
    )
}

/// ~4 M nodes. Figure 4 chunk-size sweep and the ablation (E2/E3).
pub fn t_l() -> Preset {
    preset(
        "T-L",
        TreeSpec::binomial(9, 1000, 2, q_for_inverse_gap(4000.0)),
        2_445_119,
        1_223_059,
        3489,
        2375,
    )
}

/// ~16 M nodes. Figure 5 strong-scaling runs up to 1024 threads (E4).
pub fn t_xl() -> Preset {
    preset(
        "T-XL",
        TreeSpec::binomial(28, 2000, 2, q_for_inverse_gap(8000.0)),
        14_089_687,
        7_045_843,
        6341,
        5043,
    )
}

/// ~89 M nodes. The "headline" tree for the E4 companion run at 1024
/// threads: large enough that per-thread work begins to amortise steal
/// latencies the way the paper's 157 G-node tree does. One traversal costs
/// tens of seconds of real time — benches only, never unit tests.
pub fn t_xxl() -> Preset {
    preset(
        "T-XXL",
        TreeSpec::binomial(7, 4000, 2, q_for_inverse_gap(32000.0)),
        88_872_001,
        44_438_000,
        15_770,
        8_949,
    )
}

/// Tiny tree (hundreds of nodes) for exhaustive protocol tests.
pub fn t_tiny() -> Preset {
    preset(
        "T-tiny",
        TreeSpec::binomial(2, 16, 2, q_for_inverse_gap(20.0)),
        431,
        223,
        21,
        20,
    )
}

/// All scaled presets, smallest first. (T-XXL included: callers that
/// traverse every preset should be prepared for its cost.)
pub fn all() -> Vec<Preset> {
    vec![t_tiny(), t_s(), t_m(), t_l(), t_xl(), t_xxl()]
}

/// The paper's 10.6-billion-node sample tree (§4.1 footnote 1). **Do not
/// traverse in tests** — provided for documentation and for anyone with a
/// cluster-scale budget.
pub fn paper_10b() -> TreeSpec {
    TreeSpec::binomial(0, 2000, 2, 0.5 * (1.0 - 1e-8))
}

/// The paper's 157-billion-node tree (§4.1 footnote 2).
pub fn paper_157b() -> TreeSpec {
    TreeSpec::binomial(559, 2000, 2, 0.5 * (1.0 - 1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dfs_count;

    /// The cheap presets' frozen sizes must match a fresh traversal exactly.
    /// (T-L and T-XL are covered by `--release` integration tests.)
    #[test]
    fn small_presets_sizes_frozen() {
        for p in [t_tiny(), t_s()] {
            let r = dfs_count(&p.spec);
            assert_eq!(r, p.expected, "preset {} drifted", p.name);
        }
    }

    #[test]
    fn paper_specs_have_paper_parameters() {
        let p10 = paper_10b();
        let p157 = paper_157b();
        assert_eq!(p10.seed, 0);
        assert_eq!(p157.seed, 559);
        if let crate::spec::TreeKind::Binomial { b0, m, q } = p10.kind {
            assert_eq!((b0, m), (2000, 2));
            assert!((q - 0.499999995).abs() < 1e-12);
        } else {
            panic!("paper tree must be binomial");
        }
        if let crate::spec::TreeKind::Binomial { q, .. } = p157.kind {
            assert!((q - 0.4999995).abs() < 1e-12);
        }
    }

    #[test]
    fn presets_are_distinct() {
        let names: Vec<_> = all().iter().map(|p| p.name).collect();
        let specs: Vec<_> = all().iter().map(|p| p.spec).collect();
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                assert_ne!(names[i], names[j]);
                assert_ne!(specs[i], specs[j]);
            }
        }
    }
}
