//! UTS tree nodes: 20 bytes of SHA-1 state plus the node's height.
//!
//! A node's entire subtree is a pure function of its state, which is what lets
//! workers ship nodes between depth-first stacks with a 24-byte copy and no
//! other coordination.

use uts_sha1::Sha1;

/// One task in the search space.
///
/// `Copy` and exactly 24 bytes so that chunks of nodes can be moved with a
/// single bulk one-sided transfer, mirroring the `upc_memget` transfers in the
/// paper's implementation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[repr(C)]
pub struct Node {
    /// SHA-1 state identifying this node (and, implicitly, its subtree).
    pub state: [u8; 20],
    /// Distance from the root (the root has height 0).
    pub height: u32,
}

impl Node {
    /// The root node for a given 32-bit tree seed (UTS `rng_init`).
    pub fn root(seed: u32) -> Node {
        let mut h = Sha1::new();
        h.update(&seed.to_be_bytes());
        Node {
            state: h.finalize(),
            height: 0,
        }
    }

    /// The `i`-th child of this node (UTS `rng_spawn`): SHA-1 of the parent
    /// state concatenated with the big-endian child index.
    pub fn child(&self, i: u32) -> Node {
        let mut h = Sha1::new();
        h.update(&self.state);
        h.update(&i.to_be_bytes());
        Node {
            state: h.finalize(),
            height: self.height + 1,
        }
    }

    /// A 31-bit non-negative pseudo-random value derived from the node state
    /// (UTS `rng_rand`): the child-count law consumes this.
    pub fn rand31(&self) -> u32 {
        let v = u32::from_be_bytes([self.state[16], self.state[17], self.state[18], self.state[19]]);
        v >> 1
    }

    /// Uniform value in `[0, 1)` derived from [`Node::rand31`].
    pub fn unit(&self) -> f64 {
        self.rand31() as f64 / (1u64 << 31) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_24_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 24);
    }

    #[test]
    fn roots_differ_by_seed() {
        assert_ne!(Node::root(0), Node::root(1));
        assert_eq!(Node::root(42), Node::root(42));
    }

    #[test]
    fn children_are_distinct_and_deterministic() {
        let r = Node::root(0);
        let c0 = r.child(0);
        let c1 = r.child(1);
        assert_ne!(c0, c1);
        assert_eq!(c0, r.child(0));
        assert_eq!(c0.height, 1);
        assert_eq!(c1.height, 1);
    }

    #[test]
    fn rand31_is_31_bits() {
        for seed in 0..64 {
            let n = Node::root(seed);
            assert!(n.rand31() < (1 << 31));
            let u = n.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    /// rand31 over many nodes should look roughly uniform: mean near 2^30.
    #[test]
    fn rand31_roughly_uniform() {
        let r = Node::root(7);
        let n = 4096u32;
        let mean: f64 = (0..n).map(|i| r.child(i).rand31() as f64).sum::<f64>() / n as f64;
        let expected = (1u64 << 30) as f64;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} too far from {expected}"
        );
    }
}
