//! # uts-tree — the Unbalanced Tree Search benchmark
//!
//! UTS (Olivier et al., LCPC 2006) defines a family of *implicit* trees: every
//! node is a 20-byte SHA-1 state, and the children of a node are obtained by
//! hashing the parent state together with the child index. The whole tree is
//! therefore determined by a root seed and a handful of distribution
//! parameters, yet its realised shape is wildly imbalanced — the property that
//! makes it a stress test for dynamic load balancing.
//!
//! This crate provides:
//! - [`Node`]: the 24-byte task descriptor moved between workers,
//! - [`TreeSpec`]: binomial / geometric / hybrid child-count laws,
//! - [`seq`]: the reference sequential depth-first traversal,
//! - [`presets`]: frozen tree instances (exact sizes verified by tests),
//! - [`stats`]: imbalance analysis (subtree-size distribution under the root).
//!
//! # Example
//! ```
//! use uts_tree::{TreeSpec, seq::dfs_count};
//! let spec = TreeSpec::binomial(0, 4, 2, 0.49);
//! let result = dfs_count(&spec);
//! assert!(result.nodes >= 5); // root + 4 children at least
//! ```

#![warn(missing_docs)]

pub mod node;
pub mod presets;
pub mod seq;
pub mod spec;
pub mod stats;

pub use node::Node;
pub use spec::{GeoShape, TreeKind, TreeSpec};
