//! Inspect a preset tree: exact size, depth profile, and root-subtree
//! imbalance — the workload-characterisation companion to DESIGN.md's
//! preset table. (The largest presets take a while: one full traversal per
//! root child for the imbalance measurement.)
//!
//! Usage: `cargo run --release -p uts-tree --bin tree_info -- [tiny|s|m|l|xl]`

use uts_tree::presets;
use uts_tree::stats::{depth_profile, measure_imbalance};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "s".to_string());
    let preset = match which.as_str() {
        "tiny" => presets::t_tiny(),
        "s" => presets::t_s(),
        "m" => presets::t_m(),
        "l" => presets::t_l(),
        "xl" => presets::t_xl(),
        "xxl" => presets::t_xxl(),
        other => {
            eprintln!("unknown preset '{other}'");
            std::process::exit(2);
        }
    };
    println!("preset {} : {:?}", preset.name, preset.spec);
    println!(
        "frozen: {} nodes, {} leaves, max depth {}, max stack {}",
        preset.expected.nodes, preset.expected.leaves, preset.expected.max_depth, preset.expected.max_stack
    );

    let prof = depth_profile(&preset.spec);
    assert_eq!(prof.total, preset.expected.nodes, "preset drifted!");
    println!(
        "depth: mean {:.1}, median {}, p90 {}, p99 {}",
        prof.mean_depth(),
        prof.depth_quantile(0.5),
        prof.depth_quantile(0.9),
        prof.depth_quantile(0.99)
    );

    let imb = measure_imbalance(&preset.spec);
    println!(
        "imbalance: largest root subtree holds {:.2}% of all nodes; {} of {} subtrees cover 90%; cv = {:.1}",
        100.0 * imb.largest_fraction(),
        imb.subtrees_for_fraction(0.90),
        imb.child_sizes.len(),
        imb.coefficient_of_variation()
    );
}
