//! Seed scout: explores candidate (seed, b0, q) binomial parameters and
//! reports realised tree sizes and imbalance, used once to choose the frozen
//! presets in `uts_tree::presets`.
//!
//! Usage: `cargo run --release -p uts-tree --bin scout -- <b0> <one_minus_2q_inv> <seed_lo> <seed_hi> [limit]`
//! where q = (1 - 1/one_minus_2q_inv) / 2.

use uts_tree::seq::dfs_count_bounded;
use uts_tree::TreeSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 4 {
        eprintln!("usage: scout <b0> <one_minus_2q_inv> <seed_lo> <seed_hi> [limit]");
        std::process::exit(2);
    }
    let b0: u32 = args[0].parse().unwrap();
    let inv: f64 = args[1].parse().unwrap();
    let seed_lo: u32 = args[2].parse().unwrap();
    let seed_hi: u32 = args[3].parse().unwrap();
    let limit: u64 = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(100_000_000);
    let q = (1.0 - 1.0 / inv) / 2.0;
    println!("b0={b0} q={q:.10} expected-subtree={}", 1.0 / (1.0 - 2.0 * q));
    for seed in seed_lo..seed_hi {
        let spec = TreeSpec::binomial(seed, b0, 2, q);
        match dfs_count_bounded(&spec, limit) {
            Some(r) => {
                println!(
                    "seed={seed} nodes={} leaves={} max_depth={} max_stack={}",
                    r.nodes, r.leaves, r.max_depth, r.max_stack
                );
            }
            None => println!("seed={seed} nodes>LIMIT({limit})"),
        }
    }
}
