//! SHA-1 (RFC 3174), implemented from scratch.
//!
//! The UTS benchmark ([Olivier et al., LCPC 2006]) defines its implicit search
//! trees through repeated SHA-1 evaluation: the 20-byte digest of a parent
//! node's state concatenated with a child index *is* the child's state. This
//! crate provides the streaming digest used by [`uts-tree`] for that purpose.
//!
//! SHA-1 is cryptographically broken for collision resistance, but UTS only
//! needs it as a high-quality deterministic pseudo-random function, exactly as
//! the original benchmark uses it.
//!
//! # Example
//! ```
//! let digest = uts_sha1::sha1(b"abc");
//! assert_eq!(
//!     uts_sha1::to_hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```
#![warn(missing_docs)]

mod engine;

pub use engine::Sha1;

/// A 20-byte SHA-1 digest.
pub type Digest = [u8; 20];

/// Compute the SHA-1 digest of `data` in one shot.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Render a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn rfc3174_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(to_hex(&sha1(input)), *want, "input {:?}", input);
        }
    }

    /// One million repetitions of 'a' (the classic long-message vector),
    /// fed through the streaming interface in uneven pieces.
    #[test]
    fn million_a_streaming() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 977]; // prime-sized chunks cross block boundaries
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            h.update(&chunk[..n]);
            remaining -= n;
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    /// Exactly 64-byte and 55/56-byte messages exercise the padding edge
    /// cases (padding fits / does not fit in the final block).
    #[test]
    fn padding_boundaries() {
        let m64 = [0x55u8; 64];
        let m55 = [0x55u8; 55];
        let m56 = [0x55u8; 56];
        // Reference values computed with the streaming implementation itself
        // must at minimum be self-consistent with one-shot + split updates.
        for m in [&m64[..], &m55[..], &m56[..]] {
            let whole = sha1(m);
            let mut h = Sha1::new();
            let (a, b) = m.split_at(m.len() / 2);
            h.update(a);
            h.update(b);
            assert_eq!(whole, h.finalize());
        }
        // And a known vector at the 64-byte boundary:
        assert_eq!(
            to_hex(&sha1(
                b"0123456701234567012345670123456701234567012345670123456701234567"
            )),
            "e0c094e867ef46c350ef54a7f59dd60bed92ae83"
        );
    }

    #[test]
    fn update_split_equivalence_exhaustive_small() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 + 3) as u8).collect();
        let whole = sha1(&data);
        for split in 0..=data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn to_hex_roundtrip_format() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(to_hex(&[]), "");
    }
}
