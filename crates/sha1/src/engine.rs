//! The SHA-1 compression function and streaming state (RFC 3174 §6.1).

/// Streaming SHA-1 hasher.
///
/// Feed arbitrary byte slices with [`Sha1::update`] and obtain the digest with
/// [`Sha1::finalize`]. The implementation processes 512-bit blocks with the
/// standard 80-round compression function.
#[derive(Clone)]
pub struct Sha1 {
    /// Working hash state H0..H4.
    h: [u32; 5],
    /// Partially filled input block.
    block: [u8; 64],
    /// Number of valid bytes in `block` (< 64 between calls).
    block_len: usize,
    /// Total message length in bytes (RFC caps at 2^64 bits; we hold bytes).
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Initial hash values from RFC 3174 §6.1.
    pub fn new() -> Self {
        Sha1 {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            block: [0u8; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Top up a partial block first.
        if self.block_len > 0 {
            let need = 64 - self.block_len;
            let take = need.min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            } else {
                // Input exhausted without completing the block.
                return;
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            // chunks_exact guarantees 64 bytes.
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        // Stash the tail.
        let rem = chunks.remainder();
        self.block[..rem.len()].copy_from_slice(rem);
        self.block_len = rem.len();
    }

    /// Apply RFC 3174 padding and return the 160-bit digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        // 0x80 terminator, then zeros, then 8-byte big-endian bit length.
        self.update_padding_byte();
        while self.block_len != 56 {
            self.update_padding_zero();
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        self.block[56..64].copy_from_slice(&len_bytes);
        let block = self.block;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding_byte(&mut self) {
        self.block[self.block_len] = 0x80;
        self.block_len += 1;
        if self.block_len == 64 {
            let block = self.block;
            self.compress(&block);
            self.block_len = 0;
        }
    }

    fn update_padding_zero(&mut self) {
        self.block[self.block_len] = 0;
        self.block_len += 1;
        if self.block_len == 64 {
            let block = self.block;
            self.compress(&block);
            self.block_len = 0;
        }
    }

    /// The 80-round compression function on one 512-bit block.
    // Indexing `w[t]` mirrors the RFC 3174 pseudocode; an iterator form
    // would obscure the round structure.
    #[allow(clippy::needless_range_loop)]
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (t, wt) in w.iter_mut().take(16).enumerate() {
            *wt = u32::from_be_bytes([
                block[t * 4],
                block[t * 4 + 1],
                block[t * 4 + 2],
                block[t * 4 + 3],
            ]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.h;

        // Four stages of 20 rounds, each with its f() and constant K.
        macro_rules! round {
            ($f:expr, $k:expr, $t:expr) => {{
                let temp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add(w[$t])
                    .wrapping_add($k);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = temp;
            }};
        }

        for t in 0..20 {
            round!((b & c) | ((!b) & d), 0x5A827999, t);
        }
        for t in 20..40 {
            round!(b ^ c ^ d, 0x6ED9EBA1, t);
        }
        for t in 40..60 {
            round!((b & c) | (b & d) | (c & d), 0x8F1BBCDC, t);
        }
        for t in 60..80 {
            round!(b ^ c ^ d, 0xCA62C1D6, t);
        }

        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new() {
        let a = Sha1::default().finalize();
        let b = Sha1::new().finalize();
        assert_eq!(a, b);
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha1::new();
        h.update(b"partial inp");
        let h2 = h.clone();
        h.update(b"ut tail");
        let mut h3 = h2;
        h3.update(b"ut tail");
        assert_eq!(h.finalize(), h3.finalize());
    }

    /// Single-byte updates must match the one-shot digest (exercises the
    /// partial-block path on every call).
    #[test]
    fn byte_at_a_time() {
        let data = b"work stealing is one-sided";
        let mut h = Sha1::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        let mut one = Sha1::new();
        one.update(data);
        assert_eq!(h.finalize(), one.finalize());
    }

    /// Empty updates are no-ops.
    #[test]
    fn empty_updates() {
        let mut h = Sha1::new();
        h.update(b"");
        h.update(b"abc");
        h.update(b"");
        let mut one = Sha1::new();
        one.update(b"abc");
        assert_eq!(h.finalize(), one.finalize());
    }
}
