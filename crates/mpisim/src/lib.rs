//! # mpisim — the message-passing substrate for the `mpi-ws` baseline
//!
//! The paper's §3.2 baseline ([Dinan et al., PMEO-PDS'07]) implements work
//! stealing with explicit messages: idle threads send steal requests,
//! working threads poll and reply with work or a denial, and global quiescence
//! is detected with a token circulating on a ring (the paper cites Dijkstra's
//! token algorithm \[9\]).
//!
//! This crate layers MPI-ish vocabulary over [`pgas::Comm`]'s mailboxes — so
//! the message costs come from the *same* [`pgas::MachineModel`] as the
//! one-sided costs, keeping the UPC-vs-MPI comparison fair — and provides
//! [`TokenRing`], a termination detector.
//!
//! ## Termination-detection substitution
//!
//! We implement the token ring with **message counting** (Mattern's
//! four-counter method) rather than Dijkstra-Feijen-van Gasteren colours:
//! each rank accumulates its cumulative work-messages-sent/received counts
//! into the circulating token, and rank 0 declares termination after two
//! consecutive rounds with identical, balanced totals. With asynchronous
//! message delivery (our mailboxes have real in-flight latency) the counting
//! variant is sound against the classic "work overtakes the token" race,
//! which the colour variant only handles under stronger assumptions. The
//! message pattern (one token hop per idle rank per round + a final
//! broadcast) — which is what the paper's performance results depend on —
//! is identical.

#![warn(missing_docs)]

use pgas::{Comm, Msg};

/// Reserved message tags. Applications must use non-negative tags.
pub mod tags {
    /// The termination token.
    pub const TOKEN: i64 = -100;
    /// Termination announcement broadcast by rank 0.
    pub const TERM: i64 = -101;
}

/// Items that can flow through rank mailboxes (re-export of the pgas bound).
pub use pgas::comm::Item;

/// Counting token-ring termination detector for one rank.
///
/// Usage: every time a rank is **idle** (no local work; it may still be
/// denying steal requests), call [`TokenRing::step`] with its cumulative
/// counts of *work-transfer* messages sent and received. The call returns
/// `true` once global termination is established — after that the rank may
/// exit. Ranks that are busy simply do not call `step`, which parks the
/// token at their mailbox until they go idle.
#[derive(Debug)]
pub struct TokenRing {
    me: usize,
    n: usize,
    /// Rank 0 bootstraps holding a fresh token.
    holding: Option<TokenState>,
    /// Rank 0: totals of the previously completed round.
    prev_round: Option<(i64, i64)>,
    /// Set once TERM has been observed/broadcast.
    terminated: bool,
    /// Number of ring rounds this rank has participated in (diagnostics).
    pub rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenState {
    /// Rank 0's initial possession: no accumulated counts yet.
    Fresh,
    /// A token received from the predecessor with accumulated counts.
    Received { sent: i64, recv: i64 },
}

impl TokenRing {
    /// Create the detector for rank `me` of `n`.
    pub fn new(me: usize, n: usize) -> TokenRing {
        assert!(me < n);
        TokenRing {
            me,
            n,
            holding: (me == 0).then_some(TokenState::Fresh),
            prev_round: None,
            terminated: false,
            rounds: 0,
        }
    }

    /// Has this rank already observed global termination?
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Idle-time protocol step. `work_sent` / `work_recv` are this rank's
    /// *cumulative* counts of work-transfer messages. Returns `true` on
    /// global termination.
    pub fn step<T: Item, C: Comm<T>>(
        &mut self,
        comm: &mut C,
        work_sent: i64,
        work_recv: i64,
    ) -> bool {
        if self.terminated {
            return true;
        }
        // A solo rank that is idle is globally done.
        if self.n == 1 {
            self.terminated = true;
            return true;
        }
        // Termination announcement?
        if comm.try_recv(Some(tags::TERM)).is_some() {
            self.terminated = true;
            return true;
        }
        // Pick up a circulating token if one has arrived.
        if self.holding.is_none() {
            if let Some(msg) = comm.try_recv(Some(tags::TOKEN)) {
                self.holding = Some(TokenState::Received {
                    sent: msg.meta[0],
                    recv: msg.meta[1],
                });
            }
        }
        let Some(state) = self.holding else {
            return false;
        };

        if self.me != 0 {
            // Accumulate and forward.
            let TokenState::Received { sent, recv } = state else {
                unreachable!("only rank 0 holds a fresh token");
            };
            let next = (self.me + 1) % self.n;
            comm.send(
                next,
                tags::TOKEN,
                [sent + work_sent, recv + work_recv, 0, 0],
                &[],
            );
            self.holding = None;
            self.rounds += 1;
            return false;
        }

        // Rank 0.
        if let TokenState::Received { sent, recv } = state {
            // A round just completed; `sent`/`recv` include every other
            // rank's counts at visit time. Add our own as of *now*.
            let totals = (sent + work_sent, recv + work_recv);
            self.rounds += 1;
            if totals.0 == totals.1 && self.prev_round == Some(totals) {
                // Two consecutive identical, balanced rounds: every rank was
                // idle at both visits and no work message was sent, received,
                // or in flight in between. Announce termination.
                for r in 1..self.n {
                    comm.send(r, tags::TERM, [0; 4], &[]);
                }
                self.terminated = true;
                return true;
            }
            self.prev_round = Some(totals);
        }
        // Launch the next round. Rank 0's own counts are folded in when the
        // token returns (folding them here too would double-count them).
        comm.send(1, tags::TOKEN, [0, 0, 0, 0], &[]);
        self.holding = None;
        false
    }
}

/// Drain and discard any late protocol messages (steal requests that raced
/// with termination, stray tokens). Call after termination before shutdown
/// assertions.
pub fn drain_mailbox<T: Item, C: Comm<T>>(comm: &mut C) -> Vec<Msg<T>> {
    let mut leftovers = Vec::new();
    while let Some(m) = comm.try_recv(None) {
        leftovers.push(m);
    }
    leftovers
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::sim::SimCluster;
    use pgas::{MachineModel, SpaceConfig};

    fn cluster(n: usize) -> SimCluster<u64> {
        SimCluster::new(MachineModel::kittyhawk(), n, SpaceConfig::default())
    }

    /// All ranks idle from the start, no messages: termination must be
    /// detected by everyone, quickly.
    #[test]
    fn immediate_quiescence() {
        let n = 8;
        let report = cluster(n).run(|c| {
            let mut ring = TokenRing::new(c.my_id(), n);
            let mut steps = 0u64;
            while !ring.step(c, 0, 0) {
                c.poll();
                steps += 1;
                assert!(steps < 100_000, "termination not detected");
            }
            steps
        });
        assert_eq!(report.results.len(), n);
    }

    #[test]
    fn solo_rank_terminates_instantly() {
        let report = cluster(1).run(|c| {
            let mut ring = TokenRing::new(0, 1);
            ring.step(c, 0, 0)
        });
        assert!(report.results[0]);
    }

    /// A work message in flight must block termination until received.
    /// Rank 1 sends one work message to rank 2 and then goes idle; rank 2
    /// stays "busy" (not stepping the ring) until the message arrives.
    #[test]
    fn in_flight_work_blocks_termination() {
        let n = 4;
        const WORK: i64 = 5;
        let report = cluster(n).run(|c| {
            let me = c.my_id();
            let mut ring = TokenRing::new(me, n);
            let mut sent = 0i64;
            let mut recv = 0i64;
            if me == 1 {
                c.send(2, WORK, [0; 4], &[99u64]);
                sent = 1;
            }
            if me == 2 {
                // Busy until the work arrives: do not touch the ring.
                while c.try_recv(Some(WORK)).is_none() {
                    c.poll();
                }
                recv = 1;
            }
            let mut steps = 0u64;
            while !ring.step(c, sent, recv) {
                c.poll();
                steps += 1;
                assert!(steps < 200_000, "termination not detected");
            }
            (sent, recv)
        });
        // The run completing at all proves soundness here: rank 2 only joins
        // the ring after receiving the in-flight work, and rank 0 cannot
        // assemble two identical balanced rounds before that.
        assert_eq!(report.results[2], (0, 1));
    }

    /// Unbalanced counts (receiver never acknowledges participation) must
    /// never produce termination; conversely once balanced it must.
    #[test]
    fn counts_must_balance() {
        let n = 3;
        let report = cluster(n).run(|c| {
            let me = c.my_id();
            let mut ring = TokenRing::new(me, n);
            // Pretend rank 0 sent one work message that rank 1 received:
            // totals balance, so termination proceeds.
            let (s, r) = match me {
                0 => (1, 0),
                1 => (0, 1),
                _ => (0, 0),
            };
            let mut steps = 0u64;
            while !ring.step(c, s, r) {
                c.poll();
                steps += 1;
                assert!(steps < 100_000);
            }
            ring.rounds
        });
        // Rank 0 needs at least: one bootstrap round, then two identical
        // balanced rounds.
        assert!(report.results[0] >= 2);
    }

    /// Late steal requests sitting in mailboxes after termination are
    /// drainable and do not disturb the protocol.
    #[test]
    fn drain_leftovers() {
        let n = 2;
        const REQ: i64 = 7;
        let report = cluster(n).run(|c| {
            let me = c.my_id();
            let mut ring = TokenRing::new(me, n);
            if me == 1 {
                // A request that rank 0 will never answer.
                c.send(0, REQ, [0; 4], &[]);
            }
            while !ring.step(c, 0, 0) {
                c.poll();
            }
            drain_mailbox(c).len()
        });
        // Rank 0 drains the stray request (and possibly a stale token).
        assert!(report.results[0] >= 1);
    }

    /// The token makes progress even when ranks interleave busy periods.
    #[test]
    fn staggered_idleness_terminates() {
        let n = 6;
        let report = cluster(n).run(|c| {
            let me = c.my_id();
            let mut ring = TokenRing::new(me, n);
            // Each rank burns a different amount of virtual work first.
            c.work((me as u64 + 1) * 1000);
            let mut steps = 0u64;
            while !ring.step(c, 0, 0) {
                c.poll();
                steps += 1;
                assert!(steps < 200_000);
            }
            true
        });
        assert!(report.results.iter().all(|&t| t));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use pgas::sim::SimCluster;
    use pgas::{Comm, MachineModel, SpaceConfig};

    /// A busy rank parks the token: no ring progress (and no termination)
    /// until it goes idle and steps.
    #[test]
    fn token_parks_at_busy_rank() {
        let n = 3;
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::smp(), n, SpaceConfig::default());
        let report = cluster.run(|c| {
            let me = c.my_id();
            let mut ring = TokenRing::new(me, n);
            if me == 1 {
                // Busy for a long virtual while; the token waits in our
                // mailbox untouched. (Kept short: the idle ranks burn one
                // conductor op per poll while they wait.)
                c.work(100_000);
            }
            let t_start = c.now();
            while !ring.step(c, 0, 0) {
                c.poll();
            }
            (t_start, c.now())
        });
        // Nobody can terminate before rank 1's busy period ends.
        let busy_end = report.results[1].0;
        for (t, &(_, done)) in report.results.iter().enumerate() {
            assert!(done >= busy_end, "rank {t} terminated during the busy period");
        }
    }

    /// is_terminated latches and step stays true afterwards.
    #[test]
    fn termination_latches() {
        let cluster: SimCluster<u64> =
            SimCluster::new(MachineModel::smp(), 2, SpaceConfig::default());
        let report = cluster.run(|c| {
            let mut ring = TokenRing::new(c.my_id(), 2);
            while !ring.step(c, 0, 0) {
                c.poll();
            }
            assert!(ring.is_terminated());
            // Further steps are idempotent.
            assert!(ring.step(c, 0, 0));
            ring.rounds
        });
        // Rank 0 needed at least two completed rounds to declare.
        assert!(report.results[0] >= 2, "{:?}", report.results);
    }

    /// New rings start untriggered.
    #[test]
    fn fresh_ring_is_not_terminated() {
        let ring = TokenRing::new(0, 4);
        assert!(!ring.is_terminated());
    }

    #[test]
    #[should_panic]
    fn rank_out_of_range_panics() {
        let _ = TokenRing::new(4, 4);
    }
}
