//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! a minimal bench harness exposing the criterion surface its `benches/` use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `finish`, [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Statistics are deliberately simple: each benchmark is auto-calibrated to
//! a target per-sample duration, timed over `sample_size` samples, and the
//! median/min/max ns-per-iteration are printed, plus a derived rate when a
//! [`Throughput`] was declared. There are no plots, no saved baselines, and
//! no outlier analysis — this harness exists so `cargo bench` runs offline
//! and produces comparable numbers across commits on the same machine.
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (delegates to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting a benchmark's throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level harness handle (one per `cargo bench` binary).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 30,
            throughput: None,
        }
    }

    /// Accept (and ignore) command-line configuration, for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Print nothing; kept for API parity with `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, auto-calibrating iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes >= 2 ms (or a
        // single iteration is already slower than that).
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(2);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measure.
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declare how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        let mut b = Bencher {
            samples_ns: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples_ns;
        if s.is_empty() {
            println!("{}/{id:<28} (no samples)", self.name);
            return self;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let (min, max) = (s[0], s[s.len() - 1]);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3} Melem/s", n as f64 / median * 1e9 / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.3} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<28} median {:>12.1} ns/iter  [{:.1} .. {:.1}]{rate}",
            self.name, median, min, max
        );
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0, "closure never executed");
    }
}
