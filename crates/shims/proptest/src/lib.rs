//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! a minimal, dependency-free implementation of exactly the proptest surface
//! its test suites use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! - integer-range, [`Just`], tuple, `prop_map`, [`prop_oneof!`] and
//!   `prop::collection::vec` strategies,
//! - [`any`] for primitive integers,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - [`ProptestConfig`] with `cases` and `max_shrink_iters`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated values in
//!   scope of the assertion message; `max_shrink_iters` is ignored.
//! - **Deterministic generation.** The RNG is seeded from the test's module
//!   path and name, so every run explores the same cases. This trades fuzzing
//!   breadth for reproducible CI — the right trade for an offline container.
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic splitmix64 generator used for all value generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test's fully qualified name (FNV-1a hash), so each test
    /// gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Run configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Ignored (no shrinking); kept so real-proptest configs parse.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A value generator. The real crate's `Strategy` is a shrink tree; ours is
/// just a sampler, which is all the no-shrinking harness needs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (real proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`any`] can produce from raw RNG bits.
pub trait ArbitraryValue {
    /// Sample a uniformly distributed value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for a primitive type (real proptest's `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A) (A, B) (A, B, C) (A, B, C, D));

/// Type-erased strategy, used by [`prop_oneof!`] to mix arm types.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Erase a strategy's concrete type.
pub fn boxed_strategy<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    BoxedStrategy(Box::new(move |rng| s.generate(rng)))
}

/// Uniform choice between arms (the [`prop_oneof!`] implementation).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from pre-boxed arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `prop::collection` namespace (only `vec` is provided).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of values from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo).max(1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` values with a length drawn from `size`
        /// (either an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Length specification for `prop::collection::vec`: `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_strategy($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `config.cases` times with freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __one_case = move || $body;
                __one_case();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..9, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = prop::collection::vec(0u32..9, 4usize).generate(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (0u32..5).prop_map(|v| v as i64),
            Just(-1i64),
            ((0u32..3), (0u32..3)).prop_map(|(a, b)| i64::from(a + b)),
        ];
        let mut rng = TestRng::from_name("oneof");
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((-1..7).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let sample = |name: &str| {
            let mut rng = TestRng::from_name(name);
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: args generate, assume skips, asserts fire.
        #[test]
        fn macro_roundtrip(a in 1u64..100, pair in ((0usize..4), any::<i64>())) {
            prop_assume!(a != 99);
            prop_assert!((1..100).contains(&a));
            prop_assert_eq!(pair.0, pair.0);
        }
    }
}
