//! Simulator self-measurement: how many virtual-time operations per second
//! the conductor sustains. This bounds how large a cluster experiment is
//! practical on one host and quantifies the cost of the baton handoff.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pgas::sim::SimCluster;
use pgas::{Comm, MachineModel, SpaceConfig};

fn bench_conductor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_conductor");
    g.sample_size(10);

    // Single thread: ops take the fast path (thread picks itself).
    const OPS: u64 = 10_000;
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("ops_1_thread", |b| {
        b.iter(|| {
            let cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::smp(), 1, SpaceConfig::default());
            cluster.run(|comm| {
                for i in 0..OPS {
                    comm.put(0, 0, i as i64);
                }
            })
        })
    });

    // Contended: every op changes the baton holder (worst case).
    const OPS_PER: u64 = 1_000;
    for n in [2usize, 8] {
        g.throughput(Throughput::Elements(OPS_PER * n as u64));
        g.bench_function(format!("ops_{n}_threads_interleaved"), |b| {
            b.iter(|| {
                let cluster: SimCluster<u64> =
                    SimCluster::new(MachineModel::smp(), n, SpaceConfig::default());
                cluster.run(|comm| {
                    for _ in 0..OPS_PER {
                        black_box(comm.add(0, 0, 1));
                    }
                })
            })
        });
    }

    // Pure work accumulation must be near-free (no conductor involvement).
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("work_accumulation_100k", |b| {
        b.iter(|| {
            let cluster: SimCluster<u64> =
                SimCluster::new(MachineModel::smp(), 1, SpaceConfig::default());
            cluster.run(|comm| {
                for _ in 0..100_000u64 {
                    comm.work(1);
                }
                comm.now()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_conductor);
criterion_main!(benches);
