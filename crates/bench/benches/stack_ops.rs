//! Steal-stack and probe-order micro-operations: the per-node bookkeeping
//! that sits between SHA-1 evaluations on the worker fast path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use uts_tree::Node;
use worksteal::probe::{ProbeOrder, Xorshift};
use worksteal::stack::DfsStack;

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("dfs_stack");
    let node = Node::root(0);

    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let mut s: DfsStack<Node> = DfsStack::new(8);
        b.iter(|| {
            s.push(black_box(node));
            black_box(s.pop())
        })
    });

    g.throughput(Throughput::Elements(8));
    g.bench_function("release_chunk_k8", |b| {
        let mut s: DfsStack<Node> = DfsStack::new(8);
        b.iter(|| {
            for _ in 0..8 {
                s.push(node);
            }
            black_box(s.take_bottom_chunk())
        })
    });

    g.bench_function("push_all_64", |b| {
        let mut s: DfsStack<Node> = DfsStack::new(8);
        let chunk = [node; 64];
        b.iter(|| {
            s.push_all(black_box(&chunk));
            while s.pop().is_some() {}
        })
    });
    g.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_order");
    for n in [16usize, 256, 1024] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("cycle_{n}_threads"), |b| {
            let mut p = ProbeOrder::flat(0, n, 7);
            b.iter(|| black_box(p.cycle()))
        });
    }
    g.bench_function("xorshift_next", |b| {
        let mut r = Xorshift::new(1);
        b.iter(|| black_box(r.next_u64()))
    });
    g.finish();
}

criterion_group!(benches, bench_stack, bench_probe);
criterion_main!(benches);
