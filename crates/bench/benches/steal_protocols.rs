//! End-to-end protocol benchmarks: real (wall-clock) cost of simulating one
//! complete load-balanced traversal per algorithm, and the native backend's
//! real work-stealing throughput. These track harness performance so the
//! figure binaries stay tractable.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pgas::MachineModel;
use worksteal::{run_native, run_sim, Algorithm, RunConfig, UtsGen};

fn bench_sim_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_full_run");
    g.sample_size(10);
    let p = uts_tree::presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    g.throughput(Throughput::Elements(p.expected.nodes));
    for alg in [
        Algorithm::SharedMem,
        Algorithm::Term,
        Algorithm::TermRapdif,
        Algorithm::DistMem,
        Algorithm::MpiWs,
    ] {
        g.bench_function(format!("{}_p8_tiny", alg.label()), |b| {
            let cfg = RunConfig::new(alg, 2);
            b.iter(|| {
                let r = run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg);
                assert_eq!(r.total_nodes, p.expected.nodes);
                black_box(r.makespan_ns)
            })
        });
    }
    g.finish();
}

fn bench_native_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_full_run");
    g.sample_size(10);
    let p = uts_tree::presets::t_s();
    let gen = UtsGen::new(p.spec);
    g.throughput(Throughput::Elements(p.expected.nodes));
    for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
        g.bench_function(format!("{}_p2_ts", alg.label()), |b| {
            let cfg = RunConfig::new(alg, 8);
            b.iter(|| {
                let r = run_native(MachineModel::smp(), 2, &gen, &cfg)
                    .expect("fault-free config runs natively");
                assert_eq!(r.total_nodes, p.expected.nodes);
                black_box(r.makespan_ns)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim_runs, bench_native_runs);
criterion_main!(benches);
