//! E1 companion: real sequential UTS exploration rate on this host (the
//! paper's §4.1 table, hardware edition). Reported as nodes/second.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use uts_tree::seq::dfs_count;
use uts_tree::{presets, GeoShape, TreeSpec};

fn bench_seq_dfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_dfs");
    g.sample_size(20);

    let tiny = presets::t_tiny();
    g.throughput(Throughput::Elements(tiny.expected.nodes));
    g.bench_function("binomial_tiny_431", |b| {
        b.iter(|| black_box(dfs_count(black_box(&tiny.spec))))
    });

    let small = presets::t_s();
    g.throughput(Throughput::Elements(small.expected.nodes));
    g.bench_function("binomial_ts_46k", |b| {
        b.iter(|| black_box(dfs_count(black_box(&small.spec))))
    });

    // A geometric tree of similar magnitude for law-shape comparison.
    let geo = TreeSpec::geometric(3, 3.0, 9, GeoShape::Fixed);
    let geo_nodes = dfs_count(&geo).nodes;
    g.throughput(Throughput::Elements(geo_nodes));
    g.bench_function("geometric_fixed", |b| {
        b.iter(|| black_box(dfs_count(black_box(&geo))))
    });

    g.finish();
}

criterion_group!(benches, bench_seq_dfs);
criterion_main!(benches);
