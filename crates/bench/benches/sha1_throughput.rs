//! SHA-1 micro-benchmarks. §4.1: "The sequential rate of depth-first search
//! primarily reflects the speed at which the processor can calculate SHA-1
//! hash evaluations" — so the hash engine's throughput bounds everything.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use uts_sha1::Sha1;
use uts_tree::Node;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [24usize, 64, 1024, 65536] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| {
                let mut h = Sha1::new();
                h.update(black_box(&data));
                black_box(h.finalize())
            })
        });
    }
    g.finish();
}

fn bench_node_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts_node");
    let parent = Node::root(0);
    // One child derivation = one SHA-1 of 24 bytes: the per-node cost of UTS.
    g.throughput(Throughput::Elements(1));
    g.bench_function("spawn_child", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(parent.child(black_box(i)))
        })
    });
    g.throughput(Throughput::Elements(8));
    g.bench_function("spawn_8_children", |b| {
        b.iter(|| {
            for i in 0..8 {
                black_box(parent.child(i));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sha1, bench_node_spawn);
criterion_main!(benches);
