//! Shared helpers for the figure-reproduction binaries. See `src/bin/`.
pub mod harness;
