//! Shared helpers for the figure-reproduction binaries. See `src/bin/`.
#![warn(missing_docs)]

pub mod harness;
