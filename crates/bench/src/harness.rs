//! Shared plumbing for the figure-reproduction binaries: run descriptors,
//! result tables, and CSV output under `results/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use pgas::MachineModel;
use worksteal::state::State;
use worksteal::{run_sim, Algorithm, RunConfig, RunReport, UtsGen};

/// One measured row of a figure/table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Algorithm label.
    pub label: &'static str,
    /// Threads.
    pub threads: usize,
    /// Chunk size.
    pub chunk: usize,
    /// Nodes explored.
    pub nodes: u64,
    /// Virtual makespan seconds.
    pub t_virtual: f64,
    /// Exploration rate, Mnodes/s.
    pub mnodes_per_sec: f64,
    /// Speedup vs the platform's sequential rate.
    pub speedup: f64,
    /// Parallel efficiency (speedup / threads).
    pub efficiency: f64,
    /// Successful steals.
    pub steals: u64,
    /// Steals per second.
    pub steals_per_sec: f64,
    /// Fraction of thread-time in the Working state.
    pub working_frac: f64,
    /// Useful-work share of Working-state time (§6.2 metric).
    pub working_eff: f64,
    /// Wall-clock seconds the simulation itself took (diagnostics).
    pub t_real: f64,
}

/// Execute one simulated run and distill a [`Row`].
pub fn measure(
    machine: &MachineModel,
    threads: usize,
    gen: &UtsGen,
    algorithm: Algorithm,
    chunk: usize,
    expected_nodes: u64,
) -> Row {
    // Opt-in chaos: UTS_CHAOS_SEED / UTS_STEAL_TIMEOUT_NS fault-inject any
    // figure binary without new flags; unset they change nothing. Likewise
    // UTS_SIM_REFERENCE=1 swaps in the reference OS-thread conductor
    // (virtual results are bit-identical, only wall-clock differs).
    let mut cfg = RunConfig::new(algorithm, chunk).with_env_chaos();
    if std::env::var("UTS_SIM_REFERENCE").is_ok_and(|v| v == "1") {
        cfg.sim_lookahead = false;
    }
    let t0 = Instant::now();
    let report = run_sim(machine.clone(), threads, gen, &cfg);
    let t_real = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.total_nodes,
        expected_nodes,
        "node conservation violated: {} p={} k={}",
        algorithm.label(),
        threads,
        chunk
    );
    row_from_report(&report, machine.seq_rate(), t_real)
}

/// Distill a [`Row`] from an existing report.
pub fn row_from_report(report: &RunReport, seq_rate: f64, t_real: f64) -> Row {
    Row {
        label: report.label,
        threads: report.threads,
        chunk: report.chunk_size,
        nodes: report.total_nodes,
        t_virtual: report.makespan_ns as f64 / 1e9,
        mnodes_per_sec: report.nodes_per_sec() / 1e6,
        speedup: report.speedup(seq_rate),
        efficiency: report.efficiency(seq_rate),
        steals: report.total_steals(),
        steals_per_sec: report.steals_per_sec(),
        working_frac: report.state_fraction(State::Working),
        working_eff: report.working_state_efficiency(),
        t_real,
    }
}

/// Print a header + rows as an aligned text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>6} {:>5} {:>11} {:>10} {:>9} {:>8} {:>6} {:>8} {:>10} {:>7} {:>7} {:>8}",
        "algorithm",
        "p",
        "k",
        "nodes",
        "t_virt(s)",
        "Mnodes/s",
        "speedup",
        "eff%",
        "steals",
        "steals/s",
        "work%",
        "weff%",
        "real(s)"
    );
    for r in rows {
        println!(
            "{:<16} {:>6} {:>5} {:>11} {:>10.4} {:>9.3} {:>8.2} {:>6.1} {:>8} {:>10.0} {:>7.1} {:>7.1} {:>8.2}",
            r.label,
            r.threads,
            r.chunk,
            r.nodes,
            r.t_virtual,
            r.mnodes_per_sec,
            r.speedup,
            100.0 * r.efficiency,
            r.steals,
            r.steals_per_sec,
            100.0 * r.working_frac,
            100.0 * r.working_eff,
            r.t_real
        );
    }
}

/// Write rows to `results/<name>.csv` (best-effort; path printed).
pub fn write_csv(name: &str, rows: &[Row]) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = match fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warn: cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(
        out,
        "algorithm,threads,chunk,nodes,t_virtual_s,mnodes_per_sec,speedup,efficiency,steals,steals_per_sec,working_frac,working_eff,t_real_s"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.label,
            r.threads,
            r.chunk,
            r.nodes,
            r.t_virtual,
            r.mnodes_per_sec,
            r.speedup,
            r.efficiency,
            r.steals,
            r.steals_per_sec,
            r.working_frac,
            r.working_eff,
            r.t_real
        );
    }
    println!("wrote {}", path.display());
}

/// Parse `--flag value` style options from argv (tiny, dependency-free).
pub fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == flag {
            if let Ok(v) = args[i + 1].parse() {
                return v;
            }
        }
    }
    default
}

/// Is a bare `--flag` present?
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Look up a preset by name.
pub fn preset_by_name(name: &str) -> uts_tree::presets::Preset {
    match name {
        "tiny" => uts_tree::presets::t_tiny(),
        "s" => uts_tree::presets::t_s(),
        "m" => uts_tree::presets::t_m(),
        "l" => uts_tree::presets::t_l(),
        "xl" => uts_tree::presets::t_xl(),
        "xxl" => uts_tree::presets::t_xxl(),
        other => panic!("unknown tree preset '{other}' (tiny|s|m|l|xl|xxl)"),
    }
}

/// Machine model by name.
pub fn machine_by_name(name: &str) -> MachineModel {
    match name {
        "kittyhawk" => MachineModel::kittyhawk(),
        "topsail" => MachineModel::topsail(),
        "altix" => MachineModel::altix(),
        "smp" => MachineModel::smp(),
        other => panic!("unknown machine '{other}' (kittyhawk|topsail|altix|smp)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_row() {
        let p = uts_tree::presets::t_tiny();
        let gen = UtsGen::new(p.spec);
        let m = MachineModel::smp();
        let row = measure(&m, 2, &gen, Algorithm::DistMem, 2, p.expected.nodes);
        assert_eq!(row.nodes, p.expected.nodes);
        assert!(row.t_virtual > 0.0);
        assert!(row.mnodes_per_sec > 0.0);
        assert!(row.efficiency <= 1.05, "efficiency {e}", e = row.efficiency);
    }

    #[test]
    fn presets_and_machines_resolve() {
        for t in ["tiny", "s", "m", "l", "xl"] {
            let _ = preset_by_name(t);
        }
        for m in ["kittyhawk", "topsail", "altix", "smp"] {
            let _ = machine_by_name(m);
        }
    }

    #[test]
    #[should_panic(expected = "unknown tree preset")]
    fn unknown_preset_panics() {
        preset_by_name("nope");
    }
}
