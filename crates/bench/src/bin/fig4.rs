//! E2 — **Figure 4**: speedup and absolute performance at different chunk
//! sizes, 256 threads, Kitty Hawk, all five implementations.
//!
//! Expected shape (paper §4.2, §4.2.1):
//! - a "sweet spot" plateau of chunk sizes, falling off on both sides;
//! - `upc-sharedmem` suffers *extreme* degradation at low chunk sizes
//!   (cancelable-barrier churn);
//! - `upc-distmem` performs at or above `mpi-ws`; each refinement
//!   (`upc-term` → `upc-term-rapdif` → `upc-distmem`) improves on the last.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin fig4
//!     [--tree m] [--threads 256] [--machine kittyhawk] [--full]
//!
//! By default `upc-sharedmem` skips k=1 (its pathological point costs
//! minutes of real time to simulate; the collapse is already unambiguous at
//! k=2). Pass `--full` to sweep it anyway.

use uts_bench::harness::{arg, flag, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let threads: usize = arg("--threads", 256);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);
    let chunks = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!(
        "Figure 4: {} threads on {}, tree {} ({} nodes), chunk sizes {:?}",
        threads, machine.name, preset.name, preset.expected.nodes, chunks
    );

    let mut rows = Vec::new();
    for alg in Algorithm::paper_set() {
        for &k in &chunks {
            if alg == Algorithm::SharedMem && k == 1 && !flag("--full") {
                eprintln!("(skipping upc-sharedmem k=1; pass --full to include)");
                continue;
            }
            let row = measure(&machine, threads, &gen, alg, k, preset.expected.nodes);
            eprintln!(
                "  {} k={}: {:.2} Mn/s (speedup {:.1}) [{:.1}s real]",
                row.label, k, row.mnodes_per_sec, row.speedup, row.t_real
            );
            rows.push(row);
        }
    }

    print_table("Figure 4: performance vs chunk size", &rows);
    write_csv("fig4", &rows);

    // Headline checks the paper calls out.
    let best = |label: &str| {
        rows.iter()
            .filter(|r| r.label == label)
            .map(|r| r.mnodes_per_sec)
            .fold(f64::MIN, f64::max)
    };
    let distmem = best("upc-distmem");
    let term = best("upc-term");
    let mpi = best("mpi-ws");
    let sharedmem = best("upc-sharedmem");
    println!("\npeak rates (Mn/s): upc-distmem {distmem:.1}, mpi-ws {mpi:.1}, upc-term {term:.1}, upc-sharedmem {sharedmem:.1}");
    println!(
        "upc-distmem vs upc-term improvement: {:+.1}% (paper: refinements total ≈ +37%)",
        100.0 * (distmem / term - 1.0)
    );
    println!(
        "upc-distmem vs mpi-ws: {:+.1}% (paper: \"exceeds the performance of the MPI implementation\")",
        100.0 * (distmem / mpi - 1.0)
    );
}
