//! Service-mode sweep (EXPERIMENTS.md E17): open-loop arrival rates against
//! the locked, distmem, and mpi-ws bundles, reporting per-request tail
//! latency from the epoch-quiescence pipeline (`docs/service.md`).
//!
//! Three blocks:
//!
//! 1. **Saturation sweep** — Poisson arrivals at increasing rates, p=64 and
//!    p=256. Requests are small (~80-node binomial trees), so the knee is
//!    *detection-bound*, not CPU-bound: past the point where arrivals
//!    outpace the per-epoch quiescence pipeline (admission window / epoch
//!    turnaround), injections defer and latency grows with queue depth.
//! 2. **Burstiness** — MMPP arrivals alternating a quiet and a hot rate
//!    with the same long-run mean as a mid-sweep Poisson row, isolating
//!    what bursts alone do to p99/p999.
//! 3. **Chaos under load** — the same mid-sweep point under a seeded
//!    benign-fault plan and under a crash plan (message loss, duplication,
//!    rank kills); conservation-with-multiplicity is asserted per epoch
//!    inside `run_service_sim`, so every printed row is a verified run.
//!
//! Run with: `cargo run --release -p uts-bench --bin service`
//! (`--smoke` for the CI-sized subset; `--csv` off by `--no-csv`).
//! Writes `results/service.csv`.

use pgas::{ArrivalSpec, FaultPlan, MachineModel};
use uts_bench::harness::flag;
use uts_tree::TreeSpec;
use worksteal::{run_service_sim, Algorithm, RunConfig, RunReport, ServiceReport, UtsGen};

/// One CSV/table row of a service run.
struct SvcRow {
    bundle: &'static str,
    process: String,
    rate_per_s: f64,
    threads: usize,
    requests: usize,
    deferred: u64,
    nodes: u64,
    dup_nodes: u64,
    deaths: usize,
    makespan_ms: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_us: f64,
    max_us: f64,
    faults: &'static str,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn run_one(
    alg: Algorithm,
    threads: usize,
    arrivals: &ArrivalSpec,
    rate_per_s: f64,
    process: &str,
    faults: FaultPlan,
    fault_label: &'static str,
) -> SvcRow {
    // ~80 expected nodes per request: 1 + b0 * 1/(1 - m*q) geometric layers.
    let gen = UtsGen::new(TreeSpec::binomial(101, 8, 2, 0.45));
    let mut cfg = RunConfig::new(alg, 4);
    cfg.faults = faults;
    let report: RunReport = run_service_sim(MachineModel::kittyhawk(), threads, &gen, &cfg, arrivals);
    let svc: &ServiceReport = report.service.as_ref().expect("service report");
    SvcRow {
        bundle: alg.label(),
        process: process.to_string(),
        rate_per_s,
        threads,
        requests: svc.requests,
        deferred: svc.deferred_injections,
        nodes: report.total_nodes,
        dup_nodes: report.duplicate_nodes,
        deaths: report.deaths,
        makespan_ms: report.makespan_ns as f64 / 1e6,
        p50_us: us(svc.hist.p50()),
        p99_us: us(svc.hist.p99()),
        p999_us: us(svc.hist.p999()),
        mean_us: us(svc.hist.mean()),
        max_us: us(svc.hist.max()),
        faults: fault_label,
    }
}

fn print_rows(title: &str, rows: &[SvcRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>8} {:>5} {:>4} {:>5} {:>9} {:>9} {:>9} {:>9} {:>8} {:>4} {:>6}",
        "bundle", "rate/s", "p", "req", "defer", "p50us", "p99us", "p999us", "maxus", "mkspn ms", "die", "faults"
    );
    for r in rows {
        println!(
            "{:<12} {:>8.0} {:>5} {:>4} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>4} {:>6}",
            r.bundle,
            r.rate_per_s,
            r.threads,
            r.requests,
            r.deferred,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.max_us,
            r.makespan_ms,
            r.deaths,
            r.faults
        );
    }
}

fn write_csv(rows: &[SvcRow]) {
    use std::io::Write;
    let dir = std::path::PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("service.csv");
    let mut out = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warn: cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(
        out,
        "bundle,process,rate_per_s,threads,requests,deferred,nodes,dup_nodes,deaths,makespan_ms,p50_us,p99_us,p999_us,mean_us,max_us,faults"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{}",
            r.bundle,
            r.process,
            r.rate_per_s,
            r.threads,
            r.requests,
            r.deferred,
            r.nodes,
            r.dup_nodes,
            r.deaths,
            r.makespan_ms,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.mean_us,
            r.max_us,
            r.faults
        );
    }
    println!("\nwrote {}", path.display());
}

fn main() {
    let smoke = flag("--smoke");
    let bundles = [Algorithm::Term, Algorithm::DistMem, Algorithm::MpiWs];
    let mut rows: Vec<SvcRow> = Vec::new();

    if smoke {
        // CI-sized: one low-rate fault-free row and one crash row per a
        // locked + a message transport; minutes of margin on any box.
        let arrivals = ArrivalSpec::poisson(5, 6, 20_000.0);
        for alg in [Algorithm::Term, Algorithm::MpiWs] {
            rows.push(run_one(alg, 8, &arrivals, 20_000.0, "poisson", FaultPlan::none(), "none"));
            rows.push(run_one(alg, 8, &arrivals, 20_000.0, "poisson", FaultPlan::crashy(3), "crashy"));
        }
        print_rows("service smoke", &rows);
        for r in &rows {
            assert_eq!(r.requests, 6, "{}: lost a request", r.bundle);
        }
        println!("service smoke OK: {} runs, all requests completed", rows.len());
        return;
    }

    // Block 1: saturation sweep.
    for &(threads, n_req, rates) in &[
        (64usize, 48usize, &[2_000.0, 10_000.0, 30_000.0, 60_000.0][..]),
        (256, 32, &[10_000.0, 60_000.0][..]),
    ] {
        for &rate in rates {
            let arrivals = ArrivalSpec::poisson(17, n_req, rate);
            for alg in bundles {
                rows.push(run_one(alg, threads, &arrivals, rate, "poisson", FaultPlan::none(), "none"));
            }
        }
    }
    print_rows("saturation sweep (poisson)", &rows);

    // Block 2: burstiness at matched mean rate (~10k/s long-run).
    let mut mmpp_rows = Vec::new();
    let mmpp = ArrivalSpec::mmpp(29, 48, 2_000.0, 60_000.0, 1_000_000);
    for alg in bundles {
        mmpp_rows.push(run_one(alg, 64, &mmpp, 10_000.0, "mmpp", FaultPlan::none(), "none"));
    }
    print_rows("burstiness (mmpp 2k/60k, 1ms dwell)", &mmpp_rows);
    rows.extend(mmpp_rows);

    // Block 3: chaos under load at the mid-sweep point.
    let mut chaos_rows = Vec::new();
    let arrivals = ArrivalSpec::poisson(17, 48, 10_000.0);
    // The stock crashy plan kills one rank with probability 0.35 hashed
    // from (seed, nthreads); pin it to 1000‰ so the crash row always shows
    // a mid-run death (the interesting case for the p999 table).
    let crash = FaultPlan {
        kill_per_mille: 1000,
        ..FaultPlan::crashy(11)
    };
    for alg in bundles {
        chaos_rows.push(run_one(alg, 64, &arrivals, 10_000.0, "poisson", FaultPlan::seeded(11), "seeded"));
        chaos_rows.push(run_one(alg, 64, &arrivals, 10_000.0, "poisson", crash, "crashy"));
    }
    print_rows("chaos under load (10k/s, p=64)", &chaos_rows);
    rows.extend(chaos_rows);

    if !flag("--no-csv") {
        write_csv(&rows);
    }
}
