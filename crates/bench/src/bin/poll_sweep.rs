//! Ablation — polling-interval sensitivity.
//!
//! §3.2/§4.2: working threads in the message-passing implementation "poll
//! for requests at an interval set by a user-supplied parameter", and the
//! paper used "optimal parameters for communication tuning (e.g. polling
//! intervals)". The distmem victim's request-cell poll has the same knob.
//! This sweep shows the trade-off: polling too often taxes the working
//! threads; too rarely, thieves wait on stale victims.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin poll_sweep
//!     [--tree m] [--threads 128] [--chunk 8] [--machine kittyhawk]

use std::time::Instant;

use uts_bench::harness::{arg, machine_by_name, preset_by_name, print_table, row_from_report, write_csv};
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let threads: usize = arg("--threads", 128);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Polling-interval sweep: {} threads, k={}, tree {} on {}",
        threads, chunk, preset.name, machine.name
    );

    let mut rows = Vec::new();
    for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
        for poll in [1u64, 4, 16, 64, 256, 1024] {
            let mut cfg = RunConfig::new(alg, chunk);
            cfg.poll_interval = poll;
            let t0 = Instant::now();
            let report = run_sim(machine.clone(), threads, &gen, &cfg);
            assert_eq!(report.total_nodes, preset.expected.nodes);
            let mut row = row_from_report(&report, machine.seq_rate(), t0.elapsed().as_secs_f64());
            // Reuse the chunk column to carry the poll interval in the CSV.
            row.chunk = poll as usize;
            eprintln!(
                "  {} poll={}: {:.2} Mn/s [{:.1}s real]",
                row.label, poll, row.mnodes_per_sec, row.t_real
            );
            rows.push(row);
        }
    }
    print_table("Polling interval sweep (k column = poll interval)", &rows);
    write_csv("poll_sweep", &rows);
}
