//! Quick sanity sweep: a handful of representative configurations at
//! Figure-4 scale, asserting node conservation on each. Useful as a fast
//! end-to-end check that the full stack (tree gen -> algorithms ->
//! simulator -> reporting) is healthy before launching the long harness
//! runs. Takes ~1-2 minutes.
//!
//! Run with: `cargo run --release -p uts-bench --bin smoke`

use std::time::Instant;
use pgas::MachineModel;
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let p = uts_tree::presets::t_l();
    let gen = UtsGen::new(p.spec);
    let m = MachineModel::kittyhawk();
    let seq_rate = m.seq_rate();
    for (threads, alg, k) in [
        (256usize, Algorithm::DistMem, 8),
        (256, Algorithm::MpiWs, 8),
        (256, Algorithm::TermRapdif, 8),
        (256, Algorithm::Term, 8),
        (256, Algorithm::SharedMem, 8),
    ] {
        let cfg = RunConfig::new(alg, k);
        let t0 = Instant::now();
        let r = run_sim(m.clone(), threads, &gen, &cfg);
        assert_eq!(r.total_nodes, p.expected.nodes, "{} {}", alg.label(), threads);
        println!("{} [real {:>6.2}s]", r.summary_row(seq_rate), t0.elapsed().as_secs_f64());
    }
}
