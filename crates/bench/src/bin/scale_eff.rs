//! Supplemental — efficiency versus problem size at fixed thread count.
//!
//! Our trees are ~10⁴× smaller than the paper's (10.6e9 / 157e9 nodes), so
//! absolute parallel efficiency at high thread counts is necessarily lower:
//! there is less work to amortise each steal. This experiment quantifies
//! that, showing efficiency at fixed p climbing with tree size — the
//! evidence that the efficiency gap versus the paper is a scale effect, not
//! an algorithmic one (see EXPERIMENTS.md).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin scale_eff
//!     [--threads 64] [--chunk 8] [--machine topsail]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let threads: usize = arg("--threads", 64);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "topsail".to_string());
    let machine = machine_by_name(&machine_name);

    println!(
        "Efficiency vs tree size: upc-distmem, {} threads, k={}, on {}",
        threads, chunk, machine.name
    );

    let mut rows = Vec::new();
    for tree in ["s", "m", "l", "xl"] {
        let preset = preset_by_name(tree);
        let gen = UtsGen::new(preset.spec);
        let row = measure(
            &machine,
            threads,
            &gen,
            Algorithm::DistMem,
            chunk,
            preset.expected.nodes,
        );
        eprintln!(
            "  {}: {} nodes -> eff {:.1}% [{:.1}s real]",
            preset.name,
            preset.expected.nodes,
            100.0 * row.efficiency,
            row.t_real
        );
        rows.push(row);
    }
    print_table("Efficiency vs problem size (fixed p)", &rows);
    write_csv("scale_eff", &rows);
}
