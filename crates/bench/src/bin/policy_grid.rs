//! Policy-grid ablation: sweep the scheduler core's composable axes —
//! transport × victim order × steal amount — at one (threads, chunk) point.
//!
//! The refactor payoff experiment: combinations the paper never built
//! (hierarchical victims on the locked transport, adaptive steal amounts on
//! distmem) are one-line config overrides, so the whole grid runs from a
//! single binary. Termination is streamlined (§3.3.1) for every cell, so the
//! grid isolates the transport/victim/steal axes.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin policy_grid
//!     [--tree l] [--threads 256] [--chunk 8] [--machine kittyhawk]

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use uts_bench::harness::{arg, machine_by_name, preset_by_name};
use worksteal::state::State;
use worksteal::{
    run_sim, Algorithm, RunConfig, StealPolicyKind, TransportKind, UtsGen, VictimPolicy,
};

fn main() {
    let tree: String = arg("--tree", "l".to_string());
    let threads: usize = arg("--threads", 256);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Policy grid: {} threads, k={}, {} on {} (streamlined termination)",
        threads, chunk, preset.name, machine.name
    );

    // Transport axis via the named bundle that carries it; victim/steal axes
    // via config overrides. Both base algorithms use streamlined termination,
    // so rows differ only in the swept axes.
    let transports = [
        (Algorithm::Term, "locked"),
        (Algorithm::DistMem, "distmem"),
    ];
    let victims = [VictimPolicy::Flat, VictimPolicy::Hier];
    let steals = [
        StealPolicyKind::One,
        StealPolicyKind::Half,
        StealPolicyKind::Adaptive,
    ];

    let mut csv = String::from(
        "transport,victims,steal,threads,chunk,nodes,t_virtual_s,mnodes_per_sec,speedup,steals,working_frac,t_real_s\n",
    );
    println!(
        "{:<9} {:<5} {:<9} {:>10} {:>9} {:>8} {:>8} {:>7} {:>8}",
        "transport", "vict", "steal", "t_virt(s)", "Mnodes/s", "speedup", "steals", "work%", "real(s)"
    );
    let mut best: Option<(f64, String)> = None;
    let seq_rate = machine.seq_rate();
    for (alg, tname) in transports {
        debug_assert_ne!(alg.bundle().transport, TransportKind::MpiMsg);
        for vp in victims {
            for sp in steals {
                let mut cfg = RunConfig::new(alg, chunk).with_env_chaos();
                if std::env::var("UTS_SIM_REFERENCE").is_ok_and(|v| v == "1") {
                    cfg.sim_lookahead = false;
                }
                cfg.victim_policy = Some(vp);
                cfg.steal_policy = Some(sp);
                let t0 = Instant::now();
                let report = run_sim(machine.clone(), threads, &gen, &cfg);
                let t_real = t0.elapsed().as_secs_f64();
                assert_eq!(
                    report.total_nodes,
                    preset.expected.nodes,
                    "node conservation violated: {tname}/{}/{}",
                    vp.label(),
                    sp.label()
                );
                let t_virtual = report.makespan_ns as f64 / 1e9;
                let mnps = report.nodes_per_sec() / 1e6;
                let name = format!("{tname}/{}/{}", vp.label(), sp.label());
                println!(
                    "{:<9} {:<5} {:<9} {:>10.4} {:>9.3} {:>8.2} {:>8} {:>7.1} {:>8.2}",
                    tname,
                    vp.label(),
                    sp.label(),
                    t_virtual,
                    mnps,
                    report.speedup(seq_rate),
                    report.total_steals(),
                    100.0 * report.state_fraction(State::Working),
                    t_real
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    tname,
                    vp.label(),
                    sp.label(),
                    threads,
                    chunk,
                    report.total_nodes,
                    t_virtual,
                    mnps,
                    report.speedup(seq_rate),
                    report.total_steals(),
                    report.state_fraction(State::Working),
                    t_real
                ));
                if best.as_ref().is_none_or(|(b, _)| mnps > *b) {
                    best = Some((mnps, name));
                }
            }
        }
    }

    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("policy_grid.csv");
        match fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warn: cannot write {}: {e}", path.display()),
        }
    }
    if let Some((rate, name)) = best {
        println!("best cell: {name} at {rate:.3} Mnodes/s");
    }
}
