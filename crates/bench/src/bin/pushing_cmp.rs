//! E10 — extension: work *pushing* (paper ref \[16\] flavour) versus work
//! *stealing*. The "work-first principle" (§2) predicts stealing wins: push
//! overhead is paid by loaded threads, steal overhead by idle ones.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin pushing_cmp
//!     [--tree l] [--threads 256] [--chunk 8] [--machine kittyhawk]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::state::State;
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let tree: String = arg("--tree", "l".to_string());
    let threads: usize = arg("--threads", 256);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Pushing vs stealing: {} threads, k={}, tree {} on {}",
        threads, chunk, preset.name, machine.name
    );

    let mut rows = Vec::new();
    for alg in [Algorithm::DistMem, Algorithm::MpiWs, Algorithm::Pushing] {
        let row = measure(&machine, threads, &gen, alg, chunk, preset.expected.nodes);
        rows.push(row);
    }
    print_table("Work stealing vs work pushing", &rows);
    write_csv("pushing", &rows);

    // The work-first principle in one number: how much of the *working*
    // threads' time each strategy burns on load-balancing traffic.
    for alg in [Algorithm::DistMem, Algorithm::Pushing] {
        let cfg = RunConfig::new(alg, chunk);
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        println!(
            "{:<14} working-state share {:.1}%, working-state efficiency {:.1}%",
            report.label,
            100.0 * report.state_fraction(State::Working),
            100.0 * report.working_state_efficiency()
        );
    }
}
