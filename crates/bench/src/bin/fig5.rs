//! E4 — **Figure 5**: speedup and absolute performance versus processor
//! count on Topsail (paper: 157-billion-node tree, up to 1024 processors;
//! `upc-distmem` reaches 1.7 Gnodes/s, speedup 819, efficiency 80%, with
//! more than 85,000 steals/s — our trees are ~10⁴× smaller, so absolute efficiencies
//! at 1024 threads are proportionally lower; the *curve shape* and the
//! distmem-vs-mpi relationship are the reproduction targets).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin fig5
//!     [--tree xl] [--machine topsail] [--chunk 8] [--max-threads 1024]
//!     [--alg both|distmem|mpi] [--min-threads 64]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "xl".to_string());
    let machine_name: String = arg("--machine", "topsail".to_string());
    let chunk: usize = arg("--chunk", 8);
    let max_threads: usize = arg("--max-threads", 1024);
    let min_threads: usize = arg("--min-threads", 64);
    let alg_filter: String = arg("--alg", "both".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    let mut threads = vec![64usize, 128, 256, 512, 1024];
    threads.retain(|&p| p <= max_threads && p >= min_threads);
    let algorithms: Vec<Algorithm> = match alg_filter.as_str() {
        "both" => vec![Algorithm::DistMem, Algorithm::MpiWs],
        "distmem" => vec![Algorithm::DistMem],
        "mpi" => vec![Algorithm::MpiWs],
        other => panic!("unknown --alg '{other}' (both|distmem|mpi)"),
    };

    println!(
        "Figure 5: scaling on {} with tree {} ({} nodes), k={}",
        machine.name, preset.name, preset.expected.nodes, chunk
    );

    let mut rows = Vec::new();
    for &p in &threads {
        for alg in algorithms.iter().copied() {
            let row = measure(&machine, p, &gen, alg, chunk, preset.expected.nodes);
            eprintln!(
                "  {} p={}: {:.1} Mn/s speedup {:.1} eff {:.1}% steals/s {:.0} [{:.1}s real]",
                row.label,
                p,
                row.mnodes_per_sec,
                row.speedup,
                100.0 * row.efficiency,
                row.steals_per_sec,
                row.t_real
            );
            rows.push(row);
        }
    }

    print_table("Figure 5: speedup & performance vs processors", &rows);
    write_csv(&format!("fig5_{tree}"), &rows);

    // Abstract-style headline for the largest distmem run.
    if let Some(r) = rows
        .iter()
        .filter(|r| r.label == "upc-distmem")
        .max_by_key(|r| r.threads)
    {
        println!(
            "\nheadline (upc-distmem @ p={}): {:.1} Mnodes/s, speedup {:.0}, efficiency {:.0}%, {:.0} steals/s",
            r.threads,
            r.mnodes_per_sec,
            r.speedup,
            100.0 * r.efficiency,
            r.steals_per_sec
        );
        println!(
            "paper @1024 on a 157e9-node tree: 1700 Mnodes/s, speedup 819, efficiency 80%, >85,000 steals/s"
        );
        println!(
            "(per-thread work here: {:.0} nodes vs the paper's ~153,000,000 — see EXPERIMENTS.md E4)",
            r.nodes as f64 / r.threads as f64
        );
    }
}
