//! **Figure 3** — the legend of labels used in the speedup and performance
//! graphs, mapping each implementation to the section describing it.
//! (The paper's Figure 3 is exactly this table; printing it from the
//! `Algorithm` enum keeps code and documentation from drifting.)

use worksteal::Algorithm;

fn main() {
    println!("{:<18} {:<72} Details", "Label", "Explanation");
    println!("{}", "-".repeat(104));
    for alg in Algorithm::paper_set().iter().rev() {
        let (explanation, details) = match alg {
            Algorithm::DistMem => (
                "UPC implementation of the distributed memory algorithm (upc-term-rapdif with lock-less DFS stack)",
                "Sect. 3.3.3",
            ),
            Algorithm::TermRapdif => ("upc-term with rapid diffusion", "Sect. 3.3.2"),
            Algorithm::Term => (
                "upc-sharedmem with streamlined termination detection",
                "Sect. 3.3.1",
            ),
            Algorithm::SharedMem => (
                "UPC implementation of the shared memory algorithm",
                "Sect. 3.1",
            ),
            Algorithm::MpiWs => ("MPI work stealing implementation", "Sect. 3.2, [2]"),
            _ => unreachable!("paper_set is fixed"),
        };
        println!("{:<18} {:<72} {}", alg.label(), explanation, details);
    }
    println!("\nextensions in this reproduction (not in the paper's figure):");
    let extensions = [
        (
            Algorithm::Hier.label(),
            "upc-distmem with node-local-first victim selection",
            "Sect. 6.2 (future work)",
        ),
        (
            Algorithm::Pushing.label(),
            "randomized work pushing baseline",
            "ref. [16] flavour",
        ),
    ];
    for (label, explanation, details) in extensions {
        println!("{label:<18} {explanation:<72} {details}");
    }
}
