//! Chaos soak: sweep seeded fault schedules across all five paper
//! algorithms and fail on any conservation or termination violation.
//!
//! For every seed `0..--schedules`, every algorithm in
//! [`Algorithm::paper_set`] runs under [`FaultPlan::seeded`] with the thief
//! request timeout armed (see `docs/faults.md`). Each run must count the
//! tree exactly (checked against a sequential traversal) — the in-band
//! reduction inside the engine independently cross-checks the same total on
//! every thread. A run that livelocks trips the virtual-time watchdogs in a
//! debug build, or the `--budget-s` wall-clock bound here in release.
//!
//! Per algorithm the soak reports makespan inflation versus the fault-free
//! baseline, plus the hardening counters (timeouts, retracts won/lost,
//! retries, backoff time).
//!
//! A second sweep covers the *crash* classes (docs/faults.md): for every
//! seed, a [`FaultPlan::crashy`]-derived plan with message loss,
//! duplication, and a mid-run rank death window runs against every paper
//! algorithm, and must satisfy conservation **with multiplicity** — every
//! node explored at least once, every re-exploration accounted in
//! `duplicate_nodes`. Any violation prints the algorithm and the complete
//! offending plan (seed included) so the failure replays with one
//! `FaultPlan` literal.
//!
//! Run with: `cargo run --release -p uts-bench --bin chaos -- \
//!     [--schedules 50] [--crash-schedules N] [--threads 16] [--tree tiny] \
//!     [--machine kittyhawk] [--timeout-ns 50000] [--budget-s 600]`
//!
//! Exits nonzero on the first violation.

use std::time::Instant;

use pgas::FaultPlan;
use uts_bench::harness::{arg, machine_by_name, preset_by_name};
use worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn main() {
    let schedules: u64 = arg("--schedules", 50);
    let threads: usize = arg("--threads", 16);
    let tree: String = arg("--tree", "tiny".to_string());
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let timeout_ns: u64 = arg("--timeout-ns", 50_000);
    let budget_s: u64 = arg("--budget-s", 600);
    let crash_schedules: u64 = arg("--crash-schedules", schedules);
    let kill_pm: u64 = arg("--kill-pm", 350);

    let p = preset_by_name(&tree);
    let gen = UtsGen::new(p.spec);
    let m = machine_by_name(&machine_name);
    let (seq_nodes, _) = seq_run(&gen);
    assert_eq!(seq_nodes, p.expected.nodes, "preset table is stale");

    println!(
        "chaos soak: {} schedules x {} algorithms, T-{tree} ({} nodes), \
         {machine_name}, p={threads}, timeout={timeout_ns}ns",
        schedules,
        Algorithm::paper_set().len(),
        seq_nodes
    );

    let t0 = Instant::now();
    let mut violations = 0u64;
    let mut runs = 0u64;

    for alg in Algorithm::paper_set() {
        // Fault-free baseline for the inflation figure.
        let mut base_cfg = RunConfig::new(alg, 8);
        base_cfg.steal_timeout_ns = Some(timeout_ns);
        let base = run_sim(m.clone(), threads, &gen, &base_cfg);
        if base.total_nodes != seq_nodes {
            eprintln!("VIOLATION: {} fault-free baseline lost nodes", alg.label());
            violations += 1;
        }

        let mut worst_inflation = 0.0f64;
        let mut sum_inflation = 0.0f64;
        let mut timeouts = 0u64;
        let mut retracts_won = 0u64;
        let mut retracts_lost = 0u64;
        let mut retries = 0u64;
        let mut backoff_ns = 0u64;

        for seed in 0..schedules {
            if t0.elapsed().as_secs() > budget_s {
                eprintln!(
                    "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                     {} seed {seed} — livelock suspected",
                    alg.label()
                );
                violations += 1;
                break;
            }
            let mut cfg = RunConfig::new(alg, 8);
            cfg.faults = FaultPlan::seeded(seed);
            cfg.steal_timeout_ns = Some(timeout_ns);
            let r = run_sim(m.clone(), threads, &gen, &cfg);
            runs += 1;
            if r.total_nodes != seq_nodes {
                eprintln!(
                    "VIOLATION: {} seed {seed}: {} nodes explored, {} expected",
                    alg.label(),
                    r.total_nodes,
                    seq_nodes
                );
                violations += 1;
            }
            let inflation = r.makespan_ns as f64 / base.makespan_ns.max(1) as f64;
            worst_inflation = worst_inflation.max(inflation);
            sum_inflation += inflation;
            let t = r.totals();
            timeouts += t.steal_timeouts;
            retracts_won += t.retracts_won;
            retracts_lost += t.retracts_lost;
            retries += t.steal_retries;
            backoff_ns += t.timeout_backoff_ns;
        }

        println!(
            "{:<16} inflation mean {:>5.2}x worst {:>5.2}x | timeouts {:>5} \
             retracts {:>4}W/{:<4}L retries {:>5} backoff {:>7}us",
            alg.label(),
            sum_inflation / schedules.max(1) as f64,
            worst_inflation,
            timeouts,
            retracts_won,
            retracts_lost,
            retries,
            backoff_ns / 1_000
        );
    }

    println!(
        "\ncrash soak: {crash_schedules} crash plans x {} algorithms \
         (loss+dup, kill {kill_pm}\u{2030}, conservation with multiplicity)",
        Algorithm::paper_set().len()
    );
    for alg in Algorithm::paper_set() {
        // Fault-free baseline (no timeout armed: crash runs auto-arm their
        // own) for the makespan-inflation figure.
        let base = run_sim(m.clone(), threads, &gen, &RunConfig::new(alg, 8));
        let mut deaths = 0u64;
        let mut recovered = 0u64;
        let mut dups = 0u64;
        let mut worst_mult = 1u64;
        let mut sum_inflation = 0.0f64;
        for seed in 0..crash_schedules {
            if t0.elapsed().as_secs() > budget_s {
                eprintln!(
                    "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                     {} crash seed {seed} — livelock suspected",
                    alg.label()
                );
                violations += 1;
                break;
            }
            let mut cfg = RunConfig::new(alg, 8);
            // crashy()'s rates with the death window pulled forward so most
            // kills land while the tree is still being explored. The steal
            // timeout is left unset: crash plans must auto-arm it.
            cfg.faults = FaultPlan {
                kill_per_mille: kill_pm as u32,
                kill_min_ns: 30_000,
                kill_span_ns: 300_000,
                ..FaultPlan::crashy(seed)
            };
            let r = run_sim(m.clone(), threads, &gen, &cfg);
            runs += 1;
            if r.total_nodes - r.duplicate_nodes != seq_nodes {
                eprintln!(
                    "VIOLATION: {} crash seed {seed}: {} distinct nodes \
                     explored, {} expected — replay with plan {:?}",
                    alg.label(),
                    r.total_nodes - r.duplicate_nodes,
                    seq_nodes,
                    cfg.faults
                );
                violations += 1;
            }
            deaths += r.deaths as u64;
            recovered += r.recovered_nodes;
            dups += r.duplicate_nodes;
            worst_mult = worst_mult.max(r.max_multiplicity);
            sum_inflation += r.makespan_ns as f64 / base.makespan_ns.max(1) as f64;
        }
        println!(
            "{:<16} deaths {:>3}/{} recovered {:>6} nodes dup {:>6} \
             worst-multiplicity {} inflation mean {:>5.2}x",
            alg.label(),
            deaths,
            crash_schedules,
            recovered,
            dups,
            worst_mult,
            sum_inflation / crash_schedules.max(1) as f64
        );
    }

    println!(
        "\n{runs} faulted runs in {:.1}s, {violations} violations",
        t0.elapsed().as_secs_f64()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
