//! Chaos soak: sweep seeded fault schedules across all five paper
//! algorithms and fail on any conservation or termination violation.
//!
//! For every seed `0..--schedules`, every algorithm in
//! [`Algorithm::paper_set`] runs under [`FaultPlan::seeded`] with the thief
//! request timeout armed (see `docs/faults.md`). Each run must count the
//! tree exactly (checked against a sequential traversal) — the in-band
//! reduction inside the engine independently cross-checks the same total on
//! every thread. A run that livelocks trips the virtual-time watchdogs in a
//! debug build, or the `--budget-s` wall-clock bound here in release.
//!
//! Per algorithm the soak reports makespan inflation versus the fault-free
//! baseline, plus the hardening counters (timeouts, retracts won/lost,
//! retries, backoff time).
//!
//! A second sweep covers the *crash* classes (docs/faults.md): for every
//! seed, a [`FaultPlan::crashy`]-derived plan with message loss,
//! duplication, and a mid-run rank death window runs against every paper
//! algorithm, and must satisfy conservation **with multiplicity** — every
//! node explored at least once, every re-exploration accounted in
//! `duplicate_nodes`. Any violation prints the algorithm and the complete
//! offending plan (seed included) so the failure replays with one
//! `FaultPlan` literal.
//!
//! A third sweep covers the *membership* classes (docs/faults.md §8): for
//! every seed, a plan mixing a healing network partition, gray stalls,
//! rank kills, and restarts runs against every paper algorithm in batch
//! mode (conservation with multiplicity), a subset re-runs on the
//! reference OS-thread conductor (bit-identity), and the message bundles
//! run the same plans in service mode (zero lost requests). Membership
//! plans are constructed to be *exactly* representable as `UTS_CHAOS_*`
//! environment overrides, so a violation prints a paste-ready repro line
//! for the `uts_cli` binary alongside the offending `FaultPlan`.
//!
//! Run with: `cargo run --release -p uts-bench --bin chaos -- \
//!     [--schedules 50] [--crash-schedules N] [--membership-schedules N] \
//!     [--threads 16] [--tree tiny] \
//!     [--machine kittyhawk] [--timeout-ns 50000] [--budget-s 600]`
//!
//! Exits nonzero on the first violation.

use std::time::Instant;

use pgas::{ArrivalSpec, FaultPlan};
use uts_bench::harness::{arg, machine_by_name, preset_by_name};
use uts_tree::{TreeKind, TreeSpec};
use worksteal::{run_service_sim, run_sim, seq_run, Algorithm, RunConfig, UtsGen};

/// One membership-fault schedule, kept exactly representable as
/// `UTS_CHAOS_*` environment overrides: [`MembershipKnobs::plan`] mirrors
/// the composition `RunConfig::with_env_chaos` performs when every one of
/// those variables is set, so the repro line reconstructs the identical
/// `FaultPlan` bit for bit.
#[derive(Clone, Copy)]
struct MembershipKnobs {
    seed: u64,
    loss_pm: u32,
    dup_pm: u32,
    kill_pm: u32,
    partition_pm: u32,
    gray_pm: u32,
    restart_ns: u64,
}

impl MembershipKnobs {
    /// Deterministic knob matrix: every schedule carries a healing
    /// partition; kills, gray stalls, restarts, and loss/duplication cycle
    /// on and off so the sweep crosses the partition × gray × kill ×
    /// restart combinations.
    fn schedule(i: u64) -> MembershipKnobs {
        let r = i.wrapping_mul(0xA24B_AED4_963E_E407).rotate_left(31);
        MembershipKnobs {
            seed: r,
            loss_pm: 10 + (r % 30) as u32,
            dup_pm: 10 + ((r >> 8) % 30) as u32,
            kill_pm: if i.is_multiple_of(2) { 1000 } else { 0 },
            partition_pm: 1000,
            gray_pm: if i.is_multiple_of(2) { 0 } else { 1000 },
            restart_ns: if i.is_multiple_of(3) { 0 } else { 250_000 },
        }
    }

    /// The plan `with_env_chaos` would build from [`MembershipKnobs::env`]:
    /// `FaultPlan::seeded` overlaid with the crash rates (borrowing
    /// `crashy`'s death window) and the membership rates (borrowing
    /// `partitioned`'s — healing — windows).
    fn plan(&self) -> FaultPlan {
        let mut f = FaultPlan::seeded(self.seed);
        f.loss_per_mille = self.loss_pm;
        f.dup_per_mille = self.dup_pm;
        f.kill_per_mille = self.kill_pm;
        if self.kill_pm > 0 {
            let c = FaultPlan::crashy(self.seed);
            f.kill_min_ns = c.kill_min_ns;
            f.kill_span_ns = c.kill_span_ns;
        }
        let part = FaultPlan::partitioned(self.seed);
        f.partition_per_mille = self.partition_pm;
        if self.partition_pm > 0 {
            f.partition_min_ns = part.partition_min_ns;
            f.partition_span_ns = part.partition_span_ns;
            f.partition_dur_ns = part.partition_dur_ns;
        }
        f.gray_per_mille = self.gray_pm;
        if self.gray_pm > 0 {
            f.gray_min_ns = part.gray_min_ns;
            f.gray_span_ns = part.gray_span_ns;
            f.gray_stall_ns = part.gray_stall_ns;
        }
        f.restart_after_ns = self.restart_ns;
        f
    }

    /// The environment prefix that makes any `with_env_chaos` harness
    /// rebuild [`MembershipKnobs::plan`] exactly.
    fn env(&self, timeout_ns: u64) -> String {
        format!(
            "UTS_CHAOS_SEED={} UTS_CHAOS_LOSS_PM={} UTS_CHAOS_DUP_PM={} \
             UTS_CHAOS_KILL_PM={} UTS_CHAOS_PARTITION_PM={} \
             UTS_CHAOS_GRAY_PM={} UTS_CHAOS_RESTART_NS={} \
             UTS_STEAL_TIMEOUT_NS={timeout_ns}",
            self.seed,
            self.loss_pm,
            self.dup_pm,
            self.kill_pm,
            self.partition_pm,
            self.gray_pm,
            self.restart_ns
        )
    }

    /// A paste-ready shell line replaying one batch run through `uts_cli`
    /// (sim backend, default chunk/poll match `RunConfig::new(_, 8)`),
    /// verifying the same conservation-with-multiplicity invariant.
    fn repro(
        &self,
        alg: Algorithm,
        spec: &TreeSpec,
        threads: usize,
        machine: &str,
        timeout_ns: u64,
        expect: u64,
    ) -> String {
        let tree = match spec.kind {
            TreeKind::Binomial { b0, m, q } => {
                format!("-t 0 -r {} -b {b0} -m {m} -q {q}", spec.seed)
            }
            // Geometric/hybrid presets aren't expressible in uts_cli's flag
            // subset; the printed FaultPlan still replays via run_sim.
            _ => format!("<non-binomial preset: {:?}>", spec),
        };
        let alg_flag = match alg {
            Algorithm::SharedMem => "sharedmem",
            Algorithm::Term => "term",
            Algorithm::TermRapdif => "rapdif",
            Algorithm::DistMem => "distmem",
            Algorithm::MpiWs => "mpi",
            Algorithm::Hier => "hier",
            Algorithm::Pushing => "push",
        };
        format!(
            "{} cargo run --release -p uts-bench --bin uts_cli -- \
             {tree} -c 8 -T {threads} -A {alg_flag} -M {machine} \
             --expect-distinct {expect}",
            self.env(timeout_ns)
        )
    }
}

fn main() {
    let schedules: u64 = arg("--schedules", 50);
    let threads: usize = arg("--threads", 16);
    let tree: String = arg("--tree", "tiny".to_string());
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let timeout_ns: u64 = arg("--timeout-ns", 50_000);
    let budget_s: u64 = arg("--budget-s", 600);
    let crash_schedules: u64 = arg("--crash-schedules", schedules);
    let membership_schedules: u64 = arg("--membership-schedules", schedules);
    let kill_pm: u64 = arg("--kill-pm", 350);

    let p = preset_by_name(&tree);
    let gen = UtsGen::new(p.spec);
    let m = machine_by_name(&machine_name);
    let (seq_nodes, _) = seq_run(&gen);
    assert_eq!(seq_nodes, p.expected.nodes, "preset table is stale");

    println!(
        "chaos soak: {} schedules x {} algorithms, T-{tree} ({} nodes), \
         {machine_name}, p={threads}, timeout={timeout_ns}ns",
        schedules,
        Algorithm::paper_set().len(),
        seq_nodes
    );

    let t0 = Instant::now();
    let mut violations = 0u64;
    let mut runs = 0u64;

    if schedules > 0 {
        for alg in Algorithm::paper_set() {
            // Fault-free baseline for the inflation figure.
            let mut base_cfg = RunConfig::new(alg, 8);
            base_cfg.steal_timeout_ns = Some(timeout_ns);
            let base = run_sim(m.clone(), threads, &gen, &base_cfg);
            if base.total_nodes != seq_nodes {
                eprintln!("VIOLATION: {} fault-free baseline lost nodes", alg.label());
                violations += 1;
            }

            let mut worst_inflation = 0.0f64;
            let mut sum_inflation = 0.0f64;
            let mut timeouts = 0u64;
            let mut retracts_won = 0u64;
            let mut retracts_lost = 0u64;
            let mut retries = 0u64;
            let mut backoff_ns = 0u64;

            for seed in 0..schedules {
                if t0.elapsed().as_secs() > budget_s {
                    eprintln!(
                        "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                     {} seed {seed} — livelock suspected",
                        alg.label()
                    );
                    violations += 1;
                    break;
                }
                let mut cfg = RunConfig::new(alg, 8);
                cfg.faults = FaultPlan::seeded(seed);
                cfg.steal_timeout_ns = Some(timeout_ns);
                let r = run_sim(m.clone(), threads, &gen, &cfg);
                runs += 1;
                if r.total_nodes != seq_nodes {
                    eprintln!(
                        "VIOLATION: {} seed {seed}: {} nodes explored, {} expected",
                        alg.label(),
                        r.total_nodes,
                        seq_nodes
                    );
                    violations += 1;
                }
                let inflation = r.makespan_ns as f64 / base.makespan_ns.max(1) as f64;
                worst_inflation = worst_inflation.max(inflation);
                sum_inflation += inflation;
                let t = r.totals();
                timeouts += t.steal_timeouts;
                retracts_won += t.retracts_won;
                retracts_lost += t.retracts_lost;
                retries += t.steal_retries;
                backoff_ns += t.timeout_backoff_ns;
            }

            println!(
                "{:<16} inflation mean {:>5.2}x worst {:>5.2}x | timeouts {:>5} \
             retracts {:>4}W/{:<4}L retries {:>5} backoff {:>7}us",
                alg.label(),
                sum_inflation / schedules.max(1) as f64,
                worst_inflation,
                timeouts,
                retracts_won,
                retracts_lost,
                retries,
                backoff_ns / 1_000
            );
        }
    }

    if crash_schedules > 0 {
        println!(
            "\ncrash soak: {crash_schedules} crash plans x {} algorithms \
         (loss+dup, kill {kill_pm}\u{2030}, conservation with multiplicity)",
            Algorithm::paper_set().len()
        );
        for alg in Algorithm::paper_set() {
            // Fault-free baseline (no timeout armed: crash runs auto-arm their
            // own) for the makespan-inflation figure.
            let base = run_sim(m.clone(), threads, &gen, &RunConfig::new(alg, 8));
            let mut deaths = 0u64;
            let mut recovered = 0u64;
            let mut dups = 0u64;
            let mut worst_mult = 1u64;
            let mut sum_inflation = 0.0f64;
            for seed in 0..crash_schedules {
                if t0.elapsed().as_secs() > budget_s {
                    eprintln!(
                        "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                     {} crash seed {seed} — livelock suspected",
                        alg.label()
                    );
                    violations += 1;
                    break;
                }
                let mut cfg = RunConfig::new(alg, 8);
                // crashy()'s rates with the death window pulled forward so most
                // kills land while the tree is still being explored. The steal
                // timeout is left unset: crash plans must auto-arm it.
                cfg.faults = FaultPlan {
                    kill_per_mille: kill_pm as u32,
                    kill_min_ns: 30_000,
                    kill_span_ns: 300_000,
                    ..FaultPlan::crashy(seed)
                };
                let r = run_sim(m.clone(), threads, &gen, &cfg);
                runs += 1;
                if r.total_nodes - r.duplicate_nodes != seq_nodes {
                    eprintln!(
                        "VIOLATION: {} crash seed {seed}: {} distinct nodes \
                     explored, {} expected — replay with plan {:?}",
                        alg.label(),
                        r.total_nodes - r.duplicate_nodes,
                        seq_nodes,
                        cfg.faults
                    );
                    violations += 1;
                }
                deaths += r.deaths as u64;
                recovered += r.recovered_nodes;
                dups += r.duplicate_nodes;
                worst_mult = worst_mult.max(r.max_multiplicity);
                sum_inflation += r.makespan_ns as f64 / base.makespan_ns.max(1) as f64;
            }
            println!(
                "{:<16} deaths {:>3}/{} recovered {:>6} nodes dup {:>6} \
             worst-multiplicity {} inflation mean {:>5.2}x",
                alg.label(),
                deaths,
                crash_schedules,
                recovered,
                dups,
                worst_mult,
                sum_inflation / crash_schedules.max(1) as f64
            );
        }
    }

    if membership_schedules > 0 {
        // Batch membership soak: conservation with multiplicity through
        // partition → quorum eviction → heal → fence rejoin, with every
        // fifth plan replayed on the reference OS-thread conductor and
        // compared bit for bit.
        println!(
            "\nmembership soak: {membership_schedules} plans x {} algorithms \
             (healing partitions, gray stalls, kills, restarts; every 5th \
             plan replayed on the reference conductor)",
            Algorithm::paper_set().len()
        );
        let mut sweep_evictions = 0u64;
        let mut sweep_rejoins = 0u64;
        'membership: for alg in Algorithm::paper_set() {
            let mut evictions = 0u64;
            let mut rejoins = 0u64;
            let mut fenced = 0u64;
            let mut scavenged = 0u64;
            for i in 0..membership_schedules {
                if t0.elapsed().as_secs() > budget_s {
                    eprintln!(
                        "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                         {} membership plan {i} — livelock suspected",
                        alg.label()
                    );
                    violations += 1;
                    break 'membership;
                }
                let knobs = MembershipKnobs::schedule(i);
                let mut cfg = RunConfig::new(alg, 8);
                cfg.faults = knobs.plan();
                cfg.steal_timeout_ns = Some(timeout_ns);
                let r = run_sim(m.clone(), threads, &gen, &cfg);
                runs += 1;
                if r.total_nodes - r.duplicate_nodes != seq_nodes {
                    eprintln!(
                        "VIOLATION: {} membership plan {i}: {} distinct nodes \
                         explored, {} expected — plan {:?}\n  repro: {}",
                        alg.label(),
                        r.total_nodes - r.duplicate_nodes,
                        seq_nodes,
                        cfg.faults,
                        knobs.repro(alg, &p.spec, threads, &machine_name, timeout_ns, seq_nodes)
                    );
                    violations += 1;
                }
                if i % 5 == 0 {
                    let mut ref_cfg = cfg;
                    ref_cfg.sim_lookahead = false;
                    let b = run_sim(m.clone(), threads, &gen, &ref_cfg);
                    runs += 1;
                    if (
                        b.makespan_ns,
                        b.total_nodes,
                        b.duplicate_nodes,
                        b.evictions,
                        b.rejoins,
                        b.deaths,
                    ) != (
                        r.makespan_ns,
                        r.total_nodes,
                        r.duplicate_nodes,
                        r.evictions,
                        r.rejoins,
                        r.deaths,
                    ) {
                        eprintln!(
                            "VIOLATION: {} membership plan {i} diverged across \
                             conductors (fast vs reference) — plan {:?}\n  repro: {}",
                            alg.label(),
                            cfg.faults,
                            knobs.repro(
                                alg,
                                &p.spec,
                                threads,
                                &machine_name,
                                timeout_ns,
                                seq_nodes
                            )
                        );
                        violations += 1;
                    }
                }
                evictions += r.evictions;
                rejoins += r.rejoins;
                fenced += r.per_thread.iter().map(|t| t.fenced_drops).sum::<u64>();
                scavenged += r.per_thread.iter().map(|t| t.scavenged_nodes).sum::<u64>();
            }
            sweep_evictions += evictions;
            sweep_rejoins += rejoins;
            println!(
                "{:<16} evictions {:>4} rejoins {:>4} fenced-drops {:>6} \
                 scavenged {:>5} nodes",
                alg.label(),
                evictions,
                rejoins,
                fenced,
                scavenged
            );
        }
        if sweep_evictions == 0 || sweep_rejoins == 0 {
            eprintln!(
                "VIOLATION: membership sweep never exercised the machinery \
                 (evictions={sweep_evictions} rejoins={sweep_rejoins}) — \
                 the plans are too tame to certify anything"
            );
            violations += 1;
        }

        // Service-mode membership soak: the same plan matrix against the
        // open-loop service on the message bundles. Per-epoch conservation
        // is asserted inside `run_service_sim` (a violated epoch panics);
        // here the invariant is zero lost requests through partition →
        // eviction → heal → rejoin.
        let requests = 8usize;
        let svc_gen = UtsGen::new(TreeSpec::binomial(23, 4, 2, 0.4));
        println!(
            "\nmembership service soak: {membership_schedules} plans x 3 \
             bundles, {requests} requests each (zero lost requests)"
        );
        'service: for alg in [Algorithm::DistMem, Algorithm::MpiWs, Algorithm::Pushing] {
            let mut evictions = 0u64;
            let mut rejoins = 0u64;
            let mut worst_p99 = 0u64;
            for i in 0..membership_schedules {
                if t0.elapsed().as_secs() > budget_s {
                    eprintln!(
                        "VIOLATION: wall-clock budget {budget_s}s exceeded at \
                         {} membership service plan {i} — livelock suspected",
                        alg.label()
                    );
                    violations += 1;
                    break 'service;
                }
                let knobs = MembershipKnobs::schedule(i);
                let arrivals = ArrivalSpec::poisson(13 + i, requests, 12_000.0);
                let mut cfg = RunConfig::new(alg, 2);
                cfg.faults = knobs.plan();
                cfg.steal_timeout_ns = Some(timeout_ns);
                let r = run_service_sim(m.clone(), 8, &svc_gen, &cfg, &arrivals);
                runs += 1;
                let svc = r.service.as_ref().expect("service report");
                if svc.requests != requests || svc.per_request.len() != requests {
                    eprintln!(
                        "VIOLATION: {} membership service plan {i}: {} of \
                         {requests} requests completed — plan {:?}\n  repro env: {}",
                        alg.label(),
                        svc.per_request.len(),
                        cfg.faults,
                        knobs.env(timeout_ns)
                    );
                    violations += 1;
                }
                evictions += r.evictions;
                rejoins += r.rejoins;
                worst_p99 = worst_p99.max(svc.hist.p99());
            }
            println!(
                "{:<16} evictions {:>4} rejoins {:>4} worst p99 {:>7}us",
                alg.label(),
                evictions,
                rejoins,
                worst_p99 / 1_000
            );
        }
    }

    println!(
        "\n{runs} faulted runs in {:.1}s, {violations} violations",
        t0.elapsed().as_secs_f64()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
