//! E3 — §4.2 refinement ablation: "each of the refinements presented in
//! Sections 3.3.1-3.3.3 shows an improvement in these results; the total
//! improvement is about 37%."
//!
//! Runs the refinement chain `upc-sharedmem → upc-term → upc-term-rapdif →
//! upc-distmem` at one (threads, chunk) point and reports each step's
//! incremental gain, plus `mpi-ws` for reference, plus the two extensions.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin ablation
//!     [--tree l] [--threads 256] [--chunk 8] [--machine kittyhawk]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "l".to_string());
    let threads: usize = arg("--threads", 256);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Ablation: {} threads, k={}, {} on {}",
        threads, chunk, preset.name, machine.name
    );

    let chain = [
        Algorithm::SharedMem,
        Algorithm::Term,
        Algorithm::TermRapdif,
        Algorithm::DistMem,
    ];
    let mut rows = Vec::new();
    for alg in chain
        .iter()
        .copied()
        .chain([Algorithm::MpiWs, Algorithm::Hier, Algorithm::Pushing])
    {
        let row = measure(&machine, threads, &gen, alg, chunk, preset.expected.nodes);
        eprintln!("  {}: {:.2} Mn/s [{:.1}s real]", row.label, row.mnodes_per_sec, row.t_real);
        rows.push(row);
    }
    print_table("Refinement ablation", &rows);
    write_csv("ablation", &rows);

    println!("\nincremental refinement gains (rate vs previous step):");
    for w in rows[..4].windows(2) {
        println!(
            "  {:<16} -> {:<16} {:+.1}%",
            w[0].label,
            w[1].label,
            100.0 * (w[1].mnodes_per_sec / w[0].mnodes_per_sec - 1.0)
        );
    }
    println!(
        "  total ({} -> {}): {:+.1}%  (paper: ≈ +37% from upc-sharedmem's best configuration)",
        rows[0].label,
        rows[3].label,
        100.0 * (rows[3].mnodes_per_sec / rows[0].mnodes_per_sec - 1.0)
    );
    println!(
        "  upc-term -> upc-distmem: {:+.1}%",
        100.0 * (rows[3].mnodes_per_sec / rows[1].mnodes_per_sec - 1.0)
    );
}
