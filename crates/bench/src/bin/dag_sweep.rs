//! DAG-vs-tree policy sweep with per-row theory checks (EXPERIMENTS.md E18).
//!
//! Runs the DAG workload families (`worksteal::workload`) and a binomial
//! tree baseline through one policy bundle per transport — locked,
//! one-sided distmem, message passing, plus hierarchical victims — at two
//! thread counts, and checks **every row** against the steal bound
//! (`successful_steals ≤ factor · p · D`, arxiv 1706.03184) and
//! conservation before it is written. A violated bound aborts the run:
//! the CSV never contains a row the theory harness rejected.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin dag_sweep
//!     [--tree s] [--chunk 4] [--machine kittyhawk] [--smoke]
//!
//! `--smoke` shrinks every workload and runs p=8 only, for CI
//! (`scripts/chaos_smoke.sh`); smoke runs never overwrite
//! `results/dag_sweep.csv`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use pgas::MachineModel;
use uts_bench::harness::{arg, flag, machine_by_name, preset_by_name};
use worksteal::state::State;
use worksteal::theory::{self, DEFAULT_STEAL_FACTOR};
use worksteal::{
    run_sim, Algorithm, DagWorkload, ForkJoin, RandomLayered, RunConfig, TaskGen, UtsGen,
    Wavefront,
};

/// What distinguishes one sweep row besides the (algorithm, threads) cell.
struct Point<'a> {
    /// Workload label for the CSV and the table.
    workload: &'a str,
    /// Sequential task/node count (conservation target).
    expected: u64,
    /// Critical-path length `D` for the steal bound.
    depth: u64,
}

/// Run one cell, theory-check it, append the CSV row. Returns the cell's
/// steals/bound ratio so `main` can report how much slack the default
/// factor has left (calibration data for `DEFAULT_STEAL_FACTOR`).
fn sweep<G: TaskGen>(
    machine: &MachineModel,
    threads: usize,
    gen: &G,
    alg: Algorithm,
    chunk: usize,
    point: &Point,
    csv: &mut String,
) -> f64 {
    let mut cfg = RunConfig::new(alg, chunk).with_env_chaos();
    if std::env::var("UTS_SIM_REFERENCE").is_ok_and(|v| v == "1") {
        cfg.sim_lookahead = false;
    }
    let t0 = Instant::now();
    let report = run_sim(machine.clone(), threads, gen, &cfg);
    let t_real = t0.elapsed().as_secs_f64();
    let summary = theory::check_run(
        &report,
        point.expected,
        point.depth,
        DEFAULT_STEAL_FACTOR,
        cfg.faults.crash_active(),
    )
    .unwrap_or_else(|e| {
        panic!(
            "{}/{}/p={threads}: {e}",
            point.workload,
            alg.label()
        )
    });
    let t_virtual = report.makespan_ns as f64 / 1e9;
    let mnps = report.nodes_per_sec() / 1e6;
    let working = report.state_fraction(State::Working);
    println!(
        "{:<12} {:<16} {:>4} {:>2} {:>9} {:>8} {:>10.4} {:>9.3} {:>9} {:>9} {:>10} {:>6.1} {:>7.2}",
        point.workload,
        alg.label(),
        threads,
        chunk,
        report.total_nodes,
        point.depth,
        t_virtual,
        mnps,
        summary.steal_attempts,
        summary.successful_steals,
        summary.bound,
        100.0 * working,
        t_real
    );
    csv.push_str(&format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
        point.workload,
        alg.label(),
        threads,
        chunk,
        report.total_nodes,
        point.depth,
        t_virtual,
        mnps,
        summary.steal_attempts,
        summary.successful_steals,
        summary.bound,
        working,
        t_real
    ));
    summary.successful_steals as f64 / summary.bound.max(1) as f64
}

/// [`sweep`] for a DAG workload: the conservation target and steal-bound
/// depth come from the generator itself.
fn sweep_dag<G: worksteal::DagGen>(
    machine: &MachineModel,
    threads: usize,
    gen: &DagWorkload<G>,
    alg: Algorithm,
    chunk: usize,
    workload: &str,
    csv: &mut String,
) -> f64 {
    let point = Point {
        workload,
        expected: gen.n_tasks(),
        depth: gen.critical_path_len().expect("DAGs have a closed-form depth"),
    };
    sweep(machine, threads, gen, alg, chunk, &point, csv)
}

fn main() {
    let smoke = flag("--smoke");
    // Chunk matters doubly for DAGs: a release needs local depth >= 2k, and
    // narrow-frontier DAGs (wavefront: <= 2 successors per task) never reach
    // it for k > 1 — the sweep runs k=1 and k=4 to expose exactly that.
    let chunk: usize = arg("--chunk", 0);
    let chunks: Vec<usize> = if chunk == 0 { vec![1, 4] } else { vec![chunk] };
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let tree: String = arg("--tree", if smoke { "tiny" } else { "s" }.to_string());
    let preset = preset_by_name(&tree);
    let tree_gen = UtsGen::new(preset.spec);

    // One bundle per transport, plus hierarchical victims on distmem.
    let algs = [
        Algorithm::Term,
        Algorithm::DistMem,
        Algorithm::MpiWs,
        Algorithm::Hier,
    ];
    let threads_list: &[usize] = if smoke { &[8] } else { &[64, 256] };

    // DAG instances: sized so each family has real parallelism at p=256
    // while the whole sweep stays interactive. Smoke shrinks them ~50x.
    let (fj, wf, rl) = if smoke {
        (
            ForkJoin { levels: 6, width: 12, seed: 1 },
            Wavefront { rows: 12, cols: 12, seed: 2 },
            RandomLayered::new(8, 12, 150, 3),
        )
    } else {
        (
            ForkJoin { levels: 48, width: 96, seed: 1 },
            Wavefront { rows: 80, cols: 80, seed: 2 },
            RandomLayered::new(40, 120, 80, 3),
        )
    };
    let fj = DagWorkload::new(fj);
    let wf = DagWorkload::new(wf);
    let rl = DagWorkload::new(rl);

    println!(
        "DAG sweep: k in {chunks:?} on {}, steal factor {DEFAULT_STEAL_FACTOR}{}",
        machine.name,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<12} {:<16} {:>4} {:>2} {:>9} {:>8} {:>10} {:>9} {:>9} {:>9} {:>10} {:>6} {:>7}",
        "workload",
        "algorithm",
        "p",
        "k",
        "tasks",
        "depth",
        "t_virt(s)",
        "Mnodes/s",
        "attempts",
        "steals",
        "bound",
        "work%",
        "real(s)"
    );

    let mut csv = String::from(
        "workload,algorithm,threads,chunk,tasks,critical_path,t_virtual_s,mnodes_per_sec,\
         steal_attempts,successful_steals,steal_bound,working_frac,t_real_s\n",
    );
    let mut worst: f64 = 0.0;
    for &threads in threads_list {
        for &k in &chunks {
            for alg in algs {
                let tree_point = Point {
                    workload: preset.name,
                    expected: preset.expected.nodes,
                    depth: u64::from(preset.expected.max_depth),
                };
                worst = worst.max(sweep(&machine, threads, &tree_gen, alg, k, &tree_point, &mut csv));
                worst = worst.max(sweep_dag(&machine, threads, &fj, alg, k, "fork-join", &mut csv));
                worst = worst.max(sweep_dag(&machine, threads, &wf, alg, k, "wavefront", &mut csv));
                worst = worst.max(sweep_dag(&machine, threads, &rl, alg, k, "layered", &mut csv));
            }
        }
    }
    println!(
        "all rows pass conservation and the O(p·D) steal bound; \
         tightest cell used {:.1}% of its bound",
        100.0 * worst
    );

    if smoke {
        // Scale smoke: one p=8192 cell proving the ceiling the parallel
        // conductor unlocked (EXPERIMENTS.md E19). It runs automatically
        // when UTS_SIM_WORKERS selects the ticketed pipeline, or under any
        // conductor with `--p8192`. T-S + distmem + k=8 keeps the cell
        // minutes-scale: binomial fan-out (≤ 2 children) diffuses through
        // steal-half exponentially, where a single wide-fan-out DAG source
        // serialises its whole frontier through one victim (see E19).
        let w = pgas::sim::env_workers();
        if w > 0 || flag("--p8192") {
            println!("p=8192 smoke cell ({w} sim workers):");
            let pr = preset_by_name("s");
            let g = UtsGen::new(pr.spec);
            let pt = Point {
                workload: pr.name,
                expected: pr.expected.nodes,
                depth: u64::from(pr.expected.max_depth),
            };
            sweep(&machine, 8192, &g, Algorithm::DistMem, 8, &pt, &mut csv);
        } else {
            println!("p=8192 smoke cell skipped (set UTS_SIM_WORKERS or pass --p8192)");
        }
        println!("smoke run: results/dag_sweep.csv left untouched");
        return;
    }
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("dag_sweep.csv");
        match fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warn: cannot write {}: {e}", path.display()),
        }
    }
}
