//! E14 — work diffusion (§3.3.2, measured).
//!
//! The paper's rapid-diffusion argument: letting thieves take *half* the
//! victim's chunks "rapidly increase\[s\] the number of work sources" and
//! "leads to more rapid diffusion of work". With event tracing we can
//! measure exactly that: the time by which 50% / 90% / 100% of threads first
//! obtained work, and how many distinct victims ("work sources") served
//! steals — comparing steal-one (`upc-term`) against steal-half
//! (`upc-term-rapdif`, `upc-distmem`).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin diffusion
//!     [--tree m] [--threads 128] [--chunk 8] [--machine kittyhawk]

use pgas::MachineModel;
use uts_bench::harness::{arg, machine_by_name, preset_by_name};
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let threads: usize = arg("--threads", 128);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine: MachineModel = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Work diffusion: {} threads, k={}, tree {} on {} (traced runs)",
        threads, chunk, preset.name, machine.name
    );
    println!(
        "\n{:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "t50 (µs)", "t90 (µs)", "t100 (µs)", "steals", "sources", "starved"
    );

    for alg in [
        Algorithm::Term,
        Algorithm::TermRapdif,
        Algorithm::DistMem,
        Algorithm::MpiWs,
        Algorithm::Pushing,
    ] {
        let mut cfg = RunConfig::new(alg, chunk);
        cfg.trace = true;
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        assert_eq!(report.total_nodes, preset.expected.nodes);
        let d = report.diffusion();
        let m = report.steal_matrix();
        let starved = d.first_work_ns.iter().filter(|t| t.is_none()).count();
        let us = |t: Option<u64>| match t {
            Some(ns) => format!("{:.1}", ns as f64 / 1e3),
            None => "-".to_string(),
        };
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
            report.label,
            us(d.t50_ns),
            us(d.t90_ns),
            us(d.t100_ns),
            m.total(),
            m.distinct_victims(),
            starved
        );
    }
    println!("\nexpected shape: steal-half variants reach t90/t100 sooner and create");
    println!("more distinct work sources than steal-one (paper §3.3.2).");
}
