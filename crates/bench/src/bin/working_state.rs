//! E7 — §6.2 state-time decomposition: "We observe 93% efficiency of
//! threads *in the working state* compared to a single thread running
//! optimized sequential UTS. ... Outside the working state, overhead time is
//! spent searching for work, stealing work, or in termination detection."
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin working_state
//!     [--tree l] [--threads 256] [--chunk 8] [--machine topsail]

use pgas::MachineModel;
use uts_bench::harness::{arg, machine_by_name, preset_by_name};
use worksteal::state::State;
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let tree: String = arg("--tree", "l".to_string());
    let threads: usize = arg("--threads", 256);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "topsail".to_string());
    let machine: MachineModel = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "State decomposition: upc-distmem, {} threads, k={}, tree {} on {}",
        threads, chunk, preset.name, machine.name
    );
    let cfg = RunConfig::new(Algorithm::DistMem, chunk);
    let report = run_sim(machine.clone(), threads, &gen, &cfg);
    assert_eq!(report.total_nodes, preset.expected.nodes);

    println!("\nfraction of total thread-time per Figure-1 state:");
    for (name, s) in [
        ("Working", State::Working),
        ("Searching", State::Searching),
        ("Stealing", State::Stealing),
        ("Terminating", State::Terminating),
    ] {
        println!("  {:<12} {:>6.2}%", name, 100.0 * report.state_fraction(s));
    }
    println!(
        "\nworking-state efficiency (useful work / working-state time): {:.1}%",
        100.0 * report.working_state_efficiency()
    );
    println!("paper §6.2: 93% at 1024 threads (the rest: steal servicing, cold misses)");

    let totals = report.totals();
    println!("\naggregate protocol activity:");
    println!("  releases {} reacquires {}", totals.releases, totals.reacquires);
    println!(
        "  steals ok {} failed {} chunks stolen {} requests serviced {}",
        totals.steals_ok, totals.steals_failed, totals.chunks_stolen, totals.requests_serviced
    );
    println!(
        "  probes {} | comm ops {} | locks acquired {} (lock-less stack: must be 0)",
        totals.probes,
        totals.comm.total_ops(),
        totals.comm.lock_acquires
    );
}
