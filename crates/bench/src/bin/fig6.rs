//! E5 — **Figure 6**: shared-memory performance portability on the SGI
//! Altix 3700. Paper: "Results are close for both UPC implementations:
//! near-linear speedup on up to at least 64 processors. ... the performance
//! of the MPI implementation lags slightly behind the UPC implementations
//! on this platform."
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin fig6
//!     [--tree m] [--chunk 8] [--max-threads 64]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name, print_table, write_csv};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let chunk: usize = arg("--chunk", 8);
    let max_threads: usize = arg("--max-threads", 64);
    let machine = machine_by_name("altix");
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    let mut threads = vec![1usize, 2, 4, 8, 16, 32, 64];
    threads.retain(|&p| p <= max_threads);

    println!(
        "Figure 6: SGI Altix 3700 (sim), tree {} ({} nodes), k={}",
        preset.name, preset.expected.nodes, chunk
    );

    let mut rows = Vec::new();
    for &p in &threads {
        for alg in [Algorithm::SharedMem, Algorithm::DistMem, Algorithm::MpiWs] {
            let row = measure(&machine, p, &gen, alg, chunk, preset.expected.nodes);
            eprintln!(
                "  {} p={}: speedup {:.2} ({:.1}% eff) [{:.1}s real]",
                row.label,
                p,
                row.speedup,
                100.0 * row.efficiency,
                row.t_real
            );
            rows.push(row);
        }
    }

    print_table("Figure 6: Altix shared-memory scaling", &rows);
    write_csv("fig6", &rows);

    // Shape checks.
    let eff_at = |label: &str, p: usize| {
        rows.iter()
            .find(|r| r.label == label && r.threads == p)
            .map(|r| r.efficiency)
            .unwrap_or(0.0)
    };
    let pmax = *threads.last().unwrap();
    println!(
        "\nefficiency at p={pmax}: upc-sharedmem {:.0}%, upc-distmem {:.0}%, mpi-ws {:.0}%",
        100.0 * eff_at("upc-sharedmem", pmax),
        100.0 * eff_at("upc-distmem", pmax),
        100.0 * eff_at("mpi-ws", pmax)
    );
    println!("paper: both UPC implementations near-linear; MPI lags slightly behind.");
}
