//! A UTS-style command-line front end, mirroring the reference benchmark's
//! flags so published parameter sets paste straight in.
//!
//! Canonical UTS flags supported (subset relevant to binomial/geometric
//! trees and this implementation):
//!
//! - `-t <0|1>`: tree type (0 = binomial, 1 = geometric)
//! - `-r <seed>`: root seed
//! - `-b <b0>`: root branching factor
//! - `-m <m>`: binomial non-root branching factor
//! - `-q <q>`: binomial branching probability
//! - `-d <depth>`: geometric depth cutoff
//! - `-a <shape>`: geometric shape (0 fixed, 1 linear, 2 expdec, 3 cyclic)
//! - `-c <k>`: chunk size
//! - `-i <interval>`: polling interval
//!
//! Plus runner options:
//! - `-T <threads>`: simulated UPC threads (default 4)
//! - `-A <alg>`: sharedmem|term|rapdif|distmem|mpi|hier|push (default distmem)
//! - `-M <machine>`: kittyhawk|topsail|altix|smp (default kittyhawk)
//! - `--native`: run on real OS threads instead of the simulator
//! - `--expect <nodes>`: fail unless the count matches
//! - `--expect-distinct <nodes>`: fail unless `total - duplicates` matches
//!   (the conservation-with-multiplicity check for crash-faulted runs)
//!
//! The config passes through [`RunConfig::with_env_chaos`], so `UTS_CHAOS_*`
//! / `UTS_STEAL_TIMEOUT_NS` environment overrides fault-inject any run —
//! the chaos soak prints violations as a paste-ready env prefix for this
//! binary (crash plans need the default sim backend; `--native` refuses
//! them with a typed error).
//!
//! Example (the paper's 10.6-billion-node tree — bring a cluster budget):
//! `uts_cli -t 0 -b 2000 -q 0.499999995 -m 2 -r 0 -c 8 -T 1024`

use pgas::MachineModel;
use uts_tree::{GeoShape, TreeSpec};
use worksteal::{run_native, run_sim, Algorithm, RunConfig, UtsGen};

fn opt<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tree_type: u32 = opt(&args, "-t").unwrap_or(0);
    let seed: u32 = opt(&args, "-r").unwrap_or(0);
    let b0: f64 = opt(&args, "-b").unwrap_or(64.0);
    let m: u32 = opt(&args, "-m").unwrap_or(2);
    let q: f64 = opt(&args, "-q").unwrap_or(0.498);
    let depth: u32 = opt(&args, "-d").unwrap_or(10);
    let shape: u32 = opt(&args, "-a").unwrap_or(0);
    let chunk: usize = opt(&args, "-c").unwrap_or(8);
    let interval: u64 = opt(&args, "-i").unwrap_or(8);
    let threads: usize = opt(&args, "-T").unwrap_or(4);
    let alg_name: String = opt(&args, "-A").unwrap_or_else(|| "distmem".to_string());
    let machine_name: String = opt(&args, "-M").unwrap_or_else(|| "kittyhawk".to_string());
    let native = args.iter().any(|a| a == "--native");
    let expect: Option<u64> = opt(&args, "--expect");
    let expect_distinct: Option<u64> = opt(&args, "--expect-distinct");

    let spec = match tree_type {
        0 => TreeSpec::binomial(seed, b0 as u32, m, q),
        1 => {
            let shape = match shape {
                0 => GeoShape::Fixed,
                1 => GeoShape::Linear,
                2 => GeoShape::ExpDec,
                3 => GeoShape::Cyclic,
                other => {
                    eprintln!("unknown geometric shape {other}");
                    std::process::exit(2);
                }
            };
            TreeSpec::geometric(seed, b0, depth, shape)
        }
        other => {
            eprintln!("unknown tree type {other} (0 binomial, 1 geometric)");
            std::process::exit(2);
        }
    };
    let algorithm = match alg_name.as_str() {
        "sharedmem" => Algorithm::SharedMem,
        "term" => Algorithm::Term,
        "rapdif" => Algorithm::TermRapdif,
        "distmem" => Algorithm::DistMem,
        "mpi" => Algorithm::MpiWs,
        "hier" => Algorithm::Hier,
        "push" => Algorithm::Pushing,
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    };
    let machine = match machine_name.as_str() {
        "kittyhawk" => MachineModel::kittyhawk(),
        "topsail" => MachineModel::topsail(),
        "altix" => MachineModel::altix(),
        "smp" => MachineModel::smp(),
        other => {
            eprintln!("unknown machine '{other}'");
            std::process::exit(2);
        }
    };

    println!("UTS tree: {spec:?}");
    println!(
        "runner: {} on {} ({} threads, k={chunk}, poll={interval}, backend={})",
        algorithm.label(),
        machine.name,
        threads,
        if native { "native" } else { "sim" }
    );

    let gen = UtsGen::new(spec);
    let mut cfg = RunConfig::new(algorithm, chunk).with_env_chaos();
    cfg.poll_interval = interval;
    if cfg.faults.is_active() {
        println!("chaos: {:?}", cfg.faults);
    }
    let seq_rate = machine.seq_rate();
    let report = if native {
        match run_native(machine, threads, &gen, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("uts_cli: {e}");
                std::process::exit(2);
            }
        }
    } else {
        run_sim(machine, threads, &gen, &cfg)
    };

    println!("{}", report.summary_row(seq_rate));
    let totals = report.totals();
    println!(
        "releases={} reacquires={} steals_ok={} steals_failed={} chunks={} serviced={}",
        totals.releases,
        totals.reacquires,
        totals.steals_ok,
        totals.steals_failed,
        totals.chunks_stolen,
        totals.requests_serviced
    );

    if let Some(expect) = expect {
        if report.total_nodes != expect {
            eprintln!(
                "FAIL: counted {} nodes, expected {expect}",
                report.total_nodes
            );
            std::process::exit(1);
        }
        println!("count verified: {expect}");
    }
    if let Some(expect) = expect_distinct {
        let distinct = report.total_nodes - report.duplicate_nodes;
        if distinct != expect {
            eprintln!(
                "FAIL: {} distinct nodes (total {} - dup {}), expected {expect}",
                distinct, report.total_nodes, report.duplicate_nodes
            );
            std::process::exit(1);
        }
        println!(
            "distinct count verified: {expect} (dup={} deaths={} evictions={} rejoins={})",
            report.duplicate_nodes, report.deaths, report.evictions, report.rejoins
        );
    }
}
