//! E9 — extension from §6.2's future work: "One way we may decrease the
//! latency of probing for work and stealing in large clusters of shared
//! memory multiprocessor nodes is to first try to steal work within a
//! cluster node before probing off-node."
//!
//! Compares `upc-distmem` (flat random victim selection) with `upc-hier`
//! (same-node victims probed first, via the `bupc_thread_distance` analog).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin hier
//!     [--tree l] [--threads 256] [--chunk 8] [--machine topsail]

use std::time::Instant;

use uts_bench::harness::{arg, machine_by_name, preset_by_name, print_table, row_from_report, write_csv};
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let tree: String = arg("--tree", "l".to_string());
    let threads: usize = arg("--threads", 256);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "topsail".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!(
        "Hierarchical stealing: {} threads ({} per node), k={}, tree {} on {}",
        threads, machine.threads_per_node, chunk, preset.name, machine.name
    );

    let mut rows = Vec::new();
    let mut locality = Vec::new();
    for alg in [Algorithm::DistMem, Algorithm::Hier] {
        let mut cfg = RunConfig::new(alg, chunk);
        cfg.trace = true;
        let t0 = Instant::now();
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        assert_eq!(report.total_nodes, preset.expected.nodes);
        locality.push(
            report
                .steal_matrix()
                .same_node_fraction(machine.threads_per_node),
        );
        rows.push(row_from_report(&report, machine.seq_rate(), t0.elapsed().as_secs_f64()));
    }
    print_table("Flat vs hierarchical victim selection", &rows);
    write_csv("hier", &rows);

    println!(
        "\nsteal locality (fraction of steals staying on a {}-thread node):",
        machine.threads_per_node
    );
    println!("  upc-distmem {:.1}%   upc-hier {:.1}%", 100.0 * locality[0], 100.0 * locality[1]);
    println!(
        "upc-hier vs upc-distmem rate: {:+.1}%",
        100.0 * (rows[1].mnodes_per_sec / rows[0].mnodes_per_sec - 1.0)
    );
}
