//! Supplemental — load balancing across the wider UTS tree family.
//!
//! The paper evaluates binomial trees only (the hardest case: scale-free
//! imbalance). The UTS suite also defines geometric and hybrid shapes; this
//! experiment runs `upc-distmem` and `mpi-ws` across the family to show the
//! balancer is law-agnostic, and reports how steal traffic varies with tree
//! shape (bounded-depth geometric trees are far easier to balance).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin tree_family
//!     [--threads 64] [--chunk 8] [--machine topsail]

use std::time::Instant;

use uts_bench::harness::{arg, machine_by_name, print_table, row_from_report, write_csv};
use uts_tree::{seq::dfs_count, GeoShape, TreeSpec};
use worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn main() {
    let threads: usize = arg("--threads", 64);
    let chunk: usize = arg("--chunk", 8);
    let machine_name: String = arg("--machine", "topsail".to_string());
    let machine = machine_by_name(&machine_name);

    let workloads: Vec<(&str, TreeSpec)> = vec![
        ("binomial(T-S)", uts_tree::presets::t_s().spec),
        ("geo-fixed", TreeSpec::geometric(7, 3.2, 11, GeoShape::Fixed)),
        ("geo-linear", TreeSpec::geometric(9, 5.0, 14, GeoShape::Linear)),
        ("geo-expdec", TreeSpec::geometric(3, 12.0, 18, GeoShape::ExpDec)),
        ("hybrid", TreeSpec::hybrid(9, 3.0, 7, 2, 0.4995)),
    ];

    println!(
        "Tree-family comparison: {} threads, k={}, on {}",
        threads, chunk, machine.name
    );

    let mut rows = Vec::new();
    for (name, spec) in &workloads {
        let expect = dfs_count(spec);
        println!(
            "\nworkload {name}: {} nodes, max depth {}, max stack {}",
            expect.nodes, expect.max_depth, expect.max_stack
        );
        let gen = UtsGen::new(*spec);
        for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
            let cfg = RunConfig::new(alg, chunk);
            let t0 = Instant::now();
            let report = run_sim(machine.clone(), threads, &gen, &cfg);
            assert_eq!(report.total_nodes, expect.nodes, "{name}");
            let row = row_from_report(&report, machine.seq_rate(), t0.elapsed().as_secs_f64());
            println!(
                "  {:<14} eff {:>5.1}%  steals {:>6}  steals/Mnode {:>8.1}",
                row.label,
                100.0 * row.efficiency,
                row.steals,
                row.steals as f64 / (expect.nodes as f64 / 1e6),
            );
            rows.push(row);
        }
    }
    print_table("Tree family (all workloads)", &rows);
    write_csv("tree_family", &rows);
}
