//! Harness-cost benchmark for the virtual-time conductor.
//!
//! Unlike the figure binaries, this benchmark measures the *simulator
//! itself*: the same workload is run under all three conductors — the
//! reference baton loop ("slow"), the fiber lookahead loop ("fast"), and
//! the parallel ticketed pipeline ("par", `--workers` worker threads) —
//! wall-clock time is compared, and the virtual results are asserted
//! bit-identical (makespan, per-thread clocks, steal counts — the conductor
//! must be invisible in everything but real time; see `docs/conductor.md`).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin conductor_bench
//!     [--tree m] [--threads 256] [--machine kittyhawk] [--alg distmem]
//!     [--chunk 8] [--repeats 3] [--workers 8] [--out BENCH_conductor.json]
//!     [--smoke] [--baseline scripts/conductor_baseline.json]
//!
//! The default point is the Figure-4 configuration (T-M, 256 threads,
//! kittyhawk, upc-distmem, k=8). `--smoke` switches to a seconds-scale
//! configuration (T-S, 64 threads) for CI. With `--baseline`, the measured
//! fast/slow speedup ratio is compared against the committed baseline and
//! the process exits non-zero if it regressed by more than 20% — the ratio
//! is machine-portable, absolute wall-clock is not. The parallel column is
//! reported and recorded but never gated: its wall-clock only beats the
//! fiber loop when the host has cores to spare.

use std::time::Instant;

use pgas::sim::{SimCluster, SimReport};
use pgas::MachineModel;
use uts_bench::harness::{arg, flag, machine_by_name, preset_by_name};
use worksteal::{vars, worker, Algorithm, RunConfig, TaskGen, ThreadResult, UtsGen};

fn alg_by_name(name: &str) -> Algorithm {
    match name {
        "sharedmem" => Algorithm::SharedMem,
        "term" => Algorithm::Term,
        "rapdif" => Algorithm::TermRapdif,
        "distmem" => Algorithm::DistMem,
        "mpi" => Algorithm::MpiWs,
        "hier" => Algorithm::Hier,
        "pushing" => Algorithm::Pushing,
        other => panic!("unknown algorithm '{other}' (sharedmem|term|rapdif|distmem|mpi|hier|pushing)"),
    }
}

/// One conductor configuration: display label + the two knobs that select it.
#[derive(Clone, Copy)]
struct Mode {
    label: &'static str,
    lookahead: bool,
    workers: usize,
}

fn run_once(
    machine: &MachineModel,
    threads: usize,
    gen: &UtsGen,
    cfg: &RunConfig,
    mode: Mode,
) -> (f64, SimReport<ThreadResult>) {
    let cluster: SimCluster<<UtsGen as TaskGen>::Task> =
        SimCluster::new(machine.clone(), threads, vars::space_config())
            .with_lookahead(mode.lookahead)
            .with_workers(mode.workers);
    let t0 = Instant::now();
    let report = cluster.run(|c| worker(c, gen, cfg));
    (t0.elapsed().as_secs_f64(), report)
}

/// Best (minimum) wall-clock over `repeats` runs; virtual results are
/// identical across repeats by determinism, so any run's report will do.
fn best_of(
    machine: &MachineModel,
    threads: usize,
    gen: &UtsGen,
    cfg: &RunConfig,
    mode: Mode,
    repeats: usize,
) -> (f64, SimReport<ThreadResult>) {
    let label = mode.label;
    let (mut best_t, mut best_r) = run_once(machine, threads, gen, cfg, mode);
    eprintln!("  {label} run 1/{repeats}: {best_t:.2}s");
    for i in 1..repeats {
        let (t, r) = run_once(machine, threads, gen, cfg, mode);
        eprintln!("  {label} run {}/{repeats}: {t:.2}s", i + 1);
        if t < best_t {
            best_t = t;
            best_r = r;
        }
    }
    (best_t, best_r)
}

/// Extract `"key": <number>` from a minimal JSON text (the files this tool
/// writes); no JSON dependency needed offline.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let smoke = flag("--smoke");
    let tree: String = arg("--tree", if smoke { "s" } else { "m" }.to_string());
    let threads: usize = arg("--threads", if smoke { 64 } else { 256 });
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let alg_name: String = arg("--alg", "distmem".to_string());
    let chunk: usize = arg("--chunk", 8);
    let workers: usize = arg("--workers", 8);
    let repeats: usize = arg("--repeats", if smoke { 3 } else { 1 });
    let out: String = arg("--out", "BENCH_conductor.json".to_string());
    let baseline: String = arg("--baseline", String::new());

    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);
    let alg = alg_by_name(&alg_name);
    let cfg = RunConfig::new(alg, chunk);

    println!(
        "conductor bench: {} on {}, tree {} ({} nodes), {} threads, k={}, {} repeat(s)",
        alg.label(),
        machine.name,
        preset.name,
        preset.expected.nodes,
        threads,
        chunk,
        repeats
    );

    let fast_mode = Mode { label: "fast", lookahead: true, workers: 0 };
    let slow_mode = Mode { label: "slow", lookahead: false, workers: 0 };
    let par_mode = Mode { label: "par", lookahead: true, workers };
    let (t_fast, fast) = best_of(&machine, threads, &gen, &cfg, fast_mode, repeats);
    let (t_slow, slow) = best_of(&machine, threads, &gen, &cfg, slow_mode, repeats);
    let (t_par, par) = best_of(&machine, threads, &gen, &cfg, par_mode, repeats);

    // The whole contract: the conductor must change real time only.
    for (other, mode) in [(&slow, "reference"), (&par, "parallel")] {
        assert_eq!(
            fast.makespan_ns, other.makespan_ns,
            "virtual makespan diverged between fiber and {mode} conductors"
        );
        assert_eq!(fast.clocks, other.clocks, "virtual clocks diverged ({mode})");
        assert_eq!(fast.stats, other.stats, "comm stats diverged ({mode})");
    }
    let steals: u64 = fast.results.iter().map(|r| r.steals_ok).sum();
    for (other, mode) in [(&slow, "reference"), (&par, "parallel")] {
        let steals_other: u64 = other.results.iter().map(|r| r.steals_ok).sum();
        assert_eq!(steals, steals_other, "steal counts diverged ({mode})");
    }
    let nodes: u64 = fast.results.iter().map(|r| r.nodes).sum();
    assert_eq!(nodes, preset.expected.nodes, "node conservation violated");

    let cond = fast.total_conductor();
    let total = fast.total_stats();
    println!(
        "  op mix: {} polls, {} gets, {} puts, {} atomics, {} lock-ops, {} bulk, {} msg-ops",
        total.polls,
        total.gets,
        total.puts,
        total.atomics,
        total.lock_acquires + total.lock_failures + total.unlocks,
        total.bulk_ops,
        total.msgs_sent + total.msgs_received,
    );
    let speedup = t_slow / t_fast;
    let par_speedup = t_fast / t_par;
    println!(
        "  wall-clock: fast {t_fast:.2}s, slow {t_slow:.2}s, par({workers}w) {t_par:.2}s \
         -> fast/slow {speedup:.2}x, par/fast {par_speedup:.2}x"
    );
    println!(
        "  conductor: {} ops, {:.1}% on the fast path, {} baton handoffs",
        cond.total_ops(),
        100.0 * cond.fast_fraction(),
        cond.handoffs,
    );
    let pcond = par.total_conductor();
    println!(
        "  parallel conductor: {:.1}% blind/validated tickets, {} parked, {} spec conflicts",
        100.0 * pcond.fast_fraction(),
        pcond.handoffs,
        pcond.spec_conflicts,
    );

    let json = format!(
        "{{\n  \"machine\": \"{}\",\n  \"tree\": \"{}\",\n  \"threads\": {},\n  \"algorithm\": \"{}\",\n  \"chunk\": {},\n  \"nodes\": {},\n  \"t_virtual_s\": {},\n  \"steals\": {},\n  \"t_fast_s\": {},\n  \"t_slow_s\": {},\n  \"speedup_fast_over_slow\": {},\n  \"sim_workers\": {},\n  \"t_par_s\": {},\n  \"speedup_par_over_fast\": {},\n  \"par_spec_conflicts\": {},\n  \"conductor_ops\": {},\n  \"fast_fraction\": {}\n}}\n",
        machine.name,
        preset.name,
        threads,
        alg.label(),
        chunk,
        nodes,
        fast.makespan_ns as f64 / 1e9,
        steals,
        t_fast,
        t_slow,
        speedup,
        workers,
        t_par,
        par_speedup,
        pcond.spec_conflicts,
        cond.total_ops(),
        cond.fast_fraction(),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warn: cannot write {out}: {e}"),
    }

    if !baseline.is_empty() {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline}: {e}"));
        let expected = json_number(&text, "speedup_fast_over_slow")
            .unwrap_or_else(|| panic!("no speedup_fast_over_slow in {baseline}"));
        let floor = expected * 0.8;
        println!(
            "  baseline speedup {expected:.2}x; regression floor {floor:.2}x; measured {speedup:.2}x"
        );
        if speedup < floor {
            eprintln!(
                "FAIL: conductor fast-path speedup regressed more than 20% \
                 ({speedup:.2}x < {floor:.2}x; baseline {expected:.2}x from {baseline})"
            );
            std::process::exit(1);
        }
        println!("  baseline check passed");
    }
}
