//! Harness-cost benchmark for the virtual-time conductor.
//!
//! Unlike the figure binaries, this benchmark measures the *simulator
//! itself*: the same workload is run with the lookahead fast path enabled
//! and disabled, wall-clock time is compared, and the virtual results are
//! asserted bit-identical (makespan, per-thread clocks, steal counts — the
//! fast path must be invisible in everything but real time; see
//! `docs/conductor.md`).
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin conductor_bench
//!     [--tree m] [--threads 256] [--machine kittyhawk] [--alg distmem]
//!     [--chunk 8] [--repeats 3] [--out BENCH_conductor.json]
//!     [--smoke] [--baseline scripts/conductor_baseline.json]
//!
//! The default point is the Figure-4 configuration (T-M, 256 threads,
//! kittyhawk, upc-distmem, k=8). `--smoke` switches to a seconds-scale
//! configuration (T-S, 64 threads) for CI. With `--baseline`, the measured
//! fast/slow speedup ratio is compared against the committed baseline and
//! the process exits non-zero if it regressed by more than 20% — the ratio
//! is machine-portable, absolute wall-clock is not.

use std::time::Instant;

use pgas::sim::{SimCluster, SimReport};
use pgas::MachineModel;
use uts_bench::harness::{arg, flag, machine_by_name, preset_by_name};
use worksteal::{vars, worker, Algorithm, RunConfig, TaskGen, ThreadResult, UtsGen};

fn alg_by_name(name: &str) -> Algorithm {
    match name {
        "sharedmem" => Algorithm::SharedMem,
        "term" => Algorithm::Term,
        "rapdif" => Algorithm::TermRapdif,
        "distmem" => Algorithm::DistMem,
        "mpi" => Algorithm::MpiWs,
        "hier" => Algorithm::Hier,
        "pushing" => Algorithm::Pushing,
        other => panic!("unknown algorithm '{other}' (sharedmem|term|rapdif|distmem|mpi|hier|pushing)"),
    }
}

fn run_once(
    machine: &MachineModel,
    threads: usize,
    gen: &UtsGen,
    cfg: &RunConfig,
    lookahead: bool,
) -> (f64, SimReport<ThreadResult>) {
    let cluster: SimCluster<<UtsGen as TaskGen>::Task> =
        SimCluster::new(machine.clone(), threads, vars::space_config()).with_lookahead(lookahead);
    let t0 = Instant::now();
    let report = cluster.run(|c| worker(c, gen, cfg));
    (t0.elapsed().as_secs_f64(), report)
}

/// Best (minimum) wall-clock over `repeats` runs; virtual results are
/// identical across repeats by determinism, so any run's report will do.
fn best_of(
    machine: &MachineModel,
    threads: usize,
    gen: &UtsGen,
    cfg: &RunConfig,
    lookahead: bool,
    repeats: usize,
) -> (f64, SimReport<ThreadResult>) {
    let mode = if lookahead { "fast" } else { "slow" };
    let (mut best_t, mut best_r) = run_once(machine, threads, gen, cfg, lookahead);
    eprintln!("  {mode} run 1/{repeats}: {best_t:.2}s");
    for i in 1..repeats {
        let (t, r) = run_once(machine, threads, gen, cfg, lookahead);
        eprintln!("  {mode} run {}/{repeats}: {t:.2}s", i + 1);
        if t < best_t {
            best_t = t;
            best_r = r;
        }
    }
    (best_t, best_r)
}

/// Extract `"key": <number>` from a minimal JSON text (the files this tool
/// writes); no JSON dependency needed offline.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let smoke = flag("--smoke");
    let tree: String = arg("--tree", if smoke { "s" } else { "m" }.to_string());
    let threads: usize = arg("--threads", if smoke { 64 } else { 256 });
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let alg_name: String = arg("--alg", "distmem".to_string());
    let chunk: usize = arg("--chunk", 8);
    let repeats: usize = arg("--repeats", if smoke { 3 } else { 1 });
    let out: String = arg("--out", "BENCH_conductor.json".to_string());
    let baseline: String = arg("--baseline", String::new());

    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);
    let alg = alg_by_name(&alg_name);
    let cfg = RunConfig::new(alg, chunk);

    println!(
        "conductor bench: {} on {}, tree {} ({} nodes), {} threads, k={}, {} repeat(s)",
        alg.label(),
        machine.name,
        preset.name,
        preset.expected.nodes,
        threads,
        chunk,
        repeats
    );

    let (t_fast, fast) = best_of(&machine, threads, &gen, &cfg, true, repeats);
    let (t_slow, slow) = best_of(&machine, threads, &gen, &cfg, false, repeats);

    // The whole contract: lookahead must change real time only.
    assert_eq!(
        fast.makespan_ns, slow.makespan_ns,
        "virtual makespan diverged between conductor modes"
    );
    assert_eq!(fast.clocks, slow.clocks, "virtual clocks diverged");
    assert_eq!(fast.stats, slow.stats, "comm stats diverged");
    let steals: u64 = fast.results.iter().map(|r| r.steals_ok).sum();
    let steals_slow: u64 = slow.results.iter().map(|r| r.steals_ok).sum();
    assert_eq!(steals, steals_slow, "steal counts diverged");
    let nodes: u64 = fast.results.iter().map(|r| r.nodes).sum();
    assert_eq!(nodes, preset.expected.nodes, "node conservation violated");

    let cond = fast.total_conductor();
    let total = fast.total_stats();
    println!(
        "  op mix: {} polls, {} gets, {} puts, {} atomics, {} lock-ops, {} bulk, {} msg-ops",
        total.polls,
        total.gets,
        total.puts,
        total.atomics,
        total.lock_acquires + total.lock_failures + total.unlocks,
        total.bulk_ops,
        total.msgs_sent + total.msgs_received,
    );
    let speedup = t_slow / t_fast;
    println!(
        "  wall-clock: fast {t_fast:.2}s, slow {t_slow:.2}s -> speedup {speedup:.2}x"
    );
    println!(
        "  conductor: {} ops, {:.1}% on the fast path, {} baton handoffs",
        cond.total_ops(),
        100.0 * cond.fast_fraction(),
        cond.handoffs,
    );

    let json = format!(
        "{{\n  \"machine\": \"{}\",\n  \"tree\": \"{}\",\n  \"threads\": {},\n  \"algorithm\": \"{}\",\n  \"chunk\": {},\n  \"nodes\": {},\n  \"t_virtual_s\": {},\n  \"steals\": {},\n  \"t_fast_s\": {},\n  \"t_slow_s\": {},\n  \"speedup_fast_over_slow\": {},\n  \"conductor_ops\": {},\n  \"fast_fraction\": {}\n}}\n",
        machine.name,
        preset.name,
        threads,
        alg.label(),
        chunk,
        nodes,
        fast.makespan_ns as f64 / 1e9,
        steals,
        t_fast,
        t_slow,
        speedup,
        cond.total_ops(),
        cond.fast_fraction(),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warn: cannot write {out}: {e}"),
    }

    if !baseline.is_empty() {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline}: {e}"));
        let expected = json_number(&text, "speedup_fast_over_slow")
            .unwrap_or_else(|| panic!("no speedup_fast_over_slow in {baseline}"));
        let floor = expected * 0.8;
        println!(
            "  baseline speedup {expected:.2}x; regression floor {floor:.2}x; measured {speedup:.2}x"
        );
        if speedup < floor {
            eprintln!(
                "FAIL: conductor fast-path speedup regressed more than 20% \
                 ({speedup:.2}x < {floor:.2}x; baseline {expected:.2}x from {baseline})"
            );
            std::process::exit(1);
        }
        println!("  baseline check passed");
    }
}
