//! E15 — validate the §2 analytic chunk-size model (`worksteal::model`)
//! against a measured sweep.
//!
//! Fits α (migration fraction) from the small-k steal counts and β
//! (granularity-imbalance coefficient) from one large-k rate, then compares
//! the predicted rate curve with fresh measurements at every chunk size and
//! reports the predicted optimal k* next to the empirical winner.
//!
//! Usage:
//!   cargo run --release -p uts-bench --bin model_check
//!     [--tree m] [--threads 128] [--machine kittyhawk]

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name};
use worksteal::model::{fit_alpha, fit_beta, ChunkModel};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let threads: usize = arg("--threads", 128);
    let machine_name: String = arg("--machine", "kittyhawk".to_string());
    let machine = machine_by_name(&machine_name);
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);
    let n = preset.expected.nodes;
    let chunks = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!(
        "Model check: upc-distmem, {} threads, tree {} ({} nodes) on {}",
        threads, preset.name, n, machine.name
    );

    // Measure the sweep.
    let rows: Vec<_> = chunks
        .iter()
        .map(|&k| {
            let r = measure(&machine, threads, &gen, Algorithm::DistMem, k, n);
            eprintln!("  measured k={k}: {:.2} Mn/s, {} steals", r.mnodes_per_sec, r.steals);
            r
        })
        .collect();

    // Fit the two free parameters.
    let steal_points: Vec<(usize, u64)> = rows.iter().map(|r| (r.chunk, r.steals)).collect();
    let alpha = fit_alpha(&steal_points, n);
    let mut model = ChunkModel {
        node_ns: machine.node_ns as f64,
        // Request/response round trip plus transfer startup.
        steal_latency_ns: (machine.remote_atomic_ns
            + 2 * machine.remote_ref_ns
            + machine.bulk_startup_ns) as f64,
        per_node_ns: machine.ns_per_byte * 24.0,
        alpha,
        beta: 0.0,
    };
    let big = rows.iter().max_by_key(|r| r.chunk).unwrap();
    model.beta = fit_beta(
        &model,
        big.chunk as f64,
        big.mnodes_per_sec * 1e6 / 1e9, // nodes per ns
        threads as f64,
        n as f64,
    );
    println!("\nfitted: alpha = {alpha:.4} (migration fraction), beta = {:.2}", model.beta);

    println!(
        "\n{:<6} {:>14} {:>14} {:>9}",
        "k", "measured Mn/s", "predicted Mn/s", "error"
    );
    let mut worst = 0.0f64;
    for r in &rows {
        let pred = model.rate(r.chunk as f64, threads as f64, n as f64) * 1e9 / 1e6;
        let err = (pred - r.mnodes_per_sec) / r.mnodes_per_sec;
        worst = worst.max(err.abs());
        println!(
            "{:<6} {:>14.2} {:>14.2} {:>8.1}%",
            r.chunk,
            r.mnodes_per_sec,
            pred,
            100.0 * err
        );
    }
    let k_star = model.optimal_k(threads as f64, n as f64);
    let best_measured = rows
        .iter()
        .max_by(|a, b| a.mnodes_per_sec.total_cmp(&b.mnodes_per_sec))
        .unwrap();
    println!(
        "\npredicted k* = {k_star:.1}; empirical best k = {} (worst pointwise error {:.0}%)",
        best_measured.chunk,
        100.0 * worst
    );
    println!("the model captures the §2 tradeoff shape; residuals come from");
    println!("effects it omits (steal-half granting, probe contention, diffusion).");
}
