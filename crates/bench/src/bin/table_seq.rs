//! E1 — §4.1 sequential performance.
//!
//! The paper anchors everything on the sequential exploration rate: 2.10
//! Mnodes/s (Topsail Xeon E5345), 2.39 Mnodes/s (Kitty Hawk Xeon E5150),
//! 1.12 Mnodes/s (Altix Itanium2), dominated by SHA-1 evaluation. This
//! binary reports (a) the modelled rates our machine presets encode, (b)
//! a 1-thread virtual run per platform (which should match the model within
//! protocol overhead), and (c) this host's *real* SHA-1-limited exploration
//! rate for context.
//!
//! Usage: `cargo run --release -p uts-bench --bin table_seq [--tree m]`

use std::time::Instant;

use uts_bench::harness::{arg, machine_by_name, measure, preset_by_name};
use worksteal::{Algorithm, UtsGen};

fn main() {
    let tree: String = arg("--tree", "m".to_string());
    let preset = preset_by_name(&tree);
    let gen = UtsGen::new(preset.spec);

    println!("== E1: sequential exploration rates (paper §4.1) ==");
    println!("tree {} ({} nodes)", preset.name, preset.expected.nodes);
    println!(
        "\n{:<10} {:>14} {:>14} {:>17}",
        "platform", "paper Mn/s", "model Mn/s", "1-thread sim Mn/s"
    );
    for (name, paper_rate) in [("topsail", 2.10), ("kittyhawk", 2.39), ("altix", 1.12)] {
        let machine = machine_by_name(name);
        let row = measure(
            &machine,
            1,
            &gen,
            Algorithm::DistMem,
            8,
            preset.expected.nodes,
        );
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>17.2}",
            name,
            paper_rate,
            machine.seq_rate() / 1e6,
            row.mnodes_per_sec
        );
    }

    // Real hardware rate (informational; depends on this host's CPU).
    let t0 = Instant::now();
    let (nodes, _) = worksteal::seq_run(&gen);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "\nthis host's real sequential rate: {:.2} Mnodes/s ({} nodes in {:.2}s)",
        nodes as f64 / dt / 1e6,
        nodes,
        dt
    );
}
