//! # uts-dlb — Scalable Dynamic Load Balancing (UPC work stealing, reproduced in Rust)
//!
//! Facade crate re-exporting the full reproduction of Olivier & Prins,
//! *Scalable Dynamic Load Balancing Using UPC* (ICPP 2008):
//!
//! - [`sha1`] — RFC 3174 SHA-1 (tree-generation substrate)
//! - [`tree`] — the UTS benchmark trees (binomial / geometric / hybrid)
//! - [`pgas`] — the UPC-like PGAS substrate (native threads or virtual-time simulation)
//! - [`mpisim`] — the MPI-like message-passing substrate
//! - [`worksteal`] — the paper's five load-balancing algorithms and run harness
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.
#![warn(missing_docs)]

pub use mpisim;
pub use pgas;
pub use uts_sha1 as sha1;
pub use uts_tree as tree;
pub use worksteal;
